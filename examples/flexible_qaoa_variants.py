"""Non-traditional QAOA variants in one script.

The paper lists the variations JuliQAOA supports beyond textbook QAOA:
multi-angle mixers, per-round mixer schedules, threshold phase separators,
warm-start initial states, and fully user-defined cost functions.  This
example exercises each one on small instances.

Run with:  python examples/flexible_qaoa_variants.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FullSpace,
    GroverMixer,
    MixerSchedule,
    MultiAngleXMixer,
    QAOAAnsatz,
    simulate,
    state_matrix,
    transverse_field_mixer,
)
from repro.angles import find_angles_random, local_minimize
from repro.problems import erdos_renyi, maxcut_values, threshold_values
from repro.problems.extra import number_partition_values


def user_defined_cost() -> None:
    """Any callable / any value vector works as a phase separator."""
    n = 6
    rng = np.random.default_rng(1)
    weights = rng.integers(1, 20, size=n).astype(float)
    obj = number_partition_values(weights, state_matrix(n))  # user-defined objective
    ansatz = QAOAAnsatz(obj, transverse_field_mixer(n), 2)
    result = find_angles_random(ansatz, iters=10, rng=0)
    print(
        f"[number partitioning] best <C> = {result.value:.3f} "
        f"(optimum {obj.max():.0f}, mean over assignments {obj.mean():.0f})"
    )


def multi_angle() -> None:
    """Multi-angle QAOA: one beta per qubit per round."""
    n, p = 6, 2
    graph = erdos_renyi(n, 0.5, seed=2)
    obj = maxcut_values(graph, state_matrix(n))
    mixer = MultiAngleXMixer(n, [(q,) for q in range(n)])
    schedule = MixerSchedule([mixer] * p)
    ansatz = QAOAAnsatz(obj, schedule)
    result = local_minimize(ansatz, 0.1 * np.ones(ansatz.num_angles))
    plain = local_minimize(QAOAAnsatz(obj, transverse_field_mixer(n), p), 0.1 * np.ones(2 * p))
    print(
        f"[multi-angle]         <C> = {result.value:.4f} with {ansatz.num_angles} angles "
        f"vs {plain.value:.4f} with {2 * p} standard angles (optimum {obj.max():.0f})"
    )


def per_round_mixers() -> None:
    """Different mixers in different rounds."""
    n = 6
    graph = erdos_renyi(n, 0.5, seed=3)
    obj = maxcut_values(graph, state_matrix(n))
    schedule = MixerSchedule([transverse_field_mixer(n), GroverMixer(FullSpace(n))])
    angles = np.array([0.4, 0.9, 0.5, 0.7])
    res = simulate(angles, schedule, obj)
    print(
        "[mixed schedule]      transverse-field round then Grover round: "
        f"<C> = {res.expectation():.4f}"
    )


def threshold_phase_separator() -> None:
    """Threshold-QAOA: the phase separator only marks states above a cutoff."""
    n = 8
    graph = erdos_renyi(n, 0.5, seed=4)
    obj = maxcut_values(graph, state_matrix(n))
    cutoff = np.quantile(obj, 0.95)
    marked = threshold_values(obj, cutoff)  # indicator objective
    mixer = GroverMixer(FullSpace(n))
    # With the Grover mixer and threshold separator, beta = gamma = pi performs
    # amplitude amplification of the marked states (Grover search as a QAOA).
    res = simulate(np.array([np.pi, np.pi]), mixer, marked)
    uniform_prob = marked.sum() / len(marked)
    print(
        f"[threshold + Grover]  P(marked) = {res.expectation():.4f} after one round "
        f"(uniform baseline {uniform_prob:.4f})"
    )


def warm_start() -> None:
    """Custom initial states bias the QAOA toward a classical solution."""
    n = 6
    graph = erdos_renyi(n, 0.5, seed=5)
    obj = maxcut_values(graph, state_matrix(n))
    mixer = transverse_field_mixer(n)
    # Classical warm start: a (sub)optimal cut found greedily, here just the
    # best of 20 random assignments.
    rng = np.random.default_rng(0)
    candidates = rng.integers(0, 2, size=(20, n))
    values = maxcut_values(graph, candidates)
    best = candidates[int(values.argmax())]
    label = int(sum(int(b) << i for i, b in enumerate(best)))
    warm = np.zeros(1 << n, dtype=complex)
    warm[label] = 1.0
    angles = np.array([0.2, 0.3])
    warm_res = simulate(angles, mixer, obj, initial_state=warm)
    cold_res = simulate(angles, mixer, obj)
    print(
        f"[warm start]          <C> warm = {warm_res.expectation():.4f} "
        f"vs cold = {cold_res.expectation():.4f} (optimum {obj.max():.0f})"
    )


if __name__ == "__main__":
    user_defined_cost()
    multi_angle()
    per_round_mixers()
    threshold_phase_separator()
    warm_start()
