"""Constrained optimization: Densest-k-Subgraph with the Clique mixer (Listing 2).

Constrained problems are handled without penalty terms: the objective is only
evaluated over the feasible (Hamming-weight-k) Dicke subspace and the mixer is
a weight-preserving Clique (complete-graph XY) mixer whose eigendecomposition
is pre-computed once and cached to disk for re-use.

The script then runs the iterative angle finder and compares the exact
subspace mixer against the first-order Trotterized mixer a circuit-oriented
package would use.

Run with:  python examples/constrained_densest_subgraph.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import DickeSpace, erdos_renyi, mixer_clique, simulate
from repro.analysis import normalized_approximation_ratio
from repro.angles import find_angles
from repro.baselines import trotter_clique_mixer
from repro.problems import densest_subgraph_values


def main() -> None:
    n, k = 8, 4
    graph = erdos_renyi(n, 0.5, seed=7)

    # Feasible space: all n-qubit states with exactly k ones (the Dicke basis).
    space = DickeSpace(n, k)
    obj_vals = densest_subgraph_values(graph, space.bits)
    print(f"feasible states        : {space.dim} (C({n},{k}))")
    print(f"best k-subgraph edges  : {obj_vals.max():.0f}")

    with tempfile.TemporaryDirectory() as tmp:
        mixer_file = Path(tmp) / f"clique_{n}_{k}.npz"

        # First construction computes and caches the eigendecomposition ...
        mixer = mixer_clique(n, k, file=mixer_file)
        print(f"mixer cache written    : {mixer_file.name} ({mixer_file.stat().st_size} bytes)")
        # ... subsequent constructions just load it.
        mixer = mixer_clique(n, k, file=mixer_file)

        # Iterative (extrapolated basinhopping) angle finding up to p = 4.
        results = find_angles(4, mixer, obj_vals, n_hops=2, n_starts_p1=2, rng=0)
        print("\nround   <C>      approx ratio")
        for p in sorted(results):
            ratio = normalized_approximation_ratio(
                results[p].value, float(obj_vals.max()), float(obj_vals.min())
            )
            print(f"  p={p}   {results[p].value:7.4f}   {ratio:.4f}")

        # The final state never leaves the feasible subspace.
        best = results[max(results)]
        final = simulate(best.angles, mixer, obj_vals)
        print(f"\nP(optimal subset)      : {final.ground_state_probability():.4f}")

        # Ablation: the exact subspace mixer vs a single-step Trotterized XY mixer.
        trotter = trotter_clique_mixer(n, k, trotter_steps=1)
        trotter_value = simulate(best.angles, trotter, obj_vals).expectation()
        print(f"<C> exact Clique mixer : {best.value:.4f}")
        print(f"<C> Trotterized mixer  : {trotter_value:.4f} (same angles)")


if __name__ == "__main__":
    main()
