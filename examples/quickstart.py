"""Quickstart: MaxCut QAOA on a random graph (the paper's Listing 1).

Pre-compute the objective values over all basis states, build the
transverse-field mixer, simulate a 3-round QAOA at random angles, and inspect
the result object.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    erdos_renyi,
    get_exp_value,
    maxcut,
    mixer_x,
    simulate,
    states,
)


def main() -> None:
    # --- problem setup (Listing 1 of the paper) ---------------------------
    n = 6
    graph = erdos_renyi(n, 0.5, seed=1)

    # Objective values across all 2^n basis states.  Any callable taking a
    # 0/1 array works here; maxcut() is one of the built-in cost functions.
    obj_vals = np.array([maxcut(graph, x) for x in states(n)])

    # The transverse-field mixer: mixer_x([1], n) means "sum of all single-X
    # terms"; mixer_x([1, 2], n) would add all two-body X products, etc.
    mixer = mixer_x([1], n)

    # --- simulate a p-round QAOA ------------------------------------------
    p = 3
    rng = np.random.default_rng(0)
    angles = 2 * np.pi * rng.random(2 * p)  # betas first, then gammas

    res = simulate(angles, mixer, obj_vals)
    exp_value = get_exp_value(res)

    print(f"graph edges            : {graph.number_of_edges()}")
    print(f"optimal cut value      : {obj_vals.max():.0f}")
    print(f"<C> at random angles   : {exp_value:.4f}")
    print(f"approximation ratio    : {res.approximation_ratio():.4f}")
    print(f"P(optimal state)       : {res.ground_state_probability():.4f}")
    print(f"statevector norm       : {res.norm():.12f}")

    # Sampling measurement outcomes from the final state.
    samples = res.sample(shots=10, rng=0)
    print(f"ten measured bitstrings: {[format(int(s), f'0{n}b') for s in samples]}")


if __name__ == "__main__":
    main()
