"""Quickstart: MaxCut QAOA two ways.

First the declarative facade — one ``repro.solve()`` call runs the paper's
whole toolchain (problem generation, objective pre-computation, mixer
construction, angle finding, final simulation).  Then the same QAOA assembled
by hand from the low-level pieces (the paper's Listing 1), which is exactly
what ``solve()`` composes under the hood.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    erdos_renyi,
    get_exp_value,
    maxcut,
    mixer_x,
    simulate,
    solve,
    states,
)


def facade() -> None:
    """One declarative call: problem x mixer x strategy by name."""
    result = solve(
        problem="maxcut",
        n=6,
        problem_seed=1,
        mixer="x",                       # transverse-field mixer
        strategy="random",               # random-restart BFGS (batched adjoint path)
        strategy_params={"iters": 10},
        p=3,
        seed=0,
    )
    print("— solve() facade —")
    print(f"optimal cut value      : {result.optimum:.0f}")
    print(f"best <C> found         : {result.value:.4f}")
    print(f"approximation ratio    : {result.approximation_ratio:.4f}")
    print(f"P(optimal state)       : {result.ground_state_probability:.4f}")
    print(f"strategy / evaluations : {result.strategy} / {result.evaluations}")

    # Sampling measurement outcomes from the final state.
    samples = result.sample(shots=5, rng=0)
    print(f"measured bitstrings    : {[format(int(s), '06b') for s in samples]}")

    # Specs round-trip through JSON, so a solve can be stored and re-run
    # bit-for-bit (this is what `repro run solve` sweep grids are made of).
    print(f"spec                   : {result.spec.to_json()}")


def under_the_hood() -> None:
    """The same QAOA from the low-level pieces (the paper's Listing 1)."""
    n = 6
    graph = erdos_renyi(n, 0.5, seed=1)

    # Objective values across all 2^n basis states.  Any callable taking a
    # 0/1 array works here; maxcut() is one of the built-in cost functions.
    obj_vals = np.array([maxcut(graph, x) for x in states(n)])

    # The transverse-field mixer: mixer_x([1], n) means "sum of all single-X
    # terms"; mixer_x([1, 2], n) would add all two-body X products, etc.
    mixer = mixer_x([1], n)

    # Simulate a p-round QAOA at random angles (betas first, then gammas).
    p = 3
    rng = np.random.default_rng(0)
    angles = 2 * np.pi * rng.random(2 * p)

    res = simulate(angles, mixer, obj_vals)
    print("\n— under the hood (Listing 1) —")
    print(f"graph edges            : {graph.number_of_edges()}")
    print(f"<C> at random angles   : {get_exp_value(res):.4f}")
    print(f"approximation ratio    : {res.approximation_ratio():.4f}")
    print(f"statevector norm       : {res.norm():.12f}")


def main() -> None:
    facade()
    under_the_hood()


if __name__ == "__main__":
    main()
