"""Regenerate every figure of the paper as plain-text tables.

This drives the benchmark harness (:mod:`repro.bench.figures`) end to end and
prints one table per figure.  Figures are scaled down by default so the script
finishes in a few minutes; set ``REPRO_BENCH_SCALE=paper`` for the paper-sized
parameters (n = 12/14, p up to 10, 50+ instances — substantially slower).

Results are also written as JSON rows under ``./figure_outputs/`` so they can
be re-plotted or diffed later.

Run with:  python examples/reproduce_figures.py [--figures 2,4a,4b,5,grover]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.bench import (
    format_rows,
    run_figure2,
    run_figure3,
    run_figure4a,
    run_figure4b,
    run_figure5,
    run_grover_compression,
)
from repro.io.results import save_rows

RUNNERS = {
    "2": ("Figure 2 — quality vs rounds for four problem/mixer pairs", run_figure2),
    "3": ("Figure 3 — angle-finding strategy comparison (slowest figure)", run_figure3),
    "4a": ("Figure 4a — time & memory vs qubits (p=1 MaxCut)", run_figure4a),
    "4b": ("Figure 4b — time vs rounds (fixed-n MaxCut)", run_figure4b),
    "5": ("Figure 5 — BFGS with finite-difference vs adjoint gradients", run_figure5),
    "grover": ("Sec. 2.4 — Grover-mixer value compression", run_grover_compression),
}

DEFAULT_FIGURES = ["2", "4a", "4b", "5", "grover"]  # figure 3 is opt-in (slow)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figures",
        default=",".join(DEFAULT_FIGURES),
        help=f"comma-separated subset of {sorted(RUNNERS)} (default: {','.join(DEFAULT_FIGURES)})",
    )
    parser.add_argument(
        "--output-dir", default="figure_outputs", help="directory for the JSON row dumps"
    )
    args = parser.parse_args()

    selected = [f.strip() for f in args.figures.split(",") if f.strip()]
    unknown = [f for f in selected if f not in RUNNERS]
    if unknown:
        raise SystemExit(f"unknown figure id(s) {unknown}; choose from {sorted(RUNNERS)}")

    output_dir = Path(args.output_dir)
    for figure_id in selected:
        title, runner = RUNNERS[figure_id]
        print(f"\n=== {title} ===")
        rows = runner()
        print(format_rows(rows))
        path = save_rows(output_dir / f"figure_{figure_id}.json", rows)
        print(f"(rows saved to {path})")


if __name__ == "__main__":
    main()
