"""Regenerate every figure of the paper through the experiment runner.

This is a thin veneer over the ``python -m repro`` CLI: each figure becomes a
sharded, resumable sweep whose rows land in a run store (manifest + JSONL)
under ``--output-dir``.  Interrupt it at any point and re-run — completed
work is skipped.  Figures are scaled down by default so the script finishes
in minutes; pass ``--scale paper`` for the paper-sized parameters (n = 12/14,
p up to 10, 50+ instances — substantially slower).

Run with:  python examples/reproduce_figures.py [--figures 2,4a,4b,5,grover]

Equivalent CLI invocation:  python -m repro run all --scale quick --out runs
"""

from __future__ import annotations

import argparse

from repro.bench import format_rows
from repro.experiments import RunStore, get_experiment, run_experiment
from repro.hpc import default_workers

# Figure ids as the paper names them -> experiment names in the registry.
FIGURE_TO_EXPERIMENT = {
    "2": "fig2",
    "3": "fig3",
    "4a": "fig4a",
    "4b": "fig4b",
    "5": "fig5",
    "grover": "grover",
}

DEFAULT_FIGURES = ["2", "4a", "4b", "5", "grover"]  # figure 3 is opt-in (slow)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figures",
        default=",".join(DEFAULT_FIGURES),
        help=(
            f"comma-separated subset of {sorted(FIGURE_TO_EXPERIMENT)} "
            f"(default: {','.join(DEFAULT_FIGURES)})"
        ),
    )
    parser.add_argument(
        "--output-dir", default="figure_outputs", help="directory for the run stores"
    )
    parser.add_argument("--scale", choices=("quick", "paper"), default="quick")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes per figure (default: REPRO_WORKERS or CPU count)",
    )
    args = parser.parse_args()

    selected = [f.strip() for f in args.figures.split(",") if f.strip()]
    unknown = [f for f in selected if f not in FIGURE_TO_EXPERIMENT]
    if unknown:
        raise SystemExit(
            f"unknown figure id(s) {unknown}; choose from {sorted(FIGURE_TO_EXPERIMENT)}"
        )

    workers = default_workers() if args.workers is None else max(1, args.workers)
    for figure_id in selected:
        name = FIGURE_TO_EXPERIMENT[figure_id]
        print(f"\n=== {get_experiment(name).title} ===")
        report = run_experiment(
            name, scale=args.scale, out_dir=args.output_dir, workers=workers, log=print
        )
        print(format_rows(RunStore.open(report.directory).rows()))
        print(f"(rows stored in {report.directory})")


if __name__ == "__main__":
    main()
