"""Comparing angle-finding strategies on a MaxCut ensemble (Figure 3, Listing 3).

Runs three classical outer-loop strategies on a small ensemble of random
MaxCut instances and prints the mean approximation ratio per round:

* the package's default iterative scheme (extrapolate round p-1 angles, then
  basinhop) — the paper's ``find_angles``,
* random local-minima exploration (best of N random-start BFGS searches),
* median angles (medians of the per-instance random-restart winners).

Run with:  python examples/angle_finding_strategies.py
"""

from __future__ import annotations

import numpy as np

from repro import QAOAAnsatz, state_matrix, transverse_field_mixer
from repro.analysis import normalized_approximation_ratio
from repro.angles import (
    evaluate_median_angles,
    find_angles,
    find_angles_random,
    median_angles,
)
from repro.problems import erdos_renyi, maxcut_values

NUM_INSTANCES = 4
N = 8
P_MAX = 3
RANDOM_ITERS = 8


def main() -> None:
    graphs = [erdos_renyi(N, 0.5, seed=100 + i) for i in range(NUM_INSTANCES)]
    objectives = [maxcut_values(g, state_matrix(N)) for g in graphs]
    mixer = transverse_field_mixer(N)

    def ratio(obj, value):
        return normalized_approximation_ratio(value, float(obj.max()), float(obj.min()))

    table: dict[str, dict[int, list[float]]] = {
        "iterative": {p: [] for p in range(1, P_MAX + 1)},
        "random": {p: [] for p in range(1, P_MAX + 1)},
        "median": {p: [] for p in range(1, P_MAX + 1)},
    }

    # Iterative extrapolated basinhopping (one pass per instance covers all p).
    for idx, obj in enumerate(objectives):
        results = find_angles(P_MAX, mixer, obj, n_hops=2, n_starts_p1=1, rng=idx)
        for p in range(1, P_MAX + 1):
            table["iterative"][p].append(ratio(obj, results[p].value))

    # Random restarts and median angles, per round.
    for p in range(1, P_MAX + 1):
        ansatze = [QAOAAnsatz(obj, mixer, p) for obj in objectives]
        winners = []
        for idx, (obj, ansatz) in enumerate(zip(objectives, ansatze)):
            best = find_angles_random(ansatz, iters=RANDOM_ITERS, rng=1000 + 17 * idx + p)
            winners.append(best)
            table["random"][p].append(ratio(obj, best.value))
        medians = median_angles(winners)
        for obj, ansatz in zip(objectives, ansatze):
            value = evaluate_median_angles(ansatz, medians).value
            table["median"][p].append(ratio(obj, value))

    print(f"mean normalized approximation ratio over {NUM_INSTANCES} MaxCut instances (n={N})")
    print(f"{'p':>3s}  {'iterative':>10s}  {'random':>10s}  {'median':>10s}")
    for p in range(1, P_MAX + 1):
        row = [float(np.mean(table[name][p])) for name in ("iterative", "random", "median")]
        print(f"{p:>3d}  {row[0]:>10.4f}  {row[1]:>10.4f}  {row[2]:>10.4f}")


if __name__ == "__main__":
    main()
