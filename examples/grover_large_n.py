"""Grover-mixer QAOA at large n via value compression (Sec. 2.4 of the paper).

With the Grover mixer every basis state with the same objective value keeps
the same amplitude, so only the distinct values and their degeneracies are
needed.  This example:

1. verifies the compressed simulation against the dense simulator at n = 10,
2. runs a 3-SAT Grover-QAOA whose spectrum is counted in parallel worker
   processes without ever materializing the 2^n objective vector,
3. simulates a 100-qubit Hamming-weight objective whose degeneracies are known
   analytically, and optimizes its angles with the compressed adjoint gradient.

Run with:  python examples/grover_large_n.py
"""

from __future__ import annotations

from functools import partial

import numpy as np
from scipy.optimize import minimize

from repro import grover_mixer, simulate, state_matrix
from repro.grover import (
    compress_objective,
    grover_value_and_gradient,
    hamming_weight_spectrum,
    simulate_grover_compressed,
)
from repro.hpc import parallel_compress
from repro.problems import erdos_renyi, maxcut_values
from repro.problems.ksat import ksat_values, random_ksat


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. dense vs compressed agreement at n = 10 ------------------------
    n = 10
    graph = erdos_renyi(n, 0.5, seed=3)
    obj = maxcut_values(graph, state_matrix(n))
    spectrum = compress_objective(obj)
    angles = 2 * np.pi * rng.random(8)
    dense = simulate(angles, grover_mixer(n), obj).expectation()
    compressed = simulate_grover_compressed(angles, spectrum).expectation()
    print(f"[n={n} MaxCut]  dense <C> = {dense:.6f}   compressed <C> = {compressed:.6f}")
    print(f"               distinct objective values: {spectrum.num_distinct} of {spectrum.total}")

    # --- 2. parallel degeneracy counting for a 3-SAT instance --------------
    n_sat = 16
    instance = random_ksat(n_sat, k=3, clause_density=6.0, seed=1)
    spectrum_sat = parallel_compress(partial(ksat_values, instance), n_sat, processes=4)
    result = simulate_grover_compressed(2 * np.pi * rng.random(6), spectrum_sat)
    print(
        f"[n={n_sat} 3-SAT] clauses = {instance.num_clauses}, "
        f"distinct values = {spectrum_sat.num_distinct}, "
        f"<C> = {result.expectation():.3f}, "
        f"P(optimal) = {result.ground_state_probability():.2e}"
    )

    # --- 3. n = 100 with an analytic spectrum + compressed gradient --------
    n_big = 100
    spectrum_big = hamming_weight_spectrum(n_big, lambda w: float(min(w, n_big - w)))
    p = 3

    def loss(x):
        value, grad = grover_value_and_gradient(x, spectrum_big)
        return -value, -grad

    x0 = 0.1 * np.ones(2 * p)
    res = minimize(loss, x0, jac=True, method="BFGS", options={"maxiter": 60})
    final = simulate_grover_compressed(res.x, spectrum_big)
    print(f"[n={n_big}]      feasible states = 2^{n_big} (~{float(spectrum_big.total):.2e})")
    print(
        f"               optimized <C> = {final.expectation():.4f} "
        f"(objective maximum = {spectrum_big.optimum:.0f})"
    )
    print(f"               state classes tracked = {spectrum_big.num_distinct}")


if __name__ == "__main__":
    main()
