"""Ablation benchmarks for the design choices called out in DESIGN.md.

* Walsh–Hadamard (tensor-contraction) X-mixer application vs building the
  dense matrix exponential every layer (what a naive implementation would do).
* Exact subspace Clique mixer (pre-computed eigendecomposition, the paper's
  choice) vs the first-order Trotterized product (the QOKit-style choice).
* Reusing the cached eigendecomposition vs recomputing it per call.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.bench.timing import time_call
from repro.bench.workloads import is_paper_scale
from repro.baselines.trotter import trotter_clique_mixer
from repro.core import random_angles, simulate
from repro.hilbert import DickeSpace, state_matrix
from repro.mixers import CliqueMixer, transverse_field_mixer
from repro.problems import densest_subgraph_values, erdos_renyi

_N_X = 12 if is_paper_scale() else 10
_NK = (12, 6) if is_paper_scale() else (10, 5)


# ---------------------------------------------------------------------------
# X mixer: Walsh–Hadamard vs dense expm
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def x_mixer_state():
    rng = np.random.default_rng(0)
    psi = rng.normal(size=1 << _N_X) + 1j * rng.normal(size=1 << _N_X)
    return psi / np.linalg.norm(psi)


def test_x_mixer_walsh_hadamard(benchmark, x_mixer_state):
    """The paper's O(n 2^n) X-mixer layer via Walsh–Hadamard transforms."""
    mixer = transverse_field_mixer(_N_X)
    out = benchmark(lambda: mixer.apply(x_mixer_state, 0.4))
    assert np.isclose(np.linalg.norm(out), 1.0)


def test_x_mixer_dense_expm(benchmark, x_mixer_state):
    """Naive alternative: build exp(-i beta H_M) densely every layer (small n only)."""
    n_small = 8  # dense expm at n=10+ is prohibitively slow for a benchmark
    rng = np.random.default_rng(1)
    psi = rng.normal(size=1 << n_small) + 1j * rng.normal(size=1 << n_small)
    psi /= np.linalg.norm(psi)
    dense_h = transverse_field_mixer(n_small).matrix()
    out = benchmark(lambda: sla.expm(-1j * 0.4 * dense_h) @ psi)
    assert np.isclose(np.linalg.norm(out), 1.0)


def test_x_mixer_speedup_shape(benchmark, x_mixer_state):
    """At equal n the Walsh–Hadamard path beats dense expm by a large factor."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    n = 8
    rng = np.random.default_rng(2)
    psi = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    psi /= np.linalg.norm(psi)
    mixer = transverse_field_mixer(n)
    dense_h = mixer.matrix()
    fast = time_call(lambda: mixer.apply(psi, 0.4), repeats=3)
    slow = time_call(lambda: sla.expm(-1j * 0.4 * dense_h) @ psi, repeats=3)
    print(
        f"\n  ablation x-mixer n={n}: "
        f"WHT={fast['min'] * 1e6:.1f} us, dense expm={slow['min'] * 1e6:.1f} us"
    )
    assert fast["min"] * 10 < slow["min"]


# ---------------------------------------------------------------------------
# Clique mixer: exact eigendecomposition vs Trotterization
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def constrained_workload():
    n, k = _NK
    graph = erdos_renyi(n, 0.5, seed=31)
    space = DickeSpace(n, k)
    obj = densest_subgraph_values(graph, space.bits)
    return n, k, obj


def test_clique_exact_layer(benchmark, constrained_workload):
    """Exact subspace Clique-mixer layer (two GEMVs on the cached eigenbasis)."""
    n, k, obj = constrained_workload
    mixer = CliqueMixer(n, k)
    psi = mixer.initial_state()
    out = benchmark(lambda: mixer.apply(psi, 0.3))
    assert np.isclose(np.linalg.norm(out), 1.0)


def test_clique_trotter_layer(benchmark, constrained_workload):
    """First-order Trotterized Clique-mixer layer (QOKit-style)."""
    n, k, obj = constrained_workload
    mixer = trotter_clique_mixer(n, k, trotter_steps=1)
    psi = mixer.initial_state()
    out = benchmark(lambda: mixer.apply(psi, 0.3))
    assert np.isclose(np.linalg.norm(out), 1.0)


def test_trotter_accuracy_penalty_shape(benchmark, constrained_workload):
    """The Trotterized mixer changes the optimizer's landscape: expectation values
    at the same angles differ measurably from the exact subspace evolution."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    n, k, obj = constrained_workload
    # Modest mixer angles: the Clique mixer's spectral radius is O(n^2), so
    # Trotterization is only meaningful in the small-beta regime optimizers
    # actually visit for this mixer.
    angles = 0.1 * random_angles(3, rng=5)
    exact = simulate(angles, CliqueMixer(n, k), obj)
    approx1 = simulate(angles, trotter_clique_mixer(n, k, trotter_steps=1), obj)
    approx16 = simulate(angles, trotter_clique_mixer(n, k, trotter_steps=16), obj)
    err1 = np.linalg.norm(approx1.statevector - exact.statevector)
    err16 = np.linalg.norm(approx16.statevector - exact.statevector)
    print(
        f"\n  ablation clique n={n},k={k}: state error trotter1={err1:.4f}, trotter16={err16:.4f}; "
        f"<C> exact={exact.expectation():.4f}, trotter1={approx1.expectation():.4f}"
    )
    assert err1 > 1e-3                 # one Trotter step visibly distorts the state
    assert err16 < err1 / 2            # more steps converge toward the exact mixer
    assert abs(approx1.expectation() - exact.expectation()) > 1e-5


# ---------------------------------------------------------------------------
# Pre-computation reuse
# ---------------------------------------------------------------------------

def test_precompute_reuse_vs_recompute(benchmark, constrained_workload):
    """Reusing the cached eigendecomposition vs recomputing it for every evaluation."""
    n, k, obj = constrained_workload
    angles = random_angles(2, rng=6)
    mixer = CliqueMixer(n, k)  # pre-computed once, reused inside the benchmark loop

    reused = benchmark(lambda: simulate(angles, mixer, obj).expectation())

    recompute_stats = time_call(
        lambda: simulate(angles, CliqueMixer(n, k), obj).expectation(), repeats=3
    )
    reuse_stats = time_call(lambda: simulate(angles, mixer, obj).expectation(), repeats=3)
    print(
        f"\n  ablation precompute n={n},k={k}: reuse={reuse_stats['min']*1e3:.3f} ms, "
        f"recompute={recompute_stats['min']*1e3:.3f} ms"
    )
    # Rebuilding the eigendecomposition every call dominates the evaluation cost.
    assert reuse_stats["min"] * 3 < recompute_stats["min"]
    assert np.isfinite(reused)
