"""Batched vs scalar angle-evaluation throughput (the batching tentpole).

Heavy sweep workloads (grid search, random-restart seeding) hammer the
expectation-value call with many angle sets against one fixed problem.  The
batched engine evaluates M angle sets as one ``(dim, M)`` matrix — BLAS-3
GEMMs / batched transforms instead of M scalar evolutions — and this
benchmark records the speedup trajectory in ``BENCH_batched_eval.json`` at
the repo root so later PRs can track it.

The acceptance floor: at (n=12, p=2, M=256) on the transverse-field mixer the
batched path must be at least 3x the scalar loop's throughput.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench.timing import time_call
from repro.bench.workloads import figure4_graph
from repro.core import QAOAAnsatz
from repro.hilbert import state_matrix
from repro.mixers import grover_mixer, mixer_clique, transverse_field_mixer
from repro.problems.maxcut import maxcut_values

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_batched_eval.json"

# (label, mixer factory over n, n, p, M); the x/12/2/256 row carries the
# acceptance criterion, the others chart scaling in n, p and mixer type.
_CONFIGS = [
    ("x", lambda n: transverse_field_mixer(n), 10, 1, 64),
    ("x", lambda n: transverse_field_mixer(n), 12, 2, 256),
    ("x", lambda n: transverse_field_mixer(n), 8, 3, 128),
    ("grover", lambda n: grover_mixer(n), 12, 2, 256),
    ("clique", lambda n: mixer_clique(n, n // 2), 10, 2, 128),
]


def _measure(label: str, mixer_factory, n: int, p: int, M: int) -> dict:
    mixer = mixer_factory(n)
    if label == "clique":
        # constrained Dicke subspace: a synthetic objective over the C(n, k) states
        obj = np.random.default_rng(17).random(mixer.dim)
    else:
        obj = maxcut_values(figure4_graph(n), state_matrix(n))
    ansatz = QAOAAnsatz(obj, mixer, p)
    rng = np.random.default_rng(20230923 + n + p)
    angles = 2.0 * np.pi * rng.random((M, ansatz.num_angles))

    def scalar_loop():
        values = np.empty(M)
        for j in range(M):
            values[j] = ansatz.expectation(angles[j])
        return values

    def batched():
        return ansatz.expectation_batch(angles)

    # correctness first: the two paths must agree well below the 1e-10 gate
    mismatch = float(np.abs(scalar_loop() - batched()).max())
    assert mismatch <= 1e-10, f"batched/scalar disagree by {mismatch}"

    scalar_s = time_call(scalar_loop, repeats=3, warmup=1)["min"]
    batched_s = time_call(batched, repeats=3, warmup=1)["min"]
    return {
        "mixer": label,
        "n": n,
        "p": p,
        "M": M,
        "dim": ansatz.schedule.dim,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "scalar_evals_per_s": M / scalar_s,
        "batched_evals_per_s": M / batched_s,
        "speedup": scalar_s / batched_s,
        "max_abs_mismatch": mismatch,
    }


@pytest.mark.slow
def test_batched_throughput_and_record():
    records = [_measure(*config) for config in _CONFIGS]
    payload = {
        "benchmark": "batched_eval",
        "unit": "seconds (min of 3 after warmup)",
        "numpy": np.__version__,
        "records": records,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    gate = next(r for r in records if (r["mixer"], r["n"], r["p"], r["M"]) == ("x", 12, 2, 256))
    assert gate["speedup"] >= 3.0, (
        f"batched evaluation only {gate['speedup']:.2f}x over the scalar loop "
        f"at (n=12, p=2, M=256); acceptance requires >= 3x"
    )
