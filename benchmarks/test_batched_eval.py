"""Batched vs scalar angle-evaluation throughput (the batching tentpole).

Heavy sweep workloads (grid search, random-restart seeding) hammer the
expectation-value call with many angle sets against one fixed problem.  The
batched engine evaluates M angle sets as one ``(dim, M)`` matrix — BLAS-3
GEMMs / batched transforms instead of M scalar evolutions — and this
benchmark records the speedup trajectory in ``BENCH_batched_eval.json`` at
the repo root so later PRs can track it.

The acceptance floors: at (n=8, p=3, M=128) on the transverse-field mixer the
batched path must be at least 3x the scalar loop's throughput, and at
(n=12, p=2, M=256) at least 1.2x.  The gates were recalibrated when the
scalar entry points were collapsed into M=1 calls of the batched kernels
(the backend-shim PR): the scalar loop now rides the same GEMM kernels, so
at GEMM-dominated sizes the remaining batched win is batching efficiency
alone, while at overhead-dominated sizes it stays several-fold.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.backend import active_backend
from repro.bench.timing import merge_backend_records, time_call
from repro.bench.workloads import figure4_graph
from repro.core import QAOAAnsatz
from repro.hilbert import state_matrix
from repro.mixers import grover_mixer, mixer_clique, transverse_field_mixer
from repro.problems.maxcut import maxcut_values

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_batched_eval.json"

# (label, mixer factory over n, n, p, M); the x/8/3/128 and x/12/2/256 rows
# carry the acceptance criteria, the others chart scaling in n, p and mixer
# type.
_CONFIGS = [
    ("x", lambda n: transverse_field_mixer(n), 10, 1, 64),
    ("x", lambda n: transverse_field_mixer(n), 12, 2, 256),
    ("x", lambda n: transverse_field_mixer(n), 8, 3, 128),
    ("grover", lambda n: grover_mixer(n), 12, 2, 256),
    ("clique", lambda n: mixer_clique(n, n // 2), 10, 2, 128),
]


def _measure(label: str, mixer_factory, n: int, p: int, M: int) -> dict:
    mixer = mixer_factory(n)
    if label == "clique":
        # constrained Dicke subspace: a synthetic objective over the C(n, k) states
        obj = np.random.default_rng(17).random(mixer.dim)
    else:
        obj = maxcut_values(figure4_graph(n), state_matrix(n))
    ansatz = QAOAAnsatz(obj, mixer, p)
    rng = np.random.default_rng(20230923 + n + p)
    angles = 2.0 * np.pi * rng.random((M, ansatz.num_angles))

    def scalar_loop():
        values = np.empty(M)
        for j in range(M):
            values[j] = ansatz.expectation(angles[j])
        return values

    def batched():
        return ansatz.expectation_batch(angles)

    # correctness first: the two paths must agree well below the 1e-10 gate
    mismatch = float(np.abs(scalar_loop() - batched()).max())
    assert mismatch <= 1e-10, f"batched/scalar disagree by {mismatch}"

    scalar_s = time_call(scalar_loop, repeats=3, warmup=1)["min"]
    batched_s = time_call(batched, repeats=3, warmup=1)["min"]
    return {
        "mixer": label,
        "n": n,
        "p": p,
        "M": M,
        "dim": ansatz.schedule.dim,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "scalar_evals_per_s": M / scalar_s,
        "batched_evals_per_s": M / batched_s,
        "speedup": scalar_s / batched_s,
        "max_abs_mismatch": mismatch,
    }


def _prior_numpy_throughput(path, key_fields, rate_field):
    """Map of record key -> recorded numpy throughput from a prior BENCH file."""
    if not path.exists():
        return {}
    try:
        previous = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return {}
    return {
        tuple(record.get(f) for f in key_fields): record[rate_field]
        for record in previous.get("records", [])
        if record.get("backend", "numpy") == "numpy" and rate_field in record
    }


@pytest.mark.slow
def test_batched_throughput_and_record():
    backend = active_backend().name
    key_fields = ("mixer", "n", "p", "M")
    prior = _prior_numpy_throughput(_RESULT_PATH, key_fields, "batched_evals_per_s")
    records = [_measure(*config) for config in _CONFIGS]
    payload = {
        "benchmark": "batched_eval",
        "unit": "seconds (min of 3 after warmup)",
        "numpy": np.__version__,
    }
    merge_backend_records(_RESULT_PATH, payload, records, backend)

    # Two regimes, two floors.  Since the scalar collapse the scalar loop runs
    # the same batched kernels at M=1, so the large-n gate measures batching
    # efficiency on top of an already-GEMM-bound baseline; the small-n gate
    # keeps the several-fold per-call-overhead win on the record.
    for key, floor in ((("x", 8, 3, 128), 3.0), (("x", 12, 2, 256), 1.2)):
        gate = next(r for r in records if (r["mixer"], r["n"], r["p"], r["M"]) == key)
        assert gate["speedup"] >= floor, (
            f"batched evaluation only {gate['speedup']:.2f}x over the scalar loop "
            f"at {key}; acceptance requires >= {floor}x"
        )

    if backend == "numpy":
        # The backend shim must not tax the numpy path: each row keeps at
        # least 0.9x the throughput its previous numpy run recorded.  A
        # sub-0.9x first reading gets one re-measure — wall clock at the
        # ~10ms kernel scale swings past 10% under transient machine load.
        configs = {(c[0], c[2], c[3], c[4]): c for c in _CONFIGS}
        for record in records:
            key = tuple(record[f] for f in key_fields)
            if key in prior:
                ratio = record["batched_evals_per_s"] / prior[key]
                if ratio < 0.9:
                    retry = _measure(*configs[key])
                    ratio = max(ratio, retry["batched_evals_per_s"] / prior[key])
                assert ratio >= 0.9, (
                    f"numpy batched throughput regressed to {ratio:.2f}x the "
                    f"prior recording at {key}; acceptance requires >= 0.9x"
                )
