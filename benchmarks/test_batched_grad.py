"""Batched vs scalar adjoint-gradient throughput (the gradient tentpole).

Refinement workloads (random-restart BFGS, the dominant cost of Figs. 3 and
5) hammer the value-and-gradient call once per optimizer step per restart.
The batched adjoint engine evaluates M angle sets per call — one recorded
``(dim, M)`` forward pass plus one batched backward pass — and the vectorized
multi-start refiner advances all restarts in lock-step on it.  This benchmark
records both layers' speedups in ``BENCH_batched_grad.json`` at the repo root
so later PRs can track the trajectory.

The acceptance floor: a 64-restart adjoint refinement through the vectorized
multi-start engine must be at least 3x faster than the sequential per-seed
scipy BFGS loop on the gate configuration.  Kernel rows additionally chart
the raw value-and-gradient batching across mixer types.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.angles import local_minimize, multistart_minimize
from repro.backend import active_backend
from repro.bench.timing import merge_backend_records, time_call
from repro.bench.workloads import figure4_graph, is_paper_scale
from repro.core import QAOAAnsatz
from repro.hilbert import state_matrix
from repro.mixers import grover_mixer, mixer_clique, transverse_field_mixer
from repro.problems.maxcut import maxcut_values

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_batched_grad.json"

# (label, mixer factory over n, n, p, M) for the raw kernel rows.
_KERNEL_CONFIGS = [
    ("x", lambda n: transverse_field_mixer(n), 10, 2, 64),
    ("x", lambda n: transverse_field_mixer(n), 12, 2, 256),
    ("grover", lambda n: grover_mixer(n), 12, 2, 256),
    ("clique", lambda n: mixer_clique(n, n // 2), 10, 2, 128),
]


def _ansatz(label: str, mixer_factory, n: int, p: int) -> QAOAAnsatz:
    mixer = mixer_factory(n)
    if label == "clique":
        # constrained Dicke subspace: a synthetic objective over the C(n, k) states
        obj = np.random.default_rng(17).random(mixer.dim)
    else:
        obj = maxcut_values(figure4_graph(n), state_matrix(n))
    return QAOAAnsatz(obj, mixer, p)


def _measure_kernel(label: str, mixer_factory, n: int, p: int, M: int) -> dict:
    ansatz = _ansatz(label, mixer_factory, n, p)
    rng = np.random.default_rng(20230923 + n + p)
    angles = 2.0 * np.pi * rng.random((M, ansatz.num_angles))

    def scalar_loop():
        values = np.empty(M)
        grads = np.empty((M, ansatz.num_angles))
        for j in range(M):
            values[j], grads[j] = ansatz.value_and_gradient(angles[j])
        return values, grads

    def batched():
        return ansatz.value_and_gradient_batch(angles)

    # correctness first: the two paths must agree well below the 1e-10 gate
    sv, sg = scalar_loop()
    bv, bg = batched()
    mismatch = max(float(np.abs(sv - bv).max()), float(np.abs(sg - bg).max()))
    assert mismatch <= 1e-10, f"batched/scalar gradients disagree by {mismatch}"

    scalar_s = time_call(scalar_loop, repeats=3, warmup=1)["min"]
    batched_s = time_call(batched, repeats=3, warmup=1)["min"]
    return {
        "kind": "value_and_gradient",
        "mixer": label,
        "n": n,
        "p": p,
        "M": M,
        "dim": ansatz.schedule.dim,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
        "max_abs_mismatch": mismatch,
    }


def _measure_refinement(
    n: int, p: int, M: int, *, maxiter: int = 100, value_rtol: float = 0.0
) -> dict:
    ansatz = _ansatz("x", lambda q: transverse_field_mixer(q), n, p)
    rng = np.random.default_rng(20230923)
    seeds = 2.0 * np.pi * rng.random((M, ansatz.num_angles))

    def scipy_loop():
        return np.array(
            [local_minimize(ansatz, seeds[j], maxiter=maxiter).value for j in range(M)]
        )

    def vectorized():
        return multistart_minimize(ansatz, seeds, maxiter=maxiter).values

    scipy_values = scipy_loop()
    vec_values = vectorized()
    # Quality: the multi-start winner must match the scipy loop's winner.  On
    # deep landscapes (large p) both optimizers converge to genuine local
    # optima but the best-of-M can land in a slightly different basin, so
    # callers may allow a small relative slack there; the acceptance row stays
    # exact.
    best_gap = float(scipy_values.max() - vec_values.max())
    tolerance = max(1e-6, value_rtol * abs(float(scipy_values.max())))
    assert best_gap <= tolerance, (
        f"vectorized refinement lost {best_gap} off the best value "
        f"(allowed {tolerance})"
    )

    scipy_s = time_call(scipy_loop, repeats=2, warmup=0)["min"]
    vectorized_s = time_call(vectorized, repeats=2, warmup=0)["min"]
    return {
        "kind": "multistart_refinement",
        "mixer": "x",
        "n": n,
        "p": p,
        "M": M,
        "dim": ansatz.schedule.dim,
        "maxiter": maxiter,
        "scipy_loop_s": scipy_s,
        "vectorized_s": vectorized_s,
        "speedup": scipy_s / vectorized_s,
        "best_value_gap": best_gap,
    }


def _prior_numpy_seconds(path):
    """Map of record key -> recorded numpy batched seconds from a prior file."""
    if not path.exists():
        return {}
    try:
        previous = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return {}
    out = {}
    for record in previous.get("records", []):
        if record.get("backend", "numpy") != "numpy":
            continue
        seconds = record.get("batched_s", record.get("vectorized_s"))
        if seconds is not None:
            key = tuple(record.get(f) for f in ("kind", "mixer", "n", "p", "M"))
            out[key] = seconds
    return out


@pytest.mark.slow
def test_batched_gradient_throughput_and_record():
    backend = active_backend().name
    prior = _prior_numpy_seconds(_RESULT_PATH)
    records = [_measure_kernel(*config) for config in _KERNEL_CONFIGS]
    # The acceptance row: 64 random restarts refined end to end.  Paper scale
    # additionally charts a deeper circuit.
    records.append(_measure_refinement(10, 2, 64))
    if is_paper_scale():
        records.append(_measure_refinement(12, 4, 64, value_rtol=0.02))
    payload = {
        "benchmark": "batched_grad",
        "unit": "seconds (min over repeats after warmup)",
        "numpy": np.__version__,
    }
    merge_backend_records(_RESULT_PATH, payload, records, backend)

    if backend == "numpy":
        # The backend shim must not tax the numpy path: every batched row
        # keeps at least 0.9x its previously recorded numpy throughput.  A
        # sub-0.9x first reading gets one re-measure — wall clock at the
        # ~10ms kernel scale swings past 10% under transient machine load.
        kernel_configs = {
            ("value_and_gradient", c[0], c[2], c[3], c[4]): c for c in _KERNEL_CONFIGS
        }
        for record in records:
            key = tuple(record[f] for f in ("kind", "mixer", "n", "p", "M"))
            seconds = record.get("batched_s", record.get("vectorized_s"))
            if key in prior and seconds is not None:
                ratio = prior[key] / seconds
                if ratio < 0.9:
                    if key in kernel_configs:
                        retry = _measure_kernel(*kernel_configs[key])
                        seconds = retry["batched_s"]
                    else:
                        retry = _measure_refinement(key[2], key[3], key[4])
                        seconds = retry["vectorized_s"]
                    ratio = max(ratio, prior[key] / seconds)
                assert ratio >= 0.9, (
                    f"numpy batched throughput regressed to {ratio:.2f}x the "
                    f"prior recording at {key}; acceptance requires >= 0.9x"
                )

    gates = [r for r in records if r["kind"] == "multistart_refinement"]
    for gate in gates:
        assert gate["speedup"] >= 3.0, (
            f"vectorized 64-restart refinement only {gate['speedup']:.2f}x over the "
            f"sequential scipy loop at (n={gate['n']}, p={gate['p']}); "
            "acceptance requires >= 3x"
        )
