"""Experiment-runner sweep over a real figure workload (Fig. 4b grid).

Where ``tests/test_experiments.py`` exercises the orchestration machinery on
a shrunken Figure 2, this suite drives the runner end-to-end on the actual
quick-scale Fig. 4b timing grid: the sharded run store must contain one row
per grid point, agree with the direct ``run_figure4b`` decomposition, and
resume as a no-op once complete.
"""

from __future__ import annotations

from repro.bench.figures import figure4b_points
from repro.experiments import RunStore, enumerate_tasks, run_experiment


def test_runner_covers_fig4b_grid(tmp_path):
    overrides = {"repeats": 1}
    report = run_experiment(
        "fig4b", scale="quick", out_dir=tmp_path / "runs", workers=2, overrides=overrides
    )
    n, points = figure4b_points()
    assert report.total_tasks == len(points)
    assert report.executed == len(points) and report.complete

    rows = RunStore.open(report.directory).rows()
    assert [(row["simulator"], row["p"]) for row in rows] == points
    assert all(row["n"] == n and row["time_s"] > 0 for row in rows)

    # Resuming a complete sweep recomputes nothing.
    resumed = run_experiment(
        "fig4b", scale="quick", out_dir=tmp_path / "runs", workers=2, overrides=overrides
    )
    assert resumed.executed == 0 and resumed.skipped == len(points)


def test_grover_tasks_match_direct_rows(tmp_path):
    overrides = {"dense_qubits": [6], "large_qubits": [40], "p": 2, "repeats": 1}
    report = run_experiment(
        "grover", scale="quick", out_dir=tmp_path / "runs", workers=1, overrides=overrides
    )
    assert report.total_tasks == len(enumerate_tasks("grover", overrides)) == 2
    rows = RunStore.open(report.directory).rows()
    reps = {(row["representation"], row["n"]) for row in rows}
    assert reps == {("dense", 6), ("compressed", 6), ("compressed", 40)}
