"""Experiment-runner sweep over a real figure workload (Fig. 4b grid).

Where ``tests/test_experiments.py`` exercises the orchestration machinery on
a shrunken Figure 2, this suite drives the runner end-to-end on the actual
quick-scale Fig. 4b timing grid: the sharded run store must contain one row
per grid point, agree with the direct ``run_figure4b`` decomposition, and
resume as a no-op once complete.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.bench.figures import figure4b_points
from repro.experiments import RunStore, enumerate_tasks, run_experiment


def test_runner_covers_fig4b_grid(tmp_path):
    overrides = {"repeats": 1}
    report = run_experiment(
        "fig4b", scale="quick", out_dir=tmp_path / "runs", workers=2, overrides=overrides
    )
    n, points = figure4b_points()
    assert report.total_tasks == len(points)
    assert report.executed == len(points) and report.complete

    rows = RunStore.open(report.directory).rows()
    assert [(row["simulator"], row["p"]) for row in rows] == points
    assert all(row["n"] == n and row["time_s"] > 0 for row in rows)

    # Resuming a complete sweep recomputes nothing.
    resumed = run_experiment(
        "fig4b", scale="quick", out_dir=tmp_path / "runs", workers=2, overrides=overrides
    )
    assert resumed.executed == 0 and resumed.skipped == len(points)


def _run_shard(out_dir: str, shard_index: int, shard_count: int, barrier) -> None:
    barrier.wait()  # start both shard runners at the same instant
    run_experiment(
        "fig4b",
        scale="quick",
        out_dir=out_dir,
        workers=1,
        overrides={"repeats": 1},
        shard=(shard_index, shard_count),
    )


def test_simultaneous_shards_share_one_store(tmp_path):
    """Two shard runners writing one store at the same time lose nothing."""
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        pytest.skip("simultaneous-shard sweep needs the fork start method")
    out = tmp_path / "shared-runs"
    barrier = ctx.Barrier(2)
    procs = [
        ctx.Process(target=_run_shard, args=(str(out), i, 2, barrier)) for i in range(2)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=300)
    assert [proc.exitcode for proc in procs] == [0, 0]

    store = RunStore.open(out / "fig4b-quick")
    assert store.is_complete()
    assert (store.directory / "rows-shard-1-of-2.jsonl").exists()
    assert (store.directory / "rows-shard-2-of-2.jsonl").exists()

    serial = run_experiment(
        "fig4b", scale="quick", out_dir=tmp_path / "serial-runs", workers=1,
        overrides={"repeats": 1},
    )
    serial_rows = RunStore.open(serial.directory).rows()
    # Timing columns differ run to run; the grid and its identity columns must
    # match the single-writer reference exactly, in the same canonical order.
    key_cols = [
        {k: row[k] for k in ("simulator", "p", "n")} for row in store.rows()
    ]
    assert key_cols == [
        {k: row[k] for k in ("simulator", "p", "n")} for row in serial_rows
    ]


def test_grover_tasks_match_direct_rows(tmp_path):
    overrides = {"dense_qubits": [6], "large_qubits": [40], "p": 2, "repeats": 1}
    report = run_experiment(
        "grover", scale="quick", out_dir=tmp_path / "runs", workers=1, overrides=overrides
    )
    assert report.total_tasks == len(enumerate_tasks("grover", overrides)) == 2
    rows = RunStore.open(report.directory).rows()
    reps = {(row["representation"], row["n"]) for row in rows}
    assert reps == {("dense", 6), ("compressed", 6), ("compressed", 40)}
