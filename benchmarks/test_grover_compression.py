"""Sec. 2.4 — Grover-mixer value compression: dense vs compressed, and large n.

The paper's Grover-mixer fast path stores only the distinct objective values
and their degeneracies, enabling simulations up to n ≈ 100.  The benchmarks
check (a) the compressed path agrees with the dense simulator and beats it in
time at moderate n, and (b) a 100-qubit compressed simulation runs in
milliseconds when the spectrum is known analytically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.timing import time_call
from repro.bench.workloads import figure4_graph, is_paper_scale
from repro.core import QAOAAnsatz, random_angles
from repro.grover import (
    compress_objective,
    hamming_weight_spectrum,
    simulate_grover_compressed,
)
from repro.hilbert import state_matrix
from repro.mixers import grover_mixer
from repro.problems.maxcut import maxcut_values

_P = 4
_N_DENSE = 14 if is_paper_scale() else 10
_ANGLES = random_angles(_P, rng=9)


@pytest.fixture(scope="module")
def grover_workload():
    graph = figure4_graph(_N_DENSE)
    obj = maxcut_values(graph, state_matrix(_N_DENSE))
    return obj, compress_objective(obj)


def test_dense_grover_simulation(benchmark, grover_workload):
    """Dense Grover-mixer simulation (rank-one update on the full 2^n vector)."""
    obj, _ = grover_workload
    ansatz = QAOAAnsatz(obj, grover_mixer(_N_DENSE), _P)
    value = benchmark(lambda: ansatz.expectation(_ANGLES))
    assert 0 <= value <= obj.max()


def test_compressed_grover_simulation(benchmark, grover_workload):
    """Compressed simulation over the distinct-value classes only."""
    obj, spectrum = grover_workload
    value = benchmark(lambda: simulate_grover_compressed(_ANGLES, spectrum).expectation())
    # Agreement with the dense simulator.
    dense = QAOAAnsatz(obj, grover_mixer(_N_DENSE), _P).expectation(_ANGLES)
    assert np.isclose(value, dense, atol=1e-9)


def test_compressed_n100_simulation(benchmark):
    """A 100-qubit Grover-QAOA on an analytically-compressed spectrum."""
    spectrum = hamming_weight_spectrum(100, lambda w: float(min(w, 100 - w)))
    result = benchmark(lambda: simulate_grover_compressed(_ANGLES, spectrum))
    assert np.isclose(result.norm(), 1.0, atol=1e-9)
    assert result.spectrum.total == 2**100


def test_compression_speedup_and_agreement(benchmark, grover_workload):
    """Compressed representation is faster than dense at equal answers."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # shape-only entry
    obj, spectrum = grover_workload
    ansatz = QAOAAnsatz(obj, grover_mixer(_N_DENSE), _P)
    dense_stats = time_call(lambda: ansatz.expectation(_ANGLES), repeats=3)
    comp_stats = time_call(
        lambda: simulate_grover_compressed(_ANGLES, spectrum).expectation(), repeats=3
    )
    print()
    print(
        f"  grover n={_N_DENSE}: dense={dense_stats['min'] * 1e3:.3f} ms, "
        f"compressed={comp_stats['min'] * 1e3:.3f} ms, "
        f"distinct values={spectrum.num_distinct} of {spectrum.total}"
    )
    # The compressed state has far fewer amplitudes than the dense one ...
    assert spectrum.num_distinct < spectrum.total / 50
    # ... and is at least a few times faster to evolve.
    assert comp_stats["min"] * 3 < dense_stats["min"]
