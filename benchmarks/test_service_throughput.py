"""Solver-service throughput: coalesced batches vs a sequential solve() loop.

The service tentpole claims that a long-lived :class:`SolverService` turns M
concurrent same-``(problem, mixer, p)`` requests into (a) one warm setup —
problem regeneration, feasible space, mixer eigendecomposition — instead of
M, and (b) one batched multi-start GEMM instead of M scalar refinements.
This benchmark measures exactly that against the one-shot ``solve()`` loop a
client would otherwise run, on the constrained Dicke/clique configuration
where per-call setup (the eigendecomposition the paper calls out as the
n = 18 limiting factor) genuinely dominates.

Recorded into ``BENCH_service.json`` at the repo root: aggregate specs/s for
both paths, per-request p50/p95 latency through the async ``submit`` window,
and the result-cache hit speedup (a warm hit touches no simulator at all).
The acceptance gate is the M = 64 coalesced row: >= 3x the sequential loop.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import SolveSpec, solve
from repro.api.solver import clear_problem_memo
from repro.io.cache import ResultCache
from repro.service import SolverService

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

#: The shared-fingerprint workload: densest-subgraph on the C(11,5)=462-state
#: Dicke subspace with the diagonalized clique mixer, p=2, random restarts.
#: Every request differs only in its strategy seed.
_PROBLEM = dict(
    problem="densest_subgraph",
    n=11,
    problem_params={"k": 5},
    mixer="clique",
    strategy="random",
    strategy_params={"iters": 4},
    p=2,
)

_BATCH_SIZES = (16, 64)


def _specs(count: int) -> list[SolveSpec]:
    return [SolveSpec.build(**_PROBLEM, seed=seed) for seed in range(count)]


def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q))


def _measure_batch(count: int) -> dict:
    specs = _specs(count)

    # Sequential baseline: what M independent clients pay today.  The problem
    # memo is cleared first so the loop starts as cold as the service does;
    # it still re-derives the mixer eigendecomposition on every call, which
    # is the setup cost the warm pool exists to amortize.
    clear_problem_memo()
    seq_started = time.perf_counter()
    sequential = [solve(spec) for spec in specs]
    sequential_s = time.perf_counter() - seq_started

    # Coalesced service, timed cold: the one-time setup happens inside the
    # timed region, so the speedup is end-to-end honest.
    clear_problem_memo()
    service = SolverService(result_cache=None)
    svc_started = time.perf_counter()
    coalesced = service.solve_many(specs)
    service_s = time.perf_counter() - svc_started

    mismatch = max(
        abs(a.value - b.value) for a, b in zip(coalesced, sequential)
    )
    assert mismatch <= 1e-10, f"coalesced/sequential disagree by {mismatch}"
    assert service.coalesced_requests == count

    # Per-request latency through the async submit window: every client
    # arrives at once, so all of them ride one flush.
    latency_service = SolverService(result_cache=None, window_s=0.005, max_batch=count)
    latencies: list[float] = []

    async def _client(spec: SolveSpec) -> None:
        started = time.perf_counter()
        await latency_service.submit(spec)
        latencies.append(time.perf_counter() - started)

    async def _storm() -> None:
        await asyncio.gather(*(_client(spec) for spec in specs))

    asyncio.run(_storm())

    return {
        "M": count,
        "dim": 462,
        "sequential_s": sequential_s,
        "service_s": service_s,
        "sequential_specs_per_s": count / sequential_s,
        "service_specs_per_s": count / service_s,
        "speedup": sequential_s / service_s,
        "submit_p50_latency_s": _percentile(latencies, 50),
        "submit_p95_latency_s": _percentile(latencies, 95),
        "max_abs_mismatch": mismatch,
    }


def _measure_cache_hits(count: int) -> dict:
    specs = _specs(count)
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "results"
        clear_problem_memo()
        filler = SolverService(result_cache=ResultCache(cache_dir))
        cold_started = time.perf_counter()
        filler.solve_many(specs)
        cold_s = time.perf_counter() - cold_started

        reader = SolverService(result_cache=ResultCache(cache_dir))
        hit_started = time.perf_counter()
        hits = reader.solve_many(specs)
        hit_s = time.perf_counter() - hit_started

        assert all(result.cached for result in hits)
        assert reader.cache_hits == count
        # Zero simulator work on the warm path: the pool never built anything.
        assert len(reader.pool) == 0
    return {
        "M": count,
        "cold_s": cold_s,
        "hit_s": hit_s,
        "hit_specs_per_s": count / hit_s,
        "cache_hit_speedup": cold_s / hit_s,
    }


@pytest.mark.slow
def test_service_throughput_and_record():
    records = [_measure_batch(count) for count in _BATCH_SIZES]
    cache = _measure_cache_hits(_BATCH_SIZES[-1])
    payload = {
        "benchmark": "service_throughput",
        "workload": _PROBLEM,
        "unit": "seconds (single cold run per path)",
        "numpy": np.__version__,
        "records": records,
        "result_cache": cache,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    gate = next(record for record in records if record["M"] == 64)
    assert gate["speedup"] >= 3.0, (
        f"coalesced service only {gate['speedup']:.2f}x over the sequential "
        f"solve() loop at M=64; acceptance requires >= 3x"
    )
    assert cache["cache_hit_speedup"] >= 3.0, (
        f"warm result-cache hits only {cache['cache_hit_speedup']:.2f}x over "
        f"the cold solve; acceptance requires >= 3x"
    )
