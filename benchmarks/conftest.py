"""Shared fixtures for the benchmark suite.

Benchmarks default to scaled-down sizes so ``pytest benchmarks/
--benchmark-only`` completes in minutes on a laptop; set
``REPRO_BENCH_SCALE=paper`` to run the paper-sized sweeps (n = 12/14, p up to
10, larger ensembles).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workloads import figure4_graph, is_paper_scale
from repro.hilbert import state_matrix
from repro.problems.maxcut import maxcut_values


def pytest_report_header(config):
    scale = "paper" if is_paper_scale() else "quick"
    return f"repro benchmark scale: {scale} (set REPRO_BENCH_SCALE=paper for full size)"


@pytest.fixture(scope="session")
def fig4_scaling_qubits():
    """Qubit counts used by the Fig. 4a scaling benchmarks."""
    return [4, 6, 8, 10, 12] if is_paper_scale() else [4, 6, 8]


@pytest.fixture(scope="session")
def fig4b_setup():
    """(n, rounds) for the Fig. 4b round-scaling benchmarks."""
    if is_paper_scale():
        return 14, [1, 2, 4, 6, 8, 10]
    return 10, [1, 2, 4]


@pytest.fixture(scope="session")
def maxcut_workload():
    """A medium MaxCut workload shared by several benchmarks."""
    n = 12 if is_paper_scale() else 10
    graph = figure4_graph(n)
    obj = maxcut_values(graph, state_matrix(n))
    return n, graph, obj


@pytest.fixture(scope="session")
def angle_rng():
    return np.random.default_rng(20231117)
