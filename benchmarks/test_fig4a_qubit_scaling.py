"""Figure 4a — time and memory vs number of qubits (p = 1 MaxCut).

The paper's Figure 4a compares JuliQAOA against QAOA.jl and QAOAKit on a p = 1
MaxCut QAOA with the transverse-field mixer on G(n, 0.5) graphs, reporting CPU
time and memory as n grows.  The reproduced shape: the direct simulator is
fastest and lightest at every size, the gate-by-gate circuit simulator
("QAOA.jl-like") sits in the middle, the basis-decomposed circuit simulator
("QAOAKit-like") is slower still, and the dense-unitary backend blows up in
both time and memory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    DecomposedCircuitQAOA,
    DenseUnitaryQAOA,
    DirectQAOA,
    GateCircuitQAOA,
)
from repro.bench.timing import time_call
from repro.bench.workloads import figure4_graph
from repro.hpc.memory import measure_peak_allocation, simulator_memory_estimate

_P = 1
_ANGLES = np.array([0.42, 0.83])

_SIMULATORS = {
    "direct": DirectQAOA,
    "circuit-gate": GateCircuitQAOA,
    "circuit-decomposed": DecomposedCircuitQAOA,
}


@pytest.mark.parametrize("name", list(_SIMULATORS))
def test_time_scaling_in_qubits(benchmark, name, fig4_scaling_qubits):
    """Benchmark one p=1 expectation evaluation at the largest swept size."""
    n = max(fig4_scaling_qubits)
    simulator = _SIMULATORS[name](figure4_graph(n), _P)
    value = benchmark(lambda: simulator.expectation(_ANGLES))
    assert 0.0 <= value <= simulator.obj_vals.max() + 1e-9


def test_dense_baseline_smallest_size(benchmark):
    """The dense-unitary (worst-case) baseline, restricted to a small n."""
    simulator = DenseUnitaryQAOA(figure4_graph(8), _P)
    value = benchmark(lambda: simulator.expectation(_ANGLES))
    assert value >= 0.0


def test_fig4a_time_and_memory_shape(benchmark, fig4_scaling_qubits):
    """Regenerate the Fig. 4a series and assert the orderings the paper reports."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # shape-only entry
    rows = []
    for n in fig4_scaling_qubits:
        graph = figure4_graph(n)
        for name, cls in _SIMULATORS.items():
            simulator = cls(graph, _P)
            stats = time_call(lambda: simulator.expectation(_ANGLES), repeats=3, warmup=1)
            _, peak = measure_peak_allocation(lambda: simulator.expectation(_ANGLES))
            rows.append({"simulator": name, "n": n, "time_s": stats["min"], "peak_bytes": peak})
    print()
    for row in rows:
        print(
            f"  fig4a {row['simulator']:<20s} n={row['n']:<3d} "
            f"time={row['time_s'] * 1e3:8.3f} ms  peak={row['peak_bytes'] / 1024:10.1f} KiB"
        )

    largest = max(fig4_scaling_qubits)
    by_sim = {
        name: {r["n"]: r for r in rows if r["simulator"] == name} for name in _SIMULATORS
    }
    # Time ordering at the largest size: direct < gate-by-gate < decomposed.
    assert by_sim["direct"][largest]["time_s"] < by_sim["circuit-gate"][largest]["time_s"]
    assert (
        by_sim["circuit-gate"][largest]["time_s"]
        < by_sim["circuit-decomposed"][largest]["time_s"]
    )
    # The gap between direct and the circuit baselines grows with n.
    smallest = min(fig4_scaling_qubits)
    gap_small = (
        by_sim["circuit-decomposed"][smallest]["time_s"] / by_sim["direct"][smallest]["time_s"]
    )
    gap_large = (
        by_sim["circuit-decomposed"][largest]["time_s"] / by_sim["direct"][largest]["time_s"]
    )
    assert gap_large > 1.0
    # Memory: the direct simulator allocates the least at the largest size.
    assert (
        by_sim["direct"][largest]["peak_bytes"]
        <= by_sim["circuit-decomposed"][largest]["peak_bytes"]
    )
    # Analytic estimates separate the dense-unitary strategy by orders of magnitude.
    assert simulator_memory_estimate(largest, kind="dense") > 50 * simulator_memory_estimate(
        largest, kind="direct"
    )
