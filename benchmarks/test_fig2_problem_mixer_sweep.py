"""Figure 2 — four problem/mixer pairs: per-layer simulation cost and quality-vs-p shape.

The paper's Figure 2 shows the approximation quality achieved by the iterative
angle finder improving with the number of rounds for MaxCut + Transverse
Field, 3-SAT + Grover, Densest-k-Subgraph + Clique and Max-k-Vertex-Cover +
Ring (all n = 12, G(n, 0.5), k = 6, clause density 6).

Here each case's ``simulate`` call is benchmarked (the inner-loop cost that
made the n = 12, p ≤ 10 sweep feasible on a laptop), and the quality-vs-p
*shape* is asserted: quality is monotone non-decreasing in p and reaches a
substantial fraction of the optimum for every problem/mixer pair.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import series_from_results
from repro.angles import find_angles
from repro.bench.workloads import figure2_cases, is_paper_scale
from repro.core import random_angles, simulate

_CASES = figure2_cases(n=12 if is_paper_scale() else 8)
_P_BENCH = 3
_P_SWEEP = 10 if is_paper_scale() else 3


@pytest.mark.parametrize("case", _CASES, ids=[c.label for c in _CASES])
def test_simulation_cost_per_case(benchmark, case):
    """Time one p=3 QAOA expectation evaluation for each Figure 2 case."""
    angles = random_angles(_P_BENCH, rng=2)

    def run():
        return simulate(angles, case.mixer, case.cost).expectation()

    value = benchmark(run)
    assert case.cost.worst - 1e-9 <= value <= case.cost.optimum + 1e-9


@pytest.mark.parametrize("case", _CASES, ids=[c.label for c in _CASES])
def test_quality_improves_with_rounds(benchmark, case):
    """Regenerate one Figure 2 line: quality vs p for this problem/mixer pair."""

    def sweep():
        return find_angles(_P_SWEEP, case.mixer, case.cost, n_hops=2, n_starts_p1=1, rng=0)

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = series_from_results(
        results, optimum=case.cost.optimum, worst=case.cost.worst, label=case.label
    )
    # Shape checks from the paper's Figure 2: monotone improvement with p, a
    # strict gain over the p = 1 point, and a sensible final quality.  (The
    # absolute ratios at the scaled-down quick profile are below the paper's
    # n = 12, p = 10 values; REPRO_BENCH_SCALE=paper reproduces those.)
    assert series.is_monotone(tol=1e-6), f"{case.label} quality decreased with p"
    assert series.final() > series.values[0] + 1e-3 or series.values[0] > 0.95, (
        f"{case.label} did not improve beyond its p=1 value"
    )
    assert series.final() > 0.55, f"{case.label} final ratio {series.final():.3f} too low"
    rows = [
        {"case": case.label, "p": p, "approx_ratio": v}
        for p, v in zip(series.rounds, series.values)
    ]
    print()
    for row in rows:
        print(f"  fig2 {row['case']:<28s} p={row['p']:<2d} ratio={row['approx_ratio']:.4f}")
