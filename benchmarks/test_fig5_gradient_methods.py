"""Figure 5 — BFGS local-minimum search with finite-difference vs adjoint (AD) gradients.

The paper's Figure 5 times BFGS local-minimum searches on random n = 14 MaxCut
instances, with the gradient supplied either by finite differences or by
Enzyme's automatic differentiation, as a function of p.  AD needs O(1)
expectation evaluations per gradient versus O(p) for finite differences, so
the wall-clock gap grows linearly with p.

Here the adjoint analytic gradient plays the role of AD (it computes the same
thing).  The benchmark times a full BFGS run per gradient method; the shape
test asserts the O(p) separation in both evaluation counts and time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.angles.bfgs import local_minimize
from repro.bench.timing import time_call
from repro.bench.workloads import figure5_instances, is_paper_scale
from repro.core import QAOAAnsatz
from repro.mixers import transverse_field_mixer

_ROUNDS = [1, 2, 4, 6, 8, 10] if is_paper_scale() else [1, 2, 4]
_P_BENCH = max(_ROUNDS)
_MAXITER = 30

_PROBLEMS = figure5_instances(num_instances=3 if not is_paper_scale() else 20)
_MIXER = transverse_field_mixer(_PROBLEMS[0].n)


@pytest.mark.parametrize("method", ["adjoint", "finite"])
def test_bfgs_time_at_max_rounds(benchmark, method):
    """Benchmark one BFGS local search at the largest p per gradient method."""
    cost = _PROBLEMS[0].objective_values()
    rng = np.random.default_rng(0)
    x0 = 2 * np.pi * rng.random(2 * _P_BENCH)

    def run():
        ansatz = QAOAAnsatz(cost, _MIXER, _P_BENCH)
        return local_minimize(ansatz, x0, gradient=method, maxiter=_MAXITER)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.value <= cost.max() + 1e-9


def test_fig5_gradient_separation_shape(benchmark):
    """The O(p) separation between finite differences and the adjoint gradient."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # shape-only entry
    rng = np.random.default_rng(1)
    rows = []
    for p in _ROUNDS:
        for method in ("adjoint", "finite"):
            times, passes, values = [], [], []
            for problem in _PROBLEMS:
                cost = problem.objective_values()
                x0 = 2 * np.pi * rng.random(2 * p)
                ansatz = QAOAAnsatz(cost, _MIXER, p)
                stats = time_call(
                    lambda a=ansatz: local_minimize(a, x0, gradient=method, maxiter=_MAXITER),
                    repeats=1,
                    warmup=0,
                )
                times.append(stats["min"])
                passes.append(ansatz.counter.forward_passes)
            rows.append(
                {
                    "method": method,
                    "p": p,
                    "mean_time_s": float(np.mean(times)),
                    "mean_forward_passes": float(np.mean(passes)),
                }
            )
    print()
    for row in rows:
        print(
            f"  fig5 {row['method']:<8s} p={row['p']:<3d} "
            f"time={row['mean_time_s'] * 1e3:9.2f} ms  "
            f"forward_passes={row['mean_forward_passes']:8.1f}"
        )

    by = {(r["method"], r["p"]): r for r in rows}
    p_lo, p_hi = min(_ROUNDS), max(_ROUNDS)
    # Finite differences needs more state evolutions at every p, and the ratio
    # grows roughly linearly with p (the paper's O(p) claim).
    for p in _ROUNDS:
        assert (
            by[("finite", p)]["mean_forward_passes"]
            > by[("adjoint", p)]["mean_forward_passes"]
        )
    ratio_lo = (
        by[("finite", p_lo)]["mean_forward_passes"]
        / by[("adjoint", p_lo)]["mean_forward_passes"]
    )
    ratio_hi = (
        by[("finite", p_hi)]["mean_forward_passes"]
        / by[("adjoint", p_hi)]["mean_forward_passes"]
    )
    assert ratio_hi > 1.5 * ratio_lo
    # Wall-clock time follows the same trend at the largest p.
    assert by[("finite", p_hi)]["mean_time_s"] > by[("adjoint", p_hi)]["mean_time_s"]
