"""Figure 3 — angle-finding strategy comparison on a MaxCut ensemble.

The paper compares its extrapolated-basinhopping strategy against the random
local-minima search and median-angles approaches of Lotshaw et al., averaged
over 50 random n = 12 MaxCut instances up to p = 10.  The headline shape: the
extrapolated strategy matches the baselines at small p and dominates as p
grows (where random restarts start missing the good basin).

The benchmark times one instance's worth of each strategy at the largest p,
and the shape assertions check the ensemble means.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import normalized_approximation_ratio
from repro.angles import find_angles, find_angles_random
from repro.angles.median import evaluate_median_angles, median_angles
from repro.bench.workloads import figure3_instances, is_paper_scale
from repro.core import QAOAAnsatz
from repro.mixers import transverse_field_mixer

_P_MAX = 10 if is_paper_scale() else 3
_NUM_INSTANCES = 50 if is_paper_scale() else 4
_RANDOM_ITERS = 100 if is_paper_scale() else 6

_PROBLEMS = figure3_instances(num_instances=_NUM_INSTANCES)
_MIXER = transverse_field_mixer(_PROBLEMS[0].n)


def _ratio(problem, value):
    vals = problem.objective_values()
    return normalized_approximation_ratio(value, float(vals.max()), float(vals.min()))


@pytest.fixture(scope="module")
def strategy_means():
    """Mean approximation ratio per strategy at p = _P_MAX over the ensemble."""
    iterative, random_restart, per_instance_best, ansatze = [], [], [], []
    for idx, problem in enumerate(_PROBLEMS):
        cost = problem.objective_values()
        results = find_angles(_P_MAX, _MIXER, cost, n_hops=2, n_starts_p1=1, rng=idx)
        iterative.append(_ratio(problem, results[_P_MAX].value))

        ansatz = QAOAAnsatz(cost, _MIXER, _P_MAX)
        ansatze.append(ansatz)
        best = find_angles_random(ansatz, iters=_RANDOM_ITERS, rng=1000 + idx)
        per_instance_best.append(best)
        random_restart.append(_ratio(problem, best.value))

    medians = median_angles(per_instance_best)
    median_ratios = [
        _ratio(problem, evaluate_median_angles(ansatz, medians).value)
        for problem, ansatz in zip(_PROBLEMS, ansatze)
    ]
    return {
        "extrapolated_basinhopping": float(np.mean(iterative)),
        "random_restart": float(np.mean(random_restart)),
        "median_angles": float(np.mean(median_ratios)),
    }


def test_benchmark_extrapolated_basinhopping(benchmark):
    """Time the iterative (extrapolated basinhopping) search on one instance."""
    cost = _PROBLEMS[0].objective_values()
    result = benchmark.pedantic(
        lambda: find_angles(_P_MAX, _MIXER, cost, n_hops=2, n_starts_p1=1, rng=0),
        rounds=1,
        iterations=1,
    )
    assert result[_P_MAX].value <= cost.max() + 1e-9


def test_benchmark_random_restart(benchmark):
    """Time the random local-minima search on one instance."""
    cost = _PROBLEMS[0].objective_values()
    ansatz = QAOAAnsatz(cost, _MIXER, _P_MAX)
    result = benchmark.pedantic(
        lambda: find_angles_random(ansatz, iters=_RANDOM_ITERS, rng=0),
        rounds=1,
        iterations=1,
    )
    assert result.value <= cost.max() + 1e-9


def test_strategy_ordering_at_large_p(benchmark, strategy_means):
    """The paper's Fig. 3 shape: extrapolated basinhopping is the best strategy
    at the largest round count, and median angles do not beat per-instance search."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # shape-only entry
    means = strategy_means
    print()
    for name, value in means.items():
        print(f"  fig3 p={_P_MAX} {name:<26s} mean ratio = {value:.4f}")
    assert means["extrapolated_basinhopping"] >= means["median_angles"] - 0.02
    assert means["extrapolated_basinhopping"] >= means["random_restart"] - 0.02
    assert means["random_restart"] >= means["median_angles"] - 0.05
    assert means["extrapolated_basinhopping"] > 0.8
