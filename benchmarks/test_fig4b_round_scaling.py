"""Figure 4b — time vs number of rounds (fixed-n MaxCut).

The paper's Figure 4b fixes n = 14 and sweeps the round count p, showing CPU
time per evaluation growing (roughly linearly) with p for every simulator,
with JuliQAOA keeping a constant-factor lead over QAOA.jl and QAOAKit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DecomposedCircuitQAOA, DirectQAOA, GateCircuitQAOA
from repro.bench.timing import time_call
from repro.bench.workloads import figure4_graph
from repro.core import random_angles

_SIMULATORS = {
    "direct": DirectQAOA,
    "circuit-gate": GateCircuitQAOA,
    "circuit-decomposed": DecomposedCircuitQAOA,
}


@pytest.mark.parametrize("name", list(_SIMULATORS))
def test_time_at_max_rounds(benchmark, name, fig4b_setup):
    """Benchmark one expectation evaluation at the largest round count."""
    n, rounds = fig4b_setup
    p = max(rounds)
    simulator = _SIMULATORS[name](figure4_graph(n), p)
    angles = random_angles(p, rng=3)
    value = benchmark(lambda: simulator.expectation(angles))
    assert 0.0 <= value <= simulator.obj_vals.max() + 1e-9


def test_fig4b_round_scaling_shape(benchmark, fig4b_setup):
    """Regenerate the Fig. 4b series and check linear-in-p scaling and ordering."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # shape-only entry
    n, rounds = fig4b_setup
    graph = figure4_graph(n)
    rows = []
    for name, cls in _SIMULATORS.items():
        for p in rounds:
            simulator = cls(graph, p)
            angles = random_angles(p, rng=3)
            stats = time_call(lambda: simulator.expectation(angles), repeats=3, warmup=1)
            rows.append({"simulator": name, "p": p, "time_s": stats["min"]})
    print()
    for row in rows:
        print(
            f"  fig4b {row['simulator']:<20s} p={row['p']:<3d} time={row['time_s'] * 1e3:8.3f} ms"
        )

    by_sim = {
        name: {r["p"]: r["time_s"] for r in rows if r["simulator"] == name} for name in _SIMULATORS
    }
    p_lo, p_hi = min(rounds), max(rounds)

    for name, times in by_sim.items():
        # Time grows with p ...
        assert times[p_hi] > times[p_lo]
        # ... and roughly linearly: going from p_lo to p_hi costs at most ~2.5x
        # the proportional increase (generous slack for constant overheads).
        assert times[p_hi] / times[p_lo] < 2.5 * (p_hi / p_lo)

    # The direct simulator stays fastest at every round count.
    for p in rounds:
        assert by_sim["direct"][p] <= by_sim["circuit-gate"][p]
        assert by_sim["direct"][p] <= by_sim["circuit-decomposed"][p]
