"""Public-API surface checks and end-to-end integration tests."""

from __future__ import annotations

import numpy as np

import repro
from repro import (
    DickeSpace,
    QAOAAnsatz,
    erdos_renyi,
    get_exp_value,
    grover_mixer,
    maxcut_values,
    mixer_clique,
    mixer_x,
    simulate,
    state_matrix,
)
from repro.analysis import normalized_approximation_ratio
from repro.angles import find_angles
from repro.grover import compress_objective, simulate_grover_compressed
from repro.problems import densest_subgraph, make_problem


class TestPublicAPI:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_listing1_quickstart(self):
        """The paper's Listing 1 translated to this package's API."""
        n = 6
        graph = erdos_renyi(n, 0.5, seed=0)
        obj_vals = [repro.maxcut(graph, x) for x in repro.states(n)]
        mixer = mixer_x([1], n)
        p = 3
        rng = np.random.default_rng(0)
        angles = rng.random(2 * p)
        res = simulate(angles, mixer, np.array(obj_vals))
        exp_value = get_exp_value(res)
        assert 0 <= exp_value <= max(obj_vals)

    def test_listing2_constrained_setup(self, tmp_path):
        """The paper's Listing 2: Densest-k-Subgraph with a cached Clique mixer."""
        n, k = 6, 3
        graph = erdos_renyi(n, 0.5, seed=0)
        obj_vals = [densest_subgraph(graph, x) for x in repro.dicke_states(n, k)]
        mixer_path = tmp_path / "clique.npz"
        mixer = mixer_clique(n, k, file=mixer_path)
        assert mixer_path.exists()
        res = simulate(np.full(4, 0.3), mixer, np.array(obj_vals))
        assert np.isclose(res.norm(), 1.0)

    def test_listing3_find_angles(self, tmp_path):
        """The paper's Listing 3: find_angles with a checkpoint file."""
        n = 5
        graph = erdos_renyi(n, 0.5, seed=1)
        obj_vals = maxcut_values(graph, state_matrix(n))
        mixer = mixer_x([1], n)
        results = find_angles(
            2, mixer, obj_vals, file=tmp_path / "angles.json", n_hops=1, n_starts_p1=1, rng=0
        )
        assert (tmp_path / "angles.json").exists()
        assert results[2].value >= results[1].value - 1e-6


class TestEndToEndWorkflows:
    def test_full_unconstrained_study(self):
        """Pre-compute -> iterative angle finding -> simulate at the best angles."""
        problem = make_problem("maxcut", 6, seed=3)
        obj = problem.objective_values()
        mixer = mixer_x([1], 6)
        results = find_angles(3, mixer, obj, n_hops=2, n_starts_p1=1, rng=1)
        best = results[3]
        res = simulate(best.angles, mixer, obj)
        ratio = normalized_approximation_ratio(res.expectation(), obj.max(), obj.min())
        assert ratio > 0.8
        assert res.ground_state_probability() > 1 / 64  # better than uniform guessing

    def test_full_constrained_study(self):
        """Constrained QAOA never leaves the feasible subspace and improves with p."""
        problem = make_problem("densest_subgraph", 6, seed=4, k=3)
        obj = problem.objective_values()
        mixer = mixer_clique(6, 3)
        results = find_angles(2, mixer, obj, n_hops=2, n_starts_p1=1, rng=2)
        assert results[2].value >= results[1].value - 1e-6
        res = simulate(results[2].angles, mixer, obj)
        assert res.statevector.shape == (20,)
        ratio = normalized_approximation_ratio(res.expectation(), obj.max(), obj.min())
        assert ratio > 0.6

    def test_grover_compressed_angle_finding(self):
        """Angle finding directly in the compressed Grover representation."""
        from scipy.optimize import minimize

        problem = make_problem("ksat", 6, seed=5, clause_density=4.0)
        obj = problem.objective_values()
        spectrum = compress_objective(obj)

        from repro.grover import grover_value_and_gradient

        def loss(angles):
            value, grad = grover_value_and_gradient(angles, spectrum)
            return -value, -grad

        x0 = np.full(4, 0.2)
        res = minimize(loss, x0, jac=True, method="BFGS")
        optimized = simulate_grover_compressed(res.x, spectrum)
        baseline = simulate_grover_compressed(x0, spectrum)
        assert optimized.expectation() >= baseline.expectation()
        # Cross-check the optimized value against the dense simulator.
        dense = simulate(res.x, grover_mixer(6), obj)
        assert np.isclose(dense.expectation(), optimized.expectation(), atol=1e-9)

    def test_warm_start_changes_outcome(self):
        """A warm-start initial state biases the QAOA toward its neighbourhood."""
        problem = make_problem("maxcut", 6, seed=6)
        obj = problem.objective_values()
        mixer = mixer_x([1], 6)
        best_label = int(problem.optimal_states()[0])
        warm = np.zeros(64, dtype=complex)
        warm[best_label] = 1.0
        angles = np.full(2, 0.05)  # nearly-identity QAOA
        warm_res = simulate(angles, mixer, obj, initial_state=warm)
        cold_res = simulate(angles, mixer, obj)
        assert warm_res.ground_state_probability() > cold_res.ground_state_probability()

    def test_qaoa_ansatz_and_problem_agree(self):
        problem = make_problem("vertex_cover", 6, seed=7, k=3)
        from repro.mixers import mixer_ring

        ansatz = QAOAAnsatz(problem.objective_values(), mixer_ring(6, 3), 2)
        angles = ansatz.random_angles(0)
        assert np.isclose(ansatz.expectation(angles), ansatz.simulate(angles).expectation())
        assert problem.space.dim == ansatz.schedule.dim
