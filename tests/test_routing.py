"""Tests for execution-path routing: `solve()` picking dense/sharded/compressed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SolveSpec, select_execution_path
from repro.api.routing import (
    ExecutionPlan,
    clear_routing_memo,
    env_shards,
    memoized_structure,
    spectrum_for,
)
from repro.api.solver import QAOASolver
from repro.cli import main as cli_main


@pytest.fixture(autouse=True)
def _fresh_memos(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    clear_routing_memo()
    yield
    clear_routing_memo()


def _spec(**overrides):
    base = dict(problem="hamming", n=16, mixer="grover", strategy="random", p=1)
    base.update(overrides)
    return SolveSpec.build(**base)


class TestEnvShards:
    def test_unset_and_disabled(self, monkeypatch):
        assert env_shards() is None
        monkeypatch.setenv("REPRO_SHARDS", "1")
        assert env_shards() is None
        monkeypatch.setenv("REPRO_SHARDS", "0")
        assert env_shards() is None

    def test_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert env_shards() == 4

    def test_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "many")
        with pytest.raises(ValueError, match="REPRO_SHARDS"):
            env_shards()


class TestSelectExecutionPath:
    # (spec overrides, forced shards, expected path)
    MATRIX = [
        # Small dims always stay dense, whatever the mixer.
        (dict(problem="maxcut", n=8, mixer="x"), None, "dense"),
        (dict(problem="maxcut", n=8, mixer="grover"), None, "dense"),
        # Grover + degenerate spectrum above the dense comfort zone compresses;
        # the analytic Hamming-weight spectrum works at any n.
        (dict(problem="hamming", n=16, mixer="grover"), None, "compressed"),
        (dict(problem="hamming", n=100, mixer="grover"), None, "compressed"),
        # maxcut values collapse onto few distinct cuts, so it compresses too
        # once the dimension is large enough (streamed spectrum discovery).
        (dict(problem="maxcut", n=14, mixer="grover"), None, "compressed"),
        # Degenerate spectrum but a non-grover mixer: no fair sampling, dense.
        (dict(problem="hamming", n=16, mixer="x"), None, "dense"),
        # Per-round-rebuilding strategies pin the dense path.
        (dict(problem="hamming", n=16, mixer="grover", strategy="iterative"), None, "dense"),
        (dict(problem="hamming", n=16, mixer="grover", strategy="fourier"), None, "dense"),
        # Explicit shard requests engage sharding for supported mixers...
        (dict(problem="maxcut", n=8, mixer="x"), 2, "sharded"),
        (dict(problem="maxcut", n=8, mixer="multiangle_x"), 4, "sharded"),
        (dict(problem="maxcut", n=9, mixer="grover"), 3, "sharded"),
        # ...but fall back (with a reason) when the mixer can't shard.
        (dict(problem="maxcut", n=8, mixer="xy"), 2, "dense"),
        # WHT mixers need power-of-two shard counts.
        (dict(problem="maxcut", n=8, mixer="x"), 3, "dense"),
        # Dicke subspaces shard with the Grover mixer only.
        (
            dict(problem="densest_subgraph", n=8, mixer="x", problem_params={"k": 4}),
            2,
            "dense",
        ),
        (
            dict(problem="densest_subgraph", n=8, mixer="grover", problem_params={"k": 4}),
            2,
            "sharded",
        ),
    ]

    @pytest.mark.parametrize("overrides,shards,expected", MATRIX)
    def test_matrix(self, overrides, shards, expected):
        plan = select_execution_path(_spec(**overrides), shards=shards)
        assert plan.path == expected, plan.describe()
        if expected == "sharded":
            assert plan.shards >= 2
        if expected == "compressed":
            assert plan.distinct is not None
            assert plan.distinct * 8 <= plan.dim

    def test_env_knob_routes_sharded(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        plan = select_execution_path(_spec(problem="maxcut", n=8, mixer="x"))
        assert plan.path == "sharded" and plan.shards == 2

    def test_explicit_shards_override_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        plan = select_execution_path(_spec(problem="maxcut", n=8, mixer="x"), shards=4)
        assert plan.shards == 4

    def test_compressed_needs_enough_degeneracy(self):
        # maxcut with random weights: essentially all values distinct, so
        # the 8x advantage test fails and the solve stays dense.
        plan = select_execution_path(
            _spec(problem="qubo", n=13, mixer="grover")
        )
        assert plan.path == "dense", plan.describe()

    def test_auto_sharding_above_the_ceiling(self):
        # n=25 crosses SHARDED_AUTO_DIM; check the decision only (never built).
        plan = select_execution_path(
            _spec(problem="qubo", n=25, mixer="x")
        )
        assert plan.path == "sharded"
        assert plan.shards & (plan.shards - 1) == 0

    def test_describe_mentions_the_numbers(self):
        plan = select_execution_path(_spec())
        text = plan.describe()
        assert "compressed" in text and "dim=" in text and "distinct=" in text

    def test_structure_dim_never_materialized(self):
        structure = memoized_structure(_spec(n=100).problem)
        assert structure.dim == 1 << 100

    def test_spectrum_memoized_including_negative(self):
        spec = _spec(problem="qubo", n=8)
        first = spectrum_for(spec.problem)
        assert first is spectrum_for(spec.problem)


class TestSolveAcrossEngines:
    """solve() results agree with the dense path wherever dense is feasible."""

    def test_engine_agreement_at_identical_angles(self):
        spec = _spec(n=10, p=2)
        dim = 1 << 10
        dense = QAOASolver(spec, plan=ExecutionPlan("dense", "forced", dim))
        compressed = QAOASolver(spec, plan=ExecutionPlan("compressed", "forced", dim))
        sharded = QAOASolver(
            spec, plan=ExecutionPlan("sharded", "forced", dim, shards=4)
        )
        try:
            angles = 2 * np.pi * np.random.default_rng(9).random((4, 4))
            reference = dense.ansatz.expectation_batch(angles)
            np.testing.assert_allclose(
                compressed.ansatz.expectation_batch(angles), reference, rtol=0, atol=1e-10
            )
            np.testing.assert_allclose(
                sharded.ansatz.expectation_batch(angles), reference, rtol=0, atol=1e-10
            )
            _, grad_ref = dense.ansatz.value_and_gradient_batch(angles)
            _, grad_c = compressed.ansatz.value_and_gradient_batch(angles)
            _, grad_s = sharded.ansatz.value_and_gradient_batch(angles)
            np.testing.assert_allclose(grad_c, grad_ref, rtol=0, atol=1e-10)
            np.testing.assert_allclose(grad_s, grad_ref, rtol=0, atol=1e-10)
        finally:
            sharded.close()

    def test_full_solve_values_agree(self):
        spec = _spec(n=10, p=1, strategy="grid")
        dim = 1 << 10
        results = {}
        for path, plan in [
            ("dense", ExecutionPlan("dense", "forced", dim)),
            ("compressed", ExecutionPlan("compressed", "forced", dim)),
            ("sharded", ExecutionPlan("sharded", "forced", dim, shards=2)),
        ]:
            solver = QAOASolver(spec, plan=plan)
            try:
                results[path] = solver.run()
            finally:
                solver.close()
        dense = results["dense"]
        for path in ("compressed", "sharded"):
            other = results[path]
            assert other.execution == path
            assert abs(other.value - dense.value) < 1e-10
            assert other.optimum == dense.optimum
            np.testing.assert_allclose(other.angles, dense.angles, rtol=0, atol=1e-12)

    def test_auto_routed_compressed_solve(self):
        from repro.api.solver import solve

        result = solve(_spec(n=60, strategy="random", p=1))
        assert result.execution == "compressed"
        assert result.optimum == 900.0  # w (n - w) at w = 30
        assert 0.0 < result.value <= result.optimum
        assert "execution" in result.to_row()

    def test_result_row_roundtrip_keeps_execution(self):
        from repro.api.solver import SolveResult, solve

        spec = _spec(n=16, strategy="random", p=1)
        result = solve(spec)
        row = result.to_row()
        rebuilt = SolveResult.from_row(spec, row)
        assert rebuilt.execution == result.execution == "compressed"

    def test_sharded_solver_close_is_safe_to_repeat(self):
        spec = _spec(problem="maxcut", n=8, mixer="x", strategy="random", p=1)
        solver = QAOASolver(
            spec, plan=ExecutionPlan("sharded", "forced", 1 << 8, shards=2)
        )
        solver.run()
        solver.close()
        solver.close()


class TestWarmPoolRouting:
    def test_fingerprint_depends_on_execution_plan(self, monkeypatch):
        from repro.service.pools import pool_fingerprint

        spec = _spec(problem="maxcut", n=8, mixer="x")
        dense_fp = pool_fingerprint(spec)
        monkeypatch.setenv("REPRO_SHARDS", "2")
        assert pool_fingerprint(spec) != dense_fp

    def test_pool_holds_and_closes_nondense_entries(self, monkeypatch):
        from repro.service.pools import WarmPool

        pool = WarmPool(max_entries=2)
        compressed_entry = pool.entry_for(_spec(n=16))
        assert compressed_entry.plan.path == "compressed"
        assert compressed_entry.problem is None
        assert compressed_entry.estimated_bytes > 0

        monkeypatch.setenv("REPRO_SHARDS", "2")
        sharded_spec = _spec(problem="maxcut", n=8, mixer="x")
        sharded_entry = pool.entry_for(sharded_spec)
        assert sharded_entry.plan.path == "sharded"
        result = sharded_entry.solver_for(sharded_spec).run()
        assert result.execution == "sharded"
        pool.clear()
        assert sharded_entry.ansatz.executor._closed

    def test_eviction_closes_sharded_workers(self, monkeypatch):
        from repro.service.pools import WarmPool

        monkeypatch.setenv("REPRO_SHARDS", "2")
        pool = WarmPool(max_entries=1)
        first = pool.entry_for(_spec(problem="maxcut", n=8, mixer="x"))
        pool.entry_for(_spec(problem="maxcut", n=9, mixer="x"))
        assert first.ansatz.executor._closed
        pool.clear()


class TestExplainCli:
    def test_explain_prints_the_path(self, capsys):
        code = cli_main(
            [
                "solve",
                "--problem",
                "hamming",
                "--n",
                "16",
                "--mixer",
                "grover",
                "--strategy",
                "random",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "execution path: compressed" in out
        assert "distinct=" in out
        assert "engine=compressed" in out

    def test_explain_dense_small(self, capsys):
        code = cli_main(
            ["solve", "--problem", "maxcut", "--n", "6", "--explain"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "execution path: dense" in out

    def test_forced_shards_flag(self, capsys):
        code = cli_main(
            [
                "solve",
                "--problem",
                "maxcut",
                "--n",
                "8",
                "--shards",
                "2",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "execution path: sharded (dim=256, shards=2)" in out
        assert "engine=sharded" in out
