"""The pluggable array-backend shim: resolution, primitives, torch equivalence.

Three layers of coverage:

* the shim itself — registry errors follow the sorted-choices convention,
  ``REPRO_BACKEND`` resolution warns-and-falls-back like ``REPRO_WORKERS``,
  dtypes stay pinned and numpy round-trips are exact;
* the numpy backend's primitives against raw numpy (matmul/einsum/tensordot
  plus the derived real-GEMM / Walsh–Hadamard helpers);
* numpy-vs-torch equivalence at ``<= 1e-10`` on the batched kernels and one
  end-to-end ``solve()`` per mixer family — skipped automatically where torch
  is not installed (the CI backend matrix installs CPU wheels and runs them).
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.api import SolveSpec
from repro.backend import (
    BACKEND_NAMES,
    ArrayBackend,
    BackendUnavailableError,
    NumpyBackend,
    active_backend,
    backend_from_env,
    backend_info,
    get_backend,
    set_active_backend,
    use_backend,
)
from repro.core import BatchedWorkspace, QAOAAnsatz, qaoa_value_and_gradient_batch
from repro.mixers import (
    MultiAngleXMixer,
    grover_mixer,
    mixer_clique,
    transverse_field_mixer,
)
from repro.mixers.xmixer import _hadamard_factors, walsh_hadamard_transform

HAS_TORCH = importlib.util.find_spec("torch") is not None


def _backend_available(name: str) -> bool:
    try:
        get_backend(name)
        return True
    except BackendUnavailableError:
        return False


# ---------------------------------------------------------------------------
# shim: registry, env resolution, dtype policy
# ---------------------------------------------------------------------------

class TestBackendRegistry:
    def test_backend_names_sorted_and_complete(self):
        assert BACKEND_NAMES == ("cupy", "numpy", "torch")

    def test_get_backend_numpy(self):
        backend = get_backend("numpy")
        assert isinstance(backend, NumpyBackend)
        assert backend.name == "numpy"
        assert backend.device == "cpu"
        assert backend.xp is np

    def test_get_backend_normalizes_case(self):
        assert isinstance(get_backend("  NumPy "), NumpyBackend)

    def test_unknown_backend_raises_sorted_choices(self):
        with pytest.raises(ValueError, match=r"unknown array backend 'jax'"):
            get_backend("jax")
        with pytest.raises(ValueError, match=r"\['cupy', 'numpy', 'torch'\]"):
            get_backend("jax")

    def test_unavailable_backend_raises_typed_error(self):
        missing = [n for n in BACKEND_NAMES if not _backend_available(n)]
        if not missing:
            pytest.skip("every registered backend is installed here")
        with pytest.raises(BackendUnavailableError):
            get_backend(missing[0])

    def test_active_backend_is_cached(self):
        assert active_backend() is active_backend()

    def test_set_active_backend_rejects_junk(self):
        with pytest.raises(TypeError):
            set_active_backend(42)

    def test_use_backend_restores_previous(self):
        before = active_backend()
        with use_backend("numpy") as backend:
            assert isinstance(backend, NumpyBackend)
            assert active_backend() is backend
        assert active_backend() is before

    def test_backend_info_shape(self):
        info = backend_info()
        assert info["backend"] in BACKEND_NAMES
        assert info["complex_dtype"] == "complex128"
        assert info["real_dtype"] == "float64"
        assert set(info["available"]) == set(BACKEND_NAMES)
        assert info["available"]["numpy"] is True

    def test_dtype_policy_pinned(self):
        backend = get_backend("numpy")
        assert backend.complex_dtype == np.complex128
        assert backend.real_dtype == np.float64
        assert backend.empty((3, 2)).dtype == np.complex128
        assert backend.empty(4, dtype=np.float64).dtype == np.float64

    def test_abstract_backend_not_instantiable(self):
        with pytest.raises(TypeError):
            ArrayBackend()


class TestEnvResolution:
    def test_unset_env_gives_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert isinstance(backend_from_env(), NumpyBackend)

    def test_explicit_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert isinstance(backend_from_env(), NumpyBackend)

    def test_invalid_value_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fortran")
        with pytest.warns(RuntimeWarning, match="ignoring invalid REPRO_BACKEND"):
            backend = backend_from_env()
        assert isinstance(backend, NumpyBackend)

    @pytest.mark.skipif(HAS_TORCH, reason="torch is installed; fallback path untestable")
    def test_uninstalled_backend_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "torch")
        with pytest.warns(RuntimeWarning, match="falling back to numpy"):
            backend = backend_from_env()
        assert isinstance(backend, NumpyBackend)

    def test_import_repro_never_crashes_on_bad_env(self):
        # A fresh interpreter with a junk REPRO_BACKEND must import fine.
        code = (
            "import os, warnings\n"
            "os.environ['REPRO_BACKEND'] = 'not-a-backend'\n"
            "with warnings.catch_warnings(record=True) as caught:\n"
            "    warnings.simplefilter('always')\n"
            "    import repro\n"
            "assert any('REPRO_BACKEND' in str(w.message) for w in caught), caught\n"
            "assert repro.active_backend().name == 'numpy'\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)


# ---------------------------------------------------------------------------
# numpy backend primitives vs raw numpy
# ---------------------------------------------------------------------------

class TestNumpyPrimitives:
    def setup_method(self):
        self.backend = get_backend("numpy")
        self.rng = np.random.default_rng(7)

    def _complex(self, *shape):
        return self.rng.standard_normal(shape) + 1j * self.rng.standard_normal(shape)

    def test_roundtrip_is_identity(self):
        x = self._complex(5, 3)
        assert self.backend.asarray(x) is x
        assert self.backend.to_numpy(x) is x

    def test_asarray_dtype_conversion(self):
        x = np.arange(4)
        converted = self.backend.asarray(x, dtype=np.complex128)
        assert converted.dtype == np.complex128
        np.testing.assert_array_equal(self.backend.to_numpy(converted).real, x)

    def test_matmul_matches_numpy(self):
        a = self._complex(6, 6)
        b = self._complex(6, 4)
        np.testing.assert_allclose(self.backend.matmul(a, b), a @ b, rtol=0, atol=1e-13)

    def test_matmul_out(self):
        a = self.rng.standard_normal((5, 5))
        b = self.rng.standard_normal((5, 3))
        out = np.empty((5, 3))
        result = self.backend.matmul(a, b, out=out)
        assert result is out
        np.testing.assert_allclose(out, a @ b, rtol=0, atol=1e-13)

    def test_einsum_matches_numpy(self):
        a = self.rng.standard_normal((8, 4))
        b = self.rng.standard_normal((8, 4))
        np.testing.assert_allclose(
            self.backend.einsum("dm,dm->m", a, b),
            np.einsum("dm,dm->m", a, b),
            rtol=0,
            atol=1e-13,
        )

    def test_tensordot_matches_numpy(self):
        a = self._complex(2, 2, 2, 2)
        b = self._complex(2, 2, 2)
        expected = np.tensordot(a, b, axes=([2, 3], [0, 1]))
        np.testing.assert_allclose(
            self.backend.tensordot(a, b, axes=([2, 3], [0, 1])), expected, atol=1e-13
        )

    def test_real_gemm_matches_complex_product(self):
        factor = self.rng.standard_normal((6, 6))
        src = np.ascontiguousarray(self._complex(6, 3))
        out = np.empty((6, 3), dtype=np.complex128)
        self.backend.real_gemm(factor, src, out)
        np.testing.assert_allclose(out, factor @ src, rtol=0, atol=1e-12)

    def test_wht_gemm_matches_butterfly(self):
        n = 6
        dim = 1 << n
        src = np.ascontiguousarray(self._complex(dim, 5))
        via = np.empty_like(src)
        dst = np.empty_like(src)
        h_hi, h_lo = _hadamard_factors(n)
        self.backend.wht_gemm(src, via, dst, h_hi, h_lo)
        expected = walsh_hadamard_transform(src) * (2.0 ** (n / 2.0))  # unnormalized
        np.testing.assert_allclose(dst, expected, rtol=0, atol=1e-10)


# ---------------------------------------------------------------------------
# numpy-vs-torch equivalence (runs under the CI backend matrix)
# ---------------------------------------------------------------------------

_MIXER_FACTORIES = {
    "x": lambda: transverse_field_mixer(6),
    "grover": lambda: grover_mixer(6),
    "clique": lambda: mixer_clique(8, 4),
    "multiangle": lambda: MultiAngleXMixer(5, [(i,) for i in range(5)]),
}


@pytest.mark.skipif(not HAS_TORCH, reason="torch not installed")
class TestTorchEquivalence:
    ATOL = 1e-10

    def _run_on(self, backend_name, kernel):
        """Build fresh components under ``backend_name`` and run ``kernel``."""
        backend = (
            get_backend("torch", device="cpu")
            if backend_name == "torch"
            else get_backend(backend_name)
        )
        return kernel(backend)

    @pytest.mark.parametrize("family", sorted(_MIXER_FACTORIES))
    def test_apply_batch_equivalence(self, family):
        factory = _MIXER_FACTORIES[family]
        M = 7
        probe = factory()
        rng = np.random.default_rng(11)
        Psi = rng.standard_normal((probe.dim, M)) + 1j * rng.standard_normal((probe.dim, M))
        Psi /= np.linalg.norm(Psi, axis=0, keepdims=True)
        Psi = np.ascontiguousarray(Psi)
        if isinstance(probe, MultiAngleXMixer):
            betas = rng.random((probe.num_angles, M))
        else:
            betas = rng.random(M)

        def kernel(backend):
            mixer = factory()
            mixer.backend = backend
            workspace = BatchedWorkspace(mixer.dim, M, backend=backend)
            out = np.empty_like(Psi)
            mixer.apply_batch(Psi.copy(), betas, out=out, workspace=workspace)
            return out

        np.testing.assert_allclose(
            self._run_on("numpy", kernel),
            self._run_on("torch", kernel),
            rtol=0,
            atol=self.ATOL,
        )

    @pytest.mark.parametrize("family", sorted(_MIXER_FACTORIES))
    def test_apply_hamiltonian_batch_equivalence(self, family):
        factory = _MIXER_FACTORIES[family]
        M = 5
        probe = factory()
        rng = np.random.default_rng(13)
        Psi = rng.standard_normal((probe.dim, M)) + 1j * rng.standard_normal((probe.dim, M))
        Psi = np.ascontiguousarray(Psi)

        def kernel(backend):
            mixer = factory()
            mixer.backend = backend
            workspace = BatchedWorkspace(mixer.dim, M, backend=backend)
            out = np.empty_like(Psi)
            mixer.apply_hamiltonian_batch(Psi.copy(), out=out, workspace=workspace)
            return out

        np.testing.assert_allclose(
            self._run_on("numpy", kernel),
            self._run_on("torch", kernel),
            rtol=0,
            atol=self.ATOL,
        )

    def test_value_and_gradient_batch_equivalence(self):
        obj = np.random.default_rng(3).random(1 << 7)
        angles = 2.0 * np.pi * np.random.default_rng(5).random((9, 4))

        def kernel(backend):
            mixer = transverse_field_mixer(7)
            mixer.backend = backend
            workspace = BatchedWorkspace(mixer.dim, 9, backend=backend)
            return qaoa_value_and_gradient_batch(
                angles, mixer, obj, p=2, workspace=workspace
            )

        np_values, np_grads = self._run_on("numpy", kernel)
        t_values, t_grads = self._run_on("torch", kernel)
        np.testing.assert_allclose(np_values, t_values, rtol=0, atol=self.ATOL)
        np.testing.assert_allclose(np_grads, t_grads, rtol=0, atol=self.ATOL)

    @pytest.mark.parametrize(
        "problem,n,mixer",
        [
            ("maxcut", 6, "x"),
            ("maxcut", 6, "grover"),
            ("densest_subgraph", 6, "clique"),  # clique needs the Dicke space
            ("maxcut", 5, "multiangle"),
        ],
    )
    def test_solve_end_to_end_equivalence(self, problem, n, mixer):
        spec = SolveSpec.build(
            problem=problem,
            n=n,
            problem_seed=2,
            mixer=mixer,
            strategy="random",
            strategy_params={"iters": 6, "maxiter": 60},
            p=1,
            seed=0,
        )
        results = {}
        for name in ("numpy", "torch"):
            backend = (
                get_backend("torch", device="cpu") if name == "torch" else get_backend(name)
            )
            with use_backend(backend):
                repro.api.solver.clear_problem_memo()
                results[name] = repro.QAOASolver(spec).run()
        # Identical seeds drive identical restarts; sub-ulp kernel differences
        # can nudge BFGS line searches, so the converged values get a slightly
        # wider gate than the raw kernels do.
        assert abs(results["numpy"].value - results["torch"].value) <= 1e-8
        # The hard <= 1e-10 equivalence: re-evaluating each backend's angles on
        # the numpy reference reproduces its reported value.
        with use_backend("numpy"):
            repro.api.solver.clear_problem_memo()
            ansatz = repro.QAOASolver(spec).ansatz
            for result in results.values():
                assert abs(ansatz.expectation(result.angles) - result.value) <= self.ATOL

    def test_ansatz_expectation_equivalence(self):
        obj = np.random.default_rng(23).random(1 << 8)
        angles = 2.0 * np.pi * np.random.default_rng(29).random((16, 6))

        values = {}
        for name in ("numpy", "torch"):
            backend = (
                get_backend("torch", device="cpu") if name == "torch" else get_backend(name)
            )
            ansatz = QAOAAnsatz(obj, transverse_field_mixer(8), 3, backend=backend)
            values[name] = ansatz.expectation_batch(angles)
        np.testing.assert_allclose(
            values["numpy"], values["torch"], rtol=0, atol=self.ATOL
        )
