"""Anytime portfolio subsystem: budgets, incumbent boards, racing, deadlines.

The load-bearing properties:

* **cooperative cancellation** — a budgeted strategy interrupted mid-search
  returns a *valid* best-so-far result (value really is the expectation at the
  returned angles) with a strictly improving incumbent trail, never an
  exception;
* **zero-slack floor** — even an already-expired budget scores at least the
  seed angles, so every deadline returns something usable;
* **determinism** — racer ``i`` of a seeded race is bit-identical to the same
  strategy run standalone with :func:`racer_rng`, and the winner is picked by
  value and racer index, never by thread timing;
* **service deadlines** — ``deadline_ms`` flows through HTTP into a batch
  budget, timed-out rows are reported (and never cached), and ``/stats``
  counts met/missed deadlines.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

from repro.api import SolveSpec, run_strategy, solve
from repro.api.solver import QAOASolver, SolveResult
from repro.core.ansatz import QAOAAnsatz
from repro.mixers import mixer_x
from repro.portfolio import (
    Budget,
    IncumbentBoard,
    PortfolioResult,
    race_portfolio,
    racer_rng,
)
from repro.problems import make_problem
from repro.service import SolverService
from repro.service.server import run_server

CHEAP_RACERS = [
    {"name": "multistart", "params": {"iters": 2, "maxiter": 30}},
    {"name": "random", "params": {"iters": 2, "maxiter": 30, "vectorized": False}},
]


@pytest.fixture(scope="module")
def ansatz() -> QAOAAnsatz:
    problem = make_problem("maxcut", 6, seed=2)
    return QAOAAnsatz.from_problem(problem, mixer_x([1], 6), 2)


def _spec(seed=0, **strategy_params):
    return SolveSpec.build(
        problem="maxcut",
        n=6,
        mixer="x",
        strategy="random",
        strategy_params={"iters": 4, **strategy_params},
        p=2,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Budget
# ---------------------------------------------------------------------------


class TestBudget:
    def test_no_deadline_never_exhausts(self):
        budget = Budget(None)
        assert budget.remaining() == float("inf")
        assert not budget.expired()
        assert not budget.exhausted()

    def test_deadline_expires(self):
        budget = Budget(0.01)
        assert budget.remaining() <= 0.01
        time.sleep(0.02)
        assert budget.expired() and budget.exhausted()

    def test_zero_deadline_is_immediately_exhausted(self):
        assert Budget(0.0).exhausted()

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            Budget(-1.0)

    def test_cancel_exhausts_without_expiring(self):
        budget = Budget(None)
        budget.cancel()
        assert budget.cancelled() and budget.exhausted() and not budget.expired()

    def test_child_inherits_deadline_but_cancels_independently(self):
        parent = Budget(60.0)
        child = parent.child()
        assert child.remaining() <= 60.0
        child.cancel()
        assert child.exhausted() and not parent.exhausted()
        other = parent.child()
        parent.cancel()
        assert other.exhausted()


# ---------------------------------------------------------------------------
# IncumbentBoard
# ---------------------------------------------------------------------------


class TestIncumbentBoard:
    def test_trail_is_strictly_monotone(self):
        board = IncumbentBoard(maximize=True)
        angles = np.zeros(2)
        assert board.publish(1.0, angles, source="a")
        assert not board.publish(0.5, angles, source="a")
        assert board.publish(2.0, angles, source="b")
        # fp-noise within rtol of the incumbent is rejected, not churned
        assert not board.publish(2.0 + 1e-13, angles, source="a")
        values = [event["value"] for event in board.trail()]
        assert values == [1.0, 2.0]
        assert board.value() == 2.0

    def test_minimize_direction(self):
        board = IncumbentBoard(maximize=False)
        board.publish(5.0, np.zeros(2), source="a")
        assert not board.publish(6.0, np.zeros(2), source="a")
        assert board.publish(4.0, np.zeros(2), source="b")
        assert board.value() == 4.0

    def test_best_returns_published_angles_and_source(self):
        board = IncumbentBoard(maximize=True)
        board.publish(3.0, np.array([0.1, 0.2]), source="1:random")
        value, angles, source = board.best()
        assert value == 3.0 and source == "1:random"
        np.testing.assert_array_equal(angles, [0.1, 0.2])

    def test_done_only_at_known_optimum(self):
        board = IncumbentBoard(maximize=True, optimum=10.0)
        board.publish(9.0, np.zeros(2), source="a")
        assert not board.done()
        board.publish(10.0, np.zeros(2), source="a")
        assert board.done()
        assert not IncumbentBoard(maximize=True).done()  # no optimum known


# ---------------------------------------------------------------------------
# Budgeted strategies
# ---------------------------------------------------------------------------


class TestBudgetedStrategies:
    def test_interrupted_mid_bfgs_returns_valid_monotone_incumbents(self, ansatz):
        """A strategy cut off mid-refinement yields a scored best-so-far
        result and a strictly improving trail, not an exception."""
        trail = []

        def record(value, angles):
            trail.append((float(value), np.array(angles)))

        result = run_strategy(
            "random",
            ansatz,
            rng=3,
            iters=50,
            maxiter=200,
            vectorized=False,
            budget=Budget(0.05),
            on_incumbent=record,
        )
        assert result.timed_out
        assert result.evaluations > 0
        assert np.isfinite(result.value)
        assert ansatz.expectation(result.angles) == pytest.approx(result.value, abs=1e-8)
        values = [value for value, _ in trail]
        assert values == sorted(values) and len(set(values)) == len(values)
        # every published incumbent is a real (value, angles) pair
        for value, angles in trail:
            assert ansatz.expectation(angles) == pytest.approx(value, abs=1e-8)
        # the final result is at least as good as every published incumbent
        # (the interrupted refinement's best point may beat the last callback)
        assert result.value >= max(values) - 1e-10

    @pytest.mark.parametrize(
        "name,params",
        [
            ("multistart", {"iters": 4, "maxiter": 50}),
            ("random", {"iters": 4, "maxiter": 50, "vectorized": False}),
            ("grid", {"resolution": 6}),
            ("basinhop", {"n_hops": 3, "maxiter": 50}),
            ("iterative", {"n_hops": 1, "n_starts_p1": 2, "maxiter": 50}),
        ],
    )
    def test_zero_slack_budget_returns_seed_scored_best(self, ansatz, name, params):
        """An already-expired budget still evaluates at least once."""
        result = run_strategy(name, ansatz, rng=0, budget=Budget(0.0), **params)
        assert result.timed_out
        assert result.evaluations > 0
        assert result.angles.shape == (ansatz.num_angles,)
        assert ansatz.expectation(result.angles) == pytest.approx(result.value, abs=1e-8)

    def test_without_budget_results_are_unchanged(self, ansatz):
        plain = run_strategy("random", ansatz, rng=1, iters=3, maxiter=30)
        roomy = run_strategy(
            "random", ansatz, rng=1, iters=3, maxiter=30, budget=Budget(None)
        )
        assert not plain.timed_out and not roomy.timed_out
        np.testing.assert_array_equal(plain.angles, roomy.angles)
        assert plain.value == roomy.value
        assert plain.evaluations == roomy.evaluations


# ---------------------------------------------------------------------------
# Racing
# ---------------------------------------------------------------------------


class TestRace:
    def test_winner_deterministic_under_fixed_seed(self, ansatz):
        first = race_portfolio(ansatz, racers=CHEAP_RACERS, rng=11)
        second = race_portfolio(ansatz, racers=CHEAP_RACERS, rng=11)
        assert isinstance(first, PortfolioResult)
        assert first.winner == second.winner
        assert first.result.value == second.result.value
        np.testing.assert_array_equal(first.result.angles, second.result.angles)
        assert first.result.evaluations == second.result.evaluations

    def test_racer_matches_standalone_run_bit_for_bit(self, ansatz):
        outcome = race_portfolio(ansatz, racers=CHEAP_RACERS, rng=11)
        winner = outcome.winner
        spec = CHEAP_RACERS[winner]
        standalone = run_strategy(
            spec["name"], ansatz, rng=racer_rng(11, winner), **spec["params"]
        )
        assert standalone.value == outcome.result.value
        np.testing.assert_array_equal(standalone.angles, outcome.result.angles)

    def test_zero_slack_deadline_still_returns_a_result(self, ansatz):
        outcome = race_portfolio(ansatz, racers=CHEAP_RACERS, rng=0, deadline_s=1e-6)
        assert outcome.result.timed_out
        assert np.isfinite(outcome.result.value)
        assert ansatz.expectation(outcome.result.angles) == pytest.approx(
            outcome.result.value, abs=1e-8
        )

    def test_trail_is_monotone_and_reports_are_complete(self, ansatz):
        outcome = race_portfolio(ansatz, racers=CHEAP_RACERS, rng=5)
        values = [event["value"] for event in outcome.trail]
        assert values and values == sorted(values)
        assert len(outcome.racers) == len(CHEAP_RACERS)
        for index, report in enumerate(outcome.racers):
            assert report["racer"] == index
            assert report["finished"] and report["value"] is not None
        # the portfolio returns the best racer final
        assert outcome.result.value == max(r["value"] for r in outcome.racers)

    def test_race_finishing_inside_deadline_is_not_timed_out(self, ansatz):
        """Laggard cancellation is a success, not a deadline truncation."""
        outcome = race_portfolio(ansatz, racers=CHEAP_RACERS, rng=2, deadline_s=60.0)
        assert not outcome.result.timed_out

    def test_validation_errors(self, ansatz):
        with pytest.raises(ValueError, match="at least one racer"):
            race_portfolio(ansatz, racers=[])
        with pytest.raises(ValueError, match="cannot race itself"):
            race_portfolio(ansatz, racers=[{"name": "portfolio"}])
        with pytest.raises(ValueError, match="no 'name'"):
            race_portfolio(ansatz, racers=[{"params": {}}])

    def test_registered_strategy_carries_trail_history(self, ansatz):
        result = run_strategy(
            "portfolio", ansatz, rng=7, racers=CHEAP_RACERS, deadline_s=30.0
        )
        assert result.strategy == "portfolio"
        trail = result.history[-1]["trail"]
        assert trail and all({"t", "value", "source"} <= set(e) for e in trail)


# ---------------------------------------------------------------------------
# Solver timeouts
# ---------------------------------------------------------------------------


class TestSolveTimeout:
    def test_timeout_reports_best_so_far(self):
        spec = _spec(0, iters=200, maxiter=300, vectorized=False)
        result = QAOASolver(spec).run(timeout_s=0.05)
        assert result.timed_out
        assert result.evaluations > 0
        assert result.wall_time_s > 0
        assert np.isfinite(result.value)
        row = result.to_row()
        assert row["timed_out"] is True
        assert row["wall_time_s"] > 0 and row["evaluations"] > 0

    def test_solve_facade_accepts_timeout(self):
        result = solve(_spec(0), timeout_s=30.0)
        assert not result.timed_out
        assert result.to_row()["timed_out"] is False

    def test_row_round_trip_preserves_flags(self):
        spec = _spec(1)
        result = solve(spec)
        row = result.to_row()
        back = SolveResult.from_row(spec, row, cached=True)
        assert back.cached and back.timed_out == result.timed_out
        assert back.wall_time_s == row["wall_time_s"]
        assert back.evaluations == row["evaluations"]
        override = SolveResult.from_row(spec, row, cached=True, wall_time_s=0.5)
        assert override.wall_time_s == 0.5


# ---------------------------------------------------------------------------
# Service deadlines
# ---------------------------------------------------------------------------


class TestServiceDeadlines:
    def test_missed_deadline_counts_and_reports(self):
        service = SolverService(result_cache=None)
        result = service.solve(
            _spec(0, iters=200, maxiter=300, vectorized=False), deadline_s=0.02
        )
        assert result.timed_out
        stats = service.stats()
        assert stats["deadline_requests"] == 1
        assert stats["deadlines_missed"] == 1 and stats["deadlines_met"] == 0
        assert stats["median_deadline_slack_s"] < 0.02

    def test_met_deadline_counts_with_positive_slack(self):
        service = SolverService(result_cache=None)
        result = service.solve(_spec(0), deadline_s=60.0)
        assert not result.timed_out
        stats = service.stats()
        assert stats["deadlines_met"] == 1 and stats["deadlines_missed"] == 0
        assert stats["median_deadline_slack_s"] > 0

    def test_no_deadline_leaves_counters_untouched(self):
        service = SolverService(result_cache=None)
        service.solve(_spec(0))
        stats = service.stats()
        assert stats["deadline_requests"] == 0
        assert stats["median_deadline_slack_s"] is None

    def test_timed_out_results_are_never_cached(self, tmp_path):
        from repro.io.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        service = SolverService(result_cache=cache)
        slow = _spec(0, iters=200, maxiter=300, vectorized=False)
        timed = service.solve(slow, deadline_s=0.02)
        assert timed.timed_out
        assert cache.get(slow) is None
        fresh = service.solve(slow)
        assert not fresh.timed_out and not fresh.cached
        assert cache.get(slow) is not None
        hit = service.solve(slow)
        assert hit.cached and hit.value == fresh.value

    def test_batch_shares_one_budget(self):
        service = SolverService(result_cache=None)
        specs = [
            _spec(seed, iters=200, maxiter=300, vectorized=False) for seed in range(3)
        ]
        results = service.solve_many(specs, 0.05)
        assert all(r.timed_out for r in results)
        assert all(r.evaluations > 0 for r in results)
        stats = service.stats()
        assert stats["deadline_requests"] == 3 and stats["deadlines_missed"] == 3


async def _http(host, port, method, path, payload=None):
    reader, writer = await asyncio.open_connection(host, port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("ascii")
    writer.write(head + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header, _, content = raw.partition(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    return status, json.loads(content) if content else None


class TestServerDeadlines:
    PORT = 18657

    def _run(self, coro_fn):
        async def wrapper():
            service = SolverService(result_cache=None, window_s=0.01)
            ready = asyncio.Event()
            task = asyncio.create_task(
                run_server(service, host="127.0.0.1", port=self.PORT, ready=ready, log=None)
            )
            await asyncio.wait_for(ready.wait(), timeout=5)
            try:
                return await coro_fn(service)
            finally:
                task.cancel()

        return asyncio.run(wrapper())

    def test_deadline_ms_round_trip_and_stats(self):
        async def scenario(service):
            spec = _spec(0, iters=200, maxiter=300, vectorized=False)
            status, row = await _http(
                "127.0.0.1", self.PORT, "POST", "/solve",
                {"spec": spec.to_dict(), "deadline_ms": 20},
            )
            assert status == 200
            assert row["timed_out"] is True and row["evaluations"] > 0

            status, stats = await _http("127.0.0.1", self.PORT, "GET", "/stats")
            assert status == 200
            assert stats["deadline_requests"] == 1 and stats["deadlines_missed"] == 1
            assert stats["median_deadline_slack_s"] is not None

        self._run(scenario)

    def test_invalid_deadline_ms_is_a_clean_400(self):
        async def scenario(service):
            spec = _spec(0).to_dict()
            for bad in (0, -10, "soon", True):
                status, err = await _http(
                    "127.0.0.1", self.PORT, "POST", "/solve",
                    {"spec": spec, "deadline_ms": bad},
                )
                assert status == 400 and "deadline_ms" in err["error"]

        self._run(scenario)
