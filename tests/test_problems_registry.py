"""Tests for the ProblemInstance registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.problems import PROBLEM_NAMES, make_problem


class TestMakeProblem:
    @pytest.mark.parametrize("name", PROBLEM_NAMES)
    def test_builds_every_family(self, name):
        problem = make_problem(name, 6, seed=1)
        assert problem.name == name
        assert problem.n == 6
        vals = problem.objective_values()
        assert vals.shape == (problem.space.dim,)
        assert np.isfinite(vals).all()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_problem("travelling_salesman", 6)

    def test_unknown_name_lists_sorted_choices(self):
        with pytest.raises(ValueError) as err:
            make_problem("travelling_salesman", 6)
        message = str(err.value)
        assert str(sorted(PROBLEM_NAMES)) in message

    def test_name_lookup_is_case_insensitive(self):
        upper = make_problem("MaxCut", 6, seed=3)
        lower = make_problem("maxcut", 6, seed=3)
        assert upper.name == "maxcut"
        assert np.array_equal(upper.objective_values(), lower.objective_values())

    def test_extra_families_registered(self):
        for name in ("max_independent_set", "number_partition", "ising", "qubo"):
            assert name in PROBLEM_NAMES

    def test_unconstrained_use_full_space(self):
        assert make_problem("maxcut", 5).space.is_full
        assert make_problem("ksat", 5).space.is_full
        assert make_problem("max_independent_set", 5).space.is_full
        assert make_problem("number_partition", 5).space.is_full
        assert make_problem("ising", 5).space.is_full
        assert make_problem("qubo", 5).space.is_full

    def test_ising_is_minimization(self):
        problem = make_problem("ising", 5, seed=1)
        assert not problem.maximize
        assert problem.optimum() == problem.objective_values().min()

    def test_max_independent_set_penalty_forwarded(self):
        mild = make_problem("max_independent_set", 6, seed=2, penalty=1.5)
        harsh = make_problem("max_independent_set", 6, seed=2, penalty=10.0)
        assert mild.metadata["penalty"] == 1.5
        assert not np.array_equal(mild.objective_values(), harsh.objective_values())

    def test_number_partition_objective_nonpositive(self):
        problem = make_problem("number_partition", 6, seed=3)
        assert (problem.objective_values() <= 0).all()
        assert problem.metadata["weights"].shape == (6,)

    def test_constrained_use_dicke_space(self):
        dks = make_problem("densest_subgraph", 6, k=2)
        assert dks.space.hamming_weight == 2
        assert dks.space.dim == 15
        kvc = make_problem("vertex_cover", 6)
        assert kvc.space.hamming_weight == 3  # defaults to n // 2

    def test_deterministic_in_seed(self):
        a = make_problem("maxcut", 8, seed=5).objective_values()
        b = make_problem("maxcut", 8, seed=5).objective_values()
        c = make_problem("maxcut", 8, seed=6).objective_values()
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_objective_values_cached(self):
        problem = make_problem("maxcut", 6, seed=2)
        first = problem.objective_values()
        second = problem.objective_values()
        assert first is second

    def test_optimum_and_optimal_states(self):
        problem = make_problem("maxcut", 6, seed=3)
        vals = problem.objective_values()
        assert problem.optimum() == vals.max()
        labels = problem.optimal_states()
        assert len(labels) >= 1
        for label in labels:
            idx = problem.space.index_of(int(label))
            assert vals[idx] == problem.optimum()

    def test_approximation_ratio(self):
        problem = make_problem("maxcut", 6, seed=3)
        assert np.isclose(problem.approximation_ratio(problem.optimum()), 1.0)
        assert problem.approximation_ratio(0.0) == 0.0

    def test_scalar_cost_matches_vectorized(self):
        for name in PROBLEM_NAMES:
            problem = make_problem(name, 6, seed=4)
            bits = problem.space.bits
            sample = [0, len(bits) // 2, len(bits) - 1]
            for idx in sample:
                assert problem.cost(bits[idx]) == pytest.approx(problem.objective_values()[idx])

    def test_ksat_metadata(self):
        problem = make_problem("ksat", 6, seed=0, clause_density=4.0, sat_k=2)
        inst = problem.metadata["instance"]
        assert inst.k == 2
        assert inst.num_clauses == 24
