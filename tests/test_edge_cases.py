"""Edge cases and failure-injection tests cutting across modules."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.angles import AngleCheckpoint, AngleResult
from repro.core import PrecomputedCost, QAOAAnsatz, random_angles, simulate
from repro.grover.compress import compress_objective
from repro.grover.simulate import simulate_grover_compressed
from repro.hilbert import CustomSpace, DickeSpace, FullSpace
from repro.mixers import GroverMixer, XMixer, mixer_clique, transverse_field_mixer
from repro.problems import erdos_renyi, graph_from_edges, maxcut_values
from repro.hilbert import state_matrix


class TestDegenerateProblems:
    def test_constant_objective(self):
        """A constant cost function: the QAOA does nothing useful but stays valid."""
        n = 4
        obj = np.full(1 << n, 3.0)
        res = simulate(random_angles(2, rng=0), transverse_field_mixer(n), obj)
        assert np.isclose(res.expectation(), 3.0)
        assert np.isclose(res.ground_state_probability(), 1.0)  # every state is optimal
        spectrum = compress_objective(obj)
        assert spectrum.num_distinct == 1
        comp = simulate_grover_compressed(random_angles(2, rng=0), spectrum)
        assert np.isclose(comp.expectation(), 3.0)

    def test_edgeless_graph(self):
        graph = graph_from_edges(4, [])
        obj = maxcut_values(graph, state_matrix(4))
        res = simulate(random_angles(1, rng=1), transverse_field_mixer(4), obj)
        assert np.isclose(res.expectation(), 0.0)

    def test_single_feasible_state_space(self):
        """A Dicke space with k = 0 contains one state; everything is trivial."""
        space = DickeSpace(4, 0)
        assert space.dim == 1
        mixer = GroverMixer(space)
        res = simulate(random_angles(2, rng=2), mixer, np.array([5.0]))
        assert np.isclose(res.expectation(), 5.0)
        assert np.isclose(res.norm(), 1.0)

    def test_negative_objective_values(self):
        """Mixed-sign objectives are allowed; the offset helper shifts them."""
        n = 4
        rng = np.random.default_rng(3)
        obj = rng.normal(size=1 << n)
        cost = PrecomputedCost(values=obj, space=FullSpace(n), offset=10.0)
        assert cost.values.min() > 0
        res = simulate(random_angles(2, rng=3), transverse_field_mixer(n), cost)
        assert cost.values.min() - 1e-9 <= res.expectation() <= cost.values.max() + 1e-9

    def test_custom_space_two_states(self):
        space = CustomSpace(3, [1, 6], name="pair")
        mixer = GroverMixer(space)
        obj = np.array([0.0, 1.0])
        ansatz = QAOAAnsatz(obj, mixer, 1)
        value = ansatz.expectation(np.array([np.pi, np.pi]))
        assert 0.0 <= value <= 1.0


class TestCheckpointRobustness:
    def test_corrupted_checkpoint_raises_cleanly(self, tmp_path):
        path = tmp_path / "angles.json"
        path.write_text("{ this is not valid json")
        with pytest.raises(json.JSONDecodeError):
            AngleCheckpoint(path)

    def test_checkpoint_overwrite_updates_round(self, tmp_path):
        path = tmp_path / "angles.json"
        checkpoint = AngleCheckpoint(path)
        checkpoint.store(AngleResult(angles=np.array([0.1, 0.2]), value=1.0, p=1))
        checkpoint.store(AngleResult(angles=np.array([0.3, 0.4]), value=2.0, p=1))
        reloaded = AngleCheckpoint(path)
        assert reloaded.get(1).value == 2.0
        assert len(reloaded) == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "angles.json"
        checkpoint = AngleCheckpoint(path)
        for p in range(1, 4):
            checkpoint.store(AngleResult(angles=np.zeros(2 * p), value=float(p), p=p))
        leftovers = [f for f in tmp_path.iterdir() if f.suffix == ".tmp"]
        assert leftovers == []


class TestMixerEdgeCases:
    def test_xmixer_cache_key_distinguishes_terms(self):
        a = XMixer(4, [(0,), (1,)])
        b = XMixer(4, [(0, 1)])
        assert a.cache_key() != b.cache_key()
        assert a.cache_key() == XMixer(4, [(0,), (1,)]).cache_key()

    def test_clique_mixer_k_equals_n(self):
        """Weight-n subspace has a single state: the mixer acts trivially."""
        mixer = mixer_clique(4, 4)
        assert mixer.dim == 1
        out = mixer.apply(np.array([1.0 + 0j]), 0.7)
        assert np.isclose(np.abs(out[0]), 1.0)

    def test_large_beta_periodicity_grover(self):
        mixer = GroverMixer(FullSpace(4))
        psi = mixer.initial_state()
        a = mixer.apply(psi, 0.3)
        b = mixer.apply(psi, 0.3 + 2 * np.pi)
        assert np.allclose(a, b, atol=1e-10)

    def test_zero_coefficient_term_is_identity_contribution(self, rng):
        mixer = XMixer(3, [(0,), (1,)], [1.0, 0.0])
        reference = XMixer(3, [(0,)], [1.0])
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        assert np.allclose(mixer.apply(psi, 0.4), reference.apply(psi, 0.4))


class TestNumericalStability:
    def test_many_rounds_norm_drift(self):
        """Norm stays at 1 to high precision even after 50 rounds."""
        n = 5
        graph = erdos_renyi(n, 0.5, seed=11)
        obj = maxcut_values(graph, state_matrix(n))
        mixer = transverse_field_mixer(n)
        p = 50
        angles = random_angles(p, rng=4)
        res = simulate(angles, mixer, obj)
        assert abs(res.norm() - 1.0) < 1e-10

    def test_tiny_and_huge_angles(self):
        n = 4
        graph = erdos_renyi(n, 0.5, seed=12)
        obj = maxcut_values(graph, state_matrix(n))
        mixer = transverse_field_mixer(n)
        for scale in (1e-12, 1e3):
            res = simulate(scale * np.ones(4), mixer, obj)
            assert np.isclose(res.norm(), 1.0, atol=1e-9)
            assert obj.min() - 1e-9 <= res.expectation() <= obj.max() + 1e-9
