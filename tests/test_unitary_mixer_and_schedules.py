"""Tests for arbitrary Hermitian/unitary mixers and mixer schedules."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.hilbert import DickeSpace, FullSpace
from repro.mixers import (
    FixedUnitaryMixer,
    HermitianMixer,
    MixerSchedule,
    MultiAngleXMixer,
    is_hermitian,
    is_unitary,
    transverse_field_mixer,
)
from repro.mixers.grover import grover_mixer


def _random_hermitian(dim, rng):
    mat = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    return (mat + mat.conj().T) / 2.0


class TestPredicates:
    def test_is_hermitian(self, rng):
        assert is_hermitian(_random_hermitian(6, rng))
        assert not is_hermitian(rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4)))
        assert not is_hermitian(np.zeros((2, 3)))

    def test_is_unitary(self, rng):
        H = _random_hermitian(5, rng)
        U = sla.expm(1j * H)
        assert is_unitary(U)
        assert not is_unitary(2 * U)
        assert not is_unitary(np.zeros((2, 3)))


class TestHermitianMixer:
    def test_apply_matches_expm(self, rng):
        H = _random_hermitian(8, rng)
        mixer = HermitianMixer(H)
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        psi /= np.linalg.norm(psi)
        beta = 0.59
        assert np.allclose(mixer.apply(psi, beta), sla.expm(-1j * beta * H) @ psi)
        assert np.allclose(mixer.matrix(), H)
        assert np.allclose(mixer.apply_hamiltonian(psi), H @ psi)

    def test_subspace_mixer(self, rng):
        space = DickeSpace(5, 2)
        H = _random_hermitian(space.dim, rng)
        mixer = HermitianMixer(H, space=space)
        assert mixer.dim == space.dim

    def test_rejects_non_hermitian(self, rng):
        with pytest.raises(ValueError):
            HermitianMixer(rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4)))

    def test_rejects_non_power_of_two_without_space(self, rng):
        with pytest.raises(ValueError):
            HermitianMixer(_random_hermitian(6, rng))

    def test_rejects_space_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            HermitianMixer(_random_hermitian(4, rng), space=FullSpace(3))

    def test_cache_file(self, tmp_path, rng):
        H = _random_hermitian(8, rng)
        path = tmp_path / "hermitian.npz"
        first = HermitianMixer(H, file=path)
        second = HermitianMixer(H, file=path)
        assert np.allclose(first.eigenvalues, second.eigenvalues)


class TestFixedUnitaryMixer:
    def test_beta_one_reproduces_unitary(self, rng):
        H = _random_hermitian(8, rng)
        U = sla.expm(-1j * H)
        mixer = FixedUnitaryMixer(U)
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        psi /= np.linalg.norm(psi)
        assert np.allclose(mixer.apply(psi, 1.0), U @ psi)

    def test_beta_two_is_u_squared(self, rng):
        H = 0.2 * _random_hermitian(8, rng)  # small angles avoid branch cuts
        U = sla.expm(-1j * H)
        mixer = FixedUnitaryMixer(U)
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        psi /= np.linalg.norm(psi)
        assert np.allclose(mixer.apply(psi, 2.0), U @ U @ psi)

    def test_rejects_non_unitary(self, rng):
        with pytest.raises(ValueError):
            FixedUnitaryMixer(rng.normal(size=(4, 4)))


class TestMixerSchedule:
    def test_single_mixer_repeated(self):
        mixer = transverse_field_mixer(4)
        schedule = MixerSchedule(mixer, rounds=3)
        assert schedule.p == 3
        assert schedule.total_betas == 3
        assert all(layer is mixer for layer in schedule)

    def test_requires_rounds_for_single_mixer(self):
        with pytest.raises(ValueError):
            MixerSchedule(transverse_field_mixer(3))

    def test_per_round_mixers(self):
        a, b = transverse_field_mixer(4), grover_mixer(4)
        schedule = MixerSchedule([a, b, a])
        assert schedule.p == 3
        assert schedule[1] is b

    def test_rejects_mismatched_spaces(self):
        with pytest.raises(ValueError):
            MixerSchedule([transverse_field_mixer(3), transverse_field_mixer(4)])

    def test_rejects_rounds_mismatch(self):
        mixer = transverse_field_mixer(3)
        with pytest.raises(ValueError):
            MixerSchedule([mixer, mixer], rounds=3)

    def test_rejects_non_mixer(self):
        with pytest.raises(TypeError):
            MixerSchedule([transverse_field_mixer(3), "not a mixer"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MixerSchedule([])

    def test_beta_counts_multi_angle(self):
        n = 3
        ma = MultiAngleXMixer(n, [(0,), (1,), (2,)])
        plain = transverse_field_mixer(n)
        schedule = MixerSchedule([plain, ma])
        assert schedule.beta_counts() == [1, 3]
        assert schedule.total_betas == 4
        chunks = schedule.split_betas(np.arange(4.0))
        assert np.allclose(chunks[0], [0.0])
        assert np.allclose(chunks[1], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            schedule.split_betas(np.arange(3.0))

    def test_zero_rounds_rejected(self):
        with pytest.raises(ValueError):
            MixerSchedule(transverse_field_mixer(3), rounds=0)
