"""Tests for the multi-angle QAOA helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import simulate
from repro.core.multiangle import (
    multi_angle_schedule,
    num_multi_angles,
    pack_angles,
    unpack_angles,
)
from repro.hilbert import state_matrix
from repro.mixers import transverse_field_mixer
from repro.problems import erdos_renyi, maxcut_values


class TestScheduleConstruction:
    def test_default_terms_one_per_qubit(self):
        schedule = multi_angle_schedule(5, 3)
        assert schedule.p == 3
        assert schedule.total_betas == 15
        assert num_multi_angles(schedule) == 18

    def test_custom_terms(self):
        schedule = multi_angle_schedule(4, 2, terms=[(0, 1), (2, 3)])
        assert schedule.total_betas == 4


class TestPackUnpack:
    def test_roundtrip(self):
        schedule = multi_angle_schedule(3, 2)
        betas = [[0.1, 0.2, 0.3], [0.4, 0.5, 0.6]]
        gammas = [1.0, 2.0]
        flat = pack_angles(betas, gammas)
        assert flat.shape == (8,)
        betas_out, gammas_out = unpack_angles(flat, schedule)
        assert np.allclose(np.concatenate(betas_out), np.concatenate(betas))
        assert np.allclose(gammas_out, gammas)

    def test_pack_length_mismatch(self):
        with pytest.raises(ValueError):
            pack_angles([[0.1]], [1.0, 2.0])

    def test_unpack_length_check(self):
        schedule = multi_angle_schedule(3, 1)
        with pytest.raises(ValueError):
            unpack_angles(np.zeros(3), schedule)


class TestMultiAngleReducesToStandard:
    def test_equal_per_qubit_angles_match_transverse_field(self):
        n, p = 5, 2
        graph = erdos_renyi(n, 0.5, seed=4)
        obj = maxcut_values(graph, state_matrix(n))
        schedule = multi_angle_schedule(n, p)
        rng = np.random.default_rng(0)
        shared_betas = rng.random(p)
        gammas = rng.random(p)

        flat = pack_angles([[b] * n for b in shared_betas], gammas)
        multi = simulate(flat, schedule, obj)
        standard = simulate(np.concatenate([shared_betas, gammas]), transverse_field_mixer(n), obj)
        assert np.allclose(multi.statevector, standard.statevector, atol=1e-10)
        assert np.isclose(multi.expectation(), standard.expectation())

    def test_extra_freedom_can_only_help_at_optimum(self):
        """The multi-angle parameter space contains the standard one."""
        n, p = 4, 1
        graph = erdos_renyi(n, 0.5, seed=6)
        obj = maxcut_values(graph, state_matrix(n))
        schedule = multi_angle_schedule(n, p)

        from repro.angles import local_minimize
        from repro.core import QAOAAnsatz

        standard = QAOAAnsatz(obj, transverse_field_mixer(n), p)
        best_standard = local_minimize(standard, standard.random_angles(0)).value

        multi = QAOAAnsatz(obj, schedule)
        seed_angles = np.zeros(multi.num_angles)
        seed_angles[: n * p] = 0.3
        seed_angles[n * p :] = 0.5
        best_multi = local_minimize(multi, seed_angles).value
        assert best_multi >= best_standard - 0.15
