"""Mixer/strategy registries: completeness, case-insensitivity, diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import angles as angles_pkg
from repro import mixers as mixers_pkg
from repro.api import (
    MIXER_NAMES,
    MIXERS,
    STRATEGIES,
    STRATEGY_NAMES,
    make_mixer,
    run_strategy,
)
from repro.api.registry import Registry, RegistryError
from repro.core.ansatz import QAOAAnsatz
from repro.hilbert.subspace import DickeSpace, FullSpace
from repro.mixers import (
    CliqueMixer,
    GroverMixer,
    MultiAngleXMixer,
    RingMixer,
    XMixer,
    XYMixer,
)
from repro.problems import make_problem

#: Cheap-but-real parameters for exercising every registered strategy.
CHEAP_STRATEGY_PARAMS = {
    "grid": {"resolution": 4},
    "random": {"iters": 3, "maxiter": 30},
    "basinhop": {"n_hops": 2, "maxiter": 30},
    "iterative": {"n_hops": 1, "n_starts_p1": 1, "maxiter": 30},
    "fourier": {"n_hops": 1, "n_starts_p1": 1, "maxiter": 30},
    "median": {"iters": 3, "maxiter": 30},
    "multistart": {"iters": 3, "maxiter": 30},
    "portfolio": {
        "racers": [
            {"name": "multistart", "params": {"iters": 2, "maxiter": 30}},
            {"name": "random", "params": {"iters": 2, "maxiter": 30, "vectorized": False}},
        ],
    },
}


@pytest.fixture(scope="module")
def ansatz() -> QAOAAnsatz:
    problem = make_problem("maxcut", 5, seed=1)
    return QAOAAnsatz.from_problem(problem, mixers_pkg.mixer_x([1], 5), 2)


class TestRegistryBasics:
    def test_case_insensitive_lookup(self):
        assert MIXERS.get("X") is MIXERS.get("x")
        assert STRATEGIES.get("Random") is STRATEGIES.get("random")
        assert MIXERS.canonical("GROVER") == "grover"

    def test_aliases_resolve(self):
        assert STRATEGIES.canonical("grid_search") == "grid"
        assert STRATEGIES.canonical("basinhopping") == "basinhop"
        assert STRATEGIES.canonical("multistart_minimize") == "multistart"
        assert MIXERS.canonical("transverse_field") == "x"

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError) as err:
            MIXERS.get("warp_drive")
        message = str(err.value)
        for name in MIXER_NAMES:
            assert name in message
        with pytest.raises(ValueError, match="angle strategy"):
            STRATEGIES.get("sorcery")

    def test_duplicate_registration_rejected(self):
        registry: Registry[int] = Registry("thing")
        registry.add("a", 1, "alias")
        with pytest.raises(RegistryError):
            registry.add("A", 2)
        with pytest.raises(RegistryError):
            registry.add("b", 3, "Alias")

    def test_contains_and_iteration(self):
        assert "grover" in MIXERS
        assert "GROVER" in MIXERS
        assert "warp_drive" not in MIXERS
        assert list(MIXERS) == list(MIXER_NAMES)
        assert len(STRATEGIES) == len(STRATEGY_NAMES)


class TestMixerRegistry:
    def test_expected_families_registered(self):
        assert set(MIXER_NAMES) == {"x", "multiangle_x", "ring", "clique", "xy", "grover"}

    def test_every_exported_mixer_class_is_reachable(self):
        """Registry completeness: each concrete exported mixer class has a name."""
        full, dicke = FullSpace(4), DickeSpace(4, 2)
        built = {
            type(make_mixer("x", full)),
            type(make_mixer("multiangle_x", full)),
            type(make_mixer("ring", dicke)),
            type(make_mixer("clique", dicke)),
            type(make_mixer("xy", dicke, pairs=[(0, 1), (2, 3)])),
            type(make_mixer("grover", full)),
        }
        assert built == {XMixer, MultiAngleXMixer, RingMixer, CliqueMixer, XYMixer, GroverMixer}

    def test_space_compatibility_enforced(self):
        with pytest.raises(ValueError, match="full 2\\^n space"):
            make_mixer("x", DickeSpace(4, 2))
        with pytest.raises(ValueError, match="Hamming weight"):
            make_mixer("ring", FullSpace(4))
        # grover works on both
        assert make_mixer("grover", FullSpace(3)).dim == 8
        assert make_mixer("grover", DickeSpace(4, 2)).dim == 6

    def test_bad_parameters_are_value_errors(self):
        with pytest.raises(ValueError, match="bad parameters for mixer"):
            make_mixer("x", FullSpace(3), warp=9)
        with pytest.raises(ValueError, match="bad parameters for mixer 'xy'"):
            make_mixer("xy", DickeSpace(4, 2))  # missing required pairs

    def test_mixers_package_reexports_registry(self):
        assert mixers_pkg.make_mixer is make_mixer
        assert mixers_pkg.MIXER_NAMES == MIXER_NAMES
        with pytest.raises(AttributeError):
            mixers_pkg.not_a_thing


class TestStrategyRegistry:
    def test_every_exported_strategy_function_is_registered(self):
        """Registry completeness: each angle-finding entry point is adapted."""
        implemented = set()
        for _name, adapter in STRATEGIES.items():
            implemented.update(adapter.implements)
        expected = {
            angles_pkg.grid_search,
            angles_pkg.find_angles_random,
            angles_pkg.basinhop,
            angles_pkg.find_angles,
            angles_pkg.median_angles,
            angles_pkg.multistart_minimize,
        }
        assert expected <= implemented

    def test_cheap_params_cover_every_strategy(self):
        assert set(CHEAP_STRATEGY_PARAMS) == set(STRATEGY_NAMES)

    @pytest.mark.parametrize("name", sorted(CHEAP_STRATEGY_PARAMS))
    def test_protocol_normalizes_results(self, name, ansatz):
        """Every strategy returns an AngleResult with populated bookkeeping."""
        result = run_strategy(name, ansatz, rng=0, **CHEAP_STRATEGY_PARAMS[name])
        assert result.strategy == name, "strategy name must be the canonical registry name"
        assert result.evaluations > 0, "evaluation count must be populated"
        assert result.p == ansatz.p
        assert result.angles.shape == (ansatz.num_angles,)
        assert np.isfinite(result.value)
        # the reported value is really the expectation at the reported angles
        assert ansatz.expectation(result.angles) == pytest.approx(result.value, abs=1e-8)

    @pytest.mark.parametrize("name", sorted(CHEAP_STRATEGY_PARAMS))
    def test_deterministic_in_rng_seed(self, name, ansatz):
        params = CHEAP_STRATEGY_PARAMS[name]
        a = run_strategy(name, ansatz, rng=5, **params)
        b = run_strategy(name, ansatz, rng=5, **params)
        assert np.array_equal(a.angles, b.angles)
        assert a.value == b.value
        assert a.evaluations == b.evaluations

    def test_bad_parameters_are_value_errors(self, ansatz):
        with pytest.raises(ValueError, match="bad parameters for strategy 'grid'"):
            run_strategy("grid", ansatz, warp=9)

    def test_internal_type_errors_propagate(self, ansatz, monkeypatch):
        """Only call-binding TypeErrors translate to 'bad parameters'."""

        def broken(ansatz, *, rng=None, **params):
            raise TypeError("deep numpy failure")

        monkeypatch.setitem(STRATEGIES._entries, "broken", broken)
        monkeypatch.setitem(STRATEGIES._aliases, "broken", "broken")
        with pytest.raises(TypeError, match="deep numpy failure"):
            run_strategy("broken", ansatz)

    def test_iterative_requires_repeated_mixer(self):
        problem = make_problem("maxcut", 4, seed=0)
        layers = [mixers_pkg.mixer_x([1], 4), mixers_pkg.mixer_x([1, 2], 4)]
        mixed = QAOAAnsatz.from_problem(problem, layers, 2)
        with pytest.raises(ValueError, match="single repeated mixer"):
            run_strategy("iterative", mixed, rng=0, n_hops=1, maxiter=10)
