"""Tests for disk caches and result serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import random_angles, simulate
from repro.hilbert import state_matrix
from repro.io.cache import (
    cached_eigendecomposition,
    default_cache_dir,
    load_eigendecomposition,
    save_eigendecomposition,
)
from repro.io.results import (
    append_jsonl,
    load_result_dict,
    load_rows,
    read_jsonl,
    result_to_dict,
    save_result,
    save_rows,
    write_json_atomic,
)
from repro.mixers import transverse_field_mixer
from repro.problems import erdos_renyi, maxcut_values


@pytest.fixture
def decomposition(rng):
    mat = rng.normal(size=(12, 12))
    mat = (mat + mat.T) / 2
    return np.linalg.eigh(mat)


class TestEigendecompositionCache:
    def test_save_load_roundtrip(self, tmp_path, decomposition):
        eigenvalues, eigenvectors = decomposition
        path = save_eigendecomposition(tmp_path / "m.npz", eigenvalues, eigenvectors, key="test")
        loaded_vals, loaded_vecs = load_eigendecomposition(path, expected_key="test")
        assert np.allclose(loaded_vals, eigenvalues)
        assert np.allclose(loaded_vecs, eigenvectors)

    def test_creates_parent_dirs(self, tmp_path, decomposition):
        eigenvalues, eigenvectors = decomposition
        path = tmp_path / "nested" / "dirs" / "m.npz"
        save_eigendecomposition(path, eigenvalues, eigenvectors)
        assert path.exists()

    def test_key_mismatch_rejected(self, tmp_path, decomposition):
        eigenvalues, eigenvectors = decomposition
        path = save_eigendecomposition(tmp_path / "m.npz", eigenvalues, eigenvectors, key="clique")
        with pytest.raises(ValueError):
            load_eigendecomposition(path, expected_key="ring")

    def test_shape_validation(self, tmp_path):
        with pytest.raises(ValueError):
            save_eigendecomposition(tmp_path / "m.npz", np.zeros(3), np.zeros((3, 4)))
        with pytest.raises(ValueError):
            save_eigendecomposition(tmp_path / "m.npz", np.zeros(4), np.zeros((3, 3)))

    def test_cached_computes_once(self, tmp_path, decomposition):
        eigenvalues, eigenvectors = decomposition
        calls = {"count": 0}

        def compute():
            calls["count"] += 1
            return eigenvalues, eigenvectors

        path = tmp_path / "cached.npz"
        cached_eigendecomposition(path, "key", compute)
        cached_eigendecomposition(path, "key", compute)
        assert calls["count"] == 1

    def test_cached_without_path_always_computes(self, decomposition):
        eigenvalues, eigenvectors = decomposition
        calls = {"count": 0}

        def compute():
            calls["count"] += 1
            return eigenvalues, eigenvectors

        cached_eigendecomposition(None, "key", compute)
        cached_eigendecomposition(None, "key", compute)
        assert calls["count"] == 2

    def test_default_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert default_cache_dir() == tmp_path / "cache"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir().name == "repro_qaoa"


class TestResultSerialization:
    @pytest.fixture
    def result(self):
        graph = erdos_renyi(5, 0.5, seed=2)
        obj = maxcut_values(graph, state_matrix(5))
        return simulate(random_angles(2, rng=0), transverse_field_mixer(5), obj)

    def test_result_to_dict_fields(self, result):
        payload = result_to_dict(result)
        assert np.isclose(payload["expectation"], result.expectation())
        assert payload["p"] == 2
        assert payload["dim"] == 32
        assert "statevector_real" not in payload

    def test_result_to_dict_with_statevector(self, result):
        payload = result_to_dict(result, include_statevector=True)
        reconstructed = np.array(payload["statevector_real"]) + 1j * np.array(
            payload["statevector_imag"]
        )
        assert np.allclose(reconstructed, result.statevector)

    def test_save_and_load_result(self, tmp_path, result):
        path = save_result(tmp_path / "res.json", result)
        loaded = load_result_dict(path)
        assert np.isclose(loaded["expectation"], result.expectation())
        # File is valid JSON.
        json.loads(path.read_text())

    def test_save_and_load_rows(self, tmp_path):
        rows = [{"simulator": "direct", "n": 8, "time_s": 0.001},
                {"simulator": "dense", "n": 8, "time_s": 0.1}]
        path = save_rows(tmp_path / "rows.json", rows)
        loaded = load_rows(path)
        assert loaded == rows

    def test_load_rows_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(ValueError):
            load_rows(path)


class TestJsonlPrimitives:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        append_jsonl(path, [{"a": 1}, {"a": 2}])
        append_jsonl(path, [{"a": 3}])
        assert read_jsonl(path) == [{"a": 1}, {"a": 2}, {"a": 3}]

    def test_read_missing_file(self, tmp_path):
        assert read_jsonl(tmp_path / "nope.jsonl") == []

    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        append_jsonl(path, [{"a": 1}])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"a": 2, "trunca')  # crash mid-append
        assert read_jsonl(path) == [{"a": 1}]

    def test_corruption_elsewhere_raises(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('not json\n{"a": 1}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt"):
            read_jsonl(path)

    def test_newline_terminated_corrupt_final_line_raises(self, tmp_path):
        # A damaged final record that still ends in a newline is real
        # corruption, not a torn append — it must not be silently dropped.
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a": 1}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt"):
            read_jsonl(path)

    def test_append_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        append_jsonl(path, [{"a": 1}])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"a": 2, "trunca')  # crash mid-append
        append_jsonl(path, [{"a": 3}])
        assert read_jsonl(path) == [{"a": 1}, {"a": 3}]

    def test_numpy_scalars_serialized(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        append_jsonl(path, [{"x": np.float64(1.5), "n": np.int64(4)}])
        assert read_jsonl(path) == [{"x": 1.5, "n": 4.0}]

    def test_write_json_atomic(self, tmp_path):
        path = tmp_path / "deep" / "manifest.json"
        write_json_atomic(path, {"k": [1, 2]})
        assert json.loads(path.read_text(encoding="utf-8")) == {"k": [1, 2]}
        write_json_atomic(path, {"k": [3]})
        assert json.loads(path.read_text(encoding="utf-8")) == {"k": [3]}
        assert list(path.parent.iterdir()) == [path]  # no stray temp files
