"""Tests for the experiment orchestration subsystem (tasks, store, runner, CLI).

The sweep under test throughout is Figure 2 shrunk to ``n = 4`` / ``p = 1``
(four tasks, deterministic rows), which keeps every scenario — including the
interrupt/resume and sharding ones — fast enough for tier-1.
"""

from __future__ import annotations

import json

import pytest

import repro.experiments.runner as runner_mod
from repro.bench.figures import run_figure2
from repro.cli import main
from repro.experiments import (
    EXPERIMENT_NAMES,
    RowTask,
    RunStore,
    RunStoreError,
    enumerate_tasks,
    execute_task,
    get_experiment,
    run_experiment,
    store_directory,
)
from repro.io.results import append_jsonl, read_jsonl

TINY_FIG2 = {"n": 4, "p_max": 1, "n_hops": 1}
TINY_FIG2_ARGS = ["--set", "n=4", "--set", "p_max=1", "--set", "n_hops=1"]


def tiny_fig2_run(out_dir, **kwargs):
    kwargs.setdefault("workers", 1)
    return run_experiment("fig2", scale="quick", out_dir=out_dir, overrides=TINY_FIG2, **kwargs)


# ---------------------------------------------------------------------------
# Task enumeration and execution
# ---------------------------------------------------------------------------


class TestTasks:
    def test_registry_covers_every_figure(self):
        assert EXPERIMENT_NAMES == (
            "fig2", "fig3", "fig4a", "fig4b", "fig5", "grover", "portfolio", "solve"
        )
        for name in EXPERIMENT_NAMES:
            assert get_experiment(name).name == name

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="fig2"):
            get_experiment("fig7")

    def test_enumeration_is_deterministic(self):
        for name in EXPERIMENT_NAMES:
            first = enumerate_tasks(name)
            second = enumerate_tasks(name)
            assert first == second
            ids = [t.task_id for t in first]
            assert len(set(ids)) == len(ids)

    def test_enumeration_depends_on_scale(self, monkeypatch):
        quick = len(enumerate_tasks("fig4a"))
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert len(enumerate_tasks("fig4a")) > quick

    def test_fig2_task_params_round_trip(self):
        tasks = enumerate_tasks("fig2", TINY_FIG2)
        assert [t.task_id for t in tasks] == [
            "case=maxcut+transverse_field",
            "case=3sat+grover",
            "case=densest_k_subgraph+clique",
            "case=k_vertex_cover+ring",
        ]
        rows = [row for task in tasks for row in execute_task(task)]
        assert rows == run_figure2(**TINY_FIG2)

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown override"):
            enumerate_tasks("fig2", {"bogus": 1})

    def test_fig3_is_single_coupled_task(self):
        tasks = enumerate_tasks("fig3")
        assert len(tasks) == 1
        assert tasks[0].task_id == "ensemble"

    def test_fig4b_tasks_resolve_n(self):
        tasks = enumerate_tasks("fig4b", {"n": 6})
        assert all(t.params["n"] == 6 for t in tasks)


# ---------------------------------------------------------------------------
# Run store
# ---------------------------------------------------------------------------


def make_tasks(ids):
    return [RowTask("fig2", task_id, {}) for task_id in ids]


class TestRunStore:
    def test_create_record_read(self, tmp_path):
        tasks = make_tasks(["a", "b"])
        store = RunStore.create_or_resume(
            tmp_path / "s", experiment="fig2", scale="quick", tasks=tasks
        )
        store.record("b", [{"x": 2}], duration_s=0.1)
        store.record("a", [{"x": 1}, {"x": 11}])
        # Rows come back grouped in work-list order, not completion order.
        assert store.rows() == [{"x": 1}, {"x": 11}, {"x": 2}]
        assert store.is_complete()
        assert store.status()["state"] == "complete"

    def test_duplicate_task_ids_rejected(self, tmp_path):
        with pytest.raises(RunStoreError, match="duplicate"):
            RunStore.create_or_resume(
                tmp_path / "s", experiment="fig2", scale="quick", tasks=make_tasks(["a", "a"])
            )

    def test_record_validates_task_id(self, tmp_path):
        store = RunStore.create_or_resume(
            tmp_path / "s", experiment="fig2", scale="quick", tasks=make_tasks(["a"])
        )
        with pytest.raises(RunStoreError, match="not in this run"):
            store.record("zzz", [])

    def test_duplicate_record_is_noop_warning(self, tmp_path):
        # Two writers racing the same task must not crash the sweep: the
        # loser's record is a warning that skips the redundant append.
        directory = tmp_path / "s"
        tasks = make_tasks(["a"])
        first = RunStore.create_or_resume(
            directory, experiment="fig2", scale="quick", tasks=tasks, writer_id="w1"
        )
        second = RunStore.create_or_resume(
            directory, experiment="fig2", scale="quick", tasks=tasks, writer_id="w2"
        )
        first.record("a", [{"x": 1}], duration_s=0.5)
        with pytest.warns(RuntimeWarning, match="already recorded"):
            second.record("a", [{"x": 999}])
        merged = RunStore.open(directory)
        assert merged.rows() == [{"x": 1}]  # winner's rows, loser appended nothing
        assert not second.segment_path.exists()
        assert merged.manifest["completed"]["a"]["rows"] == 1

    def test_writer_segments_merge_at_read_time(self, tmp_path):
        directory = tmp_path / "s"
        tasks = make_tasks(["a", "b", "c"])
        w1 = RunStore.create_or_resume(
            directory, experiment="fig2", scale="quick", tasks=tasks, writer_id="w1"
        )
        w2 = RunStore.create_or_resume(
            directory, experiment="fig2", scale="quick", tasks=tasks, writer_id="w2"
        )
        w1.record("b", [{"x": 2}])
        w2.record("a", [{"x": 1}])
        w1.record("c", [{"x": 3}])
        assert w1.segment_path.name == "rows-w1.jsonl"
        assert read_jsonl(w1.segment_path) == [
            {"task_id": "b", "row": {"x": 2}},
            {"task_id": "c", "row": {"x": 3}},
        ]
        assert read_jsonl(w2.segment_path) == [{"task_id": "a", "row": {"x": 1}}]
        merged = RunStore.open(directory)
        assert merged.rows() == [{"x": 1}, {"x": 2}, {"x": 3}]
        assert merged.is_complete()
        assert merged.status()["rows"] == 3

    def test_invalid_writer_id_rejected(self, tmp_path):
        for bad in ("", "../evil", "a b", "-leading", "x" * 65):
            with pytest.raises(RunStoreError, match="invalid writer id"):
                RunStore(tmp_path / "s", writer_id=bad)

    def test_crashed_same_writer_orphans_do_not_mix_into_reads(self, tmp_path):
        # A hung original job and its retry share the default writer_id, so
        # they share a segment.  If the original crashed mid-record leaving
        # complete orphan lines for task t, and the retry later records t,
        # reads must return the retry's (committed) rows — never a mix.
        directory = tmp_path / "s"
        tasks = make_tasks(["t"])
        crashed = RunStore.create_or_resume(
            directory, experiment="fig2", scale="quick", tasks=tasks, writer_id="shard-1-of-1"
        )
        # Crash after two complete orphan lines, before the manifest update.
        append_jsonl(
            crashed.segment_path,
            [{"task_id": "t", "row": {"x": "orphan0"}}, {"task_id": "t", "row": {"x": "orphan1"}}],
        )
        retry = RunStore.create_or_resume(
            directory, experiment="fig2", scale="quick", tasks=tasks, writer_id="shard-1-of-1"
        )
        # The retry's resume already compacted the orphans away ...
        assert read_jsonl(retry.segment_path) == []
        retry.record("t", [{"x": "good0"}, {"x": "good1"}, {"x": "good2"}])
        assert retry.rows() == [{"x": "good0"}, {"x": "good1"}, {"x": "good2"}]

        # ... but even when the orphan lines land *between* resume and record
        # (truly overlapping writers), the read-side last-n cap keeps them out.
        overlap = tmp_path / "s2"
        first = RunStore.create_or_resume(
            overlap, experiment="fig2", scale="quick", tasks=tasks, writer_id="w"
        )
        second = RunStore.create_or_resume(
            overlap, experiment="fig2", scale="quick", tasks=tasks, writer_id="w"
        )
        append_jsonl(first.segment_path, [{"task_id": "t", "row": {"x": "orphan"}}])
        second.record("t", [{"x": "good0"}, {"x": "good1"}])
        assert RunStore.open(overlap).rows() == [{"x": "good0"}, {"x": "good1"}]
        # The next resume compacts the stale prefix out of the segment.
        compacted = RunStore.create_or_resume(
            overlap, experiment="fig2", scale="quick", tasks=tasks, writer_id="w"
        )
        assert read_jsonl(compacted.segment_path) == [
            {"task_id": "t", "row": {"x": "good0"}},
            {"task_id": "t", "row": {"x": "good1"}},
        ]

    def test_segment_orphans_compacted_on_resume(self, tmp_path):
        directory = tmp_path / "s"
        tasks = make_tasks(["a", "b"])
        store = RunStore.create_or_resume(
            directory, experiment="fig2", scale="quick", tasks=tasks, writer_id="w1"
        )
        store.record("a", [{"x": 1}])
        # Crash after appending task b's rows but before the manifest update.
        append_jsonl(store.segment_path, [{"task_id": "b", "row": {"x": 2}}])
        readonly = RunStore.open(directory)
        assert readonly.rows() == [{"x": 1}]
        resumed = RunStore.create_or_resume(
            directory, experiment="fig2", scale="quick", tasks=tasks, writer_id="w1"
        )
        assert read_jsonl(resumed.segment_path) == [{"task_id": "a", "row": {"x": 1}}]
        assert resumed.pending(tasks) == [tasks[1]]
        # No stray compaction temp files are left behind.
        assert not list(directory.glob("*.tmp"))

    def test_resume_requires_matching_run(self, tmp_path):
        directory = tmp_path / "s"
        RunStore.create_or_resume(
            directory, experiment="fig2", scale="quick", tasks=make_tasks(["a"])
        )
        with pytest.raises(RunStoreError, match="incompatible"):
            RunStore.create_or_resume(
                directory, experiment="fig2", scale="paper", tasks=make_tasks(["a"])
            )
        with pytest.raises(RunStoreError, match="incompatible"):
            RunStore.create_or_resume(
                directory,
                experiment="fig2",
                scale="quick",
                tasks=make_tasks(["a"]),
                overrides={"n": 4},
            )

    def test_open_missing(self, tmp_path):
        with pytest.raises(RunStoreError, match="no run store"):
            RunStore.open(tmp_path / "absent")

    def test_orphan_rows_filtered_and_compacted(self, tmp_path):
        directory = tmp_path / "s"
        tasks = make_tasks(["a", "b"])
        store = RunStore.create_or_resume(directory, experiment="fig2", scale="quick", tasks=tasks)
        store.record("a", [{"x": 1}])
        # Simulate a crash after appending rows but before the manifest update.
        append_jsonl(store.rows_path, [{"task_id": "b", "row": {"x": 2}}])

        # Read-only open never mutates the store (safe concurrently with a
        # writer) but filters the orphan rows out of the result set.
        readonly = RunStore.open(directory)
        assert readonly.rows() == [{"x": 1}]
        assert len(read_jsonl(readonly.rows_path)) == 2  # file untouched
        assert readonly.pending(tasks) == [tasks[1]]

        # The writing runner compacts the orphans away on resume.
        resumed = RunStore.create_or_resume(
            directory, experiment="fig2", scale="quick", tasks=tasks
        )
        assert read_jsonl(resumed.rows_path) == [{"task_id": "a", "row": {"x": 1}}]
        assert resumed.rows() == [{"x": 1}]

    def test_torn_append_does_not_corrupt_later_records(self, tmp_path):
        directory = tmp_path / "s"
        tasks = make_tasks(["a", "b"])
        store = RunStore.create_or_resume(directory, experiment="fig2", scale="quick", tasks=tasks)
        store.record("a", [{"x": 1}])
        # Crash tears the first (and only) line of task b's append: no
        # complete orphan lines exist, just partial bytes without a newline.
        with open(store.rows_path, "a", encoding="utf-8") as handle:
            handle.write('{"task_id": "b", "row"')
        resumed = RunStore.create_or_resume(
            directory, experiment="fig2", scale="quick", tasks=tasks
        )
        resumed.record("b", [{"x": 2}])
        assert resumed.rows() == [{"x": 1}, {"x": 2}]
        assert read_jsonl(resumed.rows_path) == [
            {"task_id": "a", "row": {"x": 1}},
            {"task_id": "b", "row": {"x": 2}},
        ]

    def test_tuple_overrides_resume_cleanly(self, tmp_path):
        directory = tmp_path / "s"
        tasks = make_tasks(["a"])
        RunStore.create_or_resume(
            directory,
            experiment="fig2",
            scale="quick",
            tasks=tasks,
            overrides={"dense_qubits": (6,)},
        )
        # The same call again must resume, not refuse over tuple-vs-list.
        resumed = RunStore.create_or_resume(
            directory,
            experiment="fig2",
            scale="quick",
            tasks=tasks,
            overrides={"dense_qubits": (6,)},
        )
        assert resumed.manifest["overrides"] == {"dense_qubits": [6]}

    def test_record_merges_foreign_manifest_updates(self, tmp_path):
        # Two store handles on the same directory (e.g. two shard runners):
        # completions recorded through one must survive a record() by the other.
        directory = tmp_path / "s"
        tasks = make_tasks(["a", "b"])
        first = RunStore.create_or_resume(directory, experiment="fig2", scale="quick", tasks=tasks)
        second = RunStore.create_or_resume(directory, experiment="fig2", scale="quick", tasks=tasks)
        first.record("a", [{"x": 1}])
        second.record("b", [{"x": 2}])
        merged = RunStore.open(directory)
        assert merged.completed_ids() == {"a", "b"}
        assert merged.rows() == [{"x": 1}, {"x": 2}]


# ---------------------------------------------------------------------------
# Runner: resume, equivalence, sharding
# ---------------------------------------------------------------------------


class TestRunner:
    def test_rows_match_direct_figure_call(self, tmp_path):
        report = tiny_fig2_run(tmp_path / "runs")
        assert report.executed == 4 and report.skipped == 0 and report.complete
        store = RunStore.open(report.directory)
        assert store.rows() == run_figure2(**TINY_FIG2)

    def test_multiprocess_rows_identical(self, tmp_path):
        report = tiny_fig2_run(tmp_path / "runs", workers=2)
        assert RunStore.open(report.directory).rows() == run_figure2(**TINY_FIG2)

    def test_interrupted_sweep_resumes_from_manifest(self, tmp_path, monkeypatch):
        out = tmp_path / "runs"
        real_execute = runner_mod.execute_task
        first_attempt: list[str] = []

        def crash_on_third(task):
            if len(first_attempt) == 2:
                raise RuntimeError("simulated crash mid-sweep")
            first_attempt.append(task.task_id)
            return real_execute(task)

        monkeypatch.setattr(runner_mod, "execute_task", crash_on_third)
        with pytest.raises(RuntimeError, match="simulated crash"):
            tiny_fig2_run(out)

        # Two tasks made it to disk before the crash.
        interrupted = RunStore.open(store_directory(out, "fig2", "quick"))
        assert interrupted.completed_ids() == set(first_attempt)
        assert len(interrupted.completed_ids()) == 2
        assert not interrupted.is_complete()

        # Restart: only the remaining tasks run, and the final rows are
        # byte-identical to an uninterrupted sweep.
        second_attempt: list[str] = []

        def counting(task):
            second_attempt.append(task.task_id)
            return real_execute(task)

        monkeypatch.setattr(runner_mod, "execute_task", counting)
        report = tiny_fig2_run(out)
        assert report.skipped == 2 and report.executed == 2 and report.complete
        assert set(second_attempt).isdisjoint(first_attempt)

        fresh = tiny_fig2_run(tmp_path / "fresh")
        assert (
            RunStore.open(store_directory(out, "fig2", "quick")).rows()
            == RunStore.open(fresh.directory).rows()
            == run_figure2(**TINY_FIG2)
        )

    def test_static_shards_compose_into_one_store(self, tmp_path):
        out = tmp_path / "runs"
        first = tiny_fig2_run(out, shard=(0, 2))
        assert first.shard_tasks == 2 and not first.complete
        second = tiny_fig2_run(out, shard=(1, 2))
        assert second.complete
        directory = store_directory(out, "fig2", "quick")
        store = RunStore.open(directory)
        assert store.rows() == run_figure2(**TINY_FIG2)
        # Each shard wrote its own segment named after the default writer id.
        assert (directory / "rows-shard-1-of-2.jsonl").exists()
        assert (directory / "rows-shard-2-of-2.jsonl").exists()

    def test_custom_writer_id(self, tmp_path):
        report = tiny_fig2_run(tmp_path / "runs", writer_id="ci-job-7")
        assert (report.directory / "rows-ci-job-7.jsonl").exists()
        assert RunStore.open(report.directory).rows() == run_figure2(**TINY_FIG2)

    def test_invalid_shard(self, tmp_path):
        with pytest.raises(ValueError, match="shard"):
            tiny_fig2_run(tmp_path / "runs", shard=(2, 2))

    def test_invalid_scale(self, tmp_path):
        with pytest.raises(ValueError, match="scale"):
            run_experiment("fig2", scale="huge", out_dir=tmp_path)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENT_NAMES:
            assert name in out

    def test_run_status_report_cycle(self, tmp_path, capsys):
        out_dir = str(tmp_path / "runs")
        assert main(["run", "fig2", "--workers", "1", "--out", out_dir, *TINY_FIG2_ARGS]) == 0
        assert "4 task(s)" in capsys.readouterr().out

        # Re-running resumes (everything skipped) instead of recomputing.
        assert main(["run", "fig2", "--workers", "1", "--out", out_dir, *TINY_FIG2_ARGS]) == 0
        assert "0 executed, 4 skipped" in capsys.readouterr().out

        assert main(["status", "--out", out_dir]) == 0
        status_out = capsys.readouterr().out
        assert "fig2" in status_out and "complete" in status_out

        json_path = tmp_path / "combined.json"
        assert main(["report", "fig2", "--out", out_dir, "--json", str(json_path)]) == 0
        assert "approx_ratio" in capsys.readouterr().out
        combined = json.loads(json_path.read_text(encoding="utf-8"))
        assert len(combined["fig2-quick"]) == 4

    def test_run_rejects_mismatched_resume(self, tmp_path, capsys):
        out_dir = str(tmp_path / "runs")
        assert main(["run", "fig2", "--workers", "1", "--out", out_dir, *TINY_FIG2_ARGS]) == 0
        capsys.readouterr()
        # Same store, different overrides -> refuse rather than mix rows.
        assert main(["run", "fig2", "--workers", "1", "--out", out_dir, "--set", "n=5"]) == 1
        assert "incompatible" in capsys.readouterr().err

    def test_run_fresh_discards_existing_store(self, tmp_path, capsys):
        out_dir = str(tmp_path / "runs")
        assert main(["run", "fig2", "--workers", "1", "--out", out_dir, *TINY_FIG2_ARGS]) == 0
        capsys.readouterr()
        args = ["run", "fig2", "--workers", "1", "--out", out_dir, "--fresh", *TINY_FIG2_ARGS]
        assert main(args) == 0
        assert "4 executed, 0 skipped" in capsys.readouterr().out

    def test_run_fresh_discards_writer_segments(self, tmp_path, capsys):
        out_dir = str(tmp_path / "runs")
        base = ["run", "fig2", "--workers", "1", "--out", out_dir, *TINY_FIG2_ARGS]
        assert main([*base, "--writer-id", "w1"]) == 0
        capsys.readouterr()
        assert main([*base, "--writer-id", "w2", "--fresh"]) == 0
        assert "4 executed, 0 skipped" in capsys.readouterr().out
        directory = store_directory(out_dir, "fig2", "quick")
        assert not (directory / "rows-w1.jsonl").exists()  # stale segment gone
        assert (directory / "rows-w2.jsonl").exists()

    def test_invalid_writer_id_fails_cleanly(self, tmp_path, capsys):
        out_dir = str(tmp_path / "runs")
        args = ["run", "fig2", "--out", out_dir, "--writer-id", "../evil", *TINY_FIG2_ARGS]
        assert main(args) == 1
        assert "invalid writer id" in capsys.readouterr().err

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig9"]) == 2
        assert "fig9" in capsys.readouterr().err

    def test_overrides_require_single_target(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "fig4a", "--out", str(tmp_path), "--set", "n=4"])

    def test_bad_shard_syntax(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "--out", str(tmp_path), "--shard", "nope"])

    def test_unknown_override_key_fails_cleanly(self, tmp_path, capsys):
        out_dir = str(tmp_path / "runs")
        assert main(["run", "fig2", "--out", out_dir, "--set", "bogus=1"]) == 1
        assert "unknown override" in capsys.readouterr().err

    def test_status_skips_corrupt_store(self, tmp_path, capsys):
        out_dir = tmp_path / "runs"
        assert main(["run", "fig2", "--workers", "1", "--out", str(out_dir), *TINY_FIG2_ARGS]) == 0
        bad = out_dir / "fig5-quick"
        bad.mkdir()
        (bad / "manifest.json").write_text("{ truncated", encoding="utf-8")
        capsys.readouterr()
        assert main(["status", "--out", str(out_dir)]) == 0
        captured = capsys.readouterr()
        assert "fig2" in captured.out  # healthy store still reported
        assert "skipping" in captured.err and "fig5-quick" in captured.err

    def test_status_empty(self, tmp_path, capsys):
        assert main(["status", "--out", str(tmp_path / "none")]) == 0
        assert "no run stores" in capsys.readouterr().out

    def test_report_missing_store(self, tmp_path, capsys):
        assert main(["report", "fig2", "--out", str(tmp_path / "none")]) == 1
        assert "no run store" in capsys.readouterr().err

    def test_report_corrupt_rows_fails_cleanly(self, tmp_path, capsys):
        out_dir = str(tmp_path / "runs")
        assert main(["run", "fig2", "--workers", "1", "--out", out_dir, *TINY_FIG2_ARGS]) == 0
        rows_path = store_directory(out_dir, "fig2", "quick") / "rows.jsonl"
        rows_path.write_text("damaged but newline-terminated\n", encoding="utf-8")
        capsys.readouterr()
        assert main(["report", "fig2", "--out", out_dir]) == 1
        assert "corrupt" in capsys.readouterr().err
