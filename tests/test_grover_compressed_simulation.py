"""Tests for compressed Grover-QAOA simulation (Sec. 2.4 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import qaoa_finite_difference_gradient, random_angles, simulate
from repro.grover import (
    amplitudes_by_value,
    compress_objective,
    grover_expectation,
    grover_value_and_gradient,
    hamming_weight_spectrum,
    simulate_grover_compressed,
)
from repro.hilbert import DickeSpace, FullSpace, state_matrix
from repro.mixers import GroverMixer
from repro.problems import densest_subgraph_values, erdos_renyi, maxcut_values


@pytest.fixture(scope="module")
def grover_setup():
    graph = erdos_renyi(7, 0.5, seed=17)
    obj = maxcut_values(graph, state_matrix(7))
    return obj, compress_objective(obj), GroverMixer(FullSpace(7))


class TestAgreementWithDenseSimulation:
    @pytest.mark.parametrize("p", [1, 2, 5])
    def test_expectation_matches_dense(self, grover_setup, p):
        obj, spectrum, mixer = grover_setup
        angles = random_angles(p, rng=p)
        dense = simulate(angles, mixer, obj)
        compressed = simulate_grover_compressed(angles, spectrum)
        assert np.isclose(compressed.expectation(), dense.expectation(), atol=1e-10)

    def test_ground_state_probability_matches_dense(self, grover_setup):
        obj, spectrum, mixer = grover_setup
        angles = random_angles(3, rng=9)
        dense = simulate(angles, mixer, obj)
        compressed = simulate_grover_compressed(angles, spectrum)
        assert np.isclose(
            compressed.ground_state_probability(),
            dense.ground_state_probability(),
            atol=1e-10,
        )

    def test_class_amplitudes_match_dense_amplitudes(self, grover_setup):
        obj, spectrum, mixer = grover_setup
        angles = random_angles(2, rng=10)
        dense = simulate(angles, mixer, obj)
        compressed = simulate_grover_compressed(angles, spectrum)
        by_value = amplitudes_by_value(compressed)
        # Every dense amplitude equals its class amplitude (fair sampling).
        for value, amplitude in by_value.items():
            mask = obj == value
            assert np.allclose(dense.statevector[mask], amplitude, atol=1e-10)

    def test_dicke_constrained_grover(self, small_graph):
        space = DickeSpace(6, 3)
        obj = densest_subgraph_values(small_graph, space.bits)
        spectrum = compress_objective(obj)
        mixer = GroverMixer(space)
        angles = random_angles(3, rng=11)
        dense = simulate(angles, mixer, obj)
        compressed = simulate_grover_compressed(angles, spectrum)
        assert np.isclose(compressed.expectation(), dense.expectation(), atol=1e-10)


class TestCompressedResult:
    def test_norm_is_one(self, grover_setup):
        _, spectrum, _ = grover_setup
        result = simulate_grover_compressed(random_angles(4, rng=12), spectrum)
        assert np.isclose(result.norm(), 1.0)
        assert np.isclose(result.class_probabilities().sum(), 1.0)

    def test_probability_of_value(self, grover_setup):
        _, spectrum, _ = grover_setup
        result = simulate_grover_compressed(random_angles(2, rng=13), spectrum)
        total = sum(result.probability_of_value(v) for v in spectrum.values)
        assert np.isclose(total, 1.0)
        with pytest.raises(KeyError):
            result.probability_of_value(-123.0)

    def test_zero_angles_uniform(self, grover_setup):
        obj, spectrum, _ = grover_setup
        result = simulate_grover_compressed(np.zeros(2), spectrum)
        assert np.isclose(result.expectation(), obj.mean())

    def test_odd_angle_count_rejected(self, grover_setup):
        _, spectrum, _ = grover_setup
        with pytest.raises(ValueError):
            simulate_grover_compressed(np.zeros(3), spectrum)

    def test_grover_expectation_helper(self, grover_setup):
        _, spectrum, _ = grover_setup
        angles = random_angles(2, rng=14)
        assert np.isclose(
            grover_expectation(angles, spectrum),
            simulate_grover_compressed(angles, spectrum).expectation(),
        )


class TestCompressedGradient:
    @pytest.mark.parametrize("p", [1, 3])
    def test_matches_dense_finite_difference(self, grover_setup, p):
        obj, spectrum, mixer = grover_setup
        angles = random_angles(p, rng=20 + p)
        value, grad = grover_value_and_gradient(angles, spectrum)
        dense_fd = qaoa_finite_difference_gradient(angles, mixer, obj)
        assert np.isclose(value, grover_expectation(angles, spectrum))
        assert np.allclose(grad, dense_fd, atol=1e-6)

    def test_odd_angle_count_rejected(self, grover_setup):
        _, spectrum, _ = grover_setup
        with pytest.raises(ValueError):
            grover_value_and_gradient(np.zeros(5), spectrum)


class TestLargeN:
    def test_n_100_simulation_runs(self):
        spectrum = hamming_weight_spectrum(100, lambda w: float(min(w, 100 - w)))
        angles = np.array([0.4, 0.1, 0.9, 1.3])
        result = simulate_grover_compressed(angles, spectrum)
        assert np.isclose(result.norm(), 1.0, atol=1e-9)
        assert 0.0 <= result.expectation() <= 50.0
        assert result.spectrum.total == 2**100

    def test_grover_search_via_threshold(self):
        """Threshold phase separator + Grover mixer reproduces amplitude
        amplification: one marked class out of N gets boosted by the optimal
        angles (pi phases), exactly as in Grover's algorithm."""
        n = 10
        # Indicator objective: 1 on a single marked state class, 0 elsewhere.
        from repro.grover.compress import binomial_spectrum

        N = 2**n
        spectrum = binomial_spectrum([0.0, 1.0], [N - 1, 1])
        # One Grover iteration corresponds to beta = gamma = pi.
        angles_1 = np.array([np.pi, np.pi])
        result = simulate_grover_compressed(angles_1, spectrum)
        start_prob = 1.0 / N
        boosted = result.probability_of_value(1.0)
        # One iteration boosts the marked probability by roughly a factor of 9.
        assert boosted > 8 * start_prob
