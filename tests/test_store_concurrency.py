"""Multiprocessing stress suite for concurrent same-store writers.

Eight writer processes hammer one :class:`RunStore` directory at once, every
writer racing to record *every* task (maximal contention on the manifest and
on duplicate completions).  Across repeated rounds the store must end up
exactly as a serial single-writer run leaves it: every task recorded once, all
rows present and byte-identical after canonical ordering, no
``RunStoreError``, and no corrupt JSONL anywhere.
"""

from __future__ import annotations

import multiprocessing
import random
import warnings

import pytest

from repro.experiments import RunStore
from repro.experiments.tasks import RowTask
from repro.io.results import read_jsonl

WRITERS = 8
TASK_IDS = [f"t{i:02d}" for i in range(12)]


def _tasks() -> list[RowTask]:
    return [RowTask("fig2", task_id, {}) for task_id in TASK_IDS]


def _rows_for(task_id: str) -> list[dict]:
    # Deterministic multi-row payload so content mismatches are detectable.
    return [{"task": task_id, "i": i, "value": float(i) / 7.0} for i in range(3)]


def _serial_reference(directory) -> list[dict]:
    store = RunStore.create_or_resume(
        directory, experiment="fig2", scale="quick", tasks=_tasks(), writer_id="serial"
    )
    for task_id in TASK_IDS:
        store.record(task_id, _rows_for(task_id), duration_s=0.01)
    return store.rows()


def _contending_writer(directory: str, writer_index: int, seed: int, barrier) -> None:
    writer_id = f"w{writer_index}"
    store = RunStore.create_or_resume(
        str(directory), experiment="fig2", scale="quick", tasks=_tasks(), writer_id=writer_id
    )
    order = list(TASK_IDS)
    random.Random(seed * WRITERS + writer_index).shuffle(order)
    barrier.wait()  # maximize simultaneous first records
    with warnings.catch_warnings():
        # Losing a duplicate race is expected here — the point is that it
        # warns instead of raising RunStoreError.
        warnings.simplefilter("ignore", RuntimeWarning)
        for task_id in order:
            if task_id in store.completed_ids():
                continue  # best-effort skip; races still funnel into record()
            store.record(task_id, _rows_for(task_id), duration_s=0.001)


@pytest.fixture(scope="module")
def fork_ctx():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        pytest.skip("concurrent-writer stress suite needs the fork start method")


@pytest.mark.parametrize("repetition", range(20))
def test_eight_simultaneous_writers_lose_nothing(tmp_path, fork_ctx, repetition):
    directory = tmp_path / "store"
    barrier = fork_ctx.Barrier(WRITERS)
    procs = [
        fork_ctx.Process(
            target=_contending_writer, args=(str(directory), i, repetition, barrier)
        )
        for i in range(WRITERS)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
    # No writer crashed (a RunStoreError or corrupt store would exit non-zero).
    assert [proc.exitcode for proc in procs] == [0] * WRITERS

    store = RunStore.open(directory)
    manifest = store.manifest

    # Every task recorded exactly once (the manifest is a map, so "exactly
    # once" means: all present, and each task's rows exist in exactly the one
    # segment its entry names, at exactly the recorded count).
    assert store.completed_ids() == set(TASK_IDS)
    assert store.is_complete()
    for task_id in TASK_IDS:
        assert manifest["completed"][task_id]["rows"] == len(_rows_for(task_id))

    # No byte of any segment is corrupt (read_jsonl raises on damage), and
    # winner segments hold each task's rows exactly once.
    recorded = {task_id: 0 for task_id in TASK_IDS}
    for seg_path in store.segment_paths():
        for record in read_jsonl(seg_path):
            entry = manifest["completed"][record["task_id"]]
            if entry["segment"] == seg_path.name:
                recorded[record["task_id"]] += 1
    assert recorded == {task_id: 3 for task_id in TASK_IDS}

    # Byte-identical (after canonical work-list ordering) to a serial
    # single-writer run of the same work-list.
    assert store.rows() == _serial_reference(tmp_path / "serial")


def test_concurrent_writers_then_resume_compacts_cleanly(tmp_path, fork_ctx):
    """After a contended run, a fresh create_or_resume leaves a canonical store."""
    directory = tmp_path / "store"
    barrier = fork_ctx.Barrier(WRITERS)
    procs = [
        fork_ctx.Process(target=_contending_writer, args=(str(directory), i, 999, barrier))
        for i in range(WRITERS)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
    assert [proc.exitcode for proc in procs] == [0] * WRITERS

    resumed = RunStore.create_or_resume(
        directory, experiment="fig2", scale="quick", tasks=_tasks(), writer_id="resumer"
    )
    assert resumed.pending(_tasks()) == []
    # Post-compaction, every surviving segment record is a manifest winner.
    total = sum(len(read_jsonl(p)) for p in resumed.segment_paths())
    assert total == len(TASK_IDS) * 3
    assert resumed.rows() == _serial_reference(tmp_path / "serial")
