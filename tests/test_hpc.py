"""Tests for state-space partitioning, parallel pre-computation and memory accounting."""

from __future__ import annotations

from functools import partial
from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grover import compress_objective
from repro.hilbert import DickeSpace, dicke_labels, state_matrix
from repro.hpc import (
    Chunk,
    chunk_labels,
    default_workers,
    evaluate_chunk,
    parallel_compress,
    parallel_imap_unordered,
    parallel_objective_values,
    split_dicke_space,
    split_full_space,
    split_range,
)
from repro.hpc.memory import (
    dense_unitary_bytes,
    eigendecomposition_bytes,
    measure_peak_allocation,
    rss_bytes,
    simulator_memory_estimate,
    statevector_bytes,
)
from repro.hpc.parallel import _compress_chunk
from repro.problems import erdos_renyi
from repro.problems.maxcut import maxcut_values


@pytest.fixture(scope="module")
def graph8():
    return erdos_renyi(8, 0.5, seed=20)


def _negated_weight_cost(bits, offset=0.0):
    """All-negative objective with several distinct values (picklable for pools)."""
    weights = np.arange(1, bits.shape[1] + 1, dtype=np.float64)
    return -(bits @ weights) - offset


class TestSplitRange:
    def test_covers_everything_disjointly(self):
        ranges = split_range(100, 7)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0
        assert sum(b - a for a, b in ranges) == 100

    def test_balanced_sizes(self):
        sizes = [b - a for a, b in split_range(103, 10)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_items(self):
        ranges = split_range(3, 10)
        assert len(ranges) == 3

    def test_zero_total(self):
        assert split_range(0, 4) == [(0, 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            split_range(-1, 2)
        with pytest.raises(ValueError):
            split_range(5, 0)

    @given(st.integers(min_value=0, max_value=10000), st.integers(min_value=1, max_value=64))
    @settings(max_examples=50)
    def test_property_partition(self, total, workers):
        ranges = split_range(total, workers)
        covered = sum(b - a for a, b in ranges)
        assert covered == total


class TestSpacePartitioning:
    def test_full_space_chunks(self):
        chunks = split_full_space(6, 4)
        assert sum(c.size for c in chunks) == 64
        labels = np.concatenate([chunk_labels(c, 6) for c in chunks])
        assert np.array_equal(labels, np.arange(64))

    def test_dicke_chunks_cover_subspace(self):
        n, k = 9, 4
        chunks = split_dicke_space(n, k, 5)
        assert sum(c.size for c in chunks) == comb(n, k)
        labels = np.concatenate([chunk_labels(c, n, k) for c in chunks])
        assert np.array_equal(labels, dicke_labels(n, k))

    def test_dicke_chunk_start_labels(self):
        chunks = split_dicke_space(8, 3, 3)
        labels = dicke_labels(8, 3)
        for chunk in chunks:
            if chunk.size:
                assert chunk.start_label == labels[chunk.start]

    def test_single_worker(self):
        chunks = split_dicke_space(6, 3, 1)
        assert len(chunks) == 1
        assert chunks[0].size == 20

    def test_chunk_labels_empty(self):
        empty = Chunk(index=0, start=5, stop=5)
        assert chunk_labels(empty, 6, 2).size == 0

    def test_chunk_labels_missing_start_label(self):
        with pytest.raises(ValueError):
            chunk_labels(Chunk(index=0, start=0, stop=3), 6, 2)


class TestParallelPrecompute:
    def test_serial_matches_direct(self, graph8):
        expected = maxcut_values(graph8, state_matrix(8))
        values = parallel_objective_values(partial(maxcut_values, graph8), 8, processes=1)
        assert np.allclose(values, expected)

    def test_multiprocess_matches_direct(self, graph8):
        expected = maxcut_values(graph8, state_matrix(8))
        values = parallel_objective_values(partial(maxcut_values, graph8), 8, processes=3)
        assert np.allclose(values, expected)

    def test_dicke_space_parallel(self, graph8):
        space = DickeSpace(8, 4)
        expected = maxcut_values(graph8, space.bits)
        values = parallel_objective_values(partial(maxcut_values, graph8), 8, k=4, processes=2)
        assert np.allclose(values, expected)

    def test_parallel_compress_matches_serial(self, graph8):
        expected = compress_objective(maxcut_values(graph8, state_matrix(8)))
        spec = parallel_compress(partial(maxcut_values, graph8), 8, processes=3)
        assert np.array_equal(spec.values, expected.values)
        assert spec.degeneracies == expected.degeneracies
        assert spec.total == expected.total

    def test_parallel_compress_dicke(self, graph8):
        space = DickeSpace(8, 3)
        expected = compress_objective(maxcut_values(graph8, space.bits))
        spec = parallel_compress(partial(maxcut_values, graph8), 8, k=3, processes=2)
        assert np.array_equal(spec.values, expected.values)
        assert spec.degeneracies == expected.degeneracies

    def test_evaluate_chunk(self, graph8):
        chunk = Chunk(index=0, start=10, stop=20)
        vals = evaluate_chunk(chunk, partial(maxcut_values, graph8), 8)
        expected = maxcut_values(graph8, state_matrix(8))[10:20]
        assert np.allclose(vals, expected)

    def test_compress_chunk_empty_is_none_not_phantom_state(self, graph8):
        # Regression: an empty chunk used to come back as a value-0.0
        # single-state "sentinel" spectrum that merge() folded in as real.
        empty = Chunk(index=0, start=7, stop=7)
        assert _compress_chunk(empty, partial(maxcut_values, graph8), 8) is None

    @pytest.mark.parametrize("processes", [7, 64])
    def test_parallel_compress_matches_serial_with_excess_processes(self, processes):
        # processes > number of feasible states is the regime that produces
        # empty chunks; the merged spectrum must still agree exactly with the
        # serial path — including for all-negative objectives, where the old
        # phantom 0.0 state became the reported optimum.
        n, k = 4, 2  # comb(4, 2) = 6 feasible states
        space = DickeSpace(n, k)
        cost = partial(_negated_weight_cost, offset=5.0)
        expected = compress_objective(cost(space.bits))
        spec = parallel_compress(cost, n, k=k, processes=processes)
        assert np.array_equal(spec.values, expected.values)
        assert spec.degeneracies == expected.degeneracies
        assert spec.total == expected.total == 6
        assert spec.optimum == expected.optimum < 0
        assert spec.mean() == pytest.approx(expected.mean())

    def test_parallel_objective_values_with_excess_processes(self, graph8):
        space = DickeSpace(8, 1)  # 8 states, far fewer than workers
        expected = maxcut_values(graph8, space.bits)
        values = parallel_objective_values(partial(maxcut_values, graph8), 8, k=1, processes=32)
        assert np.allclose(values, expected)

    def test_parallel_compress_empty_space_raises_cleanly(self, graph8):
        # comb(4, 5) = 0 feasible states: a clear ValueError mirroring the
        # CompressedObjective contract, not a bare IndexError on pieces[0].
        with pytest.raises(ValueError, match="at least one value"):
            parallel_compress(partial(maxcut_values, graph8), 4, k=5, processes=4)

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_workers() >= 1

    def test_default_workers_invalid_env_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "not a number")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
            assert default_workers() >= 1


def _square(x):
    return x * x


class TestParallelImapUnordered:
    def test_serial_and_parallel_agree(self):
        items = list(range(7))
        expected = {i: i * i for i in items}
        assert dict(parallel_imap_unordered(_square, items, processes=1)) == expected
        assert dict(parallel_imap_unordered(_square, items, processes=3)) == expected

    def test_single_item_runs_inline(self):
        assert list(parallel_imap_unordered(_square, [3], processes=8)) == [(0, 9)]

    def test_empty(self):
        assert list(parallel_imap_unordered(_square, [], processes=4)) == []


class TestMemoryAccounting:
    def test_statevector_bytes(self):
        assert statevector_bytes(1 << 10) == (1 << 10) * 16
        with pytest.raises(ValueError):
            statevector_bytes(0)

    def test_eigendecomposition_bytes(self):
        dim = 100
        assert eigendecomposition_bytes(dim) == dim * dim * 8 + dim * 8
        assert eigendecomposition_bytes(dim, complex_vectors=True) == dim * dim * 16 + dim * 8

    def test_dense_unitary_dominates(self):
        n = 10
        assert dense_unitary_bytes(1 << n) > statevector_bytes(1 << n) * 100

    def test_simulator_memory_estimates_ordering(self):
        for n in (8, 12, 16):
            direct = simulator_memory_estimate(n, kind="direct")
            layer = simulator_memory_estimate(n, kind="layer")
            dense = simulator_memory_estimate(n, kind="dense")
            assert direct < layer <= dense

    def test_subspace_estimate_requires_dim(self):
        with pytest.raises(ValueError):
            simulator_memory_estimate(10, kind="direct_subspace")
        est = simulator_memory_estimate(10, kind="direct_subspace", subspace_dim=252)
        assert est > 0

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            simulator_memory_estimate(8, kind="quantum")

    def test_measure_peak_allocation(self):
        result, peak = measure_peak_allocation(lambda: np.zeros(200_000))
        assert result.shape == (200_000,)
        assert peak >= 200_000 * 8

    def test_rss_bytes_nonnegative(self):
        assert rss_bytes() >= 0


class TestChunkLabelSeams:
    """The Gosper-walk / ``unrank_state`` seam at Dicke chunk boundaries.

    ``chunk_labels`` walks each chunk with Gosper's hack starting from the
    chunk's ``unrank_state``-derived ``start_label``; the two mechanisms must
    agree exactly where chunks meet, or a sharded Dicke evolution would
    silently duplicate or skip states at every boundary.
    """

    @pytest.mark.parametrize(
        "n,k,workers",
        [
            (6, 3, 4),
            (8, 4, 3),
            (9, 2, 5),
            (10, 5, 7),
            (7, 1, 2),
            (7, 6, 2),
            (5, 0, 3),  # single-state subspace, k = 0
            (5, 5, 3),  # single-state subspace, k = n
        ],
    )
    def test_boundary_successors(self, n, k, workers):
        from repro.hilbert.bitops import gosper_next

        chunks = split_dicke_space(n, k, workers)
        labels_per_chunk = [chunk_labels(chunk, n, k) for chunk in chunks]
        # First label of chunk i+1 is the Gosper successor of the last label
        # of chunk i.
        for left, right in zip(labels_per_chunk, labels_per_chunk[1:]):
            assert right[0] == gosper_next(int(left[-1]))
        # And the concatenation is exactly the sorted weight-k subspace.
        joined = np.concatenate(labels_per_chunk)
        assert joined.size == comb(n, k)
        assert np.all(np.diff(joined) > 0)
        bits = np.array([bin(int(x)).count("1") for x in joined])
        assert np.all(bits == k)

    def test_start_labels_match_unrank(self):
        from repro.hilbert import unrank_state

        for n, k, workers in [(8, 3, 4), (9, 4, 6)]:
            chunks = split_dicke_space(n, k, workers)
            for chunk in chunks:
                assert chunk.start_label == unrank_state(chunk.start, n, k)


class TestShardedStateBytes:
    def test_matches_manual_accounting(self):
        from repro.hpc.memory import sharded_state_bytes

        # 2^20 states over 4 shards, batch 1, two buffers: each worker maps
        # 2^18 * (2*16) bytes of state plus 2^18 * 8 bytes of values.
        assert sharded_state_bytes(1 << 20, 4) == (1 << 18) * (2 * 16 + 8)
        # Gradient adds the third buffer.
        assert sharded_state_bytes(1 << 20, 4, slots=3) == (1 << 18) * (3 * 16 + 8)
        # Uneven splits size by the largest chunk.
        assert sharded_state_bytes(10, 3) == 4 * (2 * 16 + 8)

    def test_scaling_beats_dense_estimate(self):
        from repro.hpc.memory import sharded_state_bytes

        n = 26
        dense = simulator_memory_estimate(n)
        per_worker = sharded_state_bytes(1 << n, 4, slots=3)
        assert per_worker < 0.75 * dense

    def test_validation(self):
        from repro.hpc.memory import sharded_state_bytes

        with pytest.raises(ValueError):
            sharded_state_bytes(0, 2)
        with pytest.raises(ValueError):
            sharded_state_bytes(16, 0)
        with pytest.raises(ValueError):
            sharded_state_bytes(4, 8)
        with pytest.raises(ValueError):
            sharded_state_bytes(16, 2, batch=0)
        with pytest.raises(ValueError):
            sharded_state_bytes(16, 2, slots=0)


class TestWarmEntryBytesKinds:
    def test_dense_unchanged(self):
        from repro.hpc.memory import warm_entry_bytes

        dim = 1 << 8
        base = warm_entry_bytes(dim, p=2)
        assert base == dim * 8 + 3 * dim * 16 + 2 * 2 * dim * 16
        assert warm_entry_bytes(dim, p=2, kind="dense") == base

    def test_sharded_accounts_all_workers(self):
        from repro.hpc.memory import sharded_state_bytes, warm_entry_bytes

        dim, shards, p = 1 << 12, 4, 2
        total = warm_entry_bytes(dim, p=p, kind="sharded", shards=shards)
        per_worker = sharded_state_bytes(dim, shards, slots=3)
        layers = p * 2 * (dim // shards) * 16
        assert total == shards * (per_worker + layers)

    def test_compressed_is_tiny(self):
        from repro.hpc.memory import warm_entry_bytes

        small = warm_entry_bytes(1 << 10, p=3, kind="compressed", distinct=51)
        dense = warm_entry_bytes(1 << 10, p=3)
        assert small < dense / 10
        # Sizing never touches dim, so astronomically large dims work.
        huge = warm_entry_bytes(1 << 100, p=3, kind="compressed", distinct=51)
        assert huge == small

    def test_unsizable_entries_raise(self):
        from repro.hpc.memory import warm_entry_bytes

        with pytest.raises(ValueError, match="shard count"):
            warm_entry_bytes(1 << 12, kind="sharded")
        with pytest.raises(ValueError, match="distinct"):
            warm_entry_bytes(1 << 12, kind="compressed")
        with pytest.raises(ValueError, match="cannot size"):
            warm_entry_bytes(1 << 12, kind="gpu_resident")

    def test_peak_rss(self):
        from repro.hpc.memory import peak_rss_bytes

        assert peak_rss_bytes() >= rss_bytes() > 0
