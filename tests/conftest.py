"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hilbert import DickeSpace, FullSpace, state_matrix
from repro.mixers import CliqueMixer, GroverMixer, RingMixer, transverse_field_mixer
from repro.problems import densest_subgraph_values, erdos_renyi, maxcut_values


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_graph():
    """A fixed 6-node Erdos–Renyi graph used across tests."""
    return erdos_renyi(6, 0.5, seed=1)


@pytest.fixture
def tiny_graph():
    """A fixed 4-node Erdos–Renyi graph for dense cross-checks."""
    return erdos_renyi(4, 0.6, seed=7)


@pytest.fixture
def maxcut_obj(small_graph):
    """MaxCut objective values over the full 6-qubit space."""
    return maxcut_values(small_graph, state_matrix(6))


@pytest.fixture
def dicke_space_63():
    """The Hamming-weight-3 subspace of 6 qubits."""
    return DickeSpace(6, 3)


@pytest.fixture
def dks_obj(small_graph, dicke_space_63):
    """Densest-3-subgraph objective values over the 6-choose-3 subspace."""
    return densest_subgraph_values(small_graph, dicke_space_63.bits)


@pytest.fixture
def tf_mixer_6():
    """Transverse-field mixer on 6 qubits."""
    return transverse_field_mixer(6)


@pytest.fixture
def grover_mixer_6():
    """Grover mixer over the full 6-qubit space."""
    return GroverMixer(FullSpace(6))


@pytest.fixture
def clique_mixer_63():
    """Clique mixer on the (6, 3) Dicke subspace."""
    return CliqueMixer(6, 3)


@pytest.fixture
def ring_mixer_63():
    """Ring mixer on the (6, 3) Dicke subspace."""
    return RingMixer(6, 3)


def dense_qaoa_reference(obj_vals, mixer_matrix, initial, betas, gammas):
    """Brute-force dense reference evolution used by correctness tests."""
    import scipy.linalg as sla

    psi = np.asarray(initial, dtype=np.complex128).copy()
    for beta, gamma in zip(betas, gammas):
        psi = np.exp(-1j * gamma * np.asarray(obj_vals)) * psi
        psi = sla.expm(-1j * beta * mixer_matrix) @ psi
    return psi


@pytest.fixture
def dense_reference():
    """Expose the dense reference evolution helper as a fixture."""
    return dense_qaoa_reference
