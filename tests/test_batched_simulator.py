"""Batched-vs-scalar equivalence for the batched evaluation engine.

The batched engine evolves M angle sets as the columns of one ``(dim, M)``
matrix; these tests pin it to the scalar one-statevector-at-a-time path across
every mixer family, round count, feasible space, batch size (including M = 1)
and non-uniform initial states — plus the allocation and caching guarantees
the hot path claims.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core import (
    BatchedWorkspace,
    QAOAAnsatz,
    expectation_value,
    expectation_value_batch,
    simulate,
    simulate_batch,
)
from repro.core.workspace import Workspace
from repro.hilbert import state_matrix
from repro.mixers import (
    MultiAngleXMixer,
    grover_mixer,
    grover_mixer_dicke,
    mixer_clique,
    mixer_ring,
    transverse_field_mixer,
)
from repro.mixers.unitary import FixedUnitaryMixer, HermitianMixer
from repro.problems import erdos_renyi, maxcut_values

_N = 6
_K = 3


def _objective(dim: int, seed: int = 11) -> np.ndarray:
    return np.random.default_rng(seed).random(dim)


def _mixer(kind: str):
    if kind == "x":
        return transverse_field_mixer(_N)
    if kind == "grover-full":
        return grover_mixer(_N)
    if kind == "grover-dicke":
        return grover_mixer_dicke(_N, _K)
    if kind == "clique":
        return mixer_clique(_N, _K)
    if kind == "ring":
        return mixer_ring(_N, _K)
    if kind == "hermitian":
        rng = np.random.default_rng(3)
        mat = rng.random((16, 16)) + 1j * rng.random((16, 16))
        return HermitianMixer(mat + mat.conj().T)
    raise ValueError(kind)


_ALL_KINDS = ["x", "grover-full", "grover-dicke", "clique", "ring", "hermitian"]


@pytest.mark.parametrize("kind", _ALL_KINDS)
@pytest.mark.parametrize("p", [1, 3])
@pytest.mark.parametrize("batch", [1, 7])
def test_expectation_batch_matches_scalar_loop(kind, p, batch):
    mixer = _mixer(kind)
    obj = _objective(mixer.dim)
    rng = np.random.default_rng(100 * p + batch)
    angles = 2.0 * np.pi * rng.random((batch, 2 * p))
    batched = expectation_value_batch(angles, mixer, obj, p=p)
    looped = np.array([expectation_value(angles[j], mixer, obj, p=p) for j in range(batch)])
    assert batched.shape == (batch,)
    assert np.abs(batched - looped).max() <= 1e-10


@pytest.mark.parametrize("kind", _ALL_KINDS)
@pytest.mark.parametrize("p", [1, 3])
def test_simulate_batch_statevectors_match(kind, p):
    mixer = _mixer(kind)
    obj = _objective(mixer.dim, seed=7)
    rng = np.random.default_rng(p)
    angles = 2.0 * np.pi * rng.random((5, 2 * p))
    results = simulate_batch(angles, mixer, obj, p=p)
    assert len(results) == 5
    for j, result in enumerate(results):
        scalar = simulate(angles[j], mixer, obj, p=p)
        assert np.abs(result.statevector - scalar.statevector).max() <= 1e-12
        assert result.p == p
        assert np.isclose(result.expectation(), scalar.expectation(), atol=1e-12)


@pytest.mark.parametrize("kind", ["x", "grover-dicke", "clique"])
def test_non_uniform_initial_state(kind):
    mixer = _mixer(kind)
    obj = _objective(mixer.dim, seed=21)
    rng = np.random.default_rng(5)
    init = rng.random(mixer.dim) + 1j * rng.random(mixer.dim)
    init /= np.linalg.norm(init)
    angles = 2.0 * np.pi * rng.random((4, 4))
    batched = expectation_value_batch(angles, mixer, obj, p=2, initial_state=init)
    looped = np.array(
        [
            expectation_value(angles[j], mixer, obj, p=2, initial_state=init)
            for j in range(4)
        ]
    )
    assert np.abs(batched - looped).max() <= 1e-10


def test_per_column_initial_states():
    mixer = transverse_field_mixer(_N)
    obj = _objective(mixer.dim, seed=9)
    rng = np.random.default_rng(8)
    inits = rng.random((mixer.dim, 3)) + 1j * rng.random((mixer.dim, 3))
    inits /= np.linalg.norm(inits, axis=0, keepdims=True)
    angles = 2.0 * np.pi * rng.random((3, 2))
    batched = expectation_value_batch(angles, mixer, obj, p=1, initial_state=inits)
    looped = np.array(
        [
            expectation_value(angles[j], mixer, obj, p=1, initial_state=inits[:, j].copy())
            for j in range(3)
        ]
    )
    assert np.abs(batched - looped).max() <= 1e-10


def test_multiangle_batched_equivalence():
    mixer = MultiAngleXMixer(4, [(0,), (1,), (2,), (3,)])
    obj = maxcut_values(erdos_renyi(4, 0.6, seed=2), state_matrix(4))
    p = 2
    num_angles = mixer.num_angles * p + p
    rng = np.random.default_rng(4)
    angles = 2.0 * np.pi * rng.random((6, num_angles))
    batched = expectation_value_batch(angles, mixer, obj, p=p)
    looped = np.array([expectation_value(angles[j], mixer, obj, p=p) for j in range(6)])
    assert np.abs(batched - looped).max() <= 1e-10


def test_fixed_unitary_beta_one_fast_path():
    rng = np.random.default_rng(12)
    mat = rng.random((8, 8)) + 1j * rng.random((8, 8))
    herm = mat + mat.conj().T
    eigenvalues, eigenvectors = np.linalg.eigh(herm)
    unitary = (eigenvectors * np.exp(-1j * eigenvalues)) @ eigenvectors.conj().T
    mixer = FixedUnitaryMixer(unitary)
    psi = rng.random((8, 5)) + 1j * rng.random((8, 5))
    psi /= np.linalg.norm(psi, axis=0, keepdims=True)
    # beta = 1 must reproduce U @ psi exactly (single-GEMM fast path)
    out = mixer.apply_batch(psi.copy(), np.ones(5))
    assert np.abs(out - unitary @ psi).max() <= 1e-12
    # mixed angles fall back to the eigenbasis path and match the scalar apply
    betas = rng.random(5)
    out = mixer.apply_batch(psi.copy(), betas)
    for j in range(5):
        assert np.abs(out[:, j] - mixer.apply(psi[:, j].copy(), betas[j])).max() <= 1e-12


def test_apply_batch_out_aliases_input():
    mixer = mixer_clique(_N, _K)
    rng = np.random.default_rng(2)
    psi = rng.random((mixer.dim, 4)) + 1j * rng.random((mixer.dim, 4))
    betas = rng.random(4)
    expected = mixer.apply_batch(psi.copy(), betas)
    inplace = np.ascontiguousarray(psi)
    mixer.apply_batch(inplace, betas, out=inplace)
    assert np.abs(inplace - expected).max() <= 1e-12


def test_uniform_beta_batch_fast_path():
    mixer = mixer_ring(_N, _K)
    rng = np.random.default_rng(6)
    psi = rng.random((mixer.dim, 5)) + 1j * rng.random((mixer.dim, 5))
    uniform = mixer.apply_batch(psi.copy(), np.full(5, 0.37))
    general = mixer.apply_batch(psi.copy(), np.array([0.37, 0.37, 0.37, 0.37, 0.37 + 1e-16]))
    for j in range(5):
        scalar = mixer.apply(np.ascontiguousarray(psi[:, j]), 0.37)
        assert np.abs(uniform[:, j] - scalar).max() <= 1e-12
    assert np.abs(uniform - general).max() <= 1e-12


class TestBatchedWorkspace:
    def test_views_are_contiguous_and_grow_only(self):
        ws = BatchedWorkspace(10, 4)
        assert ws.capacity == 4
        state = ws.state(3)
        assert state.shape == (10, 3)
        assert state.flags.c_contiguous
        ws.ensure(2)
        assert ws.capacity == 4  # never shrinks
        grown = ws.state(9)
        assert ws.capacity == 9
        assert grown.shape == (10, 9)

    def test_load_states_broadcast_and_matrix(self):
        ws = BatchedWorkspace(4, 2)
        single = np.arange(4, dtype=np.complex128)
        states = ws.load_states(single, 2)
        assert np.array_equal(states[:, 0], single)
        assert np.array_equal(states[:, 1], single)
        matrix = np.arange(8, dtype=np.complex128).reshape(4, 2)
        states = ws.load_states(matrix, 2)
        assert np.array_equal(states, matrix)
        with pytest.raises(ValueError):
            ws.load_states(np.zeros(3), 2)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            BatchedWorkspace(0)
        with pytest.raises(ValueError):
            BatchedWorkspace(4).ensure(0)
        assert not BatchedWorkspace(4).compatible_with(5)


class TestDiagonalizedAllocationFree:
    """The satellite fix: DiagonalizedMixer.apply must allocate nothing when
    given an ``out`` buffer (the module's "allocate nothing" claim)."""

    def test_apply_zero_allocation_growth(self):
        mixer = mixer_clique(8, 4)  # dim = 70, real eigenbasis
        psi = mixer.initial_state()
        out = np.empty_like(psi)
        for _ in range(5):
            mixer.apply(psi, 0.3, out=out)
        tracemalloc.start()
        try:
            before = tracemalloc.get_traced_memory()[0]
            for _ in range(200):
                mixer.apply(psi, 0.3, out=out)
            growth = tracemalloc.get_traced_memory()[0] - before
        finally:
            tracemalloc.stop()
        assert growth < mixer.dim * 16, f"apply grew the heap by {growth} bytes"

    def test_apply_with_external_scratch(self):
        mixer = mixer_clique(_N, _K)
        ws = Workspace(mixer.dim)
        psi = mixer.initial_state()
        expected = mixer.apply(psi, 0.8)
        got = mixer.apply(psi, 0.8, out=ws.state, scratch=ws.scratch)
        assert got is ws.state
        assert np.abs(got - expected).max() <= 1e-12


def test_sample_caches_normalized_probabilities():
    mixer = transverse_field_mixer(4)
    obj = _objective(16, seed=2)
    result = simulate(np.array([0.3, 0.9]), mixer, obj, p=1)
    assert "probs_normalized" not in result._cache
    first = result.sample(50, rng=0)
    assert "probs_normalized" in result._cache
    cached = result._cache["probs_normalized"]
    second = result.sample(50, rng=0)
    assert result._cache["probs_normalized"] is cached
    assert np.array_equal(first, second)
    assert np.isclose(cached.sum(), 1.0)


def test_ansatz_expectation_batch_reuses_workspace():
    obj = _objective(2**_N, seed=13)
    ansatz = QAOAAnsatz(obj, transverse_field_mixer(_N), 2)
    rng = np.random.default_rng(1)
    first = ansatz.expectation_batch(2.0 * np.pi * rng.random((8, 4)))
    ws = ansatz._batched_workspace
    assert ws is not None and ws.capacity == 8
    ansatz.expectation_batch(2.0 * np.pi * rng.random((3, 4)))
    assert ansatz._batched_workspace is ws and ws.capacity == 8
    assert ansatz.counter.forward_passes == 11
    assert first.shape == (8,)
