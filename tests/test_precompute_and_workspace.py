"""Tests for PrecomputedCost and the Workspace buffers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.precompute import PrecomputedCost, precompute_cost
from repro.core.workspace import Workspace
from repro.hilbert import DickeSpace, FullSpace
from repro.problems import maxcut, maxcut_values


class TestPrecomputedCost:
    def test_basic_properties(self):
        cost = PrecomputedCost(values=np.array([1.0, 3.0, 3.0, 0.0]))
        assert cost.dim == 4
        assert cost.optimum == 3.0
        assert cost.worst == 0.0
        assert np.array_equal(cost.optimal_indices(), [1, 2])

    def test_minimization_sense(self):
        cost = PrecomputedCost(values=np.array([1.0, 3.0, 0.0]), maximize=False)
        assert cost.optimum == 0.0
        assert cost.worst == 3.0
        assert np.array_equal(cost.optimal_indices(), [2])

    def test_offset_applied(self):
        cost = PrecomputedCost(values=np.array([-1.0, 1.0]), offset=5.0)
        assert np.array_equal(cost.values, [4.0, 6.0])
        shifted = cost.with_offset(1.0)
        assert np.array_equal(shifted.values, [5.0, 7.0])

    def test_space_dimension_check(self):
        with pytest.raises(ValueError):
            PrecomputedCost(values=np.zeros(5), space=FullSpace(3))

    def test_rejects_empty_or_2d(self):
        with pytest.raises(ValueError):
            PrecomputedCost(values=np.array([]))
        with pytest.raises(ValueError):
            PrecomputedCost(values=np.zeros((2, 2)))

    def test_optimal_labels_requires_space(self, small_graph):
        vals = maxcut_values(small_graph, FullSpace(6).bits)
        with_space = PrecomputedCost(values=vals, space=FullSpace(6))
        labels = with_space.optimal_labels()
        assert len(labels) >= 1
        without_space = PrecomputedCost(values=vals)
        with pytest.raises(ValueError):
            without_space.optimal_labels()

    def test_degeneracies_sum_to_dim(self, maxcut_obj):
        cost = PrecomputedCost(values=maxcut_obj)
        distinct, counts = cost.degeneracies()
        assert counts.sum() == cost.dim
        assert np.all(np.diff(distinct) > 0)

    def test_signed_for_minimization(self):
        cost = PrecomputedCost(values=np.array([1.0, 2.0]), maximize=True)
        assert np.array_equal(cost.signed_for_minimization(), [-1.0, -2.0])
        cost_min = PrecomputedCost(values=np.array([1.0, 2.0]), maximize=False)
        assert np.array_equal(cost_min.signed_for_minimization(), [1.0, 2.0])


class TestPrecomputeCostFunction:
    def test_from_array(self):
        cost = precompute_cost(np.array([1.0, 2.0, 3.0, 4.0]))
        assert cost.dim == 4
        assert cost.space is None

    def test_from_scalar_callable(self, small_graph):
        cost = precompute_cost(lambda x: maxcut(small_graph, x), n=6)
        assert np.array_equal(cost.values, maxcut_values(small_graph, FullSpace(6).bits))

    def test_from_vectorized_callable(self, small_graph):
        cost = precompute_cost(
            lambda x: maxcut(small_graph, x),
            space=FullSpace(6),
            vectorized=lambda bits: maxcut_values(small_graph, bits),
        )
        assert cost.dim == 64

    def test_dicke_space_evaluation(self, small_graph):
        from repro.problems import densest_subgraph

        cost = precompute_cost(lambda x: densest_subgraph(small_graph, x), space=DickeSpace(6, 3))
        assert cost.dim == 20

    def test_callable_without_space_or_n_rejected(self):
        with pytest.raises(ValueError):
            precompute_cost(lambda x: 0.0)


class TestWorkspace:
    def test_buffers_allocated(self):
        ws = Workspace(16)
        assert ws.state.shape == (16,)
        assert ws.scratch.shape == (16,)
        assert ws.adjoint.shape == (16,)
        assert ws.state.dtype == np.complex128

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            Workspace(0)

    def test_load_state_copies(self, rng):
        ws = Workspace(8)
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        buffer = ws.load_state(psi)
        assert buffer is ws.state
        assert np.allclose(buffer, psi)
        assert ws.calls_served == 1

    def test_load_state_shape_check(self):
        with pytest.raises(ValueError):
            Workspace(8).load_state(np.zeros(4))

    def test_layer_store_grows_and_persists(self):
        ws = Workspace(4)
        store2 = ws.ensure_layers(2)
        assert store2.shape == (2, 2, 4)
        store1 = ws.ensure_layers(1)
        # Not shrunk: same (or larger) buffer reused.
        assert store1 is store2
        store5 = ws.ensure_layers(5)
        assert store5.shape[0] >= 5

    def test_layer_store_rejects_negative(self):
        with pytest.raises(ValueError):
            Workspace(4).ensure_layers(-1)

    def test_compatible_with(self):
        ws = Workspace(32)
        assert ws.compatible_with(32)
        assert not ws.compatible_with(16)
