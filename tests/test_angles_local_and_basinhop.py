"""Tests for BFGS local minimization and basinhopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.angles import AngleResult, basinhop, basinhop_scipy, local_minimize
from repro.core import QAOAAnsatz
from repro.hilbert import DickeSpace, state_matrix
from repro.mixers import CliqueMixer, transverse_field_mixer
from repro.problems import densest_subgraph_values, erdos_renyi, maxcut_values


@pytest.fixture(scope="module")
def maxcut_ansatz():
    graph = erdos_renyi(6, 0.5, seed=1)
    obj = maxcut_values(graph, state_matrix(6))
    return QAOAAnsatz(obj, transverse_field_mixer(6), 2)


class TestAngleResult:
    def test_betas_gammas_split(self):
        result = AngleResult(angles=np.arange(6.0), value=1.0, p=3)
        assert np.allclose(result.betas(), [0, 1, 2])
        assert np.allclose(result.gammas(), [3, 4, 5])

    def test_multi_angle_split(self):
        result = AngleResult(angles=np.arange(8.0), value=1.0, p=2)
        assert np.allclose(result.betas(6), np.arange(6.0))
        assert np.allclose(result.gammas(), [6, 7])

    def test_serialization_roundtrip(self):
        result = AngleResult(
            angles=np.array([0.1, 0.2]), value=3.5, p=1, evaluations=7, strategy="test"
        )
        restored = AngleResult.from_dict(result.to_dict())
        assert np.allclose(restored.angles, result.angles)
        assert restored.value == result.value
        assert restored.p == 1
        assert restored.evaluations == 7
        assert restored.strategy == "test"


class TestLocalMinimize:
    def test_improves_over_start(self, maxcut_ansatz):
        x0 = maxcut_ansatz.random_angles(0)
        start_value = maxcut_ansatz.expectation(x0)
        result = local_minimize(maxcut_ansatz, x0)
        assert result.value >= start_value - 1e-9
        assert result.p == 2
        assert result.evaluations > 0

    def test_gradient_modes_agree(self, maxcut_ansatz):
        x0 = maxcut_ansatz.random_angles(1)
        adjoint = local_minimize(maxcut_ansatz, x0, gradient="adjoint")
        finite = local_minimize(maxcut_ansatz, x0, gradient="finite")
        numeric = local_minimize(maxcut_ansatz, x0, gradient="numeric")
        assert np.isclose(adjoint.value, finite.value, atol=1e-4)
        assert np.isclose(adjoint.value, numeric.value, atol=1e-3)

    def test_stationary_gradient_at_optimum(self, maxcut_ansatz):
        result = local_minimize(maxcut_ansatz, maxcut_ansatz.random_angles(3))
        grad = maxcut_ansatz.gradient(result.angles)
        assert np.linalg.norm(grad) < 1e-3

    def test_value_bounded_by_optimum(self, maxcut_ansatz):
        result = local_minimize(maxcut_ansatz, maxcut_ansatz.random_angles(2))
        assert result.value <= maxcut_ansatz.cost.optimum + 1e-9

    def test_minimization_sense(self):
        graph = erdos_renyi(5, 0.5, seed=2)
        obj = maxcut_values(graph, state_matrix(5))
        ansatz = QAOAAnsatz(obj, transverse_field_mixer(5), 1, maximize=False)
        x0 = ansatz.random_angles(0)
        result = local_minimize(ansatz, x0)
        assert result.value <= ansatz.expectation(x0) + 1e-9
        assert result.value >= obj.min() - 1e-9

    def test_wrong_angle_count(self, maxcut_ansatz):
        with pytest.raises(ValueError):
            local_minimize(maxcut_ansatz, np.zeros(3))

    def test_unknown_gradient_mode(self, maxcut_ansatz):
        with pytest.raises(ValueError):
            local_minimize(maxcut_ansatz, maxcut_ansatz.random_angles(0), gradient="magic")

    def test_constrained_problem(self, small_graph):
        space = DickeSpace(6, 3)
        obj = densest_subgraph_values(small_graph, space.bits)
        ansatz = QAOAAnsatz(obj, CliqueMixer(6, 3), 2)
        result = local_minimize(ansatz, ansatz.random_angles(0))
        assert obj.mean() <= result.value <= obj.max() + 1e-9


class TestBasinhop:
    def test_at_least_as_good_as_single_local_search(self, maxcut_ansatz):
        x0 = maxcut_ansatz.random_angles(5)
        single = local_minimize(maxcut_ansatz, x0)
        hopped = basinhop(maxcut_ansatz, x0, n_hops=4, rng=0)
        assert hopped.value >= single.value - 1e-9
        assert hopped.strategy == "basinhopping"
        assert len(hopped.history) == 5  # initial + 4 hops

    def test_deterministic_with_seeded_rng(self, maxcut_ansatz):
        x0 = maxcut_ansatz.random_angles(6)
        a = basinhop(maxcut_ansatz, x0, n_hops=3, rng=7)
        b = basinhop(maxcut_ansatz, x0, n_hops=3, rng=7)
        assert np.allclose(a.angles, b.angles)
        assert a.value == b.value

    def test_history_tracks_acceptance(self, maxcut_ansatz):
        result = basinhop(maxcut_ansatz, maxcut_ansatz.random_angles(8), n_hops=5, rng=1)
        assert all("accepted" in entry for entry in result.history)
        assert result.history[0]["accepted"] is True

    def test_scipy_wrapper_agrees(self, maxcut_ansatz):
        x0 = maxcut_ansatz.random_angles(9)
        ours = basinhop(maxcut_ansatz, x0, n_hops=5, rng=3)
        scipys = basinhop_scipy(maxcut_ansatz, x0, n_hops=5, seed=3)
        assert abs(ours.value - scipys.value) < 0.2
        assert scipys.value <= maxcut_ansatz.cost.optimum + 1e-9

    def test_zero_temperature_greedy(self, maxcut_ansatz):
        result = basinhop(
            maxcut_ansatz, maxcut_ansatz.random_angles(10), n_hops=3, temperature=0.0, rng=4
        )
        assert result.value <= maxcut_ansatz.cost.optimum + 1e-9
