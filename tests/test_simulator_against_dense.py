"""Cross-validation of the direct simulator against brute-force dense evolution.

These are the strongest correctness tests in the suite: for every mixer family
the optimized simulation (Walsh–Hadamard transforms, rank-one updates, cached
eigendecompositions) must reproduce, to near machine precision, the naive
reference that exponentiates the dense mixer matrix with scipy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import simulate
from repro.hilbert import DickeSpace, state_matrix
from repro.mixers import (
    CliqueMixer,
    GroverMixer,
    MixerSchedule,
    MultiAngleXMixer,
    RingMixer,
    mixer_x,
    transverse_field_mixer,
)
from repro.hilbert import FullSpace
from repro.problems import (
    densest_subgraph_values,
    erdos_renyi,
    ksat_values,
    maxcut_values,
    random_ksat,
    vertex_cover_values,
)


@pytest.fixture(scope="module")
def graph6():
    return erdos_renyi(6, 0.5, seed=11)


@pytest.fixture(scope="module")
def angles3():
    rng = np.random.default_rng(42)
    return rng.uniform(-np.pi, np.pi, size=6)


def _check_against_dense(mixer, obj_vals, angles, dense_reference, initial=None, atol=1e-9):
    p = len(angles) // 2
    betas, gammas = angles[:p], angles[p:]
    if initial is None:
        initial = mixer.initial_state()
    expected = dense_reference(obj_vals, mixer.matrix(), initial, betas, gammas)
    result = simulate(angles, mixer, obj_vals, initial_state=initial)
    assert np.allclose(result.statevector, expected, atol=atol)
    expected_value = float(np.real(np.vdot(expected, np.asarray(obj_vals) * expected)))
    assert np.isclose(result.expectation(), expected_value, atol=atol)


class TestUnconstrainedAgainstDense:
    def test_maxcut_transverse_field(self, graph6, angles3, dense_reference):
        obj = maxcut_values(graph6, state_matrix(6))
        _check_against_dense(transverse_field_mixer(6), obj, angles3, dense_reference)

    def test_maxcut_grover(self, graph6, angles3, dense_reference):
        obj = maxcut_values(graph6, state_matrix(6))
        _check_against_dense(GroverMixer(FullSpace(6)), obj, angles3, dense_reference)

    def test_ksat_transverse_field(self, angles3, dense_reference):
        inst = random_ksat(5, k=3, clause_density=4.0, seed=3)
        obj = ksat_values(inst, state_matrix(5))
        _check_against_dense(transverse_field_mixer(5), obj, angles3, dense_reference)

    def test_higher_order_x_mixer(self, graph6, angles3, dense_reference):
        obj = maxcut_values(graph6, state_matrix(6))
        _check_against_dense(mixer_x([1, 2], 6), obj, angles3, dense_reference)

    def test_multi_angle_layers(self, graph6, dense_reference):
        import scipy.linalg as sla

        n = 4
        graph = erdos_renyi(n, 0.6, seed=5)
        obj = maxcut_values(graph, state_matrix(n))
        terms = [(q,) for q in range(n)]
        mixer = MultiAngleXMixer(n, terms)
        schedule = MixerSchedule([mixer, mixer])
        rng = np.random.default_rng(8)
        betas = rng.uniform(-1, 1, size=(2, n))
        gammas = rng.uniform(-1, 1, size=2)
        angles = np.concatenate([betas.ravel(), gammas])

        # Dense reference with per-term angles.
        psi = mixer.initial_state()
        for layer in range(2):
            psi = np.exp(-1j * gammas[layer] * obj) * psi
            for t, term in enumerate(terms):
                ham = mixer.term_diagonals[t]
                # exp(-i beta X_q) built densely from the mixer's own matrix machinery
                single = MultiAngleXMixer(n, [term])
                psi = single.apply(psi, np.array([betas[layer, t]]))
        result = simulate(angles, schedule, obj)
        assert np.allclose(result.statevector, psi, atol=1e-9)

    def test_custom_warm_start_initial_state(self, graph6, angles3, dense_reference, rng):
        obj = maxcut_values(graph6, state_matrix(6))
        warm = rng.normal(size=64) + 1j * rng.normal(size=64)
        warm /= np.linalg.norm(warm)
        _check_against_dense(transverse_field_mixer(6), obj, angles3, dense_reference, initial=warm)


class TestConstrainedAgainstDense:
    def test_densest_subgraph_clique(self, graph6, angles3, dense_reference):
        space = DickeSpace(6, 3)
        obj = densest_subgraph_values(graph6, space.bits)
        _check_against_dense(CliqueMixer(6, 3), obj, angles3, dense_reference)

    def test_vertex_cover_ring(self, graph6, angles3, dense_reference):
        space = DickeSpace(6, 3)
        obj = vertex_cover_values(graph6, space.bits)
        _check_against_dense(RingMixer(6, 3), obj, angles3, dense_reference)

    def test_densest_subgraph_grover_dicke(self, graph6, angles3, dense_reference):
        space = DickeSpace(6, 2)
        obj = densest_subgraph_values(graph6, space.bits)
        _check_against_dense(GroverMixer(space), obj, angles3, dense_reference)

    @pytest.mark.parametrize("k", [1, 2, 4, 5])
    def test_clique_mixer_all_weights(self, graph6, dense_reference, k):
        space = DickeSpace(6, k)
        obj = densest_subgraph_values(graph6, space.bits)
        rng = np.random.default_rng(k)
        angles = rng.uniform(-1, 1, size=4)
        _check_against_dense(CliqueMixer(6, k), obj, angles, dense_reference)


class TestMixedSchedulesAgainstDense:
    def test_alternating_mixers(self, graph6, dense_reference):
        import scipy.linalg as sla

        n = 5
        graph = erdos_renyi(n, 0.5, seed=21)
        obj = maxcut_values(graph, state_matrix(n))
        tf = transverse_field_mixer(n)
        gm = GroverMixer(FullSpace(n))
        schedule = MixerSchedule([tf, gm, tf])
        rng = np.random.default_rng(3)
        angles = rng.uniform(-1, 1, size=6)
        betas, gammas = angles[:3], angles[3:]

        psi = tf.initial_state()
        matrices = [tf.matrix(), gm.matrix(), tf.matrix()]
        for mat, beta, gamma in zip(matrices, betas, gammas):
            psi = np.exp(-1j * gamma * obj) * psi
            psi = sla.expm(-1j * beta * mat) @ psi
        result = simulate(angles, schedule, obj)
        assert np.allclose(result.statevector, psi, atol=1e-9)
