"""Smoke and shape tests for the benchmark harness (small parameters only)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    bench_scale,
    figure2_cases,
    figure3_instances,
    figure4_graph,
    figure4a_qubit_range,
    figure4b_round_range,
    figure5_instances,
    format_rows,
    is_paper_scale,
    run_figure2,
    run_figure4a,
    run_figure4b,
    run_figure5,
    run_grover_compression,
    time_and_memory,
    time_call,
)


class TestWorkloads:
    def test_scale_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "quick"
        assert not is_paper_scale()

    def test_scale_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert is_paper_scale()
        assert 12 in [c.n for c in []] or True  # profile only affects defaults

    def test_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            bench_scale()

    def test_figure2_cases_cover_four_pairs(self):
        cases = figure2_cases(n=6)
        labels = {c.label for c in cases}
        assert labels == {
            "maxcut+transverse_field",
            "3sat+grover",
            "densest_k_subgraph+clique",
            "k_vertex_cover+ring",
        }
        for case in cases:
            assert case.cost.dim == case.mixer.dim

    def test_figure3_instances_seeded(self):
        a = figure3_instances(num_instances=3, n=6)
        b = figure3_instances(num_instances=3, n=6)
        for x, y in zip(a, b):
            assert np.array_equal(x.objective_values(), y.objective_values())

    def test_figure4_graph_deterministic(self):
        assert set(figure4_graph(8).edges()) == set(figure4_graph(8).edges())

    def test_figure4_ranges(self):
        qubits = figure4a_qubit_range()
        assert all(q >= 4 for q in qubits)
        dense_qubits = figure4a_qubit_range(include_dense=True)
        assert max(dense_qubits) <= 10
        n, rounds = figure4b_round_range()
        assert n >= 8 and len(rounds) >= 3

    def test_figure5_instances(self):
        instances = figure5_instances(num_instances=2, n=8)
        assert len(instances) == 2
        assert all(p.n == 8 for p in instances)


class TestTiming:
    def test_time_call_statistics(self):
        stats = time_call(lambda: sum(range(1000)), repeats=3)
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert len(stats["times"]) == 3

    def test_time_call_validation(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)

    def test_time_and_memory_reports_peak(self):
        stats = time_and_memory(lambda: np.zeros(100_000), repeats=1, warmup=0)
        assert stats["peak_bytes"] >= 100_000 * 8


class TestFormatRows:
    def test_renders_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_rows(rows)
        assert "a" in text and "22" in text and "yy" in text
        assert len(text.splitlines()) == 4

    def test_empty(self):
        assert format_rows([]) == "(no rows)"


class TestFigureRunnersSmoke:
    """Tiny-parameter sanity runs; the real shape checks live in benchmarks/."""

    def test_figure2_rows_shape(self):
        rows = run_figure2(p_max=1, n=4, n_hops=1)
        assert len(rows) == 4  # four cases, one round each
        for row in rows:
            assert 0.0 <= row["approx_ratio"] <= 1.0 + 1e-9
            assert row["p"] == 1

    def test_figure4a_ordering(self):
        rows = run_figure4a(qubit_range=[4, 6], repeats=1, include_dense=False)
        simulators = {row["simulator"] for row in rows}
        assert simulators == {"direct", "circuit-gate", "circuit-decomposed"}
        by_sim = {
            sim: {row["n"]: row["time_s"] for row in rows if row["simulator"] == sim}
            for sim in simulators
        }
        # The direct simulator should not be slower than the decomposed circuit
        # baseline at the largest size tested.
        assert by_sim["direct"][6] <= by_sim["circuit-decomposed"][6]

    def test_figure4b_rows(self):
        rows = run_figure4b(n=6, round_values=[1, 2], repeats=1)
        assert {row["p"] for row in rows} == {1, 2}
        assert all(row["time_s"] > 0 for row in rows)

    def test_figure5_forward_pass_separation(self):
        rows = run_figure5(round_values=[1, 3], num_instances=1, n=6, maxiter=5)
        fd = {r["p"]: r["mean_forward_passes"] for r in rows if r["method"] == "finite_difference"}
        ad = {r["p"]: r["mean_forward_passes"] for r in rows if r["method"] == "autodiff"}
        # Finite differences needs more evaluations, and the gap widens with p.
        assert fd[1] > ad[1]
        assert fd[3] / ad[3] > fd[1] / ad[1] / 2

    def test_grover_compression_rows(self):
        rows = run_grover_compression(dense_qubits=[6], large_qubits=[40], p=2, repeats=1)
        reps = {(row["representation"], row["n"]) for row in rows}
        assert ("dense", 6) in reps and ("compressed", 6) in reps and ("compressed", 40) in reps
