"""Tests for the MaxCut, k-SAT, Densest-k-Subgraph and Max-k-Vertex-Cover objectives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hilbert import DickeSpace, state_matrix
from repro.problems import (
    SatInstance,
    count_satisfied,
    cut_edges,
    densest_subgraph,
    densest_subgraph_optimum,
    densest_subgraph_values,
    erdos_renyi,
    graph_from_edges,
    ksat,
    ksat_optimum,
    ksat_values,
    maxcut,
    maxcut_optimum,
    maxcut_values,
    random_ksat,
    uncovered_edges,
    vertex_cover,
    vertex_cover_optimum,
    vertex_cover_values,
)


class TestMaxCut:
    def test_known_values_triangle(self):
        g = graph_from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert maxcut(g, np.array([0, 0, 0])) == 0
        assert maxcut(g, np.array([1, 0, 0])) == 2
        assert maxcut(g, np.array([1, 1, 0])) == 2
        assert maxcut_optimum(g) == 2

    def test_complement_symmetry(self, small_graph, rng):
        # Flipping every bit leaves the cut unchanged.
        for _ in range(20):
            x = rng.integers(0, 2, size=6)
            assert maxcut(small_graph, x) == maxcut(small_graph, 1 - x)

    def test_vectorized_matches_scalar(self, small_graph):
        bits = state_matrix(6)
        vec = maxcut_values(small_graph, bits)
        scalar = np.array([maxcut(small_graph, bits[i]) for i in range(64)])
        assert np.array_equal(vec, scalar)

    def test_optimum_matches_bruteforce_vector(self, small_graph):
        vals = maxcut_values(small_graph, state_matrix(6))
        assert maxcut_optimum(small_graph) == vals.max()

    def test_cut_edges_consistent(self, small_graph, rng):
        x = rng.integers(0, 2, size=6)
        assert len(cut_edges(small_graph, x)) == maxcut(small_graph, x)

    def test_empty_graph(self):
        g = graph_from_edges(4, [])
        assert maxcut(g, np.zeros(4)) == 0
        assert np.all(maxcut_values(g, state_matrix(4)) == 0)
        assert maxcut_optimum(g) == 0

    def test_shape_validation(self, small_graph):
        with pytest.raises(ValueError):
            maxcut(small_graph, np.zeros(5))
        with pytest.raises(ValueError):
            maxcut_values(small_graph, np.zeros((4, 5)))

    def test_bounded_by_edge_count(self, rng):
        g = erdos_renyi(8, 0.4, seed=9)
        vals = maxcut_values(g, state_matrix(8))
        assert vals.max() <= g.number_of_edges()
        assert vals.min() >= 0


class TestKSat:
    def test_instance_validation(self):
        with pytest.raises(ValueError):
            SatInstance(n=3, clauses=((0,),))
        with pytest.raises(ValueError):
            SatInstance(n=3, clauses=((4,),))
        with pytest.raises(ValueError):
            SatInstance(n=3, clauses=((),))
        with pytest.raises(ValueError):
            SatInstance(n=0, clauses=())

    def test_count_satisfied_manual(self):
        # (x1 or not x2) and (not x1 or x3)
        inst = SatInstance(n=3, clauses=((1, -2), (-1, 3)))
        assert count_satisfied(inst, np.array([1, 0, 0])) == 1
        assert count_satisfied(inst, np.array([0, 0, 0])) == 2
        assert count_satisfied(inst, np.array([1, 1, 1])) == 2
        # Clause 1 fails only when x1=0, x2=1; clause 2 fails only when x1=1, x3=0,
        # so at most one clause can be violated at a time for this instance.
        assert count_satisfied(inst, np.array([0, 1, 0])) == 1
        assert count_satisfied(inst, np.array([1, 1, 0])) == 1

    def test_random_instance_shape(self):
        inst = random_ksat(8, k=3, clause_density=6.0, seed=0)
        assert inst.n == 8
        assert inst.num_clauses == 48
        assert inst.k == 3
        assert np.isclose(inst.clause_density, 6.0)
        # Deterministic by seed.
        inst2 = random_ksat(8, k=3, clause_density=6.0, seed=0)
        assert inst.clauses == inst2.clauses

    def test_random_instance_validation(self):
        with pytest.raises(ValueError):
            random_ksat(3, k=4)
        with pytest.raises(ValueError):
            random_ksat(3, k=2, clause_density=0)

    def test_vectorized_matches_scalar(self):
        inst = random_ksat(6, k=3, clause_density=4.0, seed=2)
        bits = state_matrix(6)
        vec = ksat_values(inst, bits)
        scalar = np.array([ksat(inst, bits[i]) for i in range(64)])
        assert np.array_equal(vec, scalar)

    def test_values_bounded_by_clause_count(self):
        inst = random_ksat(7, k=3, clause_density=5.0, seed=1)
        vals = ksat_values(inst, state_matrix(7))
        assert vals.max() <= inst.num_clauses
        assert vals.min() >= 0
        assert ksat_optimum(inst) == vals.max()

    def test_mixed_width_clauses(self):
        inst = SatInstance(n=4, clauses=((1,), (2, -3), (1, 2, 4)))
        bits = state_matrix(4)
        vec = ksat_values(inst, bits)
        scalar = np.array([ksat(inst, bits[i]) for i in range(16)])
        assert np.array_equal(vec, scalar)


class TestConstrainedObjectives:
    def test_densest_subgraph_manual(self):
        g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert densest_subgraph(g, np.array([1, 1, 0, 0])) == 1
        assert densest_subgraph(g, np.array([1, 1, 1, 0])) == 2
        assert densest_subgraph(g, np.array([0, 0, 0, 0])) == 0

    def test_densest_subgraph_vectorized(self, small_graph, dicke_space_63):
        bits = dicke_space_63.bits
        vec = densest_subgraph_values(small_graph, bits)
        scalar = np.array([densest_subgraph(small_graph, bits[i]) for i in range(len(bits))])
        assert np.array_equal(vec, scalar)

    def test_densest_subgraph_optimum(self, small_graph):
        vals = densest_subgraph_values(small_graph, DickeSpace(6, 3).bits)
        assert densest_subgraph_optimum(small_graph, 3) == vals.max()

    def test_vertex_cover_manual(self):
        g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert vertex_cover(g, np.array([0, 1, 1, 0])) == 3
        assert vertex_cover(g, np.array([1, 0, 0, 1])) == 2
        assert uncovered_edges(g, np.array([1, 0, 0, 1])) == [(1, 2)]

    def test_vertex_cover_vectorized(self, small_graph, dicke_space_63):
        bits = dicke_space_63.bits
        vec = vertex_cover_values(small_graph, bits)
        scalar = np.array([vertex_cover(small_graph, bits[i]) for i in range(len(bits))])
        assert np.array_equal(vec, scalar)

    def test_vertex_cover_optimum(self, small_graph):
        vals = vertex_cover_values(small_graph, DickeSpace(6, 3).bits)
        assert vertex_cover_optimum(small_graph, 3) == vals.max()

    def test_complementarity_identity(self, small_graph, rng):
        """For any subset S: cover(S) + inside(V\\S) = |E|."""
        m = small_graph.number_of_edges()
        for _ in range(20):
            x = rng.integers(0, 2, size=6)
            assert vertex_cover(small_graph, x) + densest_subgraph(small_graph, 1 - x) == m

    def test_full_selection_covers_everything(self, small_graph):
        m = small_graph.number_of_edges()
        assert vertex_cover(small_graph, np.ones(6)) == m
        assert densest_subgraph(small_graph, np.ones(6)) == m


@given(st.integers(min_value=2, max_value=9), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_property_cut_plus_uncut_equals_edges(n, seed):
    graph = erdos_renyi(n, 0.5, seed=seed)
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 2, size=n)
    cut = maxcut(graph, x)
    inside = densest_subgraph(graph, x) + densest_subgraph(graph, 1 - x)
    assert cut + inside == graph.number_of_edges()
