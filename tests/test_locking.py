"""Tests for the cross-process advisory file lock behind the run store."""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time

import pytest

from repro.io.locking import FileLock, LockTimeout, locking_backend


def _get_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context()


def _noop() -> None:
    pass


class TestBasics:
    def test_backend_detected(self):
        assert locking_backend() in ("fcntl", "msvcrt", "mkfile")

    def test_acquire_release(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        assert not lock.is_held
        lock.acquire()
        assert lock.is_held
        lock.release()
        assert not lock.is_held

    def test_context_manager(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            assert lock.is_held
        assert not lock.is_held

    def test_reentrant_within_one_object(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            with lock:  # a helper taking an optional lock re-enters here
                assert lock.is_held
            assert lock.is_held  # inner exit must not drop the OS lock
        assert not lock.is_held

    def test_creates_parent_directory(self, tmp_path):
        with FileLock(tmp_path / "deep" / "nested" / "x.lock"):
            pass

    def test_release_unheld_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="unheld"):
            FileLock(tmp_path / "x.lock").release()

    def test_owner_metadata_written(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            assert f"pid={os.getpid()}" in path.read_text(encoding="utf-8")

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="backend"):
            FileLock(tmp_path / "x.lock", backend="flocktopus")


class TestContention:
    def test_second_holder_times_out(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            contender = FileLock(path, poll_interval=0.005)
            with pytest.raises(LockTimeout, match="could not acquire"):
                contender.acquire(timeout=0.1)

    def test_acquire_after_release(self, tmp_path):
        path = tmp_path / "x.lock"
        first = FileLock(path)
        first.acquire()
        first.release()
        with FileLock(path, poll_interval=0.005) as second:
            assert second.is_held

    def test_cross_thread_reentry_raises(self, tmp_path):
        # The reentrancy counter owns the OS lock, not the thread: a second
        # thread re-entering the same object must fail loudly, not silently
        # join the critical section.
        lock = FileLock(tmp_path / "x.lock")
        errors: list[Exception] = []

        def other_thread():
            try:
                lock.acquire(timeout=0.1)
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)

        with lock:
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert len(errors) == 1
        assert isinstance(errors[0], RuntimeError)
        assert "not shareable across threads" in str(errors[0])


class TestMkfileFallback:
    """The O_EXCL last-resort backend, forced explicitly so it runs everywhere."""

    def test_mutual_exclusion_and_release_unlinks(self, tmp_path):
        path = tmp_path / "x.lock"
        lock = FileLock(path, backend="mkfile")
        with lock:
            contender = FileLock(path, backend="mkfile", poll_interval=0.005)
            with pytest.raises(LockTimeout):
                contender.acquire(timeout=0.05)
        assert not path.exists()  # mkfile release removes the lock file
        with FileLock(path, backend="mkfile"):
            pass

    def test_stale_lock_of_dead_pid_is_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        ctx = _get_context()
        child = ctx.Process(target=_noop)
        child.start()
        child.join()  # reaped: its PID is (very likely) dead now
        path.write_text(
            f"pid={child.pid} host={socket.gethostname()} acquired=crashed\n",
            encoding="utf-8",
        )
        lock = FileLock(path, backend="mkfile", poll_interval=0.005, stale_timeout=1e6)
        with pytest.warns(RuntimeWarning, match="stale lock"):
            lock.acquire(timeout=2.0)
        assert lock.is_held
        lock.release()

    def test_stale_lock_by_mtime_is_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("pid=not-parsable\n", encoding="utf-8")
        old = time.time() - 3600
        os.utime(path, (old, old))
        lock = FileLock(path, backend="mkfile", poll_interval=0.005, stale_timeout=60.0)
        with pytest.warns(RuntimeWarning, match="stale lock"):
            lock.acquire(timeout=2.0)
        assert lock.is_held
        lock.release()

    def test_break_mutex_blocks_second_breaker(self, tmp_path):
        # While another waiter holds the break mutex, a stale lock must not be
        # unlinked by us — that's the TOCTOU window where a slower breaker
        # could delete a lock the faster one already broke and re-acquired.
        path = tmp_path / "x.lock"
        path.write_text("pid=not-parsable\n", encoding="utf-8")
        old = time.time() - 3600
        os.utime(path, (old, old))
        (tmp_path / "x.lock.break").write_text("", encoding="utf-8")  # fresh mutex
        lock = FileLock(path, backend="mkfile", poll_interval=0.005, stale_timeout=60.0)
        with pytest.raises(LockTimeout):
            lock.acquire(timeout=0.1)
        assert path.exists()  # the stale lock was left alone

    def test_abandoned_break_mutex_is_cleared(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("pid=not-parsable\n", encoding="utf-8")
        breaker = tmp_path / "x.lock.break"
        breaker.write_text("", encoding="utf-8")
        old = time.time() - 3600
        os.utime(path, (old, old))
        os.utime(breaker, (old, old))  # breaker died mid-break long ago
        lock = FileLock(path, backend="mkfile", poll_interval=0.005, stale_timeout=60.0)
        with pytest.warns(RuntimeWarning, match="stale lock"):
            lock.acquire(timeout=2.0)
        assert lock.is_held
        lock.release()
        assert not breaker.exists()

    def test_live_fresh_lock_is_respected(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text(
            f"pid={os.getpid()} host={socket.gethostname()} acquired=now\n", encoding="utf-8"
        )
        lock = FileLock(path, backend="mkfile", poll_interval=0.005, stale_timeout=1e6)
        with pytest.raises(LockTimeout):
            lock.acquire(timeout=0.1)

    def test_live_owner_survives_ancient_mtime(self, tmp_path):
        # A same-host owner that probes alive may be deep in a long critical
        # section: however old the lock file, it must not be mtime-broken.
        path = tmp_path / "x.lock"
        path.write_text(
            f"pid={os.getpid()} host={socket.gethostname()} acquired=long-ago\n",
            encoding="utf-8",
        )
        old = time.time() - 3600
        os.utime(path, (old, old))
        lock = FileLock(path, backend="mkfile", poll_interval=0.005, stale_timeout=60.0)
        with pytest.raises(LockTimeout):
            lock.acquire(timeout=0.1)
        assert path.exists()

    def test_foreign_host_pid_is_not_probed(self, tmp_path):
        # A PID recorded by another machine means nothing in our process
        # table; only the mtime test may break such a lock.
        path = tmp_path / "x.lock"
        path.write_text("pid=999999 host=some-other-machine\n", encoding="utf-8")
        lock = FileLock(path, backend="mkfile", poll_interval=0.005, stale_timeout=1e6)
        with pytest.raises(LockTimeout):
            lock.acquire(timeout=0.1)
        assert path.exists()

    def test_release_after_stale_break_spares_new_owner(self, tmp_path):
        # Owner A stalls, waiter B breaks A's stale lock and acquires; A's
        # late release() must not delete B's live lock file.
        path = tmp_path / "x.lock"
        a = FileLock(path, backend="mkfile", stale_timeout=1e6)
        a.acquire()
        path.unlink()  # simulate B having broken A's stale lock ...
        b = FileLock(path, backend="mkfile", stale_timeout=1e6)
        b.acquire()  # ... and re-acquired it
        a.release()
        assert path.exists(), "A's release deleted B's live lock"
        b.release()
        assert not path.exists()


def _hammer_counter(path_str: str, lock_path_str: str, iterations: int) -> None:
    lock = FileLock(lock_path_str, poll_interval=0.001)
    for _ in range(iterations):
        with lock:
            value = int(open(path_str, encoding="utf-8").read())
            # Widen the race window: without the lock, concurrent
            # read-increment-write reliably loses updates here.
            time.sleep(0.0005)
            with open(path_str, "w", encoding="utf-8") as handle:
                handle.write(str(value + 1))


class TestCrossProcess:
    def test_lock_serializes_read_modify_write(self, tmp_path):
        counter = tmp_path / "counter.txt"
        counter.write_text("0", encoding="utf-8")
        lock_path = tmp_path / "counter.lock"
        ctx = _get_context()
        workers, iterations = 4, 10
        procs = [
            ctx.Process(target=_hammer_counter, args=(str(counter), str(lock_path), iterations))
            for _ in range(workers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in procs)
        assert int(counter.read_text(encoding="utf-8")) == workers * iterations
