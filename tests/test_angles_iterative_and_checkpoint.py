"""Tests for the iterative (extrapolated) angle finder and its checkpointing."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.angles import AngleCheckpoint, AngleResult, extrapolate_angles, find_angles
from repro.hilbert import DickeSpace, state_matrix
from repro.mixers import CliqueMixer, GroverMixer, transverse_field_mixer
from repro.hilbert import FullSpace
from repro.problems import densest_subgraph_values, erdos_renyi, maxcut_values


@pytest.fixture(scope="module")
def maxcut_setup():
    graph = erdos_renyi(6, 0.5, seed=1)
    obj = maxcut_values(graph, state_matrix(6))
    return obj, transverse_field_mixer(6)


class TestExtrapolation:
    def test_pad_repeats_last_angles(self):
        angles = np.array([0.1, 0.2, 1.0, 2.0])  # p=2
        extended = extrapolate_angles(angles, 2, 4, method="pad")
        assert np.allclose(extended, [0.1, 0.2, 0.2, 0.2, 1.0, 2.0, 2.0, 2.0])

    def test_interp_preserves_endpoints(self):
        angles = np.array([0.1, 0.5, 1.0, 3.0])  # p=2
        extended = extrapolate_angles(angles, 2, 5, method="interp")
        betas, gammas = extended[:5], extended[5:]
        assert np.isclose(betas[0], 0.1) and np.isclose(betas[-1], 0.5)
        assert np.isclose(gammas[0], 1.0) and np.isclose(gammas[-1], 3.0)
        # Interpolation is monotone between monotone endpoints.
        assert np.all(np.diff(betas) >= -1e-12)

    def test_interp_from_p1_repeats(self):
        extended = extrapolate_angles(np.array([0.3, 0.9]), 1, 3, method="interp")
        assert np.allclose(extended, [0.3, 0.3, 0.3, 0.9, 0.9, 0.9])

    def test_same_p_is_identity(self):
        angles = np.array([0.1, 0.2, 0.3, 0.4])
        assert np.allclose(extrapolate_angles(angles, 2, 2), angles)

    def test_validation(self):
        with pytest.raises(ValueError):
            extrapolate_angles(np.zeros(3), 2, 3)
        with pytest.raises(ValueError):
            extrapolate_angles(np.zeros(4), 2, 1)
        with pytest.raises(ValueError):
            extrapolate_angles(np.zeros(4), 2, 3, method="spline")


class TestCheckpoint:
    def test_store_and_get(self, tmp_path):
        path = tmp_path / "angles.json"
        checkpoint = AngleCheckpoint(path)
        result = AngleResult(angles=np.array([0.1, 0.2]), value=2.0, p=1)
        checkpoint.store(result)
        assert path.exists()
        assert 1 in checkpoint
        assert checkpoint.last_round() == 1

        reloaded = AngleCheckpoint(path)
        restored = reloaded.get(1)
        assert restored is not None
        assert np.allclose(restored.angles, result.angles)
        assert restored.value == 2.0

    def test_none_path_is_memory_only(self):
        checkpoint = AngleCheckpoint(None)
        checkpoint.store(AngleResult(angles=np.zeros(2), value=0.0, p=1))
        assert len(checkpoint) == 1

    def test_rounds_sorted(self, tmp_path):
        checkpoint = AngleCheckpoint(tmp_path / "c.json")
        for p in (3, 1, 2):
            checkpoint.store(AngleResult(angles=np.zeros(2 * p), value=float(p), p=p))
        assert checkpoint.rounds() == [1, 2, 3]
        assert checkpoint.last_round() == 3

    def test_json_is_human_readable(self, tmp_path):
        path = tmp_path / "c.json"
        AngleCheckpoint(path).store(AngleResult(angles=np.array([0.5]), value=1.0, p=1))
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert "1" in data["rounds"]

    def test_rejects_unknown_format_version(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"format_version": 99, "rounds": {}}))
        with pytest.raises(ValueError):
            AngleCheckpoint(path)

    def test_missing_round_returns_none(self, tmp_path):
        assert AngleCheckpoint(tmp_path / "x.json").get(5) is None


class TestFindAngles:
    def test_returns_every_round(self, maxcut_setup):
        obj, mixer = maxcut_setup
        results = find_angles(3, mixer, obj, n_hops=2, n_starts_p1=1, rng=0)
        assert sorted(results) == [1, 2, 3]
        for p, result in results.items():
            assert result.p == p
            assert result.angles.size == 2 * p

    def test_quality_never_decreases_with_p(self, maxcut_setup):
        obj, mixer = maxcut_setup
        results = find_angles(4, mixer, obj, n_hops=2, n_starts_p1=1, rng=1)
        values = [results[p].value for p in sorted(results)]
        assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))
        assert values[-1] <= obj.max() + 1e-9

    def test_checkpoint_resume(self, maxcut_setup, tmp_path):
        obj, mixer = maxcut_setup
        path = tmp_path / "angles.json"
        first = find_angles(2, mixer, obj, file=path, n_hops=1, n_starts_p1=1, rng=2)
        resumed = find_angles(3, mixer, obj, file=path, n_hops=1, n_starts_p1=1, rng=2)
        # Rounds 1-2 are reused verbatim, round 3 is new.
        assert np.allclose(resumed[2].angles, first[2].angles)
        assert 3 in resumed
        data = json.loads(path.read_text())
        assert set(data["rounds"]) == {"1", "2", "3"}

    def test_initial_angles_escape_hatch(self, maxcut_setup):
        obj, mixer = maxcut_setup
        seed_angles = np.full(6, 0.3)
        results = find_angles(3, mixer, obj, initial_angles=seed_angles, n_hops=1, rng=3)
        assert list(results) == [3]
        assert results[3].strategy == "iterative-seeded"

    def test_grover_mixer_iterative(self, maxcut_setup):
        obj, _ = maxcut_setup
        mixer = GroverMixer(FullSpace(6))
        results = find_angles(2, mixer, obj, n_hops=1, n_starts_p1=1, rng=4)
        assert results[2].value >= results[1].value - 1e-6

    def test_constrained_clique_iterative(self, small_graph):
        space = DickeSpace(6, 3)
        obj = densest_subgraph_values(small_graph, space.bits)
        results = find_angles(2, CliqueMixer(6, 3), obj, n_hops=1, n_starts_p1=1, rng=5)
        assert results[2].value <= obj.max() + 1e-9
        assert results[2].value >= obj.mean()

    def test_minimization_sense(self, maxcut_setup):
        obj, mixer = maxcut_setup
        results = find_angles(2, mixer, obj, maximize=False, n_hops=1, n_starts_p1=1, rng=6)
        values = [results[p].value for p in sorted(results)]
        assert values[1] <= values[0] + 1e-6
        assert values[-1] >= obj.min() - 1e-9

    def test_mixer_list_supported(self, maxcut_setup):
        obj, mixer = maxcut_setup
        gm = GroverMixer(FullSpace(6))
        results = find_angles([mixer, gm], obj) if False else find_angles(
            2, [mixer, gm], obj, n_hops=1, n_starts_p1=1, rng=7
        )
        assert sorted(results) == [1, 2]

    def test_mixer_list_too_short_rejected(self, maxcut_setup):
        obj, mixer = maxcut_setup
        with pytest.raises(ValueError):
            find_angles(3, [mixer], obj)

    def test_invalid_p_rejected(self, maxcut_setup):
        obj, mixer = maxcut_setup
        with pytest.raises(ValueError):
            find_angles(0, mixer, obj)

    def test_pad_extrapolation_mode(self, maxcut_setup):
        obj, mixer = maxcut_setup
        results = find_angles(2, mixer, obj, extrapolation="pad", n_hops=1, n_starts_p1=1, rng=8)
        assert results[2].value >= results[1].value - 1e-6
