"""Tests for the baseline QAOA simulators (circuit-based and Trotterized)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.baselines import (
    DecomposedCircuitQAOA,
    DenseUnitaryQAOA,
    DirectQAOA,
    GateCircuitQAOA,
    TrotterXYMixer,
    trotter_clique_mixer,
    trotter_ring_mixer,
)
from repro.core import random_angles, simulate
from repro.hilbert import DickeSpace, state_matrix
from repro.mixers import CliqueMixer, RingMixer
from repro.problems import densest_subgraph_values, erdos_renyi, maxcut_values

ALL_BASELINES = [DirectQAOA, GateCircuitQAOA, DecomposedCircuitQAOA, DenseUnitaryQAOA]


@pytest.fixture(scope="module")
def graph5():
    return erdos_renyi(5, 0.5, seed=30)


class TestCircuitBaselinesAgree:
    @pytest.mark.parametrize("cls", ALL_BASELINES)
    @pytest.mark.parametrize("p", [1, 2])
    def test_expectation_matches_direct(self, graph5, cls, p):
        angles = random_angles(p, rng=p)
        reference = DirectQAOA(graph5, p).expectation(angles)
        assert np.isclose(cls(graph5, p).expectation(angles), reference, atol=1e-9)

    @pytest.mark.parametrize("cls", [GateCircuitQAOA, DecomposedCircuitQAOA, DenseUnitaryQAOA])
    def test_statevector_matches_direct_up_to_global_phase(self, graph5, cls):
        angles = random_angles(2, rng=5)
        direct = DirectQAOA(graph5, 2).statevector(angles)
        other = cls(graph5, 2).statevector(angles)
        overlap = np.abs(np.vdot(direct, other))
        assert np.isclose(overlap, 1.0, atol=1e-9)

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_angle_count_validation(self, graph5, cls):
        simulator = cls(graph5, 2)
        with pytest.raises(ValueError):
            simulator.expectation(np.zeros(3))

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_p_validation(self, graph5, cls):
        with pytest.raises(ValueError):
            cls(graph5, 0)

    def test_evaluation_counters(self, graph5):
        sim = GateCircuitQAOA(graph5, 1)
        angles = random_angles(1, rng=0)
        sim.expectation(angles)
        sim.expectation(angles)
        assert sim.evaluations == 2

    def test_gate_counts_ordering(self, graph5):
        """The decomposed baseline runs strictly more gates than the plain
        circuit baseline; the direct simulator runs none."""
        p = 2
        gate = GateCircuitQAOA(graph5, p).gate_count()
        decomposed = DecomposedCircuitQAOA(graph5, p).gate_count()
        assert decomposed > gate > 0
        assert DirectQAOA(graph5, p).gate_count() == 0

    def test_direct_gradient_available(self, graph5):
        sim = DirectQAOA(graph5, 2)
        angles = random_angles(2, rng=1)
        grad = sim.gradient(angles)
        assert grad.shape == (4,)


class TestTrotterMixer:
    def test_single_pair_is_exact(self, rng):
        """With one interaction pair there is nothing to Trotterize."""
        mixer = TrotterXYMixer(4, 2, [(0, 1)], trotter_steps=1)
        exact = sla.expm(-1j * 0.7 * mixer.matrix())
        psi = rng.normal(size=6) + 1j * rng.normal(size=6)
        psi /= np.linalg.norm(psi)
        assert np.allclose(mixer.apply(psi, 0.7), exact @ psi, atol=1e-10)

    def test_converges_to_exact_with_steps(self, rng):
        n, k, beta = 6, 3, 0.5
        exact_mixer = CliqueMixer(n, k)
        psi = rng.normal(size=20) + 1j * rng.normal(size=20)
        psi /= np.linalg.norm(psi)
        exact = exact_mixer.apply(psi, beta)
        errors = []
        for steps in (1, 4, 16, 64):
            approx = trotter_clique_mixer(n, k, trotter_steps=steps).apply(psi, beta)
            errors.append(np.linalg.norm(exact - approx))
        assert errors[0] > errors[1] > errors[2] > errors[3]
        # First-order Trotter error scales as 1/steps.
        assert errors[3] < errors[0] / 30
        assert errors[3] < 5e-3

    def test_trotter_error_metric_decreases(self):
        one = trotter_clique_mixer(5, 2, trotter_steps=1).trotter_error(0.4)
        many = trotter_clique_mixer(5, 2, trotter_steps=10).trotter_error(0.4)
        assert many < one

    def test_unitarity_and_weight_conservation(self, rng):
        n, k = 6, 2
        mixer = trotter_ring_mixer(n, k, trotter_steps=2)
        psi = rng.normal(size=15) + 1j * rng.normal(size=15)
        psi /= np.linalg.norm(psi)
        out = mixer.apply(psi, 1.3)
        assert np.isclose(np.linalg.norm(out), 1.0)

    def test_apply_hamiltonian_is_exact_xy(self, rng):
        n, k = 5, 2
        trotter = trotter_clique_mixer(n, k)
        exact = CliqueMixer(n, k)
        psi = rng.normal(size=10) + 1j * rng.normal(size=10)
        assert np.allclose(trotter.apply_hamiltonian(psi), exact.apply_hamiltonian(psi))

    def test_plugs_into_simulate(self, small_graph):
        space = DickeSpace(6, 3)
        obj = densest_subgraph_values(small_graph, space.bits)
        angles = random_angles(2, rng=2)
        exact_result = simulate(angles, CliqueMixer(6, 3), obj)
        trotter_result = simulate(angles, trotter_clique_mixer(6, 3), obj)
        # Both stay normalized, values differ but are in the feasible range.
        assert np.isclose(trotter_result.norm(), 1.0)
        assert obj.min() - 1e-9 <= trotter_result.expectation() <= obj.max() + 1e-9
        assert not np.isclose(trotter_result.expectation(), exact_result.expectation(), atol=1e-6)

    def test_many_steps_simulation_approaches_exact(self, small_graph):
        space = DickeSpace(6, 3)
        obj = densest_subgraph_values(small_graph, space.bits)
        angles = random_angles(2, rng=3)
        exact = simulate(angles, CliqueMixer(6, 3), obj).expectation()
        approx = simulate(angles, trotter_clique_mixer(6, 3, trotter_steps=64), obj).expectation()
        assert np.isclose(approx, exact, atol=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrotterXYMixer(4, 2, [], trotter_steps=1)
        with pytest.raises(ValueError):
            TrotterXYMixer(4, 2, [(0, 1)], trotter_steps=0)
        with pytest.raises(ValueError):
            TrotterXYMixer(4, 2, [(0, 0)])
        with pytest.raises(ValueError):
            trotter_ring_mixer(1, 0)

    def test_out_buffer_aliasing(self, rng):
        mixer = trotter_ring_mixer(5, 2)
        psi = rng.normal(size=10) + 1j * rng.normal(size=10)
        psi /= np.linalg.norm(psi)
        expected = mixer.apply(psi, 0.8)
        mixer.apply(psi, 0.8, out=psi)
        assert np.allclose(psi, expected)
