"""Tests for the Clique and Ring (XY) mixers on Dicke subspaces."""

from __future__ import annotations

from math import comb

import numpy as np
import pytest
import scipy.linalg as sla

from repro.hilbert import dicke_labels, hamming_weights
from repro.mixers.xy import (
    CliqueMixer,
    RingMixer,
    XYMixer,
    mixer_clique,
    mixer_ring,
    xy_subspace_matrix,
)

_X = np.array([[0.0, 1.0], [1.0, 0.0]])
_Y = np.array([[0.0, -1.0j], [1.0j, 0.0]])


def _dense_xy_hamiltonian(n, pairs):
    """Full 2^n x 2^n XY Hamiltonian (qubit 0 = LSB)."""

    def op_on(qubit, mat):
        total = np.eye(1)
        for q in range(n - 1, -1, -1):
            total = np.kron(total, mat if q == qubit else np.eye(2))
        return total

    H = np.zeros((1 << n, 1 << n), dtype=complex)
    for i, j in pairs:
        H += op_on(i, _X) @ op_on(j, _X) + op_on(i, _Y) @ op_on(j, _Y)
    return H


class TestSubspaceMatrix:
    def test_matches_full_space_restriction(self):
        n, k = 5, 2
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        labels = dicke_labels(n, k)
        full = _dense_xy_hamiltonian(n, pairs)
        restricted = full[np.ix_(labels, labels)].real
        assert np.allclose(xy_subspace_matrix(n, k, pairs), restricted)

    def test_ring_pattern_restriction(self):
        n, k = 6, 3
        pairs = [(i, (i + 1) % n) for i in range(n)]
        labels = dicke_labels(n, k)
        full = _dense_xy_hamiltonian(n, pairs)
        restricted = full[np.ix_(labels, labels)].real
        assert np.allclose(xy_subspace_matrix(n, k, pairs), restricted)

    def test_symmetric(self):
        mat = xy_subspace_matrix(6, 3, [(0, 1), (2, 3), (4, 5)])
        assert np.allclose(mat, mat.T)

    def test_full_space_never_mixes_weights(self):
        """The XY Hamiltonian is block diagonal in Hamming weight."""
        n = 4
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        full = _dense_xy_hamiltonian(n, pairs)
        weights = hamming_weights(n)
        for a in range(1 << n):
            for b in range(1 << n):
                if weights[a] != weights[b]:
                    assert full[a, b] == 0


class TestCliqueMixer:
    def test_dimensions(self):
        mixer = CliqueMixer(6, 3)
        assert mixer.dim == comb(6, 3)
        assert len(mixer.pairs) == 15

    def test_apply_matches_dense_expm(self, rng, clique_mixer_63):
        dense = clique_mixer_63.matrix()
        psi = rng.normal(size=20) + 1j * rng.normal(size=20)
        psi /= np.linalg.norm(psi)
        beta = 0.37
        assert np.allclose(clique_mixer_63.apply(psi, beta), sla.expm(-1j * beta * dense) @ psi)

    def test_hamiltonian_matches_subspace_matrix(self, rng, clique_mixer_63):
        psi = rng.normal(size=20) + 1j * rng.normal(size=20)
        expected = xy_subspace_matrix(6, 3, clique_mixer_63.pairs) @ psi
        assert np.allclose(clique_mixer_63.apply_hamiltonian(psi), expected)

    def test_unitarity_and_inverse(self, rng, clique_mixer_63):
        psi = rng.normal(size=20) + 1j * rng.normal(size=20)
        psi /= np.linalg.norm(psi)
        out = clique_mixer_63.apply(psi, 0.61)
        assert np.isclose(np.linalg.norm(out), 1.0)
        assert np.allclose(clique_mixer_63.apply_inverse(out, 0.61), psi)

    def test_dicke_state_is_eigenstate(self, clique_mixer_63):
        """The Dicke state is the top eigenstate of the Clique mixer."""
        psi0 = clique_mixer_63.initial_state()
        evolved = clique_mixer_63.apply(psi0, 0.5)
        assert np.isclose(np.abs(np.vdot(psi0, evolved)), 1.0)

    def test_eigenvalues_match_scipy(self, clique_mixer_63):
        mat = xy_subspace_matrix(6, 3, clique_mixer_63.pairs)
        expected = np.linalg.eigvalsh(mat)
        assert np.allclose(np.sort(clique_mixer_63.eigenvalues), expected)


class TestRingMixer:
    def test_pair_pattern(self):
        mixer = RingMixer(6, 2)
        assert len(mixer.pairs) == 6
        assert (0, 5) in mixer.pairs

    def test_apply_matches_dense_expm(self, rng, ring_mixer_63):
        dense = ring_mixer_63.matrix()
        psi = rng.normal(size=20) + 1j * rng.normal(size=20)
        psi /= np.linalg.norm(psi)
        assert np.allclose(ring_mixer_63.apply(psi, 0.93), sla.expm(-1j * 0.93 * dense) @ psi)

    def test_needs_two_qubits(self):
        with pytest.raises(ValueError):
            RingMixer(1, 0)

    def test_differs_from_clique(self, clique_mixer_63, ring_mixer_63):
        assert not np.allclose(clique_mixer_63.matrix(), ring_mixer_63.matrix())


class TestXYMixerValidation:
    def test_rejects_self_pair(self):
        with pytest.raises(ValueError):
            XYMixer(4, 2, [(1, 1)])

    def test_rejects_out_of_range_pair(self):
        with pytest.raises(ValueError):
            XYMixer(4, 2, [(0, 7)])

    def test_rejects_empty_pairs(self):
        with pytest.raises(ValueError):
            XYMixer(4, 2, [])

    def test_duplicate_pairs_deduplicated(self):
        mixer = XYMixer(4, 2, [(0, 1), (1, 0), (0, 1)])
        assert mixer.pairs == ((0, 1),)


class TestMixerCaching:
    def test_cache_roundtrip(self, tmp_path):
        path = tmp_path / "clique_6_3.npz"
        first = mixer_clique(6, 3, file=path)
        assert path.exists()
        second = mixer_clique(6, 3, file=path)
        assert np.allclose(first.eigenvalues, second.eigenvalues)
        assert np.allclose(first.eigenvectors, second.eigenvectors)

    def test_cache_key_mismatch_detected(self, tmp_path):
        path = tmp_path / "mixer.npz"
        mixer_clique(6, 3, file=path)
        with pytest.raises(ValueError):
            mixer_ring(6, 3, file=path)

    def test_cached_mixer_behaves_identically(self, tmp_path, rng):
        path = tmp_path / "ring_6_3.npz"
        fresh = mixer_ring(6, 3)
        cached = mixer_ring(6, 3, file=path)
        reloaded = mixer_ring(6, 3, file=path)
        psi = rng.normal(size=20) + 1j * rng.normal(size=20)
        psi /= np.linalg.norm(psi)
        a = fresh.apply(psi, 0.4)
        b = cached.apply(psi, 0.4)
        c = reloaded.apply(psi, 0.4)
        assert np.allclose(a, b)
        assert np.allclose(a, c)
