"""Tests for repro.hilbert.states and repro.hilbert.dicke."""

from __future__ import annotations

from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hilbert.dicke import (
    dicke_dim,
    dicke_labels,
    dicke_state_matrix,
    dicke_statevector,
    dicke_statevector_full,
    dicke_states,
    rank_state,
    subspace_index_map,
    unrank_state,
)
from repro.hilbert.states import (
    basis_state,
    hamming_weights,
    num_states,
    state_labels,
    state_matrix,
    states,
    uniform_superposition,
)


class TestStates:
    def test_num_states(self):
        assert num_states(0) == 1
        assert num_states(5) == 32
        with pytest.raises(ValueError):
            num_states(-1)

    def test_states_iterator_matches_labels(self):
        n = 4
        listed = list(states(n))
        assert len(listed) == 16
        for label, bits in enumerate(listed):
            assert sum(int(b) << i for i, b in enumerate(bits)) == label

    def test_state_matrix_rows_are_labels(self):
        n = 5
        mat = state_matrix(n)
        assert mat.shape == (32, 5)
        weights = mat.sum(axis=1)
        assert np.array_equal(weights, hamming_weights(n))

    def test_state_labels_range(self):
        assert np.array_equal(state_labels(3), np.arange(8))

    def test_dense_limit_enforced(self):
        with pytest.raises(ValueError):
            state_labels(31)

    def test_uniform_superposition_normalized(self):
        psi = uniform_superposition(6)
        assert psi.shape == (64,)
        assert np.isclose(np.linalg.norm(psi), 1.0)
        assert np.allclose(psi, psi[0])

    def test_basis_state(self):
        psi = basis_state(4, 5)
        assert psi[5] == 1.0
        assert np.count_nonzero(psi) == 1
        with pytest.raises(ValueError):
            basis_state(4, 16)


class TestDicke:
    def test_dim(self):
        assert dicke_dim(6, 3) == 20
        assert dicke_dim(6, 0) == 1
        assert dicke_dim(6, 6) == 1
        with pytest.raises(ValueError):
            dicke_dim(4, 5)

    def test_labels_sorted_and_correct_weight(self):
        labels = dicke_labels(7, 3)
        assert len(labels) == comb(7, 3)
        assert np.all(np.diff(labels) > 0)
        assert all(bin(int(x)).count("1") == 3 for x in labels)

    def test_states_iterator_matches_matrix(self):
        listed = np.array(list(dicke_states(6, 2)))
        assert np.array_equal(listed, dicke_state_matrix(6, 2))

    def test_statevector_subspace_normalized_uniform(self):
        psi = dicke_statevector(6, 3)
        assert psi.shape == (20,)
        assert np.isclose(np.linalg.norm(psi), 1.0)
        assert np.allclose(psi, psi[0])

    def test_statevector_full_support(self):
        psi = dicke_statevector_full(6, 2)
        assert psi.shape == (64,)
        support = np.flatnonzero(psi)
        assert np.array_equal(support, dicke_labels(6, 2))
        assert np.isclose(np.linalg.norm(psi), 1.0)

    def test_rank_unrank_roundtrip(self):
        n, k = 8, 3
        labels = dicke_labels(n, k)
        for idx, label in enumerate(labels):
            assert rank_state(int(label), n, k) == idx
            assert unrank_state(idx, n, k) == int(label)

    def test_rank_rejects_wrong_weight(self):
        with pytest.raises(ValueError):
            rank_state(0b0111, 6, 2)

    def test_rank_rejects_out_of_range_label(self):
        with pytest.raises(ValueError):
            rank_state(1 << 7, 6, 1)

    def test_unrank_rejects_out_of_range_index(self):
        with pytest.raises(ValueError):
            unrank_state(comb(6, 3), 6, 3)

    def test_subspace_index_map(self):
        mapping = subspace_index_map(5, 2)
        labels = dicke_labels(5, 2)
        assert len(mapping) == len(labels)
        for idx, label in enumerate(labels):
            assert mapping[int(label)] == idx

    @given(st.integers(min_value=1, max_value=14), st.data())
    @settings(max_examples=40)
    def test_property_rank_unrank(self, n, data):
        k = data.draw(st.integers(min_value=0, max_value=n))
        index = data.draw(st.integers(min_value=0, max_value=comb(n, k) - 1))
        label = unrank_state(index, n, k)
        assert bin(label).count("1") == k
        assert rank_state(label, n, k) == index
