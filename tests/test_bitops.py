"""Unit and property tests for repro.hilbert.bitops."""

from __future__ import annotations

from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hilbert.bitops import (
    bit_get,
    bit_matrix_to_ints,
    bits_to_int,
    first_weight_k,
    gosper_iter,
    gosper_next,
    int_to_bits,
    ints_to_bit_matrix,
    last_weight_k,
    parity,
    popcount,
)


class TestPopcount:
    def test_scalar_matches_python(self):
        for value in (0, 1, 2, 3, 255, 256, 2**20 + 7):
            assert popcount(value) == bin(value).count("1")

    def test_array_matches_python(self, rng):
        values = rng.integers(0, 2**40, size=200)
        expected = np.array([bin(int(v)).count("1") for v in values])
        assert np.array_equal(popcount(values), expected)

    def test_large_64bit_values(self):
        values = np.array([2**63 - 1, 2**62, 0], dtype=np.uint64)
        assert list(popcount(values)) == [63, 1, 0]

    def test_rejects_float_array(self):
        with pytest.raises(TypeError):
            popcount(np.array([1.5, 2.5]))

    def test_preserves_shape(self, rng):
        values = rng.integers(0, 1000, size=(4, 5))
        assert popcount(values).shape == (4, 5)

    @given(st.integers(min_value=0, max_value=2**60))
    def test_property_matches_bit_count(self, value):
        assert popcount(value) == value.bit_count()


class TestParity:
    def test_scalar(self):
        assert parity(0) == 0
        assert parity(1) == 1
        assert parity(3) == 0
        assert parity(7) == 1

    def test_array(self, rng):
        values = rng.integers(0, 2**30, size=100)
        expected = np.array([bin(int(v)).count("1") % 2 for v in values])
        assert np.array_equal(parity(values), expected)


class TestBitGet:
    def test_scalar(self):
        assert bit_get(0b1010, 1) == 1
        assert bit_get(0b1010, 0) == 0
        assert bit_get(0b1010, 3) == 1

    def test_array(self):
        values = np.array([0b01, 0b10, 0b11])
        assert np.array_equal(bit_get(values, 0), [1, 0, 1])
        assert np.array_equal(bit_get(values, 1), [0, 1, 1])


class TestBitConversions:
    def test_bits_to_int_lsb_first(self):
        assert bits_to_int([1, 0, 1]) == 0b101
        assert bits_to_int([0, 0, 0, 1]) == 8

    def test_bits_to_int_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    def test_int_to_bits_roundtrip(self):
        for label in range(64):
            assert bits_to_int(int_to_bits(label, 6)) == label

    def test_int_to_bits_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)

    def test_int_to_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 3)

    def test_bit_matrix_roundtrip(self, rng):
        labels = rng.integers(0, 2**12, size=50)
        bits = ints_to_bit_matrix(labels, 12)
        assert bits.shape == (50, 12)
        assert np.array_equal(bit_matrix_to_ints(bits), labels)

    def test_bit_matrix_to_ints_requires_2d(self):
        with pytest.raises(ValueError):
            bit_matrix_to_ints(np.array([0, 1, 0]))

    @given(st.integers(min_value=2, max_value=16), st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=50)
    def test_property_matrix_roundtrip(self, n, label):
        label = label % (1 << n)
        bits = ints_to_bit_matrix(np.array([label]), n)
        assert int(bit_matrix_to_ints(bits)[0]) == label


class TestGosper:
    def test_first_and_last(self):
        assert first_weight_k(6, 3) == 0b000111
        assert last_weight_k(6, 3) == 0b111000
        assert first_weight_k(5, 0) == 0
        assert last_weight_k(5, 5) == 0b11111

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            first_weight_k(4, 5)
        with pytest.raises(ValueError):
            last_weight_k(4, -1)

    def test_gosper_next_weight_preserved(self):
        value = 0b0111
        for _ in range(10):
            value = gosper_next(value)
            assert bin(value).count("1") == 3

    def test_gosper_next_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gosper_next(0)

    def test_iter_count_and_order(self):
        for n, k in [(5, 2), (6, 3), (7, 0), (7, 7), (8, 1)]:
            values = list(gosper_iter(n, k))
            assert len(values) == comb(n, k)
            assert values == sorted(values)
            assert all(bin(v).count("1") == k for v in values)

    def test_iter_matches_bruteforce(self):
        n, k = 8, 4
        expected = [x for x in range(1 << n) if bin(x).count("1") == k]
        assert list(gosper_iter(n, k)) == expected

    def test_iter_invalid(self):
        with pytest.raises(ValueError):
            list(gosper_iter(4, 6))

    @given(st.integers(min_value=1, max_value=12), st.data())
    @settings(max_examples=30)
    def test_property_gosper_enumeration(self, n, data):
        k = data.draw(st.integers(min_value=0, max_value=n))
        values = list(gosper_iter(n, k))
        assert len(values) == comb(n, k)
        assert len(set(values)) == len(values)
