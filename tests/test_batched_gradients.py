"""Batched-vs-scalar equivalence for the adjoint-gradient engine.

The batched gradient kernel evolves M angle sets as one ``(dim, M)`` matrix
through a recorded forward pass and a batched adjoint backward pass; these
tests pin it to the scalar one-angle-set-at-a-time path across every mixer
family (including mixed multi-angle schedules), pin every mixer's
``apply_hamiltonian_batch`` to a column loop over ``apply_hamiltonian``, and
check that the vectorized multi-start refiner reaches scipy-BFGS-quality
optima on the tier-1 problems.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.angles import (
    find_angles_random,
    local_minimize,
    multistart_minimize,
)
from repro.core import (
    BatchedWorkspace,
    QAOAAnsatz,
    qaoa_value_and_gradient,
    qaoa_value_and_gradient_batch,
)
from repro.core.gradients import finite_difference_gradient
from repro.hilbert import state_matrix
from repro.mixers import (
    MixerSchedule,
    MultiAngleXMixer,
    grover_mixer,
    grover_mixer_dicke,
    mixer_clique,
    mixer_ring,
    transverse_field_mixer,
)
from repro.mixers.base import Mixer
from repro.mixers.unitary import HermitianMixer
from repro.problems import erdos_renyi, maxcut_values

_N = 6
_K = 3


def _objective(dim: int, seed: int = 11) -> np.ndarray:
    return np.random.default_rng(seed).random(dim)


def _mixer(kind: str):
    if kind == "x":
        return transverse_field_mixer(_N)
    if kind == "grover-full":
        return grover_mixer(_N)
    if kind == "grover-dicke":
        return grover_mixer_dicke(_N, _K)
    if kind == "clique":
        return mixer_clique(_N, _K)
    if kind == "ring":
        return mixer_ring(_N, _K)
    if kind == "hermitian":
        rng = np.random.default_rng(3)
        mat = rng.random((16, 16)) + 1j * rng.random((16, 16))
        return HermitianMixer(mat + mat.conj().T)
    raise ValueError(kind)


_ALL_KINDS = ["x", "grover-full", "grover-dicke", "clique", "ring", "hermitian"]


# ---------------------------------------------------------------------------
# batched value-and-gradient vs scalar adjoint
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kind", _ALL_KINDS)
@pytest.mark.parametrize("p", [1, 3])
@pytest.mark.parametrize("batch", [1, 7])
def test_value_and_gradient_batch_matches_scalar(kind, p, batch):
    mixer = _mixer(kind)
    obj = _objective(mixer.dim)
    rng = np.random.default_rng(100 * p + batch)
    angles = 2.0 * np.pi * rng.random((batch, 2 * p))
    values, grads = qaoa_value_and_gradient_batch(angles, mixer, obj, p=p)
    assert values.shape == (batch,)
    assert grads.shape == (batch, 2 * p)
    for j in range(batch):
        value, grad = qaoa_value_and_gradient(angles[j], mixer, obj, p=p)
        assert abs(values[j] - value) <= 1e-10
        assert np.abs(grads[j] - grad).max() <= 1e-10


def test_multiangle_value_and_gradient_batch():
    mixer = MultiAngleXMixer(4, [(0,), (1,), (2,), (3,)])
    obj = maxcut_values(erdos_renyi(4, 0.6, seed=2), state_matrix(4))
    schedule = MixerSchedule([mixer, mixer])
    num_angles = schedule.total_betas + schedule.p
    rng = np.random.default_rng(4)
    angles = rng.uniform(-1, 1, size=(6, num_angles))
    values, grads = qaoa_value_and_gradient_batch(angles, schedule, obj)
    assert grads.shape == (6, num_angles)
    for j in range(6):
        value, grad = qaoa_value_and_gradient(angles[j], schedule, obj)
        assert abs(values[j] - value) <= 1e-10
        assert np.abs(grads[j] - grad).max() <= 1e-10


def test_mixed_schedule_value_and_gradient_batch():
    """Multi-angle and plain layers interleaved in one schedule."""
    multi = MultiAngleXMixer(4, [(0,), (1,), (2, 3)])
    plain = transverse_field_mixer(4)
    schedule = MixerSchedule([multi, plain, multi])
    obj = _objective(16, seed=8)
    num_angles = schedule.total_betas + schedule.p
    rng = np.random.default_rng(9)
    angles = rng.uniform(-np.pi, np.pi, size=(5, num_angles))
    values, grads = qaoa_value_and_gradient_batch(angles, schedule, obj)
    for j in range(5):
        value, grad = qaoa_value_and_gradient(angles[j], schedule, obj)
        assert abs(values[j] - value) <= 1e-10
        assert np.abs(grads[j] - grad).max() <= 1e-10


def test_batch_gradient_with_initial_state():
    mixer = mixer_clique(_N, _K)
    obj = _objective(mixer.dim, seed=21)
    rng = np.random.default_rng(5)
    init = rng.random(mixer.dim) + 1j * rng.random(mixer.dim)
    init /= np.linalg.norm(init)
    angles = 2.0 * np.pi * rng.random((4, 4))
    values, grads = qaoa_value_and_gradient_batch(angles, mixer, obj, p=2, initial_state=init)
    for j in range(4):
        value, grad = qaoa_value_and_gradient(angles[j], mixer, obj, p=2, initial_state=init)
        assert abs(values[j] - value) <= 1e-10
        assert np.abs(grads[j] - grad).max() <= 1e-10


def test_single_flat_angle_vector_is_one_row():
    mixer = transverse_field_mixer(4)
    obj = _objective(16, seed=1)
    angles = np.array([0.3, 0.9, 1.2, 0.4])
    values, grads = qaoa_value_and_gradient_batch(angles, mixer, obj, p=2)
    assert values.shape == (1,)
    assert grads.shape == (1, 4)
    value, grad = qaoa_value_and_gradient(angles, mixer, obj, p=2)
    assert abs(values[0] - value) <= 1e-12
    assert np.abs(grads[0] - grad).max() <= 1e-12


# ---------------------------------------------------------------------------
# apply_hamiltonian_batch vs column-looped apply_hamiltonian
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kind", _ALL_KINDS)
def test_apply_hamiltonian_batch_matches_column_loop(kind):
    mixer = _mixer(kind)
    rng = np.random.default_rng(7)
    Psi = rng.random((mixer.dim, 5)) + 1j * rng.random((mixer.dim, 5))
    Psi = np.ascontiguousarray(Psi)
    batched = mixer.apply_hamiltonian_batch(Psi)
    for j in range(5):
        looped = mixer.apply_hamiltonian(np.ascontiguousarray(Psi[:, j]))
        assert np.abs(batched[:, j] - looped).max() <= 1e-10


def test_apply_hamiltonian_batch_multiangle():
    mixer = MultiAngleXMixer(4, [(0,), (1, 2), (3,)])
    rng = np.random.default_rng(2)
    Psi = np.ascontiguousarray(rng.random((16, 3)) + 1j * rng.random((16, 3)))
    batched = mixer.apply_hamiltonian_batch(Psi)
    for j in range(3):
        looped = mixer.apply_hamiltonian(np.ascontiguousarray(Psi[:, j]))
        assert np.abs(batched[:, j] - looped).max() <= 1e-10


def test_apply_hamiltonian_batch_out_aliases_and_workspace():
    mixer = mixer_ring(_N, _K)
    rng = np.random.default_rng(6)
    Psi = np.ascontiguousarray(rng.random((mixer.dim, 4)) + 1j * rng.random((mixer.dim, 4)))
    expected = mixer.apply_hamiltonian_batch(Psi.copy())
    inplace = Psi.copy()
    ws = BatchedWorkspace(mixer.dim, 4)
    mixer.apply_hamiltonian_batch(inplace, out=inplace, workspace=ws)
    assert np.abs(inplace - expected).max() <= 1e-12


def test_base_class_column_loop_fallback():
    """A mixer without a batched override still satisfies the batch contract."""

    class LoopedMixer(Mixer):
        def __init__(self, inner):
            super().__init__(inner.space)
            self.inner = inner

        def apply(self, psi, beta, out=None):
            return self.inner.apply(psi, beta, out=out)

        def apply_hamiltonian(self, psi, out=None):
            return self.inner.apply_hamiltonian(psi, out=out)

        def matrix(self):
            return self.inner.matrix()

    inner = transverse_field_mixer(4)
    looped = LoopedMixer(inner)
    rng = np.random.default_rng(3)
    Psi = np.ascontiguousarray(rng.random((16, 3)) + 1j * rng.random((16, 3)))
    assert np.abs(
        looped.apply_hamiltonian_batch(Psi) - inner.apply_hamiltonian_batch(Psi)
    ).max() <= 1e-12


def test_term_gradients_batch_matches_per_term_products():
    mixer = MultiAngleXMixer(4, [(0,), (1,), (2, 3)])
    rng = np.random.default_rng(10)
    Phi = np.ascontiguousarray(rng.random((16, 4)) + 1j * rng.random((16, 4)))
    Psi = np.ascontiguousarray(rng.random((16, 4)) + 1j * rng.random((16, 4)))
    grads = mixer.term_gradients_batch(Phi, Psi)
    assert grads.shape == (3, 4)
    for t in range(3):
        for j in range(4):
            h_psi = mixer.apply_hamiltonian_term(np.ascontiguousarray(Psi[:, j]), t)
            expected = 2.0 * float(np.imag(np.vdot(Phi[:, j], h_psi)))
            assert abs(grads[t, j] - expected) <= 1e-10


# ---------------------------------------------------------------------------
# workspace plumbing
# ---------------------------------------------------------------------------

class TestBatchedGradientWorkspace:
    def test_ensure_layers_shape_and_contiguity(self):
        ws = BatchedWorkspace(10, 4)
        store = ws.ensure_layers(3, 4)
        assert store.shape == (3, 2, 10, 4)
        assert store.flags.c_contiguous
        assert store[1, 0].flags.c_contiguous
        # shrinking requests reuse the same backing buffer
        smaller = ws.ensure_layers(2, 3)
        assert smaller.shape == (2, 2, 10, 3)
        with pytest.raises(ValueError):
            ws.ensure_layers(-1, 4)
        with pytest.raises(ValueError):
            ws.ensure_layers(2, 0)

    def test_aux_is_lazy_and_grows(self):
        ws = BatchedWorkspace(8, 2)
        assert ws._aux_flat is None
        aux = ws.aux(2)
        assert aux.shape == (8, 2)
        grown = ws.aux(5)
        assert grown.shape == (8, 5)
        with pytest.raises(ValueError):
            ws.aux(0)

    def test_ansatz_batch_gradient_reuses_workspace(self):
        obj = _objective(2**_N, seed=13)
        ansatz = QAOAAnsatz(obj, transverse_field_mixer(_N), 2)
        rng = np.random.default_rng(1)
        ansatz.value_and_gradient_batch(2.0 * np.pi * rng.random((8, 4)))
        ws = ansatz._batched_workspace
        assert ws is not None and ws.capacity == 8
        ansatz.value_and_gradient_batch(2.0 * np.pi * rng.random((3, 4)))
        assert ansatz._batched_workspace is ws and ws.capacity == 8
        assert ansatz.counter.forward_passes == 11
        assert ansatz.counter.hamiltonian_applications == 2 * 11

    def test_loss_and_gradient_batch_signs(self):
        obj = _objective(16, seed=4)
        rng = np.random.default_rng(2)
        angles = 2.0 * np.pi * rng.random((3, 4))
        for maximize in (True, False):
            ansatz = QAOAAnsatz(obj, transverse_field_mixer(4), 2, maximize=maximize)
            values, grads = ansatz.value_and_gradient_batch(angles)
            losses, lgrads = ansatz.loss_and_gradient_batch(angles)
            sign = -1.0 if maximize else 1.0
            assert np.allclose(losses, sign * values)
            assert np.allclose(lgrads, sign * grads)


# ---------------------------------------------------------------------------
# vectorized multi-start refinement
# ---------------------------------------------------------------------------

def _maxcut_ansatz(n=_N, p=2, seed=1, maximize=True):
    graph = erdos_renyi(n, 0.5, seed=seed)
    obj = maxcut_values(graph, state_matrix(n))
    return QAOAAnsatz(obj, transverse_field_mixer(n), p, maximize=maximize)


class TestMultistartMinimize:
    def test_reaches_scipy_quality_best_value(self):
        """Best-of-M values match the per-seed scipy BFGS loop on tier-1 problems."""
        for seed, p in ((1, 1), (4, 2)):
            ansatz = _maxcut_ansatz(p=p, seed=seed)
            rng = np.random.default_rng(0)
            seeds = 2.0 * np.pi * rng.random((16, ansatz.num_angles))
            report = multistart_minimize(ansatz, seeds)
            scipy_best = max(
                local_minimize(ansatz, seeds[j]).value for j in range(len(seeds))
            )
            assert report.values.max() >= scipy_best - 1e-6

    def test_refined_points_are_local_optima(self):
        ansatz = _maxcut_ansatz(p=2)
        rng = np.random.default_rng(3)
        seeds = 2.0 * np.pi * rng.random((12, ansatz.num_angles))
        report = multistart_minimize(ansatz, seeds, gtol=1e-6)
        assert report.converged.all()
        for j in range(len(seeds)):
            grad = ansatz.gradient(report.angles[j])
            assert np.abs(grad).max() <= 1e-5

    def test_monotone_improvement_over_seeds(self):
        ansatz = _maxcut_ansatz(p=2)
        rng = np.random.default_rng(7)
        seeds = 2.0 * np.pi * rng.random((10, ansatz.num_angles))
        seed_values = ansatz.expectation_batch(seeds)
        report = multistart_minimize(ansatz, seeds)
        assert np.all(report.values >= seed_values - 1e-9)

    def test_minimization_sense(self):
        ansatz = _maxcut_ansatz(p=1, maximize=False)
        rng = np.random.default_rng(5)
        seeds = 2.0 * np.pi * rng.random((8, ansatz.num_angles))
        report = multistart_minimize(ansatz, seeds)
        seed_values = ansatz.expectation_batch(seeds)
        assert np.all(report.values <= seed_values + 1e-9)

    def test_chunking_matches_unchunked(self):
        ansatz = _maxcut_ansatz(p=2)
        rng = np.random.default_rng(9)
        seeds = 2.0 * np.pi * rng.random((9, ansatz.num_angles))
        full = multistart_minimize(ansatz, seeds)
        chunked = multistart_minimize(ansatz, seeds, batch_size=4)
        assert np.abs(full.values - chunked.values).max() <= 1e-8

    def test_column_evaluations_sum(self):
        ansatz = _maxcut_ansatz(p=1)
        rng = np.random.default_rng(11)
        seeds = 2.0 * np.pi * rng.random((6, ansatz.num_angles))
        report = multistart_minimize(ansatz, seeds)
        assert report.evaluations == int(report.column_evaluations.sum())
        assert np.all(report.column_evaluations >= 1)
        assert np.all(report.iterations <= 200)

    def test_validates_inputs(self):
        ansatz = _maxcut_ansatz(p=1)
        with pytest.raises(ValueError):
            multistart_minimize(ansatz, np.zeros((3, 5)))
        with pytest.raises(ValueError):
            multistart_minimize(ansatz, np.zeros((3, 2)), maxiter=0)
        with pytest.raises(ValueError):
            multistart_minimize(ansatz, np.zeros((3, 2)), batch_size=0)


# ---------------------------------------------------------------------------
# find_angles_random rewiring (scoring satellite + vectorized default)
# ---------------------------------------------------------------------------

class TestFindAnglesRandomRewire:
    def test_no_prune_skips_seed_scoring(self, monkeypatch):
        """With refine_top=None every seed is refined: zero scoring evolutions."""
        ansatz = _maxcut_ansatz(p=1)

        def forbid(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("seed scoring must be skipped when nothing is pruned")

        monkeypatch.setattr(ansatz, "expectation_batch", forbid)
        result = find_angles_random(ansatz, iters=4, rng=0)
        assert all(entry["seed_value"] is None for entry in result.history)

    def test_no_prune_skips_scoring_scalar_path_too(self, monkeypatch):
        ansatz = _maxcut_ansatz(p=1)

        def forbid(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("seed scoring must be skipped when nothing is pruned")

        monkeypatch.setattr(ansatz, "expectation_batch", forbid)
        find_angles_random(ansatz, iters=3, rng=0, gradient="numeric", vectorized=False)

    def test_scoring_is_chunked(self, monkeypatch):
        ansatz = _maxcut_ansatz(p=1)
        batches = []
        original = ansatz.expectation_batch

        def spy(angles):
            angles = np.asarray(angles)
            batches.append(angles.shape[0])
            return original(angles)

        monkeypatch.setattr(ansatz, "expectation_batch", spy)
        find_angles_random(ansatz, iters=25, rng=0, refine_top=2, score_batch_size=8)
        # refinement runs through loss_and_gradient_batch, so every
        # expectation_batch call here is a bounded scoring chunk
        assert batches == [8, 8, 8, 1]

    def test_peak_scratch_bounded_by_chunk_budget(self):
        """The workspace never grows to the full (dim, iters) batch."""
        ansatz = _maxcut_ansatz(p=1)
        find_angles_random(ansatz, iters=40, rng=0, refine_top=2, score_batch_size=16)
        assert ansatz._batched_workspace is not None
        assert ansatz._batched_workspace.capacity <= 16

    def test_vectorized_matches_scalar_backend_quality(self):
        ansatz = _maxcut_ansatz(p=2)
        vec = find_angles_random(ansatz, iters=12, rng=3)
        sci = find_angles_random(ansatz, iters=12, rng=3, vectorized=False)
        assert vec.value >= sci.value - 1e-6
        assert vec.strategy == sci.strategy == "random-restart"

    def test_vectorized_requires_adjoint(self):
        with pytest.raises(ValueError):
            find_angles_random(_maxcut_ansatz(p=1), iters=2, gradient="finite", vectorized=True)

    def test_vectorized_deterministic(self):
        ansatz = _maxcut_ansatz(p=1)
        a = find_angles_random(ansatz, iters=5, rng=8)
        b = find_angles_random(ansatz, iters=5, rng=8)
        assert np.allclose(a.angles, b.angles)
        assert a.value == b.value

    def test_refine_top_with_vectorized_path(self):
        ansatz = _maxcut_ansatz(p=1)
        summary, results = find_angles_random(
            ansatz, iters=10, rng=2, refine_top=3, return_all=True
        )
        assert sum(entry["refined"] for entry in summary.history) == 3
        assert all(entry["seed_value"] is not None for entry in summary.history)
        refined = [r for r in results if r.strategy == "bfgs-adjoint-batched"]
        assert len(refined) == 3
        assert all(r.evaluations > 0 for r in refined)


# ---------------------------------------------------------------------------
# finite-difference buffer-reuse satellite
# ---------------------------------------------------------------------------

class TestFiniteDifferenceBufferReuse:
    def test_single_buffer_perturbed_in_place(self):
        seen = []

        def func(v):
            seen.append(id(v))
            return float(v[0] ** 2 + 3.0 * v[1])

        grad = finite_difference_gradient(func, np.array([2.0, 5.0]))
        assert np.allclose(grad, [4.0, 3.0], atol=1e-4)
        assert len(set(seen)) == 1  # one shared perturbation buffer

    def test_input_array_not_mutated(self):
        x = np.array([0.4, 1.3, -0.2])
        before = x.copy()
        finite_difference_gradient(lambda v: float(np.sin(v).sum()), x)
        assert np.array_equal(x, before)
        finite_difference_gradient(lambda v: float(np.cos(v).sum()), x, scheme="forward")
        assert np.array_equal(x, before)
