"""Tests for the solver service: pools, coalescing, result cache, HTTP front.

The load-bearing property is *equivalence*: whatever path a spec takes
through the service — warm pool, coalesced multi-start batch, result-cache
hit, HTTP round trip — the answer must match a one-shot ``solve()`` of the
same spec (bit-identical on sequential paths, ≤1e-10 on coalesced ones,
where only the GEMM batch composition differs).
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import SolveSpec, solve
from repro.api.solver import SolveResult, clear_problem_memo, memoized_problem
from repro.hpc.memory import warm_entry_bytes
from repro.io.cache import ResultCache, cached_eigendecomposition
from repro.service import (
    SolverService,
    WarmPool,
    coalesce_key,
    coalescible,
    default_service,
    pool_fingerprint,
    reset_default_service,
)
from repro.service.server import run_server


def _spec(seed=0, *, problem="maxcut", n=6, mixer="x", strategy="random",
          strategy_params=None, p=2, k=None):
    problem_params = {} if k is None else {"k": k}
    return SolveSpec.build(
        problem=problem,
        n=n,
        problem_params=problem_params,
        mixer=mixer,
        strategy=strategy,
        strategy_params={"iters": 4} if strategy_params is None else strategy_params,
        p=p,
        seed=seed,
    )


def _rows_equal(a: dict, b: dict) -> bool:
    """Row equality ignoring wall time (the only nondeterministic field)."""
    a = {key: value for key, value in a.items() if key != "wall_time_s"}
    b = {key: value for key, value in b.items() if key != "wall_time_s"}
    return a == b


# ---------------------------------------------------------------------------
# Fingerprints and coalescibility
# ---------------------------------------------------------------------------


class TestKeys:
    def test_fingerprint_ignores_strategy_and_seed(self):
        base = _spec(0)
        other_seed = _spec(3)
        other_strategy = SolveSpec(
            problem=base.problem, mixer=base.mixer, strategy="grid", p=base.p, seed=0
        )
        assert pool_fingerprint(base) == pool_fingerprint(other_seed)
        assert pool_fingerprint(base) == pool_fingerprint(other_strategy)

    def test_fingerprint_distinguishes_setup(self):
        assert pool_fingerprint(_spec(0)) != pool_fingerprint(_spec(0, n=8))
        assert pool_fingerprint(_spec(0)) != pool_fingerprint(_spec(0, mixer="grover"))
        assert pool_fingerprint(_spec(0)) != pool_fingerprint(_spec(0, p=3))

    def test_coalesce_key_ignores_only_the_seed(self):
        assert coalesce_key(_spec(0)) == coalesce_key(_spec(7))
        loose = _spec(0, strategy_params={"iters": 8})
        assert coalesce_key(_spec(0)) != coalesce_key(loose)
        grid = _spec(0, strategy="grid", strategy_params={"resolution": 4})
        assert coalesce_key(_spec(0)) != coalesce_key(grid)

    def test_coalescible_is_random_with_effort_knobs_only(self):
        assert coalescible(_spec(0))
        assert coalescible(_spec(0, strategy_params={"iters": 8, "maxiter": 50}))
        assert coalescible(_spec(0, strategy="random_restart", strategy_params={}))
        assert not coalescible(_spec(0, strategy="grid", strategy_params={"resolution": 4}))
        assert not coalescible(_spec(0, strategy_params={"iters": 4, "refine_top": 2}))
        assert not coalescible(_spec(0, strategy_params={"iters": 4, "vectorized": False}))


# ---------------------------------------------------------------------------
# Equivalence: service answers == one-shot solve()
# ---------------------------------------------------------------------------


class TestEquivalence:
    def test_single_spec_is_bit_identical_to_solve(self):
        spec = _spec(1)
        service = SolverService(result_cache=None)
        result = service.solve(spec)
        direct = solve(spec)
        assert result.value == direct.value
        assert np.array_equal(result.angles, direct.angles)
        assert _rows_equal(result.to_row(), direct.to_row())

    def test_coalesced_group_matches_solve_per_spec(self):
        specs = [_spec(seed) for seed in range(5)]
        service = SolverService(result_cache=None)
        results = service.solve_many(specs)
        assert service.coalesced_groups == 1
        assert service.coalesced_requests == 5
        for result, spec in zip(results, specs):
            direct = solve(spec)
            assert abs(result.value - direct.value) <= 1e-10
            assert result.spec == spec
            assert np.allclose(result.angles, direct.angles, atol=1e-6)
            assert result.evaluations > 0

    def test_coalesced_constrained_dicke_clique(self):
        specs = [
            _spec(seed, problem="densest_subgraph", n=6, k=3, mixer="clique")
            for seed in range(3)
        ]
        service = SolverService(result_cache=None)
        results = service.solve_many(specs)
        for result, spec in zip(results, specs):
            assert abs(result.value - solve(spec).value) <= 1e-10

    def test_non_coalescible_strategies_fall_back_sequential(self):
        specs = [
            _spec(seed, strategy="grid", strategy_params={"resolution": 4})
            for seed in range(3)
        ]
        service = SolverService(result_cache=None)
        results = service.solve_many(specs)
        assert service.coalesced_groups == 0
        for result, spec in zip(results, specs):
            direct = solve(spec)
            assert result.value == direct.value
            assert np.array_equal(result.angles, direct.angles)

    def test_mixed_batch_routes_each_spec_correctly(self):
        specs = [
            _spec(0),
            _spec(1),
            _spec(0, strategy="grid", strategy_params={"resolution": 4}),
            _spec(0, mixer="grover"),
        ]
        service = SolverService(result_cache=None)
        results = service.solve_many(specs)
        for result, spec in zip(results, specs):
            assert abs(result.value - solve(spec).value) <= 1e-10
        assert len(service.pool) == 2  # (maxcut, x, 2) and (maxcut, grover, 2)


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_hit_returns_identical_row_with_zero_simulator_calls(self, tmp_path):
        cache = ResultCache(tmp_path / "results")
        spec = _spec(2)
        first = SolverService(result_cache=cache).solve(spec)
        assert not first.cached

        fresh = SolverService(result_cache=cache)
        hit = fresh.solve(spec)
        assert hit.cached
        assert fresh.cache_hits == 1
        assert fresh.solved == 0
        # Zero simulator work: nothing was ever built into the warm pool.
        assert len(fresh.pool) == 0
        assert _rows_equal(hit.to_row(), first.to_row())
        assert isinstance(hit, SolveResult)
        with pytest.raises(ValueError, match="cache-reconstructed"):
            hit.probabilities()
        with pytest.raises(ValueError, match="cache-reconstructed"):
            hit.sample(10)

    def test_different_seeds_are_distinct_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        service = SolverService(result_cache=cache)
        service.solve_many([_spec(0), _spec(1)])
        assert len(cache) == 2
        assert cache.get(_spec(0)) != cache.get(_spec(1))
        assert cache.get(_spec(9)) is None

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(0)
        cache.put(spec, solve(spec).to_row())
        cache.path_for(spec).write_text("{torn", encoding="utf-8")
        assert cache.get(spec) is None
        service = SolverService(result_cache=cache)
        result = service.solve(spec)  # recomputes and overwrites
        assert not result.cached
        assert cache.get(spec) is not None

    def test_concurrent_puts_never_tear(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(0)
        row = solve(spec).to_row()

        def hammer(worker):
            for _ in range(10):
                cache.put(spec, {**row, "writer": worker})
                got = cache.get(spec)
                assert got is not None and "writer" in got

        with ThreadPoolExecutor(max_workers=4) as pool:
            for future in [pool.submit(hammer, w) for w in range(4)]:
                future.result()
        assert len(cache) == 1


# ---------------------------------------------------------------------------
# Warm pool: reuse, LRU, byte budget
# ---------------------------------------------------------------------------


class TestWarmPool:
    def test_same_fingerprint_reuses_one_entry(self):
        pool = WarmPool()
        first = pool.entry_for(_spec(0))
        second = pool.entry_for(_spec(5))
        assert first is second
        assert pool.stats()["hits"] == 1
        assert pool.stats()["misses"] == 1
        assert first.ansatz is second.ansatz

    def test_entry_count_lru(self):
        pool = WarmPool(max_entries=2)
        a = pool.entry_for(_spec(0, n=4))
        pool.entry_for(_spec(0, n=5))
        pool.entry_for(_spec(0, n=6))
        assert len(pool) == 2
        assert pool.evictions == 1
        assert a.fingerprint not in pool  # oldest went first

    def test_byte_budget_eviction(self):
        small = WarmPool(max_entries=8).entry_for(_spec(0, n=6)).estimated_bytes
        # Budget fits one n=6 entry but not two.
        pool = WarmPool(max_entries=8, max_bytes=int(small * 1.5))
        pool.entry_for(_spec(0, n=6))
        pool.entry_for(_spec(0, n=6, mixer="grover"))
        assert len(pool) == 1
        assert pool.evictions == 1
        assert pool.total_bytes() <= pool.max_bytes

    def test_most_recent_entry_survives_even_over_budget(self):
        pool = WarmPool(max_entries=8, max_bytes=1)
        entry = pool.entry_for(_spec(0, n=6))
        assert len(pool) == 1
        assert entry.fingerprint in pool

    def test_estimate_matches_memory_helper_and_grows_with_batches(self):
        pool = WarmPool()
        spec = _spec(0, n=6)
        entry = pool.entry_for(spec)
        dim = entry.ansatz.schedule.dim
        assert entry.estimated_bytes == warm_entry_bytes(dim, p=spec.p)
        SolverService(pool=pool, result_cache=None).solve_many([_spec(s) for s in range(3)])
        capacity = entry.ansatz._batched_workspace.capacity
        assert capacity >= 3 * 4  # 3 requests x 4 restarts
        assert entry.estimated_bytes == warm_entry_bytes(dim, p=spec.p, batch_capacity=capacity)


# ---------------------------------------------------------------------------
# Concurrency
# ---------------------------------------------------------------------------


class TestConcurrency:
    def test_eight_concurrent_clients_one_service(self, tmp_path):
        service = SolverService(result_cache=ResultCache(tmp_path))
        specs = [_spec(seed % 4, mixer=("x" if seed % 2 else "grover")) for seed in range(8)]
        expected = {id(spec): solve(spec).to_row() for spec in specs}

        def client(spec):
            return service.solve(spec)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(client, specs))
        for spec, result in zip(specs, results):
            assert abs(result.value - expected[id(spec)]["value"]) <= 1e-10
        assert service.requests == 8
        # 4 distinct specs appeared twice each: second arrivals either hit the
        # result cache or recomputed sequentially — all answers agreed above.
        assert len(service.pool) == 2

    def test_async_submit_coalesces_within_window(self):
        service = SolverService(result_cache=None, window_s=0.05)
        specs = [_spec(seed) for seed in range(4)]

        async def clients():
            return await asyncio.gather(*(service.submit(spec) for spec in specs))

        results = asyncio.run(clients())
        assert service.coalesced_groups == 1
        assert service.coalesced_requests == 4
        for result, spec in zip(results, specs):
            assert abs(result.value - solve(spec).value) <= 1e-10

    def test_async_submit_bad_spec_raises_per_request(self):
        service = SolverService(result_cache=None, window_s=0.0)

        async def one():
            bad = _spec(0, strategy="random", strategy_params={"iters": -3})
            with pytest.raises(ValueError):
                await service.submit(bad)
            good = await service.submit(_spec(0))
            return good

        result = asyncio.run(one())
        assert abs(result.value - solve(_spec(0)).value) <= 1e-10

    def test_concurrent_eigendecomposition_fill_is_single_flight(self, tmp_path):
        path = tmp_path / "mixer.npz"
        calls = []
        lock = threading.Lock()

        def compute():
            with lock:
                calls.append(1)
            values = np.arange(4, dtype=np.float64)
            vectors = np.eye(4)
            return values, vectors

        def fill():
            return cached_eigendecomposition(path, "test-mixer", compute)

        with ThreadPoolExecutor(max_workers=6) as pool:
            outputs = [future.result() for future in [pool.submit(fill) for _ in range(6)]]
        assert len(calls) == 1  # one compute; everyone else loaded the file
        for values, vectors in outputs:
            assert np.array_equal(values, np.arange(4, dtype=np.float64))
            assert np.array_equal(vectors, np.eye(4))


# ---------------------------------------------------------------------------
# Problem memoization (satellite)
# ---------------------------------------------------------------------------


class TestProblemMemo:
    def test_solver_reuses_memoized_instance(self):
        clear_problem_memo()
        spec = _spec(0)
        from repro.api.solver import QAOASolver

        first = QAOASolver(spec)
        second = QAOASolver(spec)
        assert first.problem is second.problem
        assert memoized_problem(spec.problem) is first.problem
        clear_problem_memo()
        assert memoized_problem(spec.problem) is not first.problem

    def test_memo_distinguishes_specs(self):
        from repro.api import ProblemSpec

        clear_problem_memo()
        a = memoized_problem(ProblemSpec("maxcut", 6, seed=0))
        b = memoized_problem(ProblemSpec("maxcut", 6, seed=1))
        c = memoized_problem(ProblemSpec("maxcut", 8, seed=0))
        assert a is not b and a is not c
        assert memoized_problem(ProblemSpec("maxcut", 6, seed=0)) is a


# ---------------------------------------------------------------------------
# Default service + sweep routing
# ---------------------------------------------------------------------------


class TestDefaultService:
    def test_default_service_is_a_shared_singleton(self):
        reset_default_service()
        try:
            assert default_service() is default_service()
        finally:
            reset_default_service()

    def test_solve_spec_rows_matches_direct_row(self, monkeypatch, tmp_path):
        # The sweep executor routes through the default service; rows must
        # stay exactly what QAOASolver(spec).run().to_row() produces.
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        reset_default_service()
        try:
            from repro.experiments.tasks import solve_spec_rows

            spec = _spec(3)
            row = solve_spec_rows(spec.to_dict())[0]
            direct = solve(spec).to_row()
            assert _rows_equal(row, direct)
        finally:
            reset_default_service()


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------


async def _http(host, port, method, path, payload=None):
    reader, writer = await asyncio.open_connection(host, port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("ascii")
    writer.write(head + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header, _, content = raw.partition(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    return status, json.loads(content) if content else None


class TestServer:
    PORT = 18653

    def _run(self, coro_fn):
        async def wrapper():
            service = SolverService(result_cache=None, window_s=0.01)
            ready = asyncio.Event()
            task = asyncio.create_task(
                run_server(service, host="127.0.0.1", port=self.PORT, ready=ready, log=None)
            )
            await asyncio.wait_for(ready.wait(), timeout=5)
            try:
                return await coro_fn(service)
            finally:
                task.cancel()

        return asyncio.run(wrapper())

    def test_healthz_stats_and_solve_round_trip(self):
        specs = [_spec(seed) for seed in range(3)]

        async def scenario(service):
            status, health = await _http("127.0.0.1", self.PORT, "GET", "/healthz")
            assert (status, health) == (200, {"status": "ok"})

            status, data = await _http(
                "127.0.0.1", self.PORT, "POST", "/solve",
                {"specs": [spec.to_dict() for spec in specs]},
            )
            assert status == 200
            rows = data["results"]
            assert len(rows) == 3
            for row, spec in zip(rows, specs):
                assert abs(row["value"] - solve(spec).value) <= 1e-10
                assert row["cached"] is False

            status, stats = await _http("127.0.0.1", self.PORT, "GET", "/stats")
            assert status == 200
            assert stats["requests"] == 3
            assert stats["pool"]["entries"] == 1
            return stats

        stats = self._run(scenario)
        assert stats["solved"] == 3

    def test_single_spec_and_error_paths(self):
        async def scenario(service):
            spec = _spec(0)
            status, row = await _http("127.0.0.1", self.PORT, "POST", "/solve", spec.to_dict())
            assert status == 200
            assert row["value"] == pytest.approx(solve(spec).value, abs=1e-10)

            status, err = await _http("127.0.0.1", self.PORT, "POST", "/solve", {"specs": []})
            assert status == 400 and "error" in err
            status, err = await _http("127.0.0.1", self.PORT, "GET", "/nope")
            assert status == 404
            status, err = await _http("127.0.0.1", self.PORT, "GET", "/solve")
            assert status == 405

        self._run(scenario)
