"""Tests for the adjoint (autodiff-equivalent) and finite-difference gradients."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EvaluationCounter,
    expectation_value,
    qaoa_finite_difference_gradient,
    qaoa_gradient,
    qaoa_value_and_gradient,
    random_angles,
)
from repro.core.gradients import finite_difference_gradient
from repro.hilbert import DickeSpace, FullSpace, state_matrix
from repro.mixers import (
    CliqueMixer,
    GroverMixer,
    MixerSchedule,
    MultiAngleXMixer,
    RingMixer,
    transverse_field_mixer,
)
from repro.problems import densest_subgraph_values, erdos_renyi, maxcut_values


def _maxcut_setup(n=6, seed=1):
    graph = erdos_renyi(n, 0.5, seed=seed)
    obj = maxcut_values(graph, state_matrix(n))
    return obj, transverse_field_mixer(n)


class TestGenericFiniteDifference:
    def test_quadratic_gradient(self):
        func = lambda x: float(x[0] ** 2 + 3 * x[1])  # noqa: E731
        grad = finite_difference_gradient(func, np.array([2.0, 5.0]))
        assert np.allclose(grad, [4.0, 3.0], atol=1e-4)

    def test_forward_scheme(self):
        func = lambda x: float(np.sin(x[0]))  # noqa: E731
        grad = finite_difference_gradient(func, np.array([0.3]), scheme="forward", eps=1e-7)
        assert np.allclose(grad, np.cos(0.3), atol=1e-5)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            finite_difference_gradient(lambda x: 0.0, np.zeros(2), scheme="spectral")


class TestAdjointGradientCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_finite_difference_transverse_field(self, p):
        obj, mixer = _maxcut_setup()
        angles = random_angles(p, rng=p)
        _, grad = qaoa_value_and_gradient(angles, mixer, obj)
        fd = qaoa_finite_difference_gradient(angles, mixer, obj)
        assert np.allclose(grad, fd, atol=1e-6)

    def test_matches_finite_difference_grover(self):
        obj, _ = _maxcut_setup()
        mixer = GroverMixer(FullSpace(6))
        angles = random_angles(3, rng=5)
        assert np.allclose(
            qaoa_gradient(angles, mixer, obj),
            qaoa_finite_difference_gradient(angles, mixer, obj),
            atol=1e-6,
        )

    def test_matches_finite_difference_clique(self, small_graph):
        space = DickeSpace(6, 3)
        obj = densest_subgraph_values(small_graph, space.bits)
        mixer = CliqueMixer(6, 3)
        angles = random_angles(2, rng=6)
        assert np.allclose(
            qaoa_gradient(angles, mixer, obj),
            qaoa_finite_difference_gradient(angles, mixer, obj),
            atol=1e-6,
        )

    def test_matches_finite_difference_ring(self, small_graph):
        space = DickeSpace(6, 3)
        obj = densest_subgraph_values(small_graph, space.bits)
        mixer = RingMixer(6, 3)
        angles = random_angles(2, rng=7)
        assert np.allclose(
            qaoa_gradient(angles, mixer, obj),
            qaoa_finite_difference_gradient(angles, mixer, obj),
            atol=1e-6,
        )

    def test_matches_finite_difference_multi_angle(self):
        n = 4
        graph = erdos_renyi(n, 0.6, seed=9)
        obj = maxcut_values(graph, state_matrix(n))
        mixer = MultiAngleXMixer(n, [(q,) for q in range(n)])
        schedule = MixerSchedule([mixer, mixer])
        rng = np.random.default_rng(10)
        angles = rng.uniform(-1, 1, size=schedule.total_betas + 2)
        _, grad = qaoa_value_and_gradient(angles, schedule, obj)
        fd = qaoa_finite_difference_gradient(angles, schedule, obj)
        assert grad.shape == fd.shape == (10,)
        assert np.allclose(grad, fd, atol=1e-6)

    def test_value_matches_expectation(self):
        obj, mixer = _maxcut_setup()
        angles = random_angles(3, rng=11)
        value, _ = qaoa_value_and_gradient(angles, mixer, obj)
        assert np.isclose(value, expectation_value(angles, mixer, obj))

    def test_gradient_zero_at_stationary_point(self):
        """All-zero angles leave the uniform state invariant — a stationary point
        in beta (the mixer's generator commutes with the state)."""
        obj, mixer = _maxcut_setup()
        angles = np.zeros(4)
        grad = qaoa_gradient(angles, mixer, obj)
        # The beta components vanish because |+>^n is an eigenstate of the mixer.
        assert np.allclose(grad[:2], 0.0, atol=1e-9)

    def test_directional_derivative_against_secant(self):
        obj, mixer = _maxcut_setup()
        angles = random_angles(2, rng=12)
        value, grad = qaoa_value_and_gradient(angles, mixer, obj)
        rng = np.random.default_rng(0)
        direction = rng.normal(size=angles.size)
        direction /= np.linalg.norm(direction)
        eps = 1e-5
        plus = expectation_value(angles + eps * direction, mixer, obj)
        minus = expectation_value(angles - eps * direction, mixer, obj)
        secant = (plus - minus) / (2 * eps)
        assert np.isclose(np.dot(grad, direction), secant, atol=1e-5)


class TestEvaluationCounting:
    def test_adjoint_cost_independent_of_p(self):
        obj, mixer = _maxcut_setup()
        for p in (1, 3, 6):
            counter = EvaluationCounter()
            angles = random_angles(p, rng=p)
            qaoa_value_and_gradient(angles, mixer, obj, counter=counter)
            assert counter.forward_passes == 1
            assert counter.hamiltonian_applications == p

    def test_finite_difference_cost_scales_with_p(self):
        obj, mixer = _maxcut_setup()
        counts = {}
        for p in (1, 3, 6):
            counter = EvaluationCounter()
            angles = random_angles(p, rng=p)
            qaoa_finite_difference_gradient(angles, mixer, obj, counter=counter)
            counts[p] = counter.forward_passes
        assert counts[1] == 4    # central differences: 2 * 2p
        assert counts[3] == 12
        assert counts[6] == 24
        # The O(p) separation the paper's Fig. 5 measures.
        assert counts[6] / counts[1] == 6

    def test_counter_reset(self):
        counter = EvaluationCounter(forward_passes=3, hamiltonian_applications=2)
        counter.reset()
        assert counter.forward_passes == 0
        assert counter.hamiltonian_applications == 0


class TestGradientValidation:
    def test_objective_shape_mismatch(self):
        _, mixer = _maxcut_setup()
        with pytest.raises(ValueError):
            qaoa_value_and_gradient(random_angles(1, rng=0), mixer, np.zeros(10))


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_property_adjoint_equals_finite_difference(p, seed):
    rng = np.random.default_rng(seed)
    graph = erdos_renyi(5, 0.5, seed=seed)
    obj = maxcut_values(graph, state_matrix(5))
    mixer = transverse_field_mixer(5)
    angles = rng.uniform(-np.pi, np.pi, size=2 * p)
    grad = qaoa_gradient(angles, mixer, obj)
    fd = qaoa_finite_difference_gradient(angles, mixer, obj)
    assert np.allclose(grad, fd, atol=1e-5)
