"""Tests for the FOURIER extrapolation extension of the iterative angle finder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.angles import extrapolate_angles, find_angles, fourier_extrapolate
from repro.hilbert import state_matrix
from repro.mixers import transverse_field_mixer
from repro.problems import erdos_renyi, maxcut_values


class TestFourierExtrapolate:
    def test_same_length_roundtrip(self, rng):
        sequence = rng.normal(size=6)
        assert np.allclose(fourier_extrapolate(sequence, 6), sequence, atol=1e-9)

    def test_single_element_repeats(self):
        assert np.allclose(fourier_extrapolate(np.array([0.4]), 4), 0.4)

    def test_smooth_schedule_shape_preserved(self):
        # A smooth increasing "annealing-like" schedule keeps its shape: the
        # extended sequence stays within the original range and is still
        # (approximately) monotone.
        schedule = np.linspace(0.1, 1.0, 5)
        extended = fourier_extrapolate(schedule, 9)
        assert extended.shape == (9,)
        assert extended.min() > 0.0
        assert extended.max() < 1.2
        assert np.all(np.diff(extended) > -0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            fourier_extrapolate(np.array([]), 3)
        with pytest.raises(ValueError):
            fourier_extrapolate(np.array([1.0, 2.0, 3.0]), 2)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=6))
    @settings(max_examples=30)
    def test_property_roundtrip_and_length(self, q, extra):
        rng = np.random.default_rng(q * 10 + extra)
        sequence = rng.normal(size=q)
        out = fourier_extrapolate(sequence, q + extra)
        assert out.shape == (q + extra,)
        if extra == 0:
            assert np.allclose(out, sequence, atol=1e-8)


class TestFourierInExtrapolateAngles:
    def test_fourier_method_dispatch(self):
        angles = np.array([0.1, 0.5, 1.0, 3.0])  # p = 2
        out = extrapolate_angles(angles, 2, 4, method="fourier")
        assert out.shape == (8,)
        # Endpoint behaviour resembles the original schedule's range.
        assert out[:4].min() > -0.5 and out[:4].max() < 1.0

    def test_find_angles_with_fourier_extrapolation(self):
        graph = erdos_renyi(6, 0.5, seed=9)
        obj = maxcut_values(graph, state_matrix(6))
        mixer = transverse_field_mixer(6)
        results = find_angles(
            3, mixer, obj, extrapolation="fourier", n_hops=1, n_starts_p1=1, rng=0
        )
        values = [results[p].value for p in sorted(results)]
        assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))
        assert values[-1] <= obj.max() + 1e-9
