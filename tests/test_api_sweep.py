"""Spec-driven `solve` sweeps through the experiment runner / run store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SolveSpec, solve
from repro.experiments.runner import run_experiment
from repro.experiments.store import RunStore
from repro.experiments.tasks import (
    EXPERIMENT_NAMES,
    enumerate_tasks,
    execute_task,
    get_experiment,
)

TINY_GRID = {
    "problems": ["maxcut"],
    "mixers": ["x"],
    "strategies": [{"name": "random", "params": {"iters": 2, "maxiter": 20}}],
    "n": 4,
    "p": 1,
    "seeds": [0, 1],
}


class TestSolveTasks:
    def test_registered_experiment(self):
        assert "solve" in EXPERIMENT_NAMES
        spec = get_experiment("solve")
        assert "problem x mixer x strategy" in spec.title

    def test_default_quick_grid_enumerates(self):
        tasks = enumerate_tasks("solve")
        assert len(tasks) >= 2
        assert len({t.task_id for t in tasks}) == len(tasks)
        for task in tasks:
            assert set(task.params) == {"spec"}
            SolveSpec.from_dict(task.params["spec"])  # every task carries a valid spec

    def test_grid_overrides(self):
        tasks = enumerate_tasks("solve", TINY_GRID)
        assert len(tasks) == 2  # 1 problem x 1 mixer x 1 strategy x 2 seeds
        assert tasks[0].task_id == "problem=maxcut/mixer=x/strategy=random/n=4/p=1/seed=0"

    def test_execute_task_matches_direct_solve(self):
        task = enumerate_tasks("solve", TINY_GRID)[0]
        rows = execute_task(task)
        assert len(rows) == 1
        direct = solve(SolveSpec.from_dict(task.params["spec"])).to_row()
        row = dict(rows[0])
        # wall time is the only nondeterministic column
        assert row.pop("wall_time_s") > 0
        direct.pop("wall_time_s")
        assert row == direct

    def test_explicit_spec_list(self):
        spec = SolveSpec.from_dict(
            {
                "problem": {"name": "ksat", "n": 4, "seed": 1},
                "strategy": {"name": "grid", "params": {"resolution": 3}},
                "p": 1,
            }
        )
        tasks = enumerate_tasks("solve", {"specs": [spec.to_dict(), spec.to_dict()]})
        assert len(tasks) == 2
        # duplicate summaries get disambiguated, enumeration-order-stable ids
        assert tasks[1].task_id == tasks[0].task_id + "#1"

    def test_specs_cannot_mix_with_grid_keys(self):
        with pytest.raises(ValueError, match="specs cannot be combined"):
            enumerate_tasks("solve", {"specs": [], "n": 4})

    def test_bare_string_grid_entries_are_singletons(self):
        """`--set problems=maxcut` must not iterate the string's characters."""
        tasks = enumerate_tasks(
            "solve",
            {"problems": "maxcut", "mixers": "x", "strategies": "random", "n": 4, "seeds": 0},
        )
        assert len(tasks) == 1
        spec = SolveSpec.from_dict(tasks[0].params["spec"])
        assert spec.problem.name == "maxcut"
        assert spec.mixer.name == "x" and spec.strategy.name == "random"

    def test_single_mapping_strategy_entry(self):
        tasks = enumerate_tasks(
            "solve",
            {"strategies": {"name": "grid", "params": {"resolution": 3}}, "n": 4},
        )
        for task in tasks:
            spec = SolveSpec.from_dict(task.params["spec"])
            assert spec.strategy.params == {"resolution": 3}

    @pytest.mark.parametrize("key,value", [("n", [6, 8]), ("p", [1, 2]), ("n", "6")])
    def test_list_valued_scalar_keys_are_clean_errors(self, key, value):
        with pytest.raises(ValueError, match="must be a single integer"):
            enumerate_tasks("solve", {key: value})

    def test_rows_carry_params_for_params_only_grids(self):
        """Two specs differing only in strategy params stay distinguishable."""
        tasks = enumerate_tasks(
            "solve",
            {
                "strategies": [
                    {"name": "random", "params": {"iters": 2, "maxiter": 10}},
                    {"name": "random", "params": {"iters": 3, "maxiter": 10}},
                ],
                "problems": ["maxcut"],
                "mixers": ["x"],
                "n": 4,
                "p": 1,
                "seeds": [0],
            },
        )
        assert len(tasks) == 2
        assert tasks[1].task_id == tasks[0].task_id + "#1"
        rows = [execute_task(task)[0] for task in tasks]
        assert rows[0]["strategy_params"] == {"iters": 2, "maxiter": 10}
        assert rows[1]["strategy_params"] == {"iters": 3, "maxiter": 10}

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown override"):
            enumerate_tasks("solve", {"warp": 1})


class TestSolveSweepThroughStore:
    def test_run_resume_and_rows(self, tmp_path):
        report = run_experiment(
            "solve", out_dir=tmp_path, workers=1, overrides=TINY_GRID, log=None
        )
        assert report.executed == 2 and report.complete

        store = RunStore.open(report.directory)
        rows = store.rows()
        assert len(rows) == 2
        by_seed = {row["seed"]: row for row in rows}
        assert set(by_seed) == {0, 1}
        for seed, row in by_seed.items():
            direct = solve(
                SolveSpec.from_dict(
                    {
                        "problem": {"name": "maxcut", "n": 4, "seed": seed},
                        "mixer": {"name": "x"},
                        "strategy": {"name": "random", "params": {"iters": 2, "maxiter": 20}},
                        "p": 1,
                        "seed": seed,
                    }
                )
            )
            assert row["value"] == direct.value
            assert np.array_equal(np.asarray(row["angles"]), direct.angles)

        # a second run resumes: everything already recorded, nothing re-executed
        again = run_experiment(
            "solve", out_dir=tmp_path, workers=1, overrides=TINY_GRID, log=None
        )
        assert again.executed == 0 and again.skipped == 2 and again.complete
