"""Tests for the sharded statevector engine (`repro.hpc.sharded`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.mixers import make_mixer
from repro.core.ansatz import QAOAAnsatz
from repro.hpc.sharded import (
    ShardedAnsatz,
    ShardedExecutor,
    ShardedWorkspace,
    sharded_mixer_config,
)
from repro.problems.registry import make_problem, make_problem_structure


def _dense(name, n, mixer, p, *, k=None, mixer_params=None):
    kwargs = {} if k is None else {"k": k}
    problem = make_problem(name, n, seed=3, **kwargs)
    mx = make_mixer(mixer, problem.space, **(mixer_params or {}))
    return problem, QAOAAnsatz.from_problem(problem, mx, p)


def _sharded(name, n, mixer, p, shards, *, k=None, mixer_params=None):
    structure = make_problem_structure(name, n, seed=3, k=k)
    return ShardedAnsatz(structure, mixer, p, shards, mixer_params=mixer_params)


class TestShardedWorkspace:
    def test_segment_layout_and_bytes(self):
        ws = ShardedWorkspace([8, 8, 8, 8], batch=2, slots=2)
        try:
            names = ws.segment_names()
            assert len(names) == 2 and all(len(slot) == 4 for slot in names)
            assert len({n for slot in names for n in slot}) == 8
            assert ws.state_bytes() == 2 * 4 * 8 * 2 * 16
            assert ws.capacity == 2
        finally:
            ws.close()

    def test_ensure_rebuilds_with_new_names(self):
        ws = ShardedWorkspace([16, 16], batch=1)
        try:
            before = ws.segment_names()
            assert ws.ensure(1) is False
            assert ws.ensure(4) is True
            after = ws.segment_names()
            assert ws.batch == 4
            assert not set(after[0]) & set(before[0])
            # Shrinks rebuild too (exact sizing keeps residency tight).
            assert ws.ensure(2) is True
            assert ws.batch == 2
        finally:
            ws.close()

    def test_ensure_slots_grows_monotonically(self):
        ws = ShardedWorkspace([4], batch=1, slots=2)
        try:
            assert ws.num_slots == 2
            assert ws.ensure_slots(3) is True
            assert ws.ensure_slots(2) is False
            assert ws.num_slots == 3
        finally:
            ws.close()

    def test_close_idempotent(self):
        ws = ShardedWorkspace([4], batch=1)
        ws.close()
        ws.close()
        with pytest.raises(RuntimeError):
            ws.ensure_slots(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedWorkspace([4], batch=0)
        with pytest.raises(ValueError):
            ShardedWorkspace([4, 0])


CASES = [
    # (problem, n, k, mixer, p, shards, mixer_params)
    ("maxcut", 6, None, "x", 2, 4, None),
    ("hamming", 7, None, "x", 1, 2, None),
    ("maxcut", 6, None, "x", 1, 2, {"orders": [1, 2]}),
    ("ksat", 6, None, "multiangle_x", 2, 4, None),
    ("maxcut", 6, None, "grover", 2, 4, None),
    ("maxcut", 7, None, "grover", 1, 3, None),  # non-power-of-two shards
    ("densest_subgraph", 7, 3, "grover", 2, 4, None),  # Dicke subspace
]


class TestShardedMatchesDense:
    @pytest.mark.parametrize("problem,n,k,mixer,p,shards,params", CASES)
    def test_expectation_and_gradient(self, problem, n, k, mixer, p, shards, params):
        _, dense = _dense(problem, n, mixer, p, k=k, mixer_params=params)
        sharded = _sharded(problem, n, mixer, p, shards, k=k, mixer_params=params)
        try:
            assert sharded.num_angles == dense.num_angles
            rng = np.random.default_rng(11)
            angles = 2 * np.pi * rng.random((3, dense.num_angles))
            np.testing.assert_allclose(
                sharded.expectation_batch(angles),
                dense.expectation_batch(angles),
                rtol=0,
                atol=1e-10,
            )
            values_d, grads_d = dense.value_and_gradient_batch(angles)
            values_s, grads_s = sharded.value_and_gradient_batch(angles)
            np.testing.assert_allclose(values_s, values_d, rtol=0, atol=1e-10)
            np.testing.assert_allclose(grads_s, grads_d, rtol=0, atol=1e-10)
        finally:
            sharded.close()

    @pytest.mark.parametrize("problem,n,k,mixer,p,shards,params", CASES[:3])
    def test_simulate_scalars_and_state(self, problem, n, k, mixer, p, shards, params):
        _, dense = _dense(problem, n, mixer, p, k=k, mixer_params=params)
        sharded = _sharded(problem, n, mixer, p, shards, k=k, mixer_params=params)
        try:
            angles = 2 * np.pi * np.random.default_rng(4).random(dense.num_angles)
            sim_d = dense.simulate(angles)
            sim_s = sharded.simulate(angles)
            assert abs(sim_s.expectation() - sim_d.expectation()) < 1e-10
            assert (
                abs(
                    sim_s.ground_state_probability()
                    - sim_d.ground_state_probability()
                )
                < 1e-10
            )
            assert abs(sim_s.norm() - 1.0) < 1e-10
            np.testing.assert_allclose(
                sim_s.probabilities(), sim_d.probabilities(), rtol=0, atol=1e-10
            )
        finally:
            sharded.close()

    def test_gradient_matches_finite_differences(self):
        sharded = _sharded("maxcut", 6, "x", 2, 4)
        try:
            angles = np.array([0.3, 1.1, 0.7, 2.0])
            _, grad = sharded.value_and_gradient(angles)
            eps = 1e-6
            for i in range(angles.size):
                left, right = angles.copy(), angles.copy()
                left[i] -= eps
                right[i] += eps
                fd = (sharded.expectation(right) - sharded.expectation(left)) / (2 * eps)
                assert abs(fd - grad[i]) < 1e-5
        finally:
            sharded.close()


class TestShardedLifecycle:
    def test_batch_reshape_roundtrip(self):
        sharded = _sharded("maxcut", 6, "x", 1, 2)
        try:
            rng = np.random.default_rng(0)
            one = 2 * np.pi * rng.random((1, sharded.num_angles))
            many = 2 * np.pi * rng.random((5, sharded.num_angles))
            e1 = sharded.expectation_batch(one)
            e5 = sharded.expectation_batch(many)
            e1_again = sharded.expectation_batch(one)
            np.testing.assert_allclose(e1, e1_again, rtol=0, atol=1e-12)
            assert e5.shape == (5,)
        finally:
            sharded.close()

    def test_sampling_matches_distribution(self):
        sharded = _sharded("maxcut", 6, "grover", 1, 4)
        try:
            angles = np.array([0.4, 0.9])
            sim = sharded.simulate(angles)
            probs = sim.probabilities()
            labels = sim.sample(4000, rng=7)
            assert labels.shape == (4000,)
            counts = np.bincount(labels, minlength=probs.size) / 4000.0
            assert np.abs(counts - probs).max() < 0.05
        finally:
            sharded.close()

    def test_dicke_sampling_stays_in_subspace(self):
        sharded = _sharded("densest_subgraph", 7, "grover", 1, 3, k=3)
        try:
            sim = sharded.simulate(np.array([0.5, 1.2]))
            labels = sim.sample(200, rng=0)
            weights = np.array([bin(int(x)).count("1") for x in labels])
            assert np.all(weights == 3)
        finally:
            sharded.close()

    def test_checkpoint_restore_roundtrip(self, tmp_path):
        sharded = _sharded("maxcut", 6, "x", 1, 2)
        try:
            sharded.simulate(np.array([0.8, 1.5]))
            state = sharded.executor.gather_state()
            sharded.executor.checkpoint(tmp_path / "ckpt")
            assert (tmp_path / "ckpt" / "manifest.json").exists()
            # Overwrite the resident state, then restore.
            sharded.simulate(np.array([2.2, 0.1]))
            sharded.executor.restore(tmp_path / "ckpt")
            np.testing.assert_array_equal(sharded.executor.gather_state(), state)
        finally:
            sharded.close()

    def test_checkpoint_shape_mismatch_raises(self, tmp_path):
        a = _sharded("maxcut", 6, "x", 1, 2)
        b = _sharded("maxcut", 6, "x", 1, 4)
        try:
            a.simulate(np.array([0.8, 1.5]))
            a.executor.checkpoint(tmp_path / "ckpt")
            with pytest.raises(ValueError, match="does not match"):
                b.executor.restore(tmp_path / "ckpt")
        finally:
            a.close()
            b.close()

    def test_simulation_outlives_close_for_scalars_only(self):
        sharded = _sharded("maxcut", 6, "x", 1, 2)
        sim = sharded.simulate(np.array([0.8, 1.5]))
        expectation = sim.expectation()
        sharded.close()
        assert sim.expectation() == expectation  # scalars were reduced eagerly
        with pytest.raises(RuntimeError, match="closed"):
            sim.probabilities()
        # close is idempotent.
        sharded.close()

    def test_rss_reports_all_processes(self):
        sharded = _sharded("maxcut", 6, "x", 1, 2)
        try:
            sharded.expectation_batch(np.zeros((1, sharded.num_angles)))
            rss = sharded.executor.rss()
            assert len(rss["workers"]) == 2
            assert rss["max_peak"] > 0
            assert rss["total_peak"] >= rss["max_peak"]
        finally:
            sharded.close()


class TestShardedValidation:
    def test_unsupported_mixer_family(self):
        with pytest.raises(ValueError, match="no sharded execution path"):
            sharded_mixer_config("xy", 6)

    def test_wht_mixers_need_power_of_two_shards(self):
        structure = make_problem_structure("maxcut", 6, seed=3)
        config = sharded_mixer_config("x", 6)
        with pytest.raises(ValueError, match="power-of-two"):
            ShardedExecutor(structure, config, 1, 3)

    def test_wht_mixers_reject_dicke_subspaces(self):
        structure = make_problem_structure("densest_subgraph", 7, seed=3, k=3)
        config = sharded_mixer_config("x", 7)
        with pytest.raises(ValueError, match="Grover"):
            ShardedExecutor(structure, config, 1, 2)

    def test_too_many_shards(self):
        structure = make_problem_structure("densest_subgraph", 5, seed=3, k=1)
        config = sharded_mixer_config("grover", 5)
        with pytest.raises(ValueError, match="shards"):
            ShardedExecutor(structure, config, 1, 9)

    def test_mixer_config_matches_registry_enumeration(self):
        config = sharded_mixer_config("x", 4, {"orders": [1, 2]})
        assert len(config.masks) == 4 + 6
        multi = sharded_mixer_config("multiangle_x", 4)
        assert multi.betas_per_round == 4
        assert multi.masks == (1, 2, 4, 8)

    def test_bad_angle_shape(self):
        sharded = _sharded("maxcut", 6, "x", 1, 2)
        try:
            with pytest.raises(ValueError, match="angle matrix"):
                sharded.expectation_batch(np.zeros((2, 7)))
        finally:
            sharded.close()
