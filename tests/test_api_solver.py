"""The solve() facade: combination coverage, legacy equivalence, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import PROBLEM_NAMES, QAOASolver, SolveSpec, solve
from repro.angles import basinhop, find_angles_random, grid_search, multistart_minimize
from repro.api import MixerSpec, ProblemSpec, StrategySpec
from repro.cli import main as cli_main
from repro.core.ansatz import QAOAAnsatz
from repro.mixers import mixer_x
from repro.problems import make_problem

CHEAP_RANDOM = StrategySpec("random", params={"iters": 2, "maxiter": 20})

#: Mixers compatible with each kind of feasible space (xy carries its pairs).
FULL_SPACE_MIXERS = (MixerSpec("x"), MixerSpec("multiangle_x"), MixerSpec("grover"))
DICKE_SPACE_MIXERS = (
    MixerSpec("ring"),
    MixerSpec("clique"),
    MixerSpec("xy", params={"pairs": [[0, 1], [1, 2], [2, 3], [3, 4]]}),
    MixerSpec("grover"),
)


def _compatible_mixers(problem_name: str):
    space = make_problem(problem_name, 5, seed=0).space
    return FULL_SPACE_MIXERS if space.is_full else DICKE_SPACE_MIXERS


ALL_COMBINATIONS = [
    (problem, mixer)
    for problem in PROBLEM_NAMES
    for mixer in _compatible_mixers(problem)
]


class TestEveryCombinationRuns:
    @pytest.mark.parametrize(
        "problem,mixer",
        ALL_COMBINATIONS,
        ids=[f"{p}-{m.name}" for p, m in ALL_COMBINATIONS],
    )
    def test_solve_runs(self, problem, mixer):
        """One call runs every registered problem x mixer (x strategy) combination."""
        spec = SolveSpec(
            problem=ProblemSpec(problem, 5, seed=1),
            mixer=mixer,
            strategy=CHEAP_RANDOM,
            p=1,
            seed=0,
        )
        result = solve(spec)
        assert np.isfinite(result.value)
        assert result.evaluations > 0
        assert result.strategy == "random"
        assert 0.0 <= result.ground_state_probability <= 1.0 + 1e-12
        assert result.probabilities().shape == (result.simulation.statevector.size,)
        assert result.spec == spec
        row = result.to_row()
        json.dumps(row)  # rows must be JSON-serializable
        assert row["problem"] == problem and row["mixer"] == mixer.name


class TestLegacyEquivalence:
    """solve() matches the corresponding legacy call seed-for-seed."""

    def _ansatz(self, p: int) -> QAOAAnsatz:
        problem = make_problem("maxcut", 6, seed=2)
        return QAOAAnsatz.from_problem(problem, mixer_x([1], 6), p)

    def _spec(self, strategy: StrategySpec, p: int, seed: int) -> SolveSpec:
        return SolveSpec(
            problem=ProblemSpec("maxcut", 6, seed=2),
            mixer=MixerSpec("x"),
            strategy=strategy,
            p=p,
            seed=seed,
        )

    def test_matches_grid_search(self):
        legacy = grid_search(self._ansatz(1), resolution=6)
        facade = solve(self._spec(StrategySpec("grid", params={"resolution": 6}), 1, 0))
        assert np.array_equal(facade.angles, legacy.angles)
        assert facade.value == legacy.value
        assert facade.evaluations == legacy.evaluations

    def test_matches_find_angles_random(self):
        legacy = find_angles_random(self._ansatz(2), iters=5, rng=np.random.default_rng(3))
        facade = solve(self._spec(StrategySpec("random", params={"iters": 5}), 2, 3))
        assert np.array_equal(facade.angles, legacy.angles)
        assert facade.value == legacy.value
        assert facade.evaluations == legacy.evaluations

    def test_matches_basinhop(self):
        ansatz = self._ansatz(2)
        rng = np.random.default_rng(5)
        x0 = ansatz.random_angles(rng)
        legacy = basinhop(ansatz, x0, n_hops=3, rng=rng)
        facade = solve(self._spec(StrategySpec("basinhop", params={"n_hops": 3}), 2, 5))
        assert np.array_equal(facade.angles, legacy.angles)
        assert facade.value == legacy.value
        assert facade.evaluations == legacy.evaluations

    def test_matches_multistart_minimize(self):
        ansatz = self._ansatz(2)
        rng = np.random.default_rng(7)
        seeds = 2.0 * np.pi * rng.random((4, ansatz.num_angles))
        report = multistart_minimize(ansatz, seeds)
        best = int(np.argmax(report.values))
        facade = solve(self._spec(StrategySpec("multistart", params={"iters": 4}), 2, 7))
        assert np.array_equal(facade.angles, report.angles[best])
        assert facade.value == float(report.values[best])
        assert facade.evaluations == report.evaluations


class TestSolverObject:
    def test_kwargs_form_equals_spec_form(self):
        by_kwargs = solve(
            problem="maxcut", n=5, problem_seed=1, strategy="grid",
            strategy_params={"resolution": 5}, p=1,
        )
        by_spec = solve(
            SolveSpec(
                problem=ProblemSpec("maxcut", 5, seed=1),
                strategy=StrategySpec("grid", params={"resolution": 5}),
                p=1,
            )
        )
        assert np.array_equal(by_kwargs.angles, by_spec.angles)
        assert by_kwargs.value == by_spec.value

    def test_spec_and_kwargs_together_rejected(self):
        spec = SolveSpec(problem=ProblemSpec("maxcut", 4))
        with pytest.raises(TypeError):
            solve(spec, problem="maxcut", n=4)

    def test_solver_reuse_with_seed_override(self):
        solver = QAOASolver(
            SolveSpec(problem=ProblemSpec("maxcut", 5, seed=1), strategy=CHEAP_RANDOM, p=1)
        )
        a = solver.run(seed=1)
        b = solver.run(seed=1)
        c = solver.run(seed=2)
        assert np.array_equal(a.angles, b.angles)
        assert a.spec.seed == 1 and c.spec.seed == 2
        assert not np.array_equal(a.angles, c.angles)

    def test_solver_accepts_dict_spec(self):
        spec = SolveSpec(problem=ProblemSpec("maxcut", 4, seed=0), strategy=CHEAP_RANDOM)
        result = QAOASolver(spec.to_dict()).run()
        assert result.spec == spec

    def test_minimization_problem_has_no_ratio(self):
        result = solve(
            problem="ising", n=4, strategy="grid", strategy_params={"resolution": 4}, p=1
        )
        # random Ising optima are negative, so the ratio is undefined
        assert result.approximation_ratio is None
        assert result.value <= result.simulation.cost.values.max()

    def test_approximation_ratio_matches_simulation(self):
        result = solve(
            problem="maxcut", n=5, strategy="grid", strategy_params={"resolution": 5}, p=1
        )
        assert result.approximation_ratio == pytest.approx(
            result.value / result.optimum, rel=1e-12
        )

    def test_rows_use_canonical_names_and_carry_params(self):
        row = solve(
            problem="MaxCut", n=4, mixer="X", strategy="Grid",
            strategy_params={"resolution": 3}, p=1,
        ).to_row()
        assert row["problem"] == "maxcut"
        assert row["mixer"] == "x"
        assert row["strategy"] == "grid"
        assert row["strategy_params"] == {"resolution": 3}
        assert row["problem_params"] == {} and row["mixer_params"] == {}


class TestSolveCli:
    def test_flat_flags(self, tmp_path, capsys):
        out = tmp_path / "row.json"
        code = cli_main(
            [
                "solve", "--problem", "maxcut", "--n", "5", "--mixer", "x",
                "--strategy", "random", "--param", "iters=2", "--p", "2",
                "--seed", "4", "--json", str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "approximation ratio" in printed
        payload = json.loads(out.read_text())
        assert payload["result"]["strategy"] == "random"
        assert payload["spec"]["strategy"]["params"] == {"iters": 2}
        # the CLI run is the same solve the API performs
        api = solve(SolveSpec.from_dict(payload["spec"]))
        assert api.value == payload["result"]["value"]

    def test_spec_file(self, tmp_path, capsys):
        spec = SolveSpec(
            problem=ProblemSpec("ksat", 4, seed=1), strategy=CHEAP_RANDOM, p=1, seed=2
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert cli_main(["solve", "--spec", str(path)]) == 0
        assert "ksat" in capsys.readouterr().out

    def test_unknown_strategy_is_clean_error(self, capsys):
        code = cli_main(["solve", "--problem", "maxcut", "--n", "4", "--strategy", "sorcery"])
        assert code == 2
        assert "choose from" in capsys.readouterr().err

    def test_bad_spec_file_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert cli_main(["solve", "--spec", str(path)]) == 2
        assert "bad spec document" in capsys.readouterr().err
