"""Tests for random-restart, median-angles and grid-search strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.angles import (
    evaluate_median_angles,
    find_angles_random,
    grid_axis,
    grid_search,
    median_angle_study,
    median_angles,
    local_minimize,
)
from repro.angles.result import AngleResult
from repro.core import QAOAAnsatz
from repro.hilbert import state_matrix
from repro.mixers import transverse_field_mixer
from repro.problems import erdos_renyi, maxcut_values


def _ansatz(n=6, p=1, seed=1):
    graph = erdos_renyi(n, 0.5, seed=seed)
    obj = maxcut_values(graph, state_matrix(n))
    return QAOAAnsatz(obj, transverse_field_mixer(n), p)


class TestRandomRestart:
    def test_best_of_restarts(self):
        ansatz = _ansatz()
        summary, all_results = find_angles_random(ansatz, iters=5, rng=0, return_all=True)
        assert len(all_results) == 5
        # near-exact ties (symmetry-equivalent optima) resolve to the earliest
        # restart, so the summary may sit a few ulps below the literal max
        assert summary.value == pytest.approx(max(r.value for r in all_results), abs=1e-9)
        assert summary.strategy == "random-restart"
        assert summary.evaluations >= sum(r.evaluations for r in all_results)

    def test_more_restarts_never_worse(self):
        ansatz = _ansatz(p=2)
        few = find_angles_random(ansatz, iters=2, rng=3)
        many = find_angles_random(ansatz, iters=8, rng=3)
        assert many.value >= few.value - 1e-9

    def test_deterministic_by_seed(self):
        ansatz = _ansatz()
        a = find_angles_random(ansatz, iters=3, rng=5)
        b = find_angles_random(ansatz, iters=3, rng=5)
        assert np.allclose(a.angles, b.angles)

    def test_requires_positive_iters(self):
        with pytest.raises(ValueError):
            find_angles_random(_ansatz(), iters=0)

    def test_history_per_restart(self):
        result = find_angles_random(_ansatz(), iters=4, rng=7)
        assert len(result.history) == 4
        # the batched seed scores are recorded alongside the refined values
        assert all("seed_value" in entry and entry["refined"] for entry in result.history)

    def test_refine_top_limits_bfgs_calls(self):
        ansatz = _ansatz()
        summary, results = find_angles_random(ansatz, iters=6, rng=2, refine_top=2, return_all=True)
        assert sum(entry["refined"] for entry in summary.history) == 2
        assert len(results) == 6
        assert summary.value == pytest.approx(max(r.value for r in results), abs=1e-9)
        # refinement only improves on a raw seed score
        full = find_angles_random(ansatz, iters=6, rng=2)
        assert summary.value <= full.value + 1e-9

    def test_refine_top_out_of_range(self):
        with pytest.raises(ValueError):
            find_angles_random(_ansatz(), iters=3, refine_top=0)
        with pytest.raises(ValueError):
            find_angles_random(_ansatz(), iters=3, refine_top=4)


class TestMedianAngles:
    def test_median_of_identical_results(self):
        angles = np.array([0.3, 0.7])
        results = [AngleResult(angles=angles, value=1.0, p=1) for _ in range(5)]
        assert np.allclose(median_angles(results), angles)

    def test_median_elementwise(self):
        results = [
            AngleResult(angles=np.array([0.0, 1.0]), value=1.0, p=1),
            AngleResult(angles=np.array([1.0, 3.0]), value=1.0, p=1),
            AngleResult(angles=np.array([2.0, 2.0]), value=1.0, p=1),
        ]
        assert np.allclose(median_angles(results), [1.0, 2.0])

    def test_requires_consistent_sizes(self):
        results = [
            AngleResult(angles=np.zeros(2), value=0.0, p=1),
            AngleResult(angles=np.zeros(4), value=0.0, p=2),
        ]
        with pytest.raises(ValueError):
            median_angles(results)

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            median_angles([])

    def test_evaluate_median_angles(self):
        ansatz = _ansatz()
        fixed = np.array([0.4, 0.6])
        plain = evaluate_median_angles(ansatz, fixed)
        assert np.isclose(plain.value, ansatz.expectation(fixed))
        assert np.allclose(plain.angles, fixed)
        polished = evaluate_median_angles(ansatz, fixed, polish=True)
        assert polished.value >= plain.value - 1e-9

    def test_median_angle_study_pipeline(self):
        ansatze = [_ansatz(seed=s) for s in range(3)]
        # A too-small restart pool makes the raw medians fragile: winners can
        # land in different symmetry copies of the same optimum depending on
        # optimizer trajectory details, scattering the element-wise median.
        # Five restarts per instance concentrates the winners for either
        # refinement backend.
        medians, evaluated = median_angle_study(ansatze, iters_per_instance=5, rng=0)
        assert medians.shape == (2,)
        assert len(evaluated) == 3
        # Median angles transfer reasonably well across instances: better than
        # the uniform-state baseline (expectation at zero angles).
        for ansatz, result in zip(ansatze, evaluated):
            baseline = ansatz.cost.values.mean()
            assert result.value >= baseline - 1e-9

    def test_median_angle_study_requires_instances(self):
        with pytest.raises(ValueError):
            median_angle_study([])


class TestGridSearch:
    def test_axis(self):
        axis = grid_axis(4, low=0.0, high=2.0)
        assert np.allclose(axis, [0.0, 0.5, 1.0, 1.5])
        with pytest.raises(ValueError):
            grid_axis(0)

    def test_p1_grid_close_to_local_optimum(self):
        ansatz = _ansatz(p=1)
        grid = grid_search(ansatz, resolution=16)
        refined = local_minimize(ansatz, grid.angles)
        best = find_angles_random(ansatz, iters=10, rng=0)
        assert grid.evaluations == 16 * 16
        # The refined grid point should reach (approximately) the same optimum.
        assert refined.value >= best.value - 0.05

    def test_max_points_guard(self):
        ansatz = _ansatz(p=3)
        with pytest.raises(ValueError):
            grid_search(ansatz, resolution=30, max_points=1000)

    def test_grid_value_never_exceeds_optimum(self):
        ansatz = _ansatz(p=1, seed=4)
        result = grid_search(ansatz, resolution=8)
        assert result.value <= ansatz.cost.optimum + 1e-9
        assert result.strategy == "grid"

    def test_grid_batch_size_invariant(self):
        ansatz = _ansatz(p=1, seed=2)
        full = grid_search(ansatz, resolution=12, batch_size=1)
        for batch_size in (7, 64, 1024):
            chunked = grid_search(ansatz, resolution=12, batch_size=batch_size)
            # degenerate grid optima may resolve to a different tied point,
            # but the best value and the evaluation count must not change
            assert abs(chunked.value - full.value) <= 1e-10
            assert chunked.evaluations == full.evaluations == 144
        with pytest.raises(ValueError):
            grid_search(ansatz, resolution=8, batch_size=0)
