"""Tests for metrics, fair-sampling checks and convergence series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ConvergenceSeries,
    amplitude_spread_by_value,
    approximation_ratio,
    average_series,
    ensemble_mean,
    ensemble_summary,
    expectation_from_probabilities,
    is_fair_sampling,
    normalized_approximation_ratio,
    series_from_results,
    success_probability,
    value_class_probabilities,
)
from repro.angles.result import AngleResult
from repro.core import random_angles, simulate
from repro.hilbert import state_matrix
from repro.mixers import GroverMixer, transverse_field_mixer
from repro.hilbert import FullSpace
from repro.problems import maxcut_values


class TestMetrics:
    def test_approximation_ratio(self):
        assert approximation_ratio(3.0, 4.0) == 0.75
        with pytest.raises(ZeroDivisionError):
            approximation_ratio(1.0, 0.0)

    def test_normalized_ratio_bounds(self):
        assert normalized_approximation_ratio(5.0, 10.0, 0.0) == 0.5
        assert normalized_approximation_ratio(10.0, 10.0, 0.0) == 1.0
        assert normalized_approximation_ratio(2.0, 2.0, 2.0) == 1.0  # degenerate spread

    def test_expectation_from_probabilities(self):
        probs = np.array([0.25, 0.75])
        vals = np.array([0.0, 4.0])
        assert expectation_from_probabilities(probs, vals) == 3.0
        with pytest.raises(ValueError):
            expectation_from_probabilities(np.array([0.5]), vals)
        with pytest.raises(ValueError):
            expectation_from_probabilities(np.array([-0.1, 1.1]), vals)

    def test_ensemble_statistics(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert ensemble_mean(values) == 2.5
        summary = ensemble_summary(values)
        assert summary["median"] == 2.5
        assert summary["count"] == 4
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        with pytest.raises(ValueError):
            ensemble_mean([])

    def test_success_probability_alias(self, maxcut_obj, tf_mixer_6):
        res = simulate(random_angles(2, rng=0), tf_mixer_6, maxcut_obj)
        assert success_probability(res) == res.ground_state_probability()


class TestFairSampling:
    def test_grover_mixer_is_fair(self, small_graph):
        obj = maxcut_values(small_graph, state_matrix(6))
        res = simulate(random_angles(3, rng=1), GroverMixer(FullSpace(6)), obj)
        assert is_fair_sampling(res)
        spread = amplitude_spread_by_value(res.statevector, obj)
        assert max(spread.values()) < 1e-10

    def test_transverse_field_generally_not_fair(self, small_graph):
        obj = maxcut_values(small_graph, state_matrix(6))
        res = simulate(random_angles(3, rng=2), transverse_field_mixer(6), obj)
        assert not is_fair_sampling(res)

    def test_value_class_probabilities_sum_to_one(self, small_graph):
        obj = maxcut_values(small_graph, state_matrix(6))
        res = simulate(random_angles(2, rng=3), transverse_field_mixer(6), obj)
        probs = value_class_probabilities(res)
        assert np.isclose(sum(probs.values()), 1.0)
        assert set(probs) == set(np.unique(obj))

    def test_spread_shape_validation(self):
        with pytest.raises(ValueError):
            amplitude_spread_by_value(np.zeros(4), np.zeros(5))


class TestConvergenceSeries:
    def test_construction_and_final(self):
        series = ConvergenceSeries(rounds=(1, 2, 3), values=(0.5, 0.7, 0.9), label="x")
        assert series.final() == 0.9
        assert series.is_monotone()
        rows = series.as_rows()
        assert len(rows) == 3 and rows[0]["p"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceSeries(rounds=(1, 2), values=(0.5,))
        with pytest.raises(ValueError):
            ConvergenceSeries(rounds=(2, 1), values=(0.5, 0.6))

    def test_non_monotone_detection(self):
        series = ConvergenceSeries(rounds=(1, 2), values=(0.9, 0.5))
        assert not series.is_monotone()

    def test_series_from_results_ratios(self):
        results = {
            1: AngleResult(angles=np.zeros(2), value=5.0, p=1),
            2: AngleResult(angles=np.zeros(4), value=8.0, p=2),
        }
        series = series_from_results(results, optimum=10.0)
        assert series.values == (0.5, 0.8)
        normalized = series_from_results(results, optimum=10.0, worst=0.0)
        assert normalized.values == (0.5, 0.8)
        raw = series_from_results(results)
        assert raw.values == (5.0, 8.0)

    def test_average_series(self):
        a = ConvergenceSeries(rounds=(1, 2), values=(0.4, 0.6))
        b = ConvergenceSeries(rounds=(1, 2), values=(0.6, 0.8))
        mean = average_series([a, b])
        assert np.allclose(mean.values, [0.5, 0.7])
        with pytest.raises(ValueError):
            average_series([])
        with pytest.raises(ValueError):
            average_series([a, ConvergenceSeries(rounds=(1,), values=(0.1,))])
