"""Tests for the high-level QAOAAnsatz object."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PrecomputedCost, QAOAAnsatz
from repro.hilbert import DickeSpace
from repro.mixers import CliqueMixer, MixerSchedule, MultiAngleXMixer, transverse_field_mixer
from repro.problems import densest_subgraph_values


class TestConstruction:
    def test_basic(self, maxcut_obj, tf_mixer_6):
        ansatz = QAOAAnsatz(maxcut_obj, tf_mixer_6, 3)
        assert ansatz.p == 3
        assert ansatz.n == 6
        assert ansatz.num_angles == 6

    def test_requires_p_for_single_mixer(self, maxcut_obj, tf_mixer_6):
        with pytest.raises(ValueError):
            QAOAAnsatz(maxcut_obj, tf_mixer_6)

    def test_accepts_schedule(self, maxcut_obj, tf_mixer_6):
        schedule = MixerSchedule(tf_mixer_6, rounds=2)
        ansatz = QAOAAnsatz(maxcut_obj, schedule)
        assert ansatz.p == 2

    def test_accepts_precomputed_cost(self, maxcut_obj, tf_mixer_6):
        cost = PrecomputedCost(values=maxcut_obj)
        ansatz = QAOAAnsatz(cost, tf_mixer_6, 1)
        assert ansatz.cost is cost

    def test_dimension_mismatch_rejected(self, tf_mixer_6):
        with pytest.raises(ValueError):
            QAOAAnsatz(np.zeros(10), tf_mixer_6, 1)

    def test_initial_state_normalized(self, maxcut_obj, tf_mixer_6, rng):
        raw = rng.normal(size=64) + 1j * rng.normal(size=64)
        ansatz = QAOAAnsatz(maxcut_obj, tf_mixer_6, 1, initial_state=raw)
        assert np.isclose(np.linalg.norm(ansatz.initial_state), 1.0)
        with pytest.raises(ValueError):
            QAOAAnsatz(maxcut_obj, tf_mixer_6, 1, initial_state=np.zeros(64))
        with pytest.raises(ValueError):
            QAOAAnsatz(maxcut_obj, tf_mixer_6, 1, initial_state=np.ones(8))

    def test_multi_angle_num_angles(self, maxcut_obj):
        mixer = MultiAngleXMixer(6, [(q,) for q in range(6)])
        ansatz = QAOAAnsatz(maxcut_obj, MixerSchedule([mixer, mixer]))
        assert ansatz.num_angles == 2 * 6 + 2


class TestEvaluation:
    def test_expectation_matches_simulate(self, maxcut_obj, tf_mixer_6):
        ansatz = QAOAAnsatz(maxcut_obj, tf_mixer_6, 2)
        angles = ansatz.random_angles(0)
        assert np.isclose(ansatz.expectation(angles), ansatz.simulate(angles).expectation())

    def test_value_and_gradient_consistent(self, maxcut_obj, tf_mixer_6):
        ansatz = QAOAAnsatz(maxcut_obj, tf_mixer_6, 2)
        angles = ansatz.random_angles(1)
        value, grad = ansatz.value_and_gradient(angles)
        assert np.isclose(value, ansatz.expectation(angles))
        assert np.allclose(grad, ansatz.finite_difference_gradient(angles), atol=1e-6)
        assert np.allclose(grad, ansatz.gradient(angles))

    def test_loss_sign_for_maximization(self, maxcut_obj, tf_mixer_6):
        ansatz = QAOAAnsatz(maxcut_obj, tf_mixer_6, 1)
        angles = ansatz.random_angles(2)
        assert np.isclose(ansatz.loss(angles), -ansatz.expectation(angles))
        loss, grad = ansatz.loss_and_gradient(angles)
        assert np.isclose(loss, -ansatz.expectation(angles))
        assert np.allclose(grad, -ansatz.gradient(angles))

    def test_loss_sign_for_minimization(self, maxcut_obj, tf_mixer_6):
        ansatz = QAOAAnsatz(maxcut_obj, tf_mixer_6, 1, maximize=False)
        angles = ansatz.random_angles(3)
        assert np.isclose(ansatz.loss(angles), ansatz.expectation(angles))

    def test_counter_tracks_calls(self, maxcut_obj, tf_mixer_6):
        ansatz = QAOAAnsatz(maxcut_obj, tf_mixer_6, 2)
        ansatz.counter.reset()
        angles = ansatz.random_angles(4)
        ansatz.expectation(angles)
        ansatz.value_and_gradient(angles)
        assert ansatz.counter.forward_passes == 2
        assert ansatz.counter.hamiltonian_applications == 2

    def test_random_angles_deterministic(self, maxcut_obj, tf_mixer_6):
        ansatz = QAOAAnsatz(maxcut_obj, tf_mixer_6, 3)
        assert np.allclose(ansatz.random_angles(7), ansatz.random_angles(7))
        assert ansatz.random_angles(7).shape == (6,)

    def test_workspace_shared_across_calls(self, maxcut_obj, tf_mixer_6):
        ansatz = QAOAAnsatz(maxcut_obj, tf_mixer_6, 2)
        before = ansatz.workspace.calls_served
        for seed in range(4):
            ansatz.expectation(ansatz.random_angles(seed))
        assert ansatz.workspace.calls_served == before + 4


class TestWithRounds:
    def test_extends_rounds(self, maxcut_obj, tf_mixer_6):
        ansatz = QAOAAnsatz(maxcut_obj, tf_mixer_6, 1)
        bigger = ansatz.with_rounds(4)
        assert bigger.p == 4
        assert bigger.cost is ansatz.cost
        assert bigger.num_angles == 8

    def test_constrained_with_rounds(self, small_graph):
        space = DickeSpace(6, 3)
        obj = densest_subgraph_values(small_graph, space.bits)
        ansatz = QAOAAnsatz(obj, CliqueMixer(6, 3), 1)
        assert ansatz.with_rounds(3).p == 3

    def test_rejects_heterogeneous_schedule(self, maxcut_obj, tf_mixer_6):
        from repro.mixers.grover import grover_mixer

        schedule = MixerSchedule([tf_mixer_6, grover_mixer(6)])
        ansatz = QAOAAnsatz(maxcut_obj, schedule)
        with pytest.raises(ValueError):
            ansatz.with_rounds(3)
