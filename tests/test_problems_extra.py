"""Tests for the extra objectives (MIS, number partitioning, Ising, QUBO) and thresholds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hilbert import state_matrix
from repro.problems import graph_from_edges
from repro.problems.extra import (
    ising_energy,
    ising_energy_values,
    max_independent_set,
    max_independent_set_values,
    number_partition,
    number_partition_values,
    qubo_value,
    qubo_values,
)
from repro.problems.threshold import ThresholdSchedule, threshold_cost, threshold_values


class TestMaxIndependentSet:
    def test_independent_set_scores_size(self):
        g = graph_from_edges(4, [(0, 1), (2, 3)])
        assert max_independent_set(g, np.array([1, 0, 1, 0])) == 2
        assert max_independent_set(g, np.array([0, 0, 0, 0])) == 0

    def test_violations_penalized(self):
        g = graph_from_edges(3, [(0, 1)])
        assert max_independent_set(g, np.array([1, 1, 0]), penalty=2.0) == 0.0
        assert max_independent_set(g, np.array([1, 1, 1]), penalty=3.0) == 0.0

    def test_vectorized_matches_scalar(self):
        g = graph_from_edges(5, [(0, 1), (1, 2), (3, 4)])
        bits = state_matrix(5)
        vec = max_independent_set_values(g, bits, penalty=1.5)
        scalar = np.array([max_independent_set(g, bits[i], penalty=1.5) for i in range(32)])
        assert np.allclose(vec, scalar)

    def test_optimum_is_true_mis_with_large_penalty(self):
        g = graph_from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])  # 5-cycle
        vals = max_independent_set_values(g, state_matrix(5), penalty=10.0)
        assert vals.max() == 2  # MIS of a 5-cycle has size 2


class TestNumberPartition:
    def test_perfect_partition_scores_zero(self):
        weights = [1.0, 2.0, 3.0]
        assert number_partition(weights, np.array([1, 1, 0])) == 0.0

    def test_values_nonpositive(self, rng):
        weights = rng.random(6)
        vals = number_partition_values(weights, state_matrix(6))
        assert np.all(vals <= 1e-12)

    def test_symmetry_under_complement(self, rng):
        weights = rng.random(5)
        bits = state_matrix(5)
        vals = number_partition_values(weights, bits)
        flipped = number_partition_values(weights, 1 - bits)
        assert np.allclose(vals, flipped)

    def test_vectorized_matches_scalar(self, rng):
        weights = rng.random(5)
        bits = state_matrix(5)
        vec = number_partition_values(weights, bits)
        scalar = np.array([number_partition(weights, bits[i]) for i in range(32)])
        assert np.allclose(vec, scalar)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            number_partition([1.0, 2.0], np.array([1, 0, 1]))


class TestIsingAndQubo:
    def test_ising_manual(self):
        h = np.array([1.0, -1.0])
        J = np.zeros((2, 2))
        J[0, 1] = 0.5
        # x = [0, 0] -> s = [-1, -1]: E = -1 + 1 + 0.5 = 0.5
        assert np.isclose(ising_energy(h, J, np.array([0, 0])), 0.5)
        # x = [1, 0] -> s = [1, -1]: E = 1 + 1 - 0.5 = 1.5
        assert np.isclose(ising_energy(h, J, np.array([1, 0])), 1.5)

    def test_ising_vectorized_matches_scalar(self, rng):
        n = 5
        h = rng.normal(size=n)
        J = rng.normal(size=(n, n))
        bits = state_matrix(n)
        vec = ising_energy_values(h, J, bits)
        scalar = np.array([ising_energy(h, J, bits[i]) for i in range(32)])
        assert np.allclose(vec, scalar)

    def test_ising_shape_validation(self):
        with pytest.raises(ValueError):
            ising_energy(np.zeros(3), np.zeros((2, 2)), np.zeros(3))

    def test_qubo_manual(self):
        Q = np.array([[1.0, 2.0], [0.0, 3.0]])
        assert qubo_value(Q, np.array([1, 1])) == 6.0
        assert qubo_value(Q, np.array([1, 0])) == 1.0
        assert qubo_value(Q, np.array([0, 0])) == 0.0

    def test_qubo_vectorized_matches_scalar(self, rng):
        Q = rng.normal(size=(4, 4))
        bits = state_matrix(4)
        vec = qubo_values(Q, bits)
        scalar = np.array([qubo_value(Q, bits[i]) for i in range(16)])
        assert np.allclose(vec, scalar)


class TestThreshold:
    def test_threshold_values_inclusive_vs_strict(self):
        vals = np.array([0.0, 1.0, 2.0, 3.0])
        assert np.array_equal(threshold_values(vals, 2.0), [0, 0, 1, 1])
        assert np.array_equal(threshold_values(vals, 2.0, strict=True), [0, 0, 0, 1])

    def test_threshold_cost_wrapper(self):
        base = lambda x: float(np.sum(x))  # noqa: E731
        wrapped = threshold_cost(base, 2.0)
        assert wrapped(np.array([1, 1, 0])) == 1.0
        assert wrapped(np.array([1, 0, 0])) == 0.0
        strict = threshold_cost(base, 2.0, strict=True)
        assert strict(np.array([1, 1, 0])) == 0.0

    def test_schedule_advances_through_distinct_values(self):
        schedule = ThresholdSchedule(np.array([3.0, 1.0, 2.0, 2.0]))
        assert schedule.current == 1.0
        assert schedule.advance() == 2.0
        assert schedule.advance() == 3.0
        assert schedule.exhausted
        assert schedule.advance() == 3.0  # saturates
        schedule.reset()
        assert schedule.current == 1.0
        assert list(schedule) == [1.0, 2.0, 3.0]

    def test_schedule_rejects_empty(self):
        with pytest.raises(ValueError):
            ThresholdSchedule(np.array([]))


@given(
    st.integers(min_value=2, max_value=8),
    st.floats(min_value=-5, max_value=5, allow_nan=False),
)
@settings(max_examples=30)
def test_property_threshold_indicator_binary(n, threshold):
    rng = np.random.default_rng(0)
    vals = rng.normal(size=1 << n)
    indicator = threshold_values(vals, threshold)
    assert set(np.unique(indicator)).issubset({0.0, 1.0})
    assert indicator.sum() == np.count_nonzero(vals >= threshold)
