"""Tests for the Grover mixer (rank-one projector form)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hilbert import DickeSpace, FullSpace, hamming_weights
from repro.mixers.grover import GroverMixer, grover_mixer, grover_mixer_dicke


class TestGroverMixerFullSpace:
    def test_matrix_is_projector(self):
        mixer = grover_mixer(4)
        mat = mixer.matrix()
        assert np.allclose(mat @ mat, mat)
        assert np.allclose(mat, mat.conj().T)
        assert np.isclose(np.trace(mat).real, 1.0)

    def test_apply_matches_dense_expm(self, rng):
        mixer = grover_mixer(5)
        dense = mixer.matrix()
        psi = rng.normal(size=32) + 1j * rng.normal(size=32)
        psi /= np.linalg.norm(psi)
        beta = 1.234
        assert np.allclose(mixer.apply(psi, beta), sla.expm(-1j * beta * dense) @ psi)

    def test_apply_hamiltonian_matches_matrix(self, rng):
        mixer = grover_mixer(4)
        psi = rng.normal(size=16) + 1j * rng.normal(size=16)
        assert np.allclose(mixer.apply_hamiltonian(psi), mixer.matrix() @ psi)

    def test_unitarity(self, rng):
        mixer = grover_mixer(6)
        psi = rng.normal(size=64) + 1j * rng.normal(size=64)
        psi /= np.linalg.norm(psi)
        assert np.isclose(np.linalg.norm(mixer.apply(psi, 2.2)), 1.0)

    def test_periodicity_2pi(self, rng):
        mixer = grover_mixer(4)
        psi = rng.normal(size=16) + 1j * rng.normal(size=16)
        psi /= np.linalg.norm(psi)
        assert np.allclose(mixer.apply(psi, 2 * np.pi), psi, atol=1e-10)

    def test_initial_state_eigenstate(self):
        mixer = grover_mixer(5)
        psi0 = mixer.initial_state()
        evolved = mixer.apply(psi0, 0.9)
        assert np.allclose(evolved, np.exp(-1j * 0.9) * psi0)

    def test_orthogonal_states_untouched(self):
        mixer = grover_mixer(3)
        psi = np.zeros(8, dtype=complex)
        psi[0], psi[1] = 1 / np.sqrt(2), -1 / np.sqrt(2)  # orthogonal to |+...+>
        assert np.allclose(mixer.apply(psi, 1.7), psi)

    def test_out_buffer(self, rng):
        mixer = grover_mixer(4)
        psi = rng.normal(size=16) + 1j * rng.normal(size=16)
        expected = mixer.apply(psi, 0.5)
        out = np.empty(16, dtype=complex)
        assert mixer.apply(psi, 0.5, out=out) is out
        assert np.allclose(out, expected)
        mixer.apply(psi, 0.5, out=psi)
        assert np.allclose(psi, expected)


class TestGroverMixerDicke:
    def test_subspace_dimension(self):
        mixer = grover_mixer_dicke(6, 2)
        assert mixer.dim == 15
        assert mixer.space.hamming_weight == 2

    def test_apply_matches_dense_expm(self, rng):
        mixer = grover_mixer_dicke(6, 3)
        dense = mixer.matrix()
        psi = rng.normal(size=20) + 1j * rng.normal(size=20)
        psi /= np.linalg.norm(psi)
        beta = 0.8
        assert np.allclose(mixer.apply(psi, beta), sla.expm(-1j * beta * dense) @ psi)

    def test_hamming_weight_conservation(self, rng):
        """Embedding the subspace evolution in the full space never populates
        states of a different Hamming weight (Sec. 2.4 property 1)."""
        n, k = 6, 2
        space = DickeSpace(n, k)
        mixer = GroverMixer(space)
        psi = rng.normal(size=space.dim) + 1j * rng.normal(size=space.dim)
        psi /= np.linalg.norm(psi)
        evolved_full = space.embed(mixer.apply(psi, 1.1))
        weights = hamming_weights(n)
        assert np.allclose(evolved_full[weights != k], 0.0)


class TestCustomInitialState:
    def test_custom_initial_state_normalized(self, rng):
        space = FullSpace(3)
        raw = rng.normal(size=8) + 1j * rng.normal(size=8)
        mixer = GroverMixer(space, initial=raw)
        assert np.isclose(np.linalg.norm(mixer.psi0), 1.0)
        # Projector onto the normalized custom state.
        assert np.allclose(mixer.matrix(), np.outer(mixer.psi0, mixer.psi0.conj()))

    def test_zero_initial_state_rejected(self):
        with pytest.raises(ValueError):
            GroverMixer(FullSpace(3), initial=np.zeros(8))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            GroverMixer(FullSpace(3), initial=np.ones(4))


@given(st.integers(min_value=2, max_value=8), st.floats(min_value=-4, max_value=4, allow_nan=False))
@settings(max_examples=30, deadline=None)
def test_property_grover_composition(n, beta):
    """Two applications with angles a and b equal one application with a+b."""
    mixer = grover_mixer(n)
    rng = np.random.default_rng(7)
    psi = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    psi /= np.linalg.norm(psi)
    once = mixer.apply(psi, beta + 0.3)
    twice = mixer.apply(mixer.apply(psi, beta), 0.3)
    assert np.allclose(once, twice, atol=1e-10)
