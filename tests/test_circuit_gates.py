"""Tests for the gate definitions and the Circuit container."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.circuits import (
    Circuit,
    cnot,
    cz,
    diagonal_gate,
    global_phase,
    hadamard,
    identity,
    pauli_x,
    pauli_y,
    pauli_z,
    phase,
    rx,
    rxx,
    ry,
    rz,
    rzz,
    swap,
    xy_rotation,
)
from repro.circuits.gates import Gate

_I2 = np.eye(2)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.diag([1, -1]).astype(complex)


def _is_unitary(mat):
    return np.allclose(mat @ mat.conj().T, np.eye(mat.shape[0]))


class TestSingleQubitGates:
    def test_all_unitary(self):
        gates = (
            identity(0),
            hadamard(0),
            pauli_x(0),
            pauli_y(0),
            pauli_z(0),
            phase(0, 0.7),
            rx(0, 0.9),
            ry(0, 1.1),
            rz(0, 0.4),
        )
        for gate in gates:
            assert _is_unitary(gate.matrix)
            assert gate.num_qubits == 1

    def test_pauli_matrices(self):
        assert np.allclose(pauli_x(0).matrix, _X)
        assert np.allclose(pauli_y(0).matrix, _Y)
        assert np.allclose(pauli_z(0).matrix, _Z)

    def test_hadamard_squares_to_identity(self):
        H = hadamard(0).matrix
        assert np.allclose(H @ H, _I2)

    def test_rotations_match_expm(self):
        theta = 0.83
        assert np.allclose(rx(0, theta).matrix, sla.expm(-1j * theta / 2 * _X))
        assert np.allclose(ry(0, theta).matrix, sla.expm(-1j * theta / 2 * _Y))
        assert np.allclose(rz(0, theta).matrix, sla.expm(-1j * theta / 2 * _Z))

    def test_phase_gate(self):
        assert np.allclose(phase(0, np.pi).matrix, np.diag([1, -1]))


class TestTwoQubitGates:
    def test_all_unitary(self):
        gates = (
            cnot(0, 1),
            cz(0, 1),
            swap(0, 1),
            rzz(0, 1, 0.3),
            rxx(0, 1, 0.7),
            xy_rotation(0, 1, 0.5),
        )
        for gate in gates:
            assert _is_unitary(gate.matrix)
            assert gate.num_qubits == 2

    def test_cnot_truth_table(self):
        # qubits = (control, target); basis index = control + 2*target
        mat = cnot(0, 1).matrix
        # control=0 columns are identity
        assert mat[0, 0] == 1 and mat[2, 2] == 1
        # control=1, target=0 -> target flips to 1 (index 1 -> 3)
        assert mat[3, 1] == 1
        assert mat[1, 3] == 1

    def test_rzz_matches_expm(self):
        theta = 0.61
        ZZ = np.kron(_Z, _Z)
        assert np.allclose(rzz(0, 1, theta).matrix, sla.expm(-1j * theta / 2 * ZZ))

    def test_rxx_matches_expm(self):
        theta = 0.61
        XX = np.kron(_X, _X)
        assert np.allclose(rxx(0, 1, theta).matrix, sla.expm(-1j * theta / 2 * XX))

    def test_xy_rotation_matches_expm(self):
        theta = 0.45
        H_xy = np.kron(_X, _X) + np.kron(_Y, _Y)
        assert np.allclose(xy_rotation(0, 1, theta).matrix, sla.expm(-1j * theta * H_xy))

    def test_diagonal_detection(self):
        assert rzz(0, 1, 0.2).is_diagonal()
        assert cz(0, 1).is_diagonal()
        assert not cnot(0, 1).is_diagonal()
        assert not rx(0, 0.3).is_diagonal()


class TestGateValidation:
    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("BAD", (1, 1), np.eye(4))

    def test_wrong_matrix_size_rejected(self):
        with pytest.raises(ValueError):
            Gate("BAD", (0,), np.eye(4))

    def test_dagger(self):
        gate = rx(0, 0.4)
        assert np.allclose(gate.dagger().matrix @ gate.matrix, _I2)

    def test_global_phase_zero_qubits(self):
        gate = global_phase(0.3)
        assert gate.num_qubits == 0
        assert np.isclose(gate.matrix[0, 0], np.exp(1j * 0.3))

    def test_diagonal_gate_constructor(self):
        gate = diagonal_gate((0, 2), np.array([1, 1j, -1, -1j]))
        assert gate.is_diagonal()
        with pytest.raises(ValueError):
            diagonal_gate((0,), np.array([1, 1, 1]))


class TestCircuit:
    def test_append_and_counts(self):
        circuit = Circuit(3)
        circuit.append(hadamard(0)).append(cnot(0, 1)).append(rzz(1, 2, 0.1))
        assert circuit.num_gates == 3
        assert circuit.num_two_qubit_gates() == 2
        assert circuit.gate_counts() == {"H": 1, "CNOT": 1, "RZZ": 1}
        assert len(list(circuit)) == 3

    def test_qubit_bounds_checked(self):
        with pytest.raises(ValueError):
            Circuit(2).append(hadamard(2))

    def test_rejects_non_gate(self):
        with pytest.raises(TypeError):
            Circuit(2).append("H 0")

    def test_compose(self):
        a = Circuit(2, [hadamard(0)])
        b = Circuit(2, [cnot(0, 1)])
        combined = a.compose(b)
        assert combined.num_gates == 2
        assert a.num_gates == 1  # originals untouched
        with pytest.raises(ValueError):
            a.compose(Circuit(3))

    def test_depth(self):
        circuit = Circuit(3, [hadamard(0), hadamard(1), cnot(0, 1), hadamard(2)])
        assert circuit.depth() == 2  # H's in parallel, then CNOT; H(2) parallel
        assert Circuit(2).depth() == 0

    def test_inverse_undoes_circuit(self, rng):
        from repro.circuits import StatevectorBackend

        circuit = Circuit(3, [hadamard(0), rx(1, 0.3), cnot(0, 2), rzz(1, 2, 0.7)])
        forward_then_back = circuit.compose(circuit.inverse())
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        psi /= np.linalg.norm(psi)
        out = StatevectorBackend().run(forward_then_back, initial_state=psi)
        assert np.allclose(out, psi, atol=1e-10)

    def test_needs_at_least_one_qubit(self):
        with pytest.raises(ValueError):
            Circuit(0)
