"""Tests for Pauli-X product mixers and the Walsh–Hadamard transform."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hilbert import uniform_superposition
from repro.mixers.xmixer import (
    MultiAngleXMixer,
    XMixer,
    mixer_x,
    transverse_field_mixer,
    walsh_hadamard_transform,
    x_term_diagonal,
)

_X = np.array([[0.0, 1.0], [1.0, 0.0]])


def _kron_x_term(term, n):
    """Dense matrix of prod_{i in term} X_i on n qubits (qubit 0 = LSB)."""
    mat = np.eye(1)
    for qubit in range(n - 1, -1, -1):
        mat = np.kron(mat, _X if qubit in term else np.eye(2))
    return mat


def _dense_x_mixer(terms, coeffs, n):
    total = np.zeros((1 << n, 1 << n))
    for term, c in zip(terms, coeffs):
        total += c * _kron_x_term(term, n)
    return total


class TestWalshHadamard:
    def test_matches_dense_hadamard(self, rng):
        n = 5
        H = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        Hn = np.eye(1)
        for _ in range(n):
            Hn = np.kron(Hn, H)
        psi = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        assert np.allclose(walsh_hadamard_transform(psi), Hn @ psi)

    def test_involution(self, rng):
        psi = rng.normal(size=64) + 1j * rng.normal(size=64)
        assert np.allclose(walsh_hadamard_transform(walsh_hadamard_transform(psi)), psi)

    def test_unitarity(self, rng):
        psi = rng.normal(size=128) + 1j * rng.normal(size=128)
        assert np.isclose(np.linalg.norm(walsh_hadamard_transform(psi)), np.linalg.norm(psi))

    def test_zero_state_maps_to_uniform(self):
        psi = np.zeros(32, dtype=complex)
        psi[0] = 1.0
        assert np.allclose(walsh_hadamard_transform(psi), uniform_superposition(5))

    def test_out_buffer_and_aliasing(self, rng):
        psi = rng.normal(size=16) + 1j * rng.normal(size=16)
        expected = walsh_hadamard_transform(psi)
        buffer = np.empty(16, dtype=complex)
        returned = walsh_hadamard_transform(psi, out=buffer)
        assert returned is buffer
        assert np.allclose(buffer, expected)
        # In-place (out aliases input).
        copy = psi.copy()
        walsh_hadamard_transform(copy, out=copy)
        assert np.allclose(copy, expected)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            walsh_hadamard_transform(np.zeros(6))


class TestXTermDiagonal:
    def test_transverse_field_diagonal(self):
        n = 4
        diag = x_term_diagonal([(i,) for i in range(n)], [1.0] * n, n)
        # In the Hadamard basis, sum_i X_i has eigenvalue n - 2*popcount(x).
        labels = np.arange(1 << n)
        expected = n - 2 * np.array([bin(x).count("1") for x in labels])
        assert np.allclose(diag, expected)

    def test_rejects_bad_qubits(self):
        with pytest.raises(ValueError):
            x_term_diagonal([(5,)], [1.0], 3)
        with pytest.raises(ValueError):
            x_term_diagonal([(1, 1)], [1.0], 3)


class TestXMixer:
    @pytest.mark.parametrize(
        "terms",
        [
            [(0,), (1,), (2,), (3,)],
            [(0, 1), (2, 3)],
            [(0,), (1, 2), (0, 1, 2, 3)],
        ],
    )
    def test_apply_matches_dense_expm(self, terms, rng):
        n = 4
        coeffs = [1.0] * len(terms)
        mixer = XMixer(n, terms, coeffs)
        dense = _dense_x_mixer(terms, coeffs, n)
        psi = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        psi /= np.linalg.norm(psi)
        beta = 0.731
        assert np.allclose(mixer.apply(psi, beta), sla.expm(-1j * beta * dense) @ psi)

    def test_matrix_matches_dense_sum(self):
        n = 3
        terms = [(0,), (1,), (0, 2)]
        mixer = XMixer(n, terms)
        assert np.allclose(mixer.matrix(), _dense_x_mixer(terms, [1.0] * 3, n))

    def test_apply_hamiltonian_matches_matrix(self, rng):
        mixer = transverse_field_mixer(5)
        psi = rng.normal(size=32) + 1j * rng.normal(size=32)
        assert np.allclose(mixer.apply_hamiltonian(psi), mixer.matrix() @ psi)

    def test_unitarity_and_zero_angle(self, rng):
        mixer = transverse_field_mixer(6)
        psi = rng.normal(size=64) + 1j * rng.normal(size=64)
        psi /= np.linalg.norm(psi)
        assert np.isclose(np.linalg.norm(mixer.apply(psi, 0.9)), 1.0)
        assert np.allclose(mixer.apply(psi, 0.0), psi)

    def test_apply_does_not_modify_input(self, rng):
        mixer = transverse_field_mixer(4)
        psi = rng.normal(size=16) + 1j * rng.normal(size=16)
        original = psi.copy()
        mixer.apply(psi, 0.5)
        assert np.array_equal(psi, original)

    def test_apply_out_aliasing(self, rng):
        mixer = transverse_field_mixer(4)
        psi = rng.normal(size=16) + 1j * rng.normal(size=16)
        expected = mixer.apply(psi, 0.3)
        mixer.apply(psi, 0.3, out=psi)
        assert np.allclose(psi, expected)

    def test_initial_state_is_eigenstate(self):
        # |+>^n is the top eigenstate of sum_i X_i: mixing leaves it unchanged
        # up to a global phase.
        mixer = transverse_field_mixer(5)
        psi = mixer.initial_state()
        evolved = mixer.apply(psi, 0.77)
        overlap = np.abs(np.vdot(psi, evolved))
        assert np.isclose(overlap, 1.0)

    def test_coefficients_validation(self):
        with pytest.raises(ValueError):
            XMixer(3, [(0,)], [1.0, 2.0])
        with pytest.raises(ValueError):
            XMixer(3, [])

    def test_mixer_x_orders(self):
        mixer = mixer_x([1], 4)
        assert len(mixer.terms) == 4
        mixer2 = mixer_x([1, 2], 4)
        assert len(mixer2.terms) == 4 + 6
        with pytest.raises(ValueError):
            mixer_x([5], 4)
        with pytest.raises(ValueError):
            mixer_x([], 4)
        with pytest.raises(ValueError):
            mixer_x([1, 2], 4, coefficients=[1.0])

    def test_mixer_x_weighted_orders(self):
        mixer = mixer_x([1, 2], 3, coefficients=[2.0, 0.5])
        dense = _dense_x_mixer(mixer.terms, mixer.coefficients, 3)
        assert np.allclose(mixer.matrix(), dense)


class TestMultiAngleXMixer:
    def test_matches_product_of_single_terms(self, rng):
        n = 3
        terms = [(0,), (1,), (2,)]
        mixer = MultiAngleXMixer(n, terms)
        betas = rng.random(3)
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        psi /= np.linalg.norm(psi)
        expected = psi.copy()
        for term, beta in zip(terms, betas):
            expected = sla.expm(-1j * beta * _kron_x_term(term, n)) @ expected
        assert np.allclose(mixer.apply(psi, betas), expected)

    def test_equal_angles_match_plain_mixer(self, rng):
        n = 4
        mixer_ma = MultiAngleXMixer(n, [(i,) for i in range(n)])
        mixer_plain = transverse_field_mixer(n)
        psi = rng.normal(size=16) + 1j * rng.normal(size=16)
        beta = 0.42
        assert np.allclose(mixer_ma.apply(psi, np.full(n, beta)), mixer_plain.apply(psi, beta))
        # Scalar broadcast also works.
        assert np.allclose(mixer_ma.apply(psi, beta), mixer_plain.apply(psi, beta))

    def test_wrong_angle_count_rejected(self):
        mixer = MultiAngleXMixer(3, [(0,), (1,)])
        with pytest.raises(ValueError):
            mixer.apply(np.zeros(8, dtype=complex), np.zeros(3))

    def test_hamiltonian_terms(self, rng):
        n = 3
        terms = [(0, 1), (2,)]
        mixer = MultiAngleXMixer(n, terms)
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        for t, term in enumerate(terms):
            assert np.allclose(mixer.apply_hamiltonian_term(psi, t), _kron_x_term(term, n) @ psi)
        assert np.allclose(mixer.apply_hamiltonian(psi), mixer.matrix() @ psi)

    def test_num_angles(self):
        assert MultiAngleXMixer(4, [(0,), (1,), (2, 3)]).num_angles == 3


@given(st.integers(min_value=2, max_value=7), st.floats(min_value=-3, max_value=3, allow_nan=False))
@settings(max_examples=25, deadline=None)
def test_property_transverse_field_unitary(n, beta):
    mixer = transverse_field_mixer(n)
    rng = np.random.default_rng(1)
    psi = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    psi /= np.linalg.norm(psi)
    out = mixer.apply(psi, beta)
    assert np.isclose(np.linalg.norm(out), 1.0, atol=1e-10)
    # Applying the inverse angle undoes the evolution.
    assert np.allclose(mixer.apply(out, -beta), psi, atol=1e-10)
