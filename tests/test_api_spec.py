"""Spec tree: coercion, validation, and lossless JSON round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import MixerSpec, ProblemSpec, SolveSpec, StrategySpec, solve


class TestSpecConstruction:
    def test_string_coercion_of_mixer_and_strategy(self):
        spec = SolveSpec(problem=ProblemSpec("maxcut", 6), mixer="grover", strategy="basinhop")
        assert spec.mixer == MixerSpec("grover")
        assert spec.strategy == StrategySpec("basinhop")

    def test_mapping_coercion(self):
        spec = SolveSpec(
            problem={"name": "ksat", "n": 5, "seed": 2},
            mixer={"name": "x", "params": {"orders": [1, 2]}},
            strategy={"name": "grid", "params": {"resolution": 4}},
            p=2,
        )
        assert spec.problem == ProblemSpec("ksat", 5, seed=2)
        assert spec.mixer.params == {"orders": [1, 2]}
        assert spec.strategy.params == {"resolution": 4}

    def test_build_flat_keywords(self):
        spec = SolveSpec.build(
            problem="maxcut",
            n=7,
            problem_seed=3,
            mixer="grover",
            strategy="multistart",
            strategy_params={"iters": 4},
            p=2,
            seed=9,
        )
        assert spec.problem == ProblemSpec("maxcut", 7, seed=3)
        assert spec.mixer.name == "grover"
        assert spec.strategy == StrategySpec("multistart", params={"iters": 4})
        assert spec.p == 2 and spec.seed == 9

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ProblemSpec("maxcut", 0)
        with pytest.raises(ValueError):
            SolveSpec(problem=ProblemSpec("maxcut", 4), p=0)
        with pytest.raises(TypeError):
            SolveSpec(problem=ProblemSpec("maxcut", 4), mixer=12)

    def test_non_json_params_rejected(self):
        with pytest.raises(ValueError, match="JSON-serializable"):
            StrategySpec("random", params={"rng": np.random.default_rng(0)})


class TestJsonRoundTrip:
    def _spec(self) -> SolveSpec:
        return SolveSpec(
            problem=ProblemSpec("densest_subgraph", 6, seed=4, params={"k": 3}),
            mixer=MixerSpec("ring"),
            strategy=StrategySpec("random", params={"iters": 3, "maxiter": 25}),
            p=2,
            seed=11,
        )

    def test_dict_round_trip_is_lossless(self):
        spec = self._spec()
        assert SolveSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_lossless(self):
        spec = self._spec()
        again = SolveSpec.from_json(spec.to_json())
        assert again == spec
        # and the serialized form itself is stable
        assert again.to_json() == spec.to_json()

    def test_defaults_fill_in(self):
        spec = SolveSpec.from_dict({"problem": {"name": "maxcut", "n": 5}})
        assert spec.mixer.name == "x"
        assert spec.strategy.name == "random"
        assert spec.p == 1 and spec.seed == 0

    def test_from_dict_accepts_bare_name_strings(self):
        """Hand-written documents (HTTP bodies, CLI files) may abbreviate."""
        spec = SolveSpec.from_dict(
            {"problem": {"name": "maxcut", "n": 5}, "mixer": "grover", "strategy": "basinhop"}
        )
        assert spec.mixer == MixerSpec("grover")
        assert spec.strategy == StrategySpec("basinhop")

    def test_round_tripped_spec_solves_identically(self):
        """to_json -> from_json -> solve reproduces the run seed-for-seed."""
        spec = SolveSpec(
            problem=ProblemSpec("maxcut", 5, seed=2),
            mixer="x",
            strategy=StrategySpec("random", params={"iters": 4, "maxiter": 40}),
            p=2,
            seed=7,
        )
        first = solve(spec)
        second = solve(SolveSpec.from_json(spec.to_json()))
        assert np.array_equal(first.angles, second.angles)
        assert first.value == second.value
        assert first.evaluations == second.evaluations
        assert first.ground_state_probability == second.ground_state_probability

    @pytest.mark.parametrize("strategy", ["grid", "basinhop", "multistart"])
    def test_round_trip_other_strategies(self, strategy):
        params = {
            "grid": {"resolution": 4},
            "basinhop": {"n_hops": 2, "maxiter": 30},
            "multistart": {"iters": 3, "maxiter": 30},
        }[strategy]
        spec = SolveSpec(
            problem=ProblemSpec("ksat", 5, seed=1),
            strategy=StrategySpec(strategy, params=params),
            p=1,
            seed=3,
        )
        first = solve(spec)
        second = solve(SolveSpec.from_json(spec.to_json()))
        assert np.array_equal(first.angles, second.angles)
        assert first.value == second.value
