"""Tests for the graph workload generators."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.problems.graphs import (
    adjacency_matrix,
    complete_graph,
    edge_array,
    erdos_renyi,
    graph_from_edges,
    random_regular,
    ring_graph,
    validate_graph,
)


class TestGenerators:
    def test_erdos_renyi_deterministic_by_seed(self):
        g1 = erdos_renyi(10, 0.5, seed=3)
        g2 = erdos_renyi(10, 0.5, seed=3)
        g3 = erdos_renyi(10, 0.5, seed=4)
        assert set(g1.edges()) == set(g2.edges())
        assert g1.number_of_nodes() == 10
        # Different seeds should (for these sizes) give different graphs.
        assert set(g1.edges()) != set(g3.edges())

    def test_erdos_renyi_extreme_probabilities(self):
        assert erdos_renyi(6, 0.0, seed=1).number_of_edges() == 0
        assert erdos_renyi(6, 1.0, seed=1).number_of_edges() == 15

    def test_erdos_renyi_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 0.5)
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5)

    def test_random_regular(self):
        g = random_regular(8, 3, seed=1)
        assert all(d == 3 for _, d in g.degree())
        with pytest.raises(ValueError):
            random_regular(7, 3)

    def test_complete_and_ring(self):
        assert complete_graph(5).number_of_edges() == 10
        ring = ring_graph(6)
        assert ring.number_of_edges() == 6
        assert all(d == 2 for _, d in ring.degree())

    def test_graph_from_edges(self):
        g = graph_from_edges(4, [(0, 1), (2, 3)])
        assert g.number_of_nodes() == 4
        assert set(g.edges()) == {(0, 1), (2, 3)}

    def test_graph_from_edges_validation(self):
        with pytest.raises(ValueError):
            graph_from_edges(3, [(0, 3)])
        with pytest.raises(ValueError):
            graph_from_edges(3, [(1, 1)])


class TestHelpers:
    def test_edge_array_sorted_and_shape(self):
        g = graph_from_edges(5, [(3, 1), (0, 4), (2, 0)])
        edges = edge_array(g)
        assert edges.shape == (3, 2)
        assert np.all(edges[:, 0] < edges[:, 1])
        assert edges.tolist() == sorted(edges.tolist())

    def test_edge_array_empty(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        assert edge_array(g).shape == (0, 2)

    def test_adjacency_matrix_symmetric(self):
        g = erdos_renyi(7, 0.5, seed=2)
        adj = adjacency_matrix(g)
        assert adj.shape == (7, 7)
        assert np.array_equal(adj, adj.T)
        assert adj.sum() == 2 * g.number_of_edges()
        assert np.all(np.diag(adj) == 0)

    def test_validate_graph_rejects_bad_labels(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(ValueError):
            validate_graph(g)

    def test_validate_graph_rejects_self_loop(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        g.add_edge(1, 1)
        with pytest.raises(ValueError):
            validate_graph(g)
