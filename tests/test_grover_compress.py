"""Tests for the compressed objective spectra (Grover-mixer fast path)."""

from __future__ import annotations

from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grover.compress import (
    CompressedObjective,
    binomial_spectrum,
    compress_objective,
    compress_streaming,
    compress_streaming_dicke,
    hamming_weight_spectrum,
)
from repro.hilbert import DickeSpace, state_matrix
from repro.problems import densest_subgraph_values, erdos_renyi, maxcut_values


class TestCompressedObjective:
    def test_validation_sorted_values(self):
        with pytest.raises(ValueError):
            CompressedObjective(values=np.array([2.0, 1.0]), degeneracies=(1, 1), total=2)

    def test_validation_total(self):
        with pytest.raises(ValueError):
            CompressedObjective(values=np.array([1.0, 2.0]), degeneracies=(1, 1), total=3)

    def test_validation_positive_degeneracies(self):
        with pytest.raises(ValueError):
            CompressedObjective(values=np.array([1.0]), degeneracies=(0,), total=0)

    def test_basic_accessors(self):
        spec = CompressedObjective(
            values=np.array([0.0, 1.0, 5.0]), degeneracies=(2, 5, 1), total=8
        )
        assert spec.num_distinct == 3
        assert spec.optimum == 5.0
        assert spec.optimum_degeneracy == 1
        assert np.isclose(spec.mean(), (0 * 2 + 1 * 5 + 5 * 1) / 8)

    def test_merge(self):
        a = CompressedObjective(values=np.array([0.0, 1.0]), degeneracies=(2, 2), total=4)
        b = CompressedObjective(values=np.array([1.0, 3.0]), degeneracies=(1, 3), total=4)
        merged = a.merge(b)
        assert merged.total == 8
        assert np.array_equal(merged.values, [0.0, 1.0, 3.0])
        assert merged.degeneracies == (2, 3, 3)

    def test_expand_roundtrip(self):
        vals = np.array([0.0, 0.0, 1.0, 2.0, 2.0, 2.0])
        spec = compress_objective(vals)
        assert np.array_equal(np.sort(vals), spec.expand())

    def test_expand_refuses_huge(self):
        spec = CompressedObjective(values=np.array([0.0]), degeneracies=(1 << 23,), total=1 << 23)
        with pytest.raises(ValueError):
            spec.expand()

    def test_exact_big_integer_degeneracies(self):
        big = 2**80
        spec = CompressedObjective(
            values=np.array([0.0, 1.0]), degeneracies=(big, big), total=2 * big
        )
        assert spec.total == 2 * big
        assert spec.degeneracies[0] == big  # exact, not float


class TestCompressObjective:
    def test_matches_numpy_unique(self, maxcut_obj):
        spec = compress_objective(maxcut_obj)
        distinct, counts = np.unique(maxcut_obj, return_counts=True)
        assert np.array_equal(spec.values, distinct)
        assert spec.degeneracies == tuple(int(c) for c in counts)
        assert spec.total == maxcut_obj.size

    def test_decimals_grouping(self):
        vals = np.array([0.1000001, 0.1000002, 0.5])
        spec = compress_objective(vals, decimals=4)
        assert spec.num_distinct == 2
        assert spec.degeneracies == (2, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            compress_objective(np.array([]))


class TestStreamingCompression:
    def test_full_space_matches_dense(self, small_graph, maxcut_obj):
        spec_stream = compress_streaming(
            lambda bits: maxcut_values(small_graph, bits), 6, chunk_size=7
        )
        spec_dense = compress_objective(maxcut_obj)
        assert np.array_equal(spec_stream.values, spec_dense.values)
        assert spec_stream.degeneracies == spec_dense.degeneracies

    def test_partial_range(self, small_graph, maxcut_obj):
        spec = compress_streaming(
            lambda bits: maxcut_values(small_graph, bits), 6, start=10, stop=30, chunk_size=8
        )
        expected = compress_objective(maxcut_obj[10:30])
        assert np.array_equal(spec.values, expected.values)
        assert spec.degeneracies == expected.degeneracies
        assert spec.total == 20

    def test_invalid_range(self, small_graph):
        with pytest.raises(ValueError):
            compress_streaming(lambda b: np.zeros(len(b)), 4, start=5, stop=3)
        with pytest.raises(ValueError):
            compress_streaming(lambda b: np.zeros(len(b)), 4, chunk_size=0)

    def test_dicke_space_matches_dense(self, small_graph):
        space = DickeSpace(6, 3)
        dense_vals = densest_subgraph_values(small_graph, space.bits)
        spec_stream = compress_streaming_dicke(
            lambda bits: densest_subgraph_values(small_graph, bits), 6, 3, chunk_size=6
        )
        spec_dense = compress_objective(dense_vals)
        assert np.array_equal(spec_stream.values, spec_dense.values)
        assert spec_stream.degeneracies == spec_dense.degeneracies
        assert spec_stream.total == comb(6, 3)


class TestAnalyticSpectra:
    def test_hamming_weight_spectrum_small_n_matches_bruteforce(self):
        n = 8
        func = lambda w: float(min(w, n - w))  # noqa: E731
        spec = hamming_weight_spectrum(n, func)
        weights = state_matrix(n).sum(axis=1)
        brute = compress_objective(np.array([func(w) for w in weights]))
        assert np.array_equal(spec.values, brute.values)
        assert spec.degeneracies == brute.degeneracies

    def test_hamming_weight_spectrum_large_n_exact_counts(self):
        n = 100
        spec = hamming_weight_spectrum(n, lambda w: float(w))
        assert spec.total == 2**100
        assert spec.num_distinct == 101
        assert spec.degeneracies[0] == 1
        assert spec.degeneracies[50] == comb(100, 50)

    def test_binomial_spectrum_sorting(self):
        spec = binomial_spectrum([3.0, 1.0, 2.0], [1, 2, 3])
        assert np.array_equal(spec.values, [1.0, 2.0, 3.0])
        assert spec.degeneracies == (2, 3, 1)
        assert spec.total == 6


@given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=200))
@settings(max_examples=40)
def test_property_compression_preserves_total_and_mean(values):
    arr = np.array(values, dtype=np.float64)
    spec = compress_objective(arr)
    assert spec.total == arr.size
    assert np.isclose(spec.mean(), arr.mean())
    assert spec.optimum == arr.max()
    assert sum(spec.degeneracies) == arr.size
