"""Tests for weighted-graph objectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import random_angles, simulate
from repro.hilbert import state_matrix
from repro.mixers import transverse_field_mixer
from repro.problems import graph_from_edges, maxcut_values
from repro.problems.weighted import (
    edge_weights,
    random_weighted_graph,
    weighted_maxcut,
    weighted_maxcut_optimum,
    weighted_maxcut_values,
)


class TestWeightedGraphs:
    def test_generator_assigns_weights_in_range(self):
        graph = random_weighted_graph(8, 0.5, seed=1, low=0.5, high=2.0)
        weights = edge_weights(graph)
        assert weights.size == graph.number_of_edges()
        assert np.all((weights >= 0.5) & (weights < 2.0))

    def test_generator_deterministic(self):
        a = edge_weights(random_weighted_graph(8, 0.5, seed=3))
        b = edge_weights(random_weighted_graph(8, 0.5, seed=3))
        assert np.allclose(a, b)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            random_weighted_graph(5, 0.5, low=1.0, high=1.0)

    def test_unweighted_graph_defaults_to_unit_weights(self, small_graph):
        assert np.allclose(edge_weights(small_graph), 1.0)


class TestWeightedMaxCut:
    def test_manual_values(self):
        graph = graph_from_edges(3, [(0, 1), (1, 2)])
        graph[0][1]["weight"] = 2.0
        graph[1][2]["weight"] = 0.5
        assert weighted_maxcut(graph, np.array([1, 0, 0])) == 2.0
        assert weighted_maxcut(graph, np.array([0, 1, 0])) == 2.5
        assert weighted_maxcut(graph, np.array([0, 0, 0])) == 0.0

    def test_reduces_to_unweighted(self, small_graph):
        bits = state_matrix(6)
        assert np.allclose(
            weighted_maxcut_values(small_graph, bits), maxcut_values(small_graph, bits)
        )

    def test_vectorized_matches_scalar(self):
        graph = random_weighted_graph(6, 0.6, seed=5)
        bits = state_matrix(6)
        vec = weighted_maxcut_values(graph, bits)
        scalar = np.array([weighted_maxcut(graph, bits[i]) for i in range(64)])
        assert np.allclose(vec, scalar)

    def test_complement_symmetry(self):
        graph = random_weighted_graph(7, 0.5, seed=6)
        rng = np.random.default_rng(0)
        for _ in range(10):
            x = rng.integers(0, 2, size=7)
            assert np.isclose(weighted_maxcut(graph, x), weighted_maxcut(graph, 1 - x))

    def test_optimum_matches_vector_max(self):
        graph = random_weighted_graph(7, 0.5, seed=7)
        vals = weighted_maxcut_values(graph, state_matrix(7))
        assert np.isclose(weighted_maxcut_optimum(graph), vals.max())

    def test_shape_validation(self):
        graph = random_weighted_graph(5, 0.5, seed=8)
        with pytest.raises(ValueError):
            weighted_maxcut(graph, np.zeros(4))
        with pytest.raises(ValueError):
            weighted_maxcut_values(graph, np.zeros((3, 4)))

    def test_simulation_with_real_valued_objective(self):
        """The simulator is agnostic to non-integer objective values."""
        graph = random_weighted_graph(6, 0.5, seed=9)
        obj = weighted_maxcut_values(graph, state_matrix(6))
        res = simulate(random_angles(2, rng=1), transverse_field_mixer(6), obj)
        assert np.isclose(res.norm(), 1.0)
        assert obj.min() - 1e-9 <= res.expectation() <= obj.max() + 1e-9
