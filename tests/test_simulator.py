"""Tests for the core QAOA statevector simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PrecomputedCost,
    QAOAResult,
    Workspace,
    expectation_value,
    get_exp_value,
    random_angles,
    simulate,
    split_angles,
)
from repro.core.simulator import evolve_state
from repro.hilbert import FullSpace, state_matrix
from repro.mixers import MixerSchedule, transverse_field_mixer
from repro.mixers.grover import grover_mixer
from repro.problems import erdos_renyi, maxcut_values


class TestAngleHandling:
    def test_split_angles_layout(self, tf_mixer_6):
        schedule = MixerSchedule(tf_mixer_6, rounds=3)
        angles = np.arange(6.0)
        betas, gammas = split_angles(angles, schedule)
        assert len(betas) == 3
        assert np.allclose(np.concatenate(betas), [0, 1, 2])
        assert np.allclose(gammas, [3, 4, 5])

    def test_split_angles_length_check(self, tf_mixer_6):
        schedule = MixerSchedule(tf_mixer_6, rounds=2)
        with pytest.raises(ValueError):
            split_angles(np.zeros(5), schedule)

    def test_random_angles_range_and_shape(self):
        angles = random_angles(4, rng=0)
        assert angles.shape == (8,)
        assert np.all((angles >= 0) & (angles < 2 * np.pi))
        assert np.allclose(random_angles(4, rng=0), angles)  # deterministic

    def test_random_angles_multi_beta(self):
        assert random_angles(2, rng=1, num_betas=6).shape == (8,)


class TestSimulateBasics:
    def test_listing1_workflow(self, small_graph):
        """The paper's Listing 1, end to end."""
        n = 6
        obj_vals = maxcut_values(small_graph, state_matrix(n))
        mixer = transverse_field_mixer(n)
        p = 3
        angles = random_angles(p, rng=0)
        res = simulate(angles, mixer, obj_vals)
        value = get_exp_value(res)
        assert 0.0 <= value <= obj_vals.max()
        assert np.isclose(res.norm(), 1.0)

    def test_result_probabilities_sum_to_one(self, maxcut_obj, tf_mixer_6):
        res = simulate(random_angles(2, rng=1), tf_mixer_6, maxcut_obj)
        assert np.isclose(res.probabilities().sum(), 1.0)

    def test_expectation_consistent_with_probabilities(self, maxcut_obj, tf_mixer_6):
        res = simulate(random_angles(2, rng=2), tf_mixer_6, maxcut_obj)
        manual = float(np.dot(res.probabilities(), maxcut_obj))
        assert np.isclose(res.expectation(), manual)

    def test_zero_angles_keep_initial_state(self, maxcut_obj, tf_mixer_6):
        res = simulate(np.zeros(4), tf_mixer_6, maxcut_obj)
        assert np.allclose(res.statevector, tf_mixer_6.initial_state())
        assert np.isclose(res.expectation(), maxcut_obj.mean())

    def test_expectation_value_fast_path_matches(self, maxcut_obj, tf_mixer_6):
        angles = random_angles(3, rng=3)
        res = simulate(angles, tf_mixer_6, maxcut_obj)
        fast = expectation_value(angles, tf_mixer_6, maxcut_obj)
        assert np.isclose(fast, res.expectation())

    def test_p_inferred_from_angles(self, maxcut_obj, tf_mixer_6):
        res = simulate(random_angles(4, rng=4), tf_mixer_6, maxcut_obj)
        assert res.p == 4

    def test_accepts_precomputed_cost(self, maxcut_obj, tf_mixer_6):
        cost = PrecomputedCost(values=maxcut_obj, space=FullSpace(6))
        res = simulate(random_angles(2, rng=5), tf_mixer_6, cost)
        assert isinstance(res, QAOAResult)
        assert res.cost.space is not None

    def test_mixer_list_per_round(self, maxcut_obj):
        mixers = [transverse_field_mixer(6), grover_mixer(6)]
        angles = random_angles(2, rng=6)
        res = simulate(angles, mixers, maxcut_obj, p=2)
        assert np.isclose(res.norm(), 1.0)

    def test_objective_dimension_mismatch_rejected(self, tf_mixer_6):
        with pytest.raises(ValueError):
            simulate(random_angles(1, rng=0), tf_mixer_6, np.zeros(10))

    def test_custom_initial_state(self, maxcut_obj, tf_mixer_6):
        psi0 = np.zeros(64, dtype=complex)
        psi0[5] = 1.0
        res = simulate(np.zeros(2), tf_mixer_6, maxcut_obj, initial_state=psi0)
        assert np.allclose(res.statevector, psi0)
        assert np.isclose(res.expectation(), maxcut_obj[5])

    def test_workspace_reuse(self, maxcut_obj, tf_mixer_6):
        ws = Workspace(64)
        for seed in range(3):
            simulate(random_angles(2, rng=seed), tf_mixer_6, maxcut_obj, workspace=ws)
        assert ws.calls_served == 3

    def test_workspace_dimension_mismatch(self, maxcut_obj, tf_mixer_6):
        with pytest.raises(ValueError):
            simulate(random_angles(2, rng=0), tf_mixer_6, maxcut_obj, workspace=Workspace(32))


class TestResultQueries:
    def test_ground_state_probability_bounds(self, maxcut_obj, tf_mixer_6):
        res = simulate(random_angles(3, rng=7), tf_mixer_6, maxcut_obj)
        prob = res.ground_state_probability()
        assert 0.0 <= prob <= 1.0

    def test_uniform_state_gs_probability(self, maxcut_obj, tf_mixer_6):
        res = simulate(np.zeros(2), tf_mixer_6, maxcut_obj)
        expected = np.count_nonzero(maxcut_obj == maxcut_obj.max()) / 64
        assert np.isclose(res.ground_state_probability(), expected)

    def test_amplitude_of_label(self, maxcut_obj, tf_mixer_6):
        res = simulate(random_angles(2, rng=8), tf_mixer_6, maxcut_obj)
        assert np.isclose(res.amplitude_of(17), res.statevector[17])

    def test_amplitudes_returns_copy(self, maxcut_obj, tf_mixer_6):
        res = simulate(random_angles(1, rng=9), tf_mixer_6, maxcut_obj)
        amps = res.amplitudes()
        amps[:] = 0
        assert not np.allclose(res.statevector, 0)

    def test_approximation_ratio(self, maxcut_obj, tf_mixer_6):
        res = simulate(random_angles(2, rng=10), tf_mixer_6, maxcut_obj)
        assert np.isclose(res.approximation_ratio(), res.expectation() / maxcut_obj.max())

    def test_sampling_distribution(self, maxcut_obj, tf_mixer_6):
        res = simulate(random_angles(2, rng=11), tf_mixer_6, maxcut_obj)
        samples = res.sample(4000, rng=0)
        assert samples.shape == (4000,)
        assert samples.min() >= 0 and samples.max() < 64
        # Empirical mean objective should be close to the expectation value.
        empirical = maxcut_obj[samples].mean()
        assert abs(empirical - res.expectation()) < 0.3

    def test_sample_requires_positive_shots(self, maxcut_obj, tf_mixer_6):
        res = simulate(random_angles(1, rng=12), tf_mixer_6, maxcut_obj)
        with pytest.raises(ValueError):
            res.sample(0)


class TestConstrainedSimulation:
    def test_clique_mixer_stays_in_subspace(self, dks_obj, clique_mixer_63):
        res = simulate(random_angles(3, rng=13), clique_mixer_63, dks_obj)
        assert res.statevector.shape == (20,)
        assert np.isclose(res.norm(), 1.0)

    def test_ring_vs_clique_differ(self, dks_obj, clique_mixer_63, ring_mixer_63):
        angles = random_angles(2, rng=14)
        res_c = simulate(angles, clique_mixer_63, dks_obj)
        res_r = simulate(angles, ring_mixer_63, dks_obj)
        assert not np.isclose(res_c.expectation(), res_r.expectation())

    def test_expectation_bounded_by_constrained_optimum(self, dks_obj, clique_mixer_63):
        res = simulate(random_angles(2, rng=15), clique_mixer_63, dks_obj)
        assert res.expectation() <= dks_obj.max() + 1e-9
        assert res.expectation() >= dks_obj.min() - 1e-9


class TestEvolveStateValidation:
    def test_wrong_gamma_count(self, maxcut_obj, tf_mixer_6):
        schedule = MixerSchedule(tf_mixer_6, rounds=2)
        with pytest.raises(ValueError):
            evolve_state(
                [np.array([0.1])] * 2, np.array([0.1]), schedule, maxcut_obj,
                tf_mixer_6.initial_state(),
            )

    def test_wrong_beta_count(self, maxcut_obj, tf_mixer_6):
        schedule = MixerSchedule(tf_mixer_6, rounds=2)
        with pytest.raises(ValueError):
            evolve_state(
                [np.array([0.1])], np.array([0.1, 0.2]), schedule, maxcut_obj,
                tf_mixer_6.initial_state(),
            )

    def test_wrong_cost_shape(self, tf_mixer_6):
        schedule = MixerSchedule(tf_mixer_6, rounds=1)
        with pytest.raises(ValueError):
            evolve_state(
                [np.array([0.1])], np.array([0.1]), schedule, np.zeros(10),
                tf_mixer_6.initial_state(),
            )


@given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=20, deadline=None)
def test_property_norm_preserved_any_angles(p, seed):
    rng = np.random.default_rng(seed)
    graph = erdos_renyi(5, 0.5, seed=seed)
    obj = maxcut_values(graph, state_matrix(5))
    mixer = transverse_field_mixer(5)
    angles = 4 * np.pi * rng.random(2 * p) - 2 * np.pi
    res = simulate(angles, mixer, obj)
    assert np.isclose(res.norm(), 1.0, atol=1e-9)
    assert obj.min() - 1e-9 <= res.expectation() <= obj.max() + 1e-9
