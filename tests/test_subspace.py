"""Tests for the FeasibleSpace abstraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hilbert import CustomSpace, DickeSpace, FeasibleSpace, FullSpace
from repro.problems import maxcut, maxcut_values


class TestFullSpace:
    def test_geometry(self):
        space = FullSpace(5)
        assert space.n == 5
        assert space.dim == 32
        assert space.is_full
        assert len(space) == 32
        assert space.hamming_weight is None

    def test_bits_matrix(self):
        space = FullSpace(4)
        bits = space.bits
        assert bits.shape == (16, 4)
        # row i encodes label i (qubit 0 = LSB)
        assert np.array_equal(bits[5], [1, 0, 1, 0])

    def test_initial_state(self):
        psi = FullSpace(3).initial_state()
        assert np.allclose(psi, 1 / np.sqrt(8))

    def test_evaluate_scalar_vs_vectorized(self, small_graph):
        space = FullSpace(6)
        scalar = space.evaluate(lambda x: maxcut(small_graph, x))
        vectorized = space.evaluate_vectorized(lambda b: maxcut_values(small_graph, b))
        assert np.allclose(scalar, vectorized)

    def test_evaluate_vectorized_shape_check(self):
        space = FullSpace(3)
        with pytest.raises(ValueError):
            space.evaluate_vectorized(lambda bits: np.zeros(5))


class TestDickeSpace:
    def test_geometry(self):
        space = DickeSpace(6, 2)
        assert space.dim == 15
        assert not space.is_full
        assert space.hamming_weight == 2
        assert all(bin(int(x)).count("1") == 2 for x in space.labels)

    def test_embed_project_roundtrip(self, rng):
        space = DickeSpace(6, 3)
        sub = rng.normal(size=space.dim) + 1j * rng.normal(size=space.dim)
        full = space.embed(sub)
        assert full.shape == (64,)
        assert np.allclose(space.project(full), sub)
        # Everything outside the subspace is zero.
        mask = np.ones(64, dtype=bool)
        mask[space.labels] = False
        assert np.allclose(full[mask], 0.0)

    def test_embed_shape_check(self):
        with pytest.raises(ValueError):
            DickeSpace(5, 2).embed(np.zeros(3))

    def test_project_shape_check(self):
        with pytest.raises(ValueError):
            DickeSpace(5, 2).project(np.zeros(16))

    def test_index_of(self):
        space = DickeSpace(5, 2)
        for idx, label in enumerate(space.labels):
            assert space.index_of(int(label)) == idx
        with pytest.raises(KeyError):
            space.index_of(0)  # weight 0 is infeasible


class TestCustomSpace:
    def test_sorted_and_weight_detection(self):
        space = CustomSpace(4, [9, 3, 12])  # all weight 2
        assert np.array_equal(space.labels, [3, 9, 12])
        assert space.hamming_weight == 2

    def test_mixed_weights(self):
        space = CustomSpace(4, [1, 3])
        assert space.hamming_weight is None

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            FeasibleSpace(n=3, labels=np.array([1, 1, 2]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            FeasibleSpace(n=3, labels=np.array([8]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FeasibleSpace(n=3, labels=np.array([], dtype=np.int64))

    def test_directly_constructed_unsorted_labels_rejected(self):
        # Regression: index_of uses a binary search, so a FeasibleSpace built
        # directly with unsorted labels used to return wrong indices or raise
        # spurious KeyErrors.  __post_init__ now rejects unsorted input loudly
        # (silently sorting would permute the basis out from under any
        # caller-supplied per-state arrays); CustomSpace sorts for you.
        with pytest.raises(ValueError, match="ascending"):
            FeasibleSpace(n=3, labels=np.array([5, 1, 3]))
        space = CustomSpace(3, [5, 1, 3])
        assert np.array_equal(space.labels, [1, 3, 5])
        assert space.index_of(3) == 1
        with pytest.raises(KeyError):
            space.index_of(2)

    def test_unsorted_duplicates_still_rejected(self):
        with pytest.raises(ValueError):
            FeasibleSpace(n=3, labels=np.array([5, 1, 5]))


@given(st.integers(min_value=2, max_value=10), st.data())
@settings(max_examples=25)
def test_property_dicke_initial_state_normalized(n, data):
    k = data.draw(st.integers(min_value=0, max_value=n))
    space = DickeSpace(n, k)
    psi = space.initial_state()
    assert np.isclose(np.linalg.norm(psi), 1.0)
    assert psi.shape == (space.dim,)
