"""Tests for the statevector and dense circuit backends and the QAOA circuit builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    DenseBackend,
    StatevectorBackend,
    apply_gate,
    cnot,
    decompose_circuit,
    gate_to_full_unitary,
    hadamard,
    initial_layer,
    ising_cost_layer,
    maxcut_cost_layer,
    maxcut_qaoa_circuit,
    pauli_x,
    rx,
    rzz,
    trotter_xy_qaoa_circuit,
    x_mixer_layer,
    xy_mixer_layer,
)
from repro.core import random_angles, simulate
from repro.hilbert import state_matrix, uniform_superposition
from repro.mixers import transverse_field_mixer
from repro.problems import erdos_renyi, maxcut_values
from repro.problems.extra import ising_energy_values


class TestApplyGate:
    def test_x_on_each_qubit(self):
        n = 3
        for q in range(n):
            psi = np.zeros(8, dtype=complex)
            psi[0] = 1.0
            out = apply_gate(psi, pauli_x(q), n)
            assert np.isclose(out[1 << q], 1.0)

    def test_hadamard_layer_gives_uniform(self):
        n = 4
        psi = np.zeros(16, dtype=complex)
        psi[0] = 1.0
        for q in range(n):
            psi = apply_gate(psi, hadamard(q), n)
        assert np.allclose(psi, uniform_superposition(n))

    def test_cnot_entangles(self):
        psi = np.zeros(4, dtype=complex)
        psi[0] = 1.0
        psi = apply_gate(psi, hadamard(0), 2)
        psi = apply_gate(psi, cnot(0, 1), 2)
        bell = np.zeros(4, dtype=complex)
        bell[0b00] = bell[0b11] = 1 / np.sqrt(2)
        assert np.allclose(psi, bell)

    def test_matches_dense_promotion(self, rng):
        n = 4
        psi = rng.normal(size=16) + 1j * rng.normal(size=16)
        for gate in (rx(2, 0.3), rzz(1, 3, 0.8), cnot(3, 0), hadamard(1)):
            fast = apply_gate(psi, gate, n)
            slow = gate_to_full_unitary(gate, n) @ psi
            assert np.allclose(fast, slow, atol=1e-12)

    def test_diagonal_fast_path_matches_general(self, rng):
        n = 5
        psi = rng.normal(size=32) + 1j * rng.normal(size=32)
        gate = rzz(1, 4, 0.55)
        fast = apply_gate(psi, gate, n, diagonal_fast_path=True)
        general = apply_gate(psi, gate, n, diagonal_fast_path=False)
        assert np.allclose(fast, general, atol=1e-12)

    def test_global_phase_gate(self, rng):
        from repro.circuits import global_phase

        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        out = apply_gate(psi, global_phase(0.9), 3)
        assert np.allclose(out, np.exp(1j * 0.9) * psi)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            apply_gate(np.zeros(7), hadamard(0), 3)


class TestBackends:
    def test_default_initial_state_is_zero_ket(self):
        circuit = Circuit(3)
        out = StatevectorBackend().run(circuit)
        assert np.isclose(out[0], 1.0)
        assert np.isclose(np.linalg.norm(out), 1.0)

    def test_gates_applied_counter(self):
        circuit = Circuit(2, [hadamard(0), hadamard(1), cnot(0, 1)])
        backend = StatevectorBackend()
        backend.run(circuit)
        assert backend.gates_applied == 3

    def test_dense_and_statevector_agree(self, rng):
        circuit = Circuit(3, [hadamard(0), rx(1, 0.4), cnot(0, 2), rzz(1, 2, 0.6)])
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        psi /= np.linalg.norm(psi)
        a = StatevectorBackend().run(circuit, initial_state=psi)
        b = DenseBackend().run(circuit, initial_state=psi)
        assert np.allclose(a, b, atol=1e-10)

    def test_dense_circuit_unitary(self):
        circuit = Circuit(2, [hadamard(0), cnot(0, 1)])
        U = DenseBackend().unitary(circuit)
        assert np.allclose(U @ U.conj().T, np.eye(4), atol=1e-12)
        psi = U @ np.array([1, 0, 0, 0], dtype=complex)
        assert np.allclose(np.abs(psi) ** 2, [0.5, 0, 0, 0.5])

    def test_expectation_helpers_agree(self, rng):
        graph = erdos_renyi(4, 0.5, seed=3)
        obj = maxcut_values(graph, state_matrix(4))
        circuit = maxcut_qaoa_circuit(graph, [0.3], [0.8])
        sv = StatevectorBackend().expectation(circuit, obj)
        dense = DenseBackend().expectation(circuit, obj)
        assert np.isclose(sv, dense)

    def test_initial_state_shape_validation(self):
        with pytest.raises(ValueError):
            StatevectorBackend().run(Circuit(3), initial_state=np.zeros(4))
        with pytest.raises(ValueError):
            DenseBackend().run(Circuit(3), initial_state=np.zeros(4))


class TestQAOABuilder:
    def test_initial_layer_prepares_uniform(self):
        out = StatevectorBackend().run(initial_layer(5))
        assert np.allclose(out, uniform_superposition(5))

    def test_maxcut_cost_layer_is_diagonal_phase(self, rng):
        graph = erdos_renyi(5, 0.5, seed=8)
        obj = maxcut_values(graph, state_matrix(5))
        gamma = 0.77
        circuit = maxcut_cost_layer(graph, gamma)
        psi = rng.normal(size=32) + 1j * rng.normal(size=32)
        psi /= np.linalg.norm(psi)
        out = StatevectorBackend().run(circuit, initial_state=psi)
        assert np.allclose(out, np.exp(-1j * gamma * obj) * psi, atol=1e-10)

    def test_x_mixer_layer_matches_direct_mixer(self, rng):
        n = 4
        beta = 0.52
        mixer = transverse_field_mixer(n)
        psi = rng.normal(size=16) + 1j * rng.normal(size=16)
        psi /= np.linalg.norm(psi)
        out = StatevectorBackend().run(x_mixer_layer(n, beta), initial_state=psi)
        assert np.allclose(out, mixer.apply(psi, beta), atol=1e-10)

    def test_full_circuit_matches_direct_simulator(self, rng):
        n, p = 5, 3
        graph = erdos_renyi(n, 0.5, seed=10)
        obj = maxcut_values(graph, state_matrix(n))
        angles = random_angles(p, rng=2)
        betas, gammas = angles[:p], angles[p:]
        circuit = maxcut_qaoa_circuit(graph, betas, gammas)
        circuit_state = StatevectorBackend().run(circuit)
        direct_state = simulate(angles, transverse_field_mixer(n), obj).statevector
        assert np.allclose(circuit_state, direct_state, atol=1e-9)

    def test_ising_cost_layer_phases(self, rng):
        n = 4
        h = rng.normal(size=n)
        J = np.triu(rng.normal(size=(n, n)), k=1)
        obj = ising_energy_values(h, J, state_matrix(n))
        gamma = 0.41
        circuit = ising_cost_layer(h, J, gamma)
        psi = rng.normal(size=16) + 1j * rng.normal(size=16)
        psi /= np.linalg.norm(psi)
        out = StatevectorBackend().run(circuit, initial_state=psi)
        expected = np.exp(-1j * gamma * obj) * psi
        # Equal up to a global phase (single-qubit RZ conventions drop a constant).
        overlap = np.vdot(expected, out)
        assert np.isclose(np.abs(overlap), 1.0, atol=1e-10)
        assert np.allclose(out, expected * np.exp(1j * np.angle(overlap)), atol=1e-9)

    def test_angle_length_mismatch_rejected(self):
        graph = erdos_renyi(4, 0.5, seed=1)
        with pytest.raises(ValueError):
            maxcut_qaoa_circuit(graph, [0.1, 0.2], [0.3])

    def test_decompose_preserves_state(self, rng):
        graph = erdos_renyi(4, 0.5, seed=12)
        circuit = maxcut_qaoa_circuit(graph, [0.3, 0.5], [0.7, 0.9])
        decomposed = decompose_circuit(circuit)
        assert decomposed.num_gates > circuit.num_gates
        a = StatevectorBackend().run(circuit)
        b = StatevectorBackend().run(decomposed)
        overlap = np.abs(np.vdot(a, b))
        assert np.isclose(overlap, 1.0, atol=1e-9)

    def test_xy_mixer_layer_unitary(self, rng):
        n = 4
        circuit = xy_mixer_layer(n, 0.3, [(0, 1), (1, 2), (2, 3)])
        psi = rng.normal(size=16) + 1j * rng.normal(size=16)
        psi /= np.linalg.norm(psi)
        out = StatevectorBackend().run(circuit, initial_state=psi)
        assert np.isclose(np.linalg.norm(out), 1.0)

    def test_trotter_circuit_structure(self):
        graph = erdos_renyi(4, 0.5, seed=13)
        circuit = trotter_xy_qaoa_circuit(
            graph,
            [0.1],
            [0.2],
            pairs=[(0, 1), (2, 3)],
            cost_layer_builder=lambda gamma: maxcut_cost_layer(graph, gamma),
            trotter_steps=3,
        )
        assert circuit.gate_counts()["XY"] == 6  # 2 pairs x 3 steps
        with pytest.raises(ValueError):
            trotter_xy_qaoa_circuit(
                graph, [0.1], [0.2], [(0, 1)], lambda g: maxcut_cost_layer(graph, g),
                trotter_steps=0,
            )
