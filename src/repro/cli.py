"""``python -m repro`` — the experiment-runner command line.

Commands
--------
``repro list``
    Show every registered experiment with its work-list size at the
    requested ``--scale``.

``repro run fig2 fig4a ... | all``
    Run (or resume) figure sweeps into per-experiment run stores under
    ``--out``.  Work is sharded across ``--workers`` processes; completed
    tasks recorded in a store's manifest are skipped, so re-running after an
    interruption picks up where the sweep stopped.  ``--shard I/M`` takes a
    static 1-of-M slice of the work-list for multi-machine fan-out; shards
    launched simultaneously against one ``--out`` store are safe (each writer
    appends to its own ``--writer-id`` row segment and manifest updates are
    serialized by a cross-process lock).

``repro solve``
    Run one declarative solve — problem x mixer x strategy from the name
    registries — and print (or ``--json``-dump) the result row.  Accepts
    either flat flags (``--problem maxcut --mixer x --strategy random --p 3``)
    or a full spec document via ``--spec spec.json``.  For *grids* of specs,
    use ``repro run solve`` instead, which shards and resumes through a run
    store like any other experiment.

``repro serve``
    Run the long-lived HTTP solver service: ``POST /solve`` accepts a spec
    (or a ``{"specs": [...]}`` batch), concurrent same-``(problem, mixer, p,
    strategy)`` requests coalesce into one batched multi-start GEMM on a warm
    workspace pool, and finished solves are answered from the spec-keyed
    result cache.  ``GET /healthz`` / ``GET /stats`` report liveness and the
    hit/miss/coalescing counters.

``repro bench portfolio``
    Run the gated anytime-portfolio benchmark (standalone contenders, races
    at each deadline, time-to-quality gates) and write ``BENCH_portfolio.json``.
    Exit code 1 if any gate fails.

``repro backend-info``
    Print the resolved array backend (``REPRO_BACKEND``), its device and the
    relevant library/BLAS versions as JSON — what the CI backend-matrix jobs
    log before running the suites.

``repro status``
    Summarize every run store under ``--out`` (tasks completed, rows, state).

``repro report``
    Print the result rows of each store as aligned tables, and optionally
    dump everything to a single JSON file with ``--json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from .bench.figures import format_rows
from .experiments.runner import run_experiment, scale_env, store_directory
from .experiments.store import LOCK_NAME, MANIFEST_NAME, RunStore, RunStoreError
from .experiments.tasks import EXPERIMENT_NAMES, enumerate_tasks, get_experiment
from .hpc.parallel import default_workers
from .io.locking import LockTimeout

__all__ = ["main", "build_parser"]


class _CliError(Exception):
    """A user-facing CLI error (printed to stderr, exit code 2)."""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sharded, resumable runner for the paper's figure sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common_out = {
        "default": "runs",
        "help": "root directory holding the per-experiment run stores (default: runs)",
    }

    p_list = sub.add_parser("list", help="list experiments and their work-list sizes")
    p_list.add_argument("--scale", choices=("quick", "paper"), default="quick")

    p_run = sub.add_parser("run", help="run or resume figure sweeps")
    p_run.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one or more of {', '.join(EXPERIMENT_NAMES)}, or 'all'",
    )
    p_run.add_argument("--scale", choices=("quick", "paper"), default="quick")
    p_run.add_argument("--out", **common_out)
    p_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes per experiment (default: REPRO_WORKERS or CPU count)",
    )
    p_run.add_argument(
        "--shard",
        default="1/1",
        metavar="I/M",
        help="run only the I-th of M static work-list shards (1-based, default 1/1); "
        "simultaneous shards may safely share one --out store",
    )
    p_run.add_argument(
        "--writer-id",
        dest="writer_id",
        default=None,
        metavar="ID",
        help="name of this writer's row segment in the store "
        "(default shard-I-of-M; [A-Za-z0-9._-] only)",
    )
    p_run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override an executor parameter (JSON-decoded; single experiment only)",
    )
    p_run.add_argument(
        "--fresh",
        action="store_true",
        help="discard any existing run store for the target experiments first",
    )

    p_solve = sub.add_parser("solve", help="run one declarative problem x mixer x strategy solve")
    p_solve.add_argument(
        "--spec",
        dest="spec_path",
        default=None,
        metavar="PATH",
        help="JSON SolveSpec document ('-' for stdin); overrides the flat flags",
    )
    p_solve.add_argument("--problem", default="maxcut", help="problem family name")
    p_solve.add_argument("--n", type=int, default=8, help="number of qubits (default 8)")
    p_solve.add_argument(
        "--problem-seed", type=int, default=0, help="seed of the random problem instance"
    )
    p_solve.add_argument("--mixer", default="x", help="mixer family name")
    p_solve.add_argument("--strategy", default="random", help="angle-strategy name")
    p_solve.add_argument("--p", type=int, default=1, help="number of QAOA rounds")
    p_solve.add_argument("--seed", type=int, default=0, help="RNG seed for the angle strategy")
    for flag, dest, target in (
        ("--problem-param", "problem_params", "problem"),
        ("--mixer-param", "mixer_params", "mixer"),
        ("--param", "strategy_params", "strategy"),
    ):
        p_solve.add_argument(
            flag,
            dest=dest,
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help=f"extra {target} parameter (JSON-decoded; repeatable)",
        )
    p_solve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline for the angle search (any strategy): on "
        "expiry the best-so-far angles are reported with timed_out=true",
    )
    p_solve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="portfolio race deadline — shorthand for --param deadline_s=T "
        "(requires --strategy portfolio)",
    )
    p_solve.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the result row (plus the spec) to PATH as JSON",
    )
    p_solve.add_argument(
        "--explain",
        action="store_true",
        help="print which execution path (dense/sharded/compressed) was "
        "selected and why (dim, shard count, distinct-value count)",
    )
    p_solve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="force sharded execution with N worker processes "
        "(overrides the REPRO_SHARDS environment knob)",
    )

    p_serve = sub.add_parser(
        "serve", help="run the HTTP solver service (POST /solve, GET /healthz, GET /stats)"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8642, help="bind port (default 8642)")
    p_serve.add_argument(
        "--window-ms",
        type=float,
        default=10.0,
        help="coalescing window in milliseconds: how long the first request of a "
        "(problem, mixer, p, strategy) key waits for batch company (default 10)",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="batch size that flushes a coalescing window immediately (default 64)",
    )
    p_serve.add_argument(
        "--pool-entries",
        type=int,
        default=8,
        help="max warm (problem, mixer, p) pool entries kept alive (default 8)",
    )
    p_serve.add_argument(
        "--pool-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="byte budget for the warm pool (default: unlimited; LRU entries are "
        "evicted once the analytic residency estimate exceeds it)",
    )
    p_serve.add_argument(
        "--result-cache",
        default=None,
        metavar="DIR|0|1",
        help="spec-keyed result cache: a directory, 1 for the default cache dir, "
        "0 to disable (default: the REPRO_RESULT_CACHE environment variable)",
    )

    p_bench = sub.add_parser(
        "bench",
        help="run a standalone gated benchmark harness and write its BENCH_*.json",
    )
    p_bench.add_argument(
        "suite",
        choices=("portfolio",),
        help="benchmark suite to run (portfolio: anytime racing time-to-quality gates)",
    )
    p_bench.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="sweep profile (quick: one instance, two deadlines; full: the "
        "committed instance x deadline grid)",
    )
    p_bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output document path (default: BENCH_<suite>.json)",
    )

    sub.add_parser(
        "backend-info",
        help="print the resolved array backend and its library/BLAS details",
    )

    p_status = sub.add_parser("status", help="summarize run stores under --out")
    p_status.add_argument("--out", **common_out)

    p_report = sub.add_parser("report", help="print result rows from run stores")
    p_report.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiments to report (default: every store found under --out)",
    )
    p_report.add_argument("--out", **common_out)
    p_report.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also write all reported rows to PATH as one JSON document",
    )
    return parser


def _resolve_targets(names: list[str]) -> list[str]:
    if "all" in names:
        return list(EXPERIMENT_NAMES)
    seen: list[str] = []
    for name in names:
        try:
            get_experiment(name)
        except KeyError as exc:
            raise _CliError(exc.args[0]) from None
        if name not in seen:
            seen.append(name)
    return seen


def _parse_shard(text: str) -> tuple[int, int]:
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise SystemExit(f"--shard expects I/M (e.g. 2/4), got {text!r}") from None
    if count < 1 or not 1 <= index <= count:
        raise SystemExit(f"--shard expects 1 <= I <= M, got {text!r}")
    return index - 1, count


def _parse_overrides(pairs: list[str]) -> dict:
    overrides: dict = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects KEY=VALUE, got {pair!r}")
        try:
            overrides[key] = json.loads(value)
        except json.JSONDecodeError:
            overrides[key] = value
    return overrides


def _open_store(directory: Path) -> RunStore:
    """Open a store for reading, normalizing every failure mode to RunStoreError."""
    try:
        store = RunStore.open(directory)
        store.manifest  # force the manifest load so corruption surfaces here
        return store
    except RunStoreError:
        raise
    except (json.JSONDecodeError, OSError, KeyError, ValueError) as exc:
        raise RunStoreError(f"unreadable run store at {directory}: {exc}") from exc


def _find_stores(out_dir: Path) -> list[RunStore]:
    """Readable stores under ``out_dir``; unreadable ones are reported, not fatal."""
    if not out_dir.is_dir():
        return []
    stores = []
    for manifest in sorted(out_dir.glob(f"*/{MANIFEST_NAME}")):
        try:
            stores.append(_open_store(manifest.parent))
        except RunStoreError as exc:
            print(f"warning: skipping {manifest.parent}: {exc}", file=sys.stderr)
    return stores


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    with scale_env(args.scale):
        for name in EXPERIMENT_NAMES:
            spec = get_experiment(name)
            rows.append(
                {
                    "experiment": name,
                    "tasks": len(enumerate_tasks(name)),
                    "scale": args.scale,
                    "title": spec.title,
                }
            )
    print(format_rows(rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    targets = _resolve_targets(args.experiments)
    shard = _parse_shard(args.shard)
    overrides = _parse_overrides(args.overrides)
    if overrides and len(targets) > 1:
        raise SystemExit("--set overrides apply to a single experiment; run targets separately")
    workers = default_workers() if args.workers is None else max(1, args.workers)
    failures = 0
    for name in targets:
        directory = store_directory(args.out, name, args.scale)
        if args.fresh:
            # --fresh assumes no other writer is active on the store: the
            # manifest, the lock, every row segment (rows.jsonl and
            # rows-<writer>.jsonl) and any leftover compaction temp files go.
            stale = [directory / MANIFEST_NAME, directory / LOCK_NAME]
            if directory.is_dir():
                stale.extend(directory.glob("rows*.jsonl*"))
            for path in stale:
                path.unlink(missing_ok=True)
        try:
            run_experiment(
                name,
                scale=args.scale,
                out_dir=args.out,
                workers=workers,
                overrides=overrides,
                shard=shard,
                writer_id=args.writer_id,
                log=print,
            )
        except (RunStoreError, LockTimeout, ValueError) as exc:
            # ValueError covers user input rejected downstream (unknown
            # --set override key, bad scale); LockTimeout a store whose lock
            # another writer held too long — a clean message, not a traceback.
            print(f"error: {exc}", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from .api import SolveSpec

    if args.spec_path is not None:
        if args.deadline is not None:
            raise _CliError("--deadline applies to the flat flags; put deadline_s in the spec")
        if args.spec_path == "-":
            text = sys.stdin.read()
        else:
            try:
                text = Path(args.spec_path).read_text(encoding="utf-8")
            except OSError as exc:
                raise _CliError(f"cannot read spec file: {exc}") from exc
        try:
            spec = SolveSpec.from_json(text)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise _CliError(f"bad spec document: {exc}") from exc
    else:
        strategy_params = _parse_overrides(args.strategy_params)
        if args.deadline is not None:
            if args.deadline <= 0:
                raise _CliError("--deadline must be positive")
            strategy_params.setdefault("deadline_s", args.deadline)
        spec = SolveSpec.build(
            problem=args.problem,
            n=args.n,
            problem_seed=args.problem_seed,
            problem_params=_parse_overrides(args.problem_params),
            mixer=args.mixer,
            mixer_params=_parse_overrides(args.mixer_params),
            strategy=args.strategy,
            strategy_params=strategy_params,
            p=args.p,
            seed=args.seed,
        )
    if args.timeout is not None and args.timeout < 0:
        raise _CliError("--timeout must be non-negative")
    from .api.routing import select_execution_path
    from .api.solver import QAOASolver

    try:
        plan = select_execution_path(spec, shards=args.shards)
        if args.explain:
            print(f"execution path: {plan.describe()}")
        solver = QAOASolver(spec, plan=plan)
        try:
            result = solver.run(timeout_s=args.timeout)
        finally:
            solver.close()
    except (TypeError, ValueError) as exc:
        raise _CliError(str(exc)) from exc

    row = result.to_row()
    print(
        f"{row['problem']} n={row['n']} (instance seed {row['problem_seed']}) | "
        f"mixer={row['mixer']} strategy={row['strategy']} p={row['p']} seed={row['seed']} | "
        f"engine={row['execution']}"
    )
    print(f"  <C> at best angles       : {row['value']:.6f}")
    print(f"  optimum                  : {row['optimum']:.6f}")
    ratio = row["approximation_ratio"]
    print(f"  approximation ratio      : {'n/a' if ratio is None else f'{ratio:.6f}'}")
    print(f"  P(optimal state)         : {row['ground_state_probability']:.6f}")
    print(f"  strategy evaluations     : {row['evaluations']}")
    print(f"  wall time                : {row['wall_time_s']:.3f}s")
    if row.get("timed_out"):
        print("  timed out                : yes (best-so-far angles reported)")
    print(f"  angles (betas, gammas)   : {np.array2string(result.angles, precision=6)}")
    if args.json_path:
        path = Path(args.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"spec": result.spec.to_dict(), "result": row}
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"(result written to {path})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .io.cache import ResultCache, default_cache_dir, result_cache_from_env
    from .service import SolverService
    from .service.server import serve

    if args.window_ms < 0:
        raise _CliError("--window-ms must be non-negative")
    if args.max_batch < 1:
        raise _CliError("--max-batch must be positive")
    if args.result_cache is None:
        result_cache = result_cache_from_env()
    elif args.result_cache == "0":
        result_cache = None
    elif args.result_cache == "1":
        result_cache = ResultCache(default_cache_dir() / "results")
    else:
        result_cache = ResultCache(args.result_cache)
    try:
        service = SolverService(
            max_entries=args.pool_entries,
            max_bytes=args.pool_bytes,
            result_cache=result_cache,
            window_s=args.window_ms / 1000.0,
            max_batch=args.max_batch,
        )
    except ValueError as exc:
        raise _CliError(str(exc)) from exc
    try:
        serve(service, host=args.host, port=args.port)
    except OSError as exc:
        raise _CliError(f"cannot bind {args.host}:{args.port}: {exc}") from exc
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    stores = _find_stores(Path(args.out))
    if not stores:
        print(f"no run stores under {args.out}")
        return 0
    print(format_rows([store.status() for store in stores]))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    out_dir = Path(args.out)
    if args.experiments:
        stores = []
        for name in _resolve_targets(args.experiments):
            matches = sorted(out_dir.glob(f"{name}-*/{MANIFEST_NAME}"))
            if not matches:
                print(f"error: no run store for {name!r} under {out_dir}", file=sys.stderr)
                return 1
            try:
                stores.extend(_open_store(m.parent) for m in matches)
            except RunStoreError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
    else:
        stores = _find_stores(out_dir)
        if not stores:
            print(f"no run stores under {args.out}")
            return 0
    combined: dict[str, list[dict]] = {}
    failures = 0
    for store in stores:
        spec = get_experiment(store.experiment)
        status = store.status()
        try:
            rows = store.rows()
        except ValueError as exc:
            print(f"warning: skipping {store.directory}: {exc}", file=sys.stderr)
            failures += 1
            continue
        combined[f"{store.experiment}-{store.scale}"] = rows
        print(f"\n=== {spec.title} [{status['state']}, scale={store.scale}] ===")
        print(format_rows(rows))
    if args.json_path:
        path = Path(args.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(combined, indent=2, default=float), encoding="utf-8")
        print(f"\n(rows written to {path})")
    # Explicitly requested stores that could not be read are an error; in
    # discovery mode unreadable stores are only warned about.
    return 1 if failures and args.experiments else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench.portfolio import run_sweep

    out = args.out or f"BENCH_{args.suite}.json"
    document = run_sweep(args.scale, out)
    print(f"wrote {out}: all_gates_passed={document['all_gates_passed']}")
    return 0 if document["all_gates_passed"] else 1


def _cmd_backend_info(args: argparse.Namespace) -> int:
    del args
    from .backend import backend_info

    print(json.dumps(backend_info(), indent=2, sort_keys=True, default=str))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "solve": _cmd_solve,
        "serve": _cmd_serve,
        "bench": _cmd_bench,
        "backend-info": _cmd_backend_info,
        "status": _cmd_status,
        "report": _cmd_report,
    }
    try:
        return handlers[args.command](args)
    except _CliError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted — completed tasks are recorded; re-run to resume", file=sys.stderr)
        return 130
