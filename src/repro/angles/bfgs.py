"""Local angle refinement with BFGS.

All angle-finding strategies in this package bottom out in local searches with
the Broyden–Fletcher–Goldfarb–Shanno algorithm (the paper's choice, via
``scipy.optimize.minimize``).  The gradient can come from three places,
matching the comparison of the paper's Figure 5:

* ``"adjoint"`` — the exact analytic gradient of
  :mod:`repro.core.gradients` (the autodiff-equivalent fast path),
* ``"finite"`` — central finite differences over full expectation evaluations,
* ``"numeric"`` — let scipy differentiate the objective internally (what a
  package without gradients at all would do).
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np
from scipy import optimize

from ..core.ansatz import QAOAAnsatz
from ..portfolio.budget import Budget
from .result import AngleResult

__all__ = ["local_minimize", "GradientMode"]

GradientMode = Literal["adjoint", "finite", "numeric"]


class _BudgetExhausted(Exception):
    """Internal signal unwinding scipy when the budget expires mid-search."""


def local_minimize(
    ansatz: QAOAAnsatz,
    x0: np.ndarray,
    *,
    gradient: GradientMode = "adjoint",
    maxiter: int = 200,
    gtol: float = 1e-6,
    fd_eps: float = 1e-6,
    budget: Budget | None = None,
    on_incumbent: Callable[[float, np.ndarray], None] | None = None,
) -> AngleResult:
    """Find the local optimum of ``<C>`` nearest to ``x0`` with BFGS.

    The ansatz's ``maximize`` flag is honoured: internally the loss ``-<C>``
    (or ``+<C>`` for minimization problems) is minimized and the returned
    :class:`~repro.angles.result.AngleResult` reports the value in the
    problem's natural sense.

    ``budget`` (optional) makes the search anytime: scipy is polled at every
    objective call and unwound once the budget is exhausted — after at least
    one evaluation, so a zero-slack budget still scores ``x0`` — and the best
    iterate seen so far is returned with ``timed_out=True``.  ``on_incumbent``
    (optional) is called as ``on_incumbent(value, angles)`` — value in the
    problem's natural sense — whenever the best-seen point improves.
    """
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    if x0.size != ansatz.num_angles:
        raise ValueError(f"expected {ansatz.num_angles} angles, got {x0.size}")

    evaluations = 0
    best_loss = np.inf
    best_x = x0.copy()

    def track(x, loss_value: float) -> None:
        nonlocal best_loss, best_x
        if loss_value < best_loss:
            best_loss = loss_value
            best_x = np.array(x, dtype=np.float64)
            if on_incumbent is not None:
                value = -loss_value if ansatz.maximize else loss_value
                on_incumbent(value, best_x.copy())

    def poll() -> None:
        # Never before the first evaluation: zero slack still scores the seed.
        if budget is not None and evaluations > 0 and budget.exhausted():
            raise _BudgetExhausted

    if gradient == "adjoint":

        def fun(x):
            nonlocal evaluations
            poll()
            evaluations += 1
            loss, grad = ansatz.loss_and_gradient(x)
            track(x, float(loss))
            return loss, grad

        jac = True
    elif gradient == "finite":

        def fun(x):
            nonlocal evaluations
            poll()
            evaluations += 1
            loss = ansatz.loss(x)
            track(x, float(loss))
            return loss

        def jac(x):
            nonlocal evaluations
            poll()
            sign = -1.0 if ansatz.maximize else 1.0
            evaluations += 2 * x.size
            return sign * ansatz.finite_difference_gradient(x, eps=fd_eps)

    elif gradient == "numeric":

        def fun(x):
            nonlocal evaluations
            poll()
            evaluations += 1
            loss = ansatz.loss(x)
            track(x, float(loss))
            return loss

        jac = None
    else:
        raise ValueError(f"unknown gradient mode {gradient!r}")

    timed_out = False
    converged = False
    iterations = 0
    try:
        res = optimize.minimize(
            fun, x0, jac=jac, method="BFGS", options={"maxiter": maxiter, "gtol": gtol}
        )
        converged = bool(res.success)
        iterations = int(res.nit)
        final_loss = float(res.fun)
        final_x = np.asarray(res.x, dtype=np.float64)
    except _BudgetExhausted:
        # Early stop: report the best evaluated iterate instead of raising.
        timed_out = True
        final_loss = float(best_loss)
        final_x = best_x

    value = -final_loss if ansatz.maximize else final_loss
    return AngleResult(
        angles=final_x,
        value=value,
        p=ansatz.p,
        evaluations=evaluations,
        strategy=f"bfgs-{gradient}",
        history=[{"converged": converged, "iterations": iterations}],
        timed_out=timed_out,
    )
