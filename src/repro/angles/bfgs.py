"""Local angle refinement with BFGS.

All angle-finding strategies in this package bottom out in local searches with
the Broyden–Fletcher–Goldfarb–Shanno algorithm (the paper's choice, via
``scipy.optimize.minimize``).  The gradient can come from three places,
matching the comparison of the paper's Figure 5:

* ``"adjoint"`` — the exact analytic gradient of
  :mod:`repro.core.gradients` (the autodiff-equivalent fast path),
* ``"finite"`` — central finite differences over full expectation evaluations,
* ``"numeric"`` — let scipy differentiate the objective internally (what a
  package without gradients at all would do).
"""

from __future__ import annotations

from typing import Literal

import numpy as np
from scipy import optimize

from ..core.ansatz import QAOAAnsatz
from .result import AngleResult

__all__ = ["local_minimize", "GradientMode"]

GradientMode = Literal["adjoint", "finite", "numeric"]


def local_minimize(
    ansatz: QAOAAnsatz,
    x0: np.ndarray,
    *,
    gradient: GradientMode = "adjoint",
    maxiter: int = 200,
    gtol: float = 1e-6,
    fd_eps: float = 1e-6,
) -> AngleResult:
    """Find the local optimum of ``<C>`` nearest to ``x0`` with BFGS.

    The ansatz's ``maximize`` flag is honoured: internally the loss ``-<C>``
    (or ``+<C>`` for minimization problems) is minimized and the returned
    :class:`~repro.angles.result.AngleResult` reports the value in the
    problem's natural sense.
    """
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    if x0.size != ansatz.num_angles:
        raise ValueError(f"expected {ansatz.num_angles} angles, got {x0.size}")

    evaluations = 0

    if gradient == "adjoint":

        def fun(x):
            nonlocal evaluations
            evaluations += 1
            return ansatz.loss_and_gradient(x)

        res = optimize.minimize(
            fun, x0, jac=True, method="BFGS", options={"maxiter": maxiter, "gtol": gtol}
        )
    elif gradient == "finite":

        def fun(x):
            nonlocal evaluations
            evaluations += 1
            return ansatz.loss(x)

        def jac(x):
            nonlocal evaluations
            sign = -1.0 if ansatz.maximize else 1.0
            evaluations += 2 * x.size
            return sign * ansatz.finite_difference_gradient(x, eps=fd_eps)

        res = optimize.minimize(
            fun, x0, jac=jac, method="BFGS", options={"maxiter": maxiter, "gtol": gtol}
        )
    elif gradient == "numeric":

        def fun(x):
            nonlocal evaluations
            evaluations += 1
            return ansatz.loss(x)

        res = optimize.minimize(fun, x0, method="BFGS", options={"maxiter": maxiter, "gtol": gtol})
    else:
        raise ValueError(f"unknown gradient mode {gradient!r}")

    value = -float(res.fun) if ansatz.maximize else float(res.fun)
    return AngleResult(
        angles=np.asarray(res.x, dtype=np.float64),
        value=value,
        p=ansatz.p,
        evaluations=evaluations,
        strategy=f"bfgs-{gradient}",
        history=[{"converged": bool(res.success), "iterations": int(res.nit)}],
    )
