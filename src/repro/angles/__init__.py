"""Classical angle-finding outer loop: BFGS, basinhopping, iterative extrapolation, baselines."""

from .basinhopping import basinhop, basinhop_scipy
from .bfgs import GradientMode, local_minimize
from .checkpoint import AngleCheckpoint
from .grid import grid_axis, grid_search
from .iterative import extrapolate_angles, find_angles, fourier_extrapolate
from .median import evaluate_median_angles, median_angle_study, median_angles
from .multistart import MultiStartResult, default_refine_batch, multistart_minimize
from .random_restart import find_angles_random
from .result import AngleResult

__all__ = [
    "basinhop",
    "basinhop_scipy",
    "GradientMode",
    "local_minimize",
    "AngleCheckpoint",
    "grid_axis",
    "grid_search",
    "extrapolate_angles",
    "find_angles",
    "fourier_extrapolate",
    "evaluate_median_angles",
    "median_angle_study",
    "median_angles",
    "MultiStartResult",
    "default_refine_batch",
    "multistart_minimize",
    "find_angles_random",
    "AngleResult",
]
