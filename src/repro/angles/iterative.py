"""Iterative (extrapolated) angle finding — the paper's default strategy.

``find_angles`` reproduces the scheme of Sec. 2.3 / Listing 3: find good
angles at ``p = 1``, then for every subsequent round seed the search with an
extrapolation of the previous round's angles and explore nearby local optima
with basinhopping.  Every intermediate round is written to a checkpoint file
so interrupted runs resume from the last completed round.

Two extrapolation rules are provided:

* ``"pad"`` — repeat the last beta/gamma for the new round (the simplest rule,
  and the one early JuliQAOA studies used),
* ``"interp"`` — linear interpolation of the (beta_i) and (gamma_i) sequences
  from ``p-1`` points onto ``p`` points (the INTERP heuristic of Zhou et al.),
  which preserves the annealing-like shape of converged schedules,
* ``"fourier"`` — re-expand the angle sequences from their discrete sine/cosine
  coefficients (the FOURIER heuristic of Zhou et al.): smooth schedules are
  described by a few low-frequency components, so extending the schedule in
  frequency space preserves its shape even better than linear interpolation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..core.ansatz import QAOAAnsatz
from ..core.precompute import PrecomputedCost
from ..mixers.base import Mixer
from ..portfolio.budget import Budget
from .basinhopping import basinhop
from .bfgs import GradientMode
from .checkpoint import AngleCheckpoint
from .result import AngleResult

__all__ = ["extrapolate_angles", "fourier_extrapolate", "find_angles"]


def fourier_extrapolate(sequence: np.ndarray, new_length: int) -> np.ndarray:
    """Extend a smooth angle sequence via its discrete sine-series coefficients.

    The length-``q`` sequence is written as ``x_i = sum_k c_k sin((k + 1/2)
    (i + 1/2) pi / q)`` (Zhou et al.'s FOURIER parameterization); the same
    coefficients evaluated on a finer grid of ``new_length`` points give the
    extended sequence.  For ``new_length == len(sequence)`` this is exact
    round-tripping.
    """
    sequence = np.asarray(sequence, dtype=np.float64).ravel()
    q = sequence.size
    if q == 0:
        raise ValueError("cannot extrapolate an empty sequence")
    if new_length < q:
        raise ValueError("fourier extrapolation cannot shrink a sequence")
    if q == 1:
        return np.full(new_length, sequence[0])
    i = np.arange(q)
    k = np.arange(q)
    basis = np.sin(np.outer(i + 0.5, k + 0.5) * np.pi / q)  # (i, k)
    coeffs = np.linalg.solve(basis, sequence)
    i_new = np.arange(new_length)
    new_basis = np.sin(np.outer(i_new + 0.5, k + 0.5) * np.pi / new_length)
    return new_basis @ coeffs


def extrapolate_angles(
    angles: np.ndarray, p_from: int, p_to: int, method: str = "interp"
) -> np.ndarray:
    """Extend a ``p_from``-round angle vector to ``p_to`` rounds.

    The input and output use the flat (betas, gammas) layout with one beta per
    round.  ``p_to`` must be at least ``p_from``.
    """
    angles = np.asarray(angles, dtype=np.float64).ravel()
    if angles.size != 2 * p_from:
        raise ValueError(f"expected {2 * p_from} angles for p={p_from}, got {angles.size}")
    if p_to < p_from:
        raise ValueError("cannot extrapolate to fewer rounds")
    if p_to == p_from:
        return angles.copy()

    betas, gammas = angles[:p_from], angles[p_from:]
    if method == "pad":
        new_betas = np.concatenate([betas, np.full(p_to - p_from, betas[-1])])
        new_gammas = np.concatenate([gammas, np.full(p_to - p_from, gammas[-1])])
    elif method == "fourier":
        new_betas = fourier_extrapolate(betas, p_to)
        new_gammas = fourier_extrapolate(gammas, p_to)
    elif method == "interp":
        if p_from == 1:
            new_betas = np.full(p_to, betas[0])
            new_gammas = np.full(p_to, gammas[0])
        else:
            old_grid = np.linspace(0.0, 1.0, p_from)
            new_grid = np.linspace(0.0, 1.0, p_to)
            new_betas = np.interp(new_grid, old_grid, betas)
            new_gammas = np.interp(new_grid, old_grid, gammas)
    else:
        raise ValueError(f"unknown extrapolation method {method!r}")
    return np.concatenate([new_betas, new_gammas])


def _initial_round(
    ansatz: QAOAAnsatz,
    *,
    n_starts: int,
    n_hops: int,
    gradient: GradientMode,
    rng: np.random.Generator,
    maxiter: int,
    budget: Budget | None = None,
) -> AngleResult:
    """Angle search at ``p = 1``: basinhopping from a handful of random starts."""
    best: AngleResult | None = None
    evaluations = 0
    timed_out = False
    for _ in range(max(1, n_starts)):
        if best is not None and budget is not None and budget.exhausted():
            timed_out = True
            break
        x0 = 2.0 * np.pi * rng.random(ansatz.num_angles)
        result = basinhop(
            ansatz, x0, n_hops=n_hops, gradient=gradient, rng=rng, maxiter=maxiter, budget=budget
        )
        evaluations += result.evaluations
        timed_out = timed_out or result.timed_out
        if best is None:
            best = result
        else:
            better = result.value > best.value if ansatz.maximize else result.value < best.value
            if better:
                best = result
    assert best is not None
    return AngleResult(
        angles=best.angles,
        value=best.value,
        p=ansatz.p,
        evaluations=evaluations,
        strategy="iterative-p1",
        timed_out=timed_out,
    )


def find_angles(
    p: int,
    mixer: Mixer | Sequence[Mixer],
    obj_vals: np.ndarray | PrecomputedCost,
    *,
    file: str | Path | None = None,
    initial_angles: np.ndarray | None = None,
    initial_state: np.ndarray | None = None,
    maximize: bool = True,
    extrapolation: str = "interp",
    gradient: GradientMode = "adjoint",
    n_hops: int = 8,
    n_starts_p1: int = 3,
    maxiter: int = 200,
    rng: np.random.Generator | int | None = None,
    budget: Budget | None = None,
    on_incumbent: Callable[[float, np.ndarray], None] | None = None,
) -> dict[int, AngleResult]:
    """Find good angles for rounds ``1 .. p`` iteratively (the paper's ``find_angles``).

    Parameters
    ----------
    p:
        Target number of rounds.
    mixer, obj_vals:
        The pre-computed mixer and objective values defining the QAOA.
    file:
        Optional checkpoint path.  If the file exists, previously completed
        rounds are loaded and the search resumes after the last one.
    initial_angles:
        If given, skip the iterative build-up and run a single basinhopping
        search at round ``p`` starting from these angles (matching the
        ``initial_angles`` escape hatch of Listing 3).
    maximize:
        Optimization sense of the objective values.
    extrapolation:
        ``"interp"`` or ``"pad"`` — how round ``p-1`` angles seed round ``p``.
    gradient:
        Gradient mode used by the BFGS local searches.
    n_hops, n_starts_p1, maxiter:
        Basinhopping / BFGS effort knobs.
    budget, on_incumbent:
        Optional anytime plumbing.  The budget is threaded into every local
        search and polled between rounds; when it runs out before round ``p``
        completes, the last finished round's angles are extrapolated to ``p``
        rounds, scored once, and returned as a ``timed_out`` round-``p``
        result — so the caller always gets full-length angles.
        ``on_incumbent(value, angles)`` fires at each round boundary with the
        round's angles *extrapolated to ``p`` rounds* and their full-``p``
        value, keeping published incumbents comparable across strategies.

    Returns
    -------
    dict
        Mapping from round number to the best :class:`AngleResult` found.
    """
    if p < 1:
        raise ValueError("p must be at least 1")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    if isinstance(mixer, Mixer):
        make_ansatz = lambda rounds: QAOAAnsatz(  # noqa: E731
            obj_vals, mixer, rounds, initial_state=initial_state, maximize=maximize
        )
    else:
        mixer_list = list(mixer)
        if len(mixer_list) < p:
            raise ValueError(f"need at least {p} mixers for a {p}-round schedule")
        make_ansatz = lambda rounds: QAOAAnsatz(  # noqa: E731
            obj_vals,
            mixer_list[:rounds],
            rounds,
            initial_state=initial_state,
            maximize=maximize,
        )

    checkpoint = AngleCheckpoint(file)
    results: dict[int, AngleResult] = {  # type: ignore[misc]
        r: checkpoint.get(r) for r in checkpoint.rounds()
    }

    # Escape hatch: direct search at round p from user-provided angles.
    if initial_angles is not None:
        ansatz = make_ansatz(p)
        hop = basinhop(
            ansatz,
            np.asarray(initial_angles, dtype=np.float64),
            n_hops=n_hops,
            gradient=gradient,
            rng=rng,
            maxiter=maxiter,
            budget=budget,
            on_incumbent=on_incumbent,
        )
        result = AngleResult(
            angles=hop.angles,
            value=hop.value,
            p=p,
            evaluations=hop.evaluations,
            strategy="iterative-seeded",
            timed_out=hop.timed_out,
        )
        results[p] = result
        checkpoint.store(result)
        return results

    start_round = 1
    if results:
        start_round = max(results) + 1

    def publish_round(result: AngleResult, rounds: int) -> None:
        """Report a round boundary as a full-``p`` incumbent."""
        if on_incumbent is None:
            return
        if rounds == p:
            on_incumbent(result.value, np.array(result.angles, dtype=np.float64))
            return
        full = extrapolate_angles(result.angles, rounds, p, method=extrapolation)
        on_incumbent(float(make_ansatz(p).expectation(full)), full)

    timed_out = False
    for rounds in range(start_round, p + 1):
        if results and budget is not None and budget.exhausted():
            timed_out = True
            break
        ansatz = make_ansatz(rounds)
        if rounds == 1:
            result = _initial_round(
                ansatz,
                n_starts=n_starts_p1,
                n_hops=n_hops,
                gradient=gradient,
                rng=rng,
                maxiter=maxiter,
                budget=budget,
            )
        else:
            seed = extrapolate_angles(
                results[rounds - 1].angles, rounds - 1, rounds, method=extrapolation
            )
            hop = basinhop(
                ansatz, seed, n_hops=n_hops, gradient=gradient, rng=rng, maxiter=maxiter,
                budget=budget,
            )
            result = AngleResult(
                angles=hop.angles,
                value=hop.value,
                p=rounds,
                evaluations=hop.evaluations,
                strategy="iterative-extrapolated",
                timed_out=hop.timed_out,
            )
            # The extrapolated seed should never make things worse than the
            # previous round; if basinhopping wandered off, fall back to the
            # seed itself evaluated at round `rounds`.
            seed_value = ansatz.expectation(seed)
            seed_better = seed_value > result.value if maximize else seed_value < result.value
            if seed_better:
                result = AngleResult(
                    angles=seed, value=seed_value, p=rounds,
                    evaluations=result.evaluations + 1, strategy="iterative-seed-kept",
                    timed_out=result.timed_out,
                )
        results[rounds] = result
        checkpoint.store(result)
        publish_round(result, rounds)
        timed_out = timed_out or result.timed_out

    if timed_out and p not in results:
        # Ran out of time mid-build-up: extend the last completed round's
        # angles to the target depth and score them once, so the caller still
        # receives a valid (best-effort) round-``p`` result.
        last = max(results)
        full = extrapolate_angles(results[last].angles, last, p, method=extrapolation)
        full_ansatz = make_ansatz(p)
        results[p] = AngleResult(
            angles=full,
            value=float(full_ansatz.expectation(full)),
            p=p,
            evaluations=results[last].evaluations + 1,
            strategy="iterative-truncated",
            timed_out=True,
        )
        publish_round(results[p], p)
    elif timed_out and p in results:
        results[p].timed_out = True

    return results
