"""Median-angles strategy.

The second comparison strategy of the paper's Figure 3 (from Lotshaw et al.
2021): run the random-restart search on a *collection* of problem instances,
take the element-wise median of the best angles across instances, and use
those fixed median angles for every instance (optionally with one final local
polish per instance).  The strategy exploits the well-known concentration of
good QAOA angles across random instances of the same problem family.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.ansatz import QAOAAnsatz
from .bfgs import GradientMode, local_minimize
from .random_restart import find_angles_random
from .result import AngleResult

__all__ = ["median_angles", "evaluate_median_angles", "median_angle_study"]


def median_angles(results: Sequence[AngleResult]) -> np.ndarray:
    """Element-wise median of the best angles of several instances."""
    if not results:
        raise ValueError("at least one angle result is required")
    sizes = {r.angles.size for r in results}
    if len(sizes) != 1:
        raise ValueError("all angle results must have the same number of angles")
    stacked = np.stack([r.angles for r in results], axis=0)
    return np.median(stacked, axis=0)


def evaluate_median_angles(
    ansatz: QAOAAnsatz,
    angles: np.ndarray,
    *,
    polish: bool = False,
    gradient: GradientMode = "adjoint",
) -> AngleResult:
    """Evaluate fixed median angles on one instance (optionally with a BFGS polish)."""
    angles = np.asarray(angles, dtype=np.float64).ravel()
    if polish:
        result = local_minimize(ansatz, angles, gradient=gradient)
        return AngleResult(
            angles=result.angles,
            value=result.value,
            p=ansatz.p,
            evaluations=result.evaluations,
            strategy="median-polished",
        )
    value = ansatz.expectation(angles)
    return AngleResult(angles=angles, value=value, p=ansatz.p, evaluations=1, strategy="median")


def median_angle_study(
    ansatze: Sequence[QAOAAnsatz],
    *,
    iters_per_instance: int = 20,
    gradient: GradientMode = "adjoint",
    rng: np.random.Generator | int | None = None,
    polish: bool = False,
) -> tuple[np.ndarray, list[AngleResult]]:
    """Full median-angles pipeline over a family of instances.

    Runs the random-restart search on every instance, computes the median of
    the per-instance best angles, then re-evaluates those median angles on
    every instance.  Returns ``(median_angles, per-instance results)``.
    """
    if not ansatze:
        raise ValueError("at least one instance is required")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    per_instance_best = [
        find_angles_random(a, iters=iters_per_instance, gradient=gradient, rng=rng)
        for a in ansatze
    ]
    medians = median_angles(per_instance_best)
    evaluated = [
        evaluate_median_angles(a, medians, polish=polish, gradient=gradient) for a in ansatze
    ]
    return medians, evaluated
