"""File-backed angle checkpoints.

The paper's ``find_angles`` stores the angles found at every intermediate
round in a user-supplied file so that an interrupted run (the paper mentions
server crashes) resumes from the last completed round instead of starting
over.  The checkpoint is a human-readable JSON document mapping round number
to the serialized :class:`~repro.angles.result.AngleResult`; writes are
atomic (write to a temp file, then rename).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..io.results import write_json_atomic
from .result import AngleResult

__all__ = ["AngleCheckpoint"]

_FORMAT_VERSION = 1


class AngleCheckpoint:
    """A JSON file holding the best angles found for each round ``p``."""

    def __init__(self, path: str | Path | None):
        self.path = Path(path) if path is not None else None
        self._results: dict[int, AngleResult] = {}
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        assert self.path is not None
        with open(self.path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        version = int(data.get("format_version", 0))
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint format version {version}")
        for key, entry in data.get("rounds", {}).items():
            self._results[int(key)] = AngleResult.from_dict(entry)

    def _save(self) -> None:
        if self.path is None:
            return
        payload = {
            "format_version": _FORMAT_VERSION,
            "rounds": {str(p): result.to_dict() for p, result in sorted(self._results.items())},
        }
        # Atomic replace so a crash mid-write never corrupts the checkpoint.
        write_json_atomic(self.path, payload)

    # ------------------------------------------------------------------
    def store(self, result: AngleResult) -> None:
        """Record (and persist) the result for its round."""
        self._results[int(result.p)] = result
        self._save()

    def get(self, p: int) -> AngleResult | None:
        """The stored result for round ``p``, if any."""
        return self._results.get(int(p))

    def last_round(self) -> int:
        """Largest round with a stored result (0 if empty)."""
        return max(self._results, default=0)

    def rounds(self) -> list[int]:
        """Sorted list of rounds with stored results."""
        return sorted(self._results)

    def __contains__(self, p: int) -> bool:
        return int(p) in self._results

    def __len__(self) -> int:
        return len(self._results)
