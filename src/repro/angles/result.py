"""Common result container for angle-finding strategies."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AngleResult"]


@dataclass
class AngleResult:
    """Outcome of one angle-finding run.

    Attributes
    ----------
    angles:
        The best angle vector found (flat layout: betas then gammas).
    value:
        The expectation value ``<C>`` at those angles (in the problem's natural
        sense, i.e. larger is better for maximization problems).
    p:
        Number of QAOA rounds the angles describe.
    evaluations:
        Number of expectation-value evaluations spent.
    strategy:
        Name of the strategy that produced the result.
    history:
        Optional per-step records (restart values, accepted hops, ...).
    timed_out:
        Whether the run was stopped early by an exhausted
        :class:`~repro.portfolio.budget.Budget` (deadline or cancellation),
        in which case ``angles``/``value`` are the best found so far.
    """

    angles: np.ndarray
    value: float
    p: int
    evaluations: int = 0
    strategy: str = ""
    history: list = field(default_factory=list)
    timed_out: bool = False

    def __post_init__(self) -> None:
        self.angles = np.asarray(self.angles, dtype=np.float64).ravel()
        self.value = float(self.value)

    def betas(self, num_betas: int | None = None) -> np.ndarray:
        """The beta (mixer-angle) block of the angle vector."""
        if num_betas is None:
            num_betas = self.angles.size - self.p
        return self.angles[:num_betas]

    def gammas(self) -> np.ndarray:
        """The gamma (phase-separator) block of the angle vector."""
        return self.angles[self.angles.size - self.p :]

    def to_dict(self) -> dict:
        """JSON-serializable representation (used by checkpoints)."""
        return {
            "angles": self.angles.tolist(),
            "value": self.value,
            "p": int(self.p),
            "evaluations": int(self.evaluations),
            "strategy": self.strategy,
            "timed_out": bool(self.timed_out),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AngleResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            angles=np.asarray(data["angles"], dtype=np.float64),
            value=float(data["value"]),
            p=int(data["p"]),
            evaluations=int(data.get("evaluations", 0)),
            strategy=str(data.get("strategy", "")),
            timed_out=bool(data.get("timed_out", False)),
        )
