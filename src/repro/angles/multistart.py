"""Vectorized multi-start local refinement on the batched adjoint kernel.

The dominant cost of the Lotshaw-style random-restart baseline (Fig. 3) and
of every ``repro run`` sweep that refines seeds is M independent BFGS local
searches, each hammering the scalar value-and-gradient call.  This module
advances all M restarts *in lock-step* instead: every iteration evaluates the
batched adjoint kernel (:meth:`~repro.core.ansatz.QAOAAnsatz.loss_and_gradient_batch`)
once for the whole active batch, applies per-column quasi-Newton steps, and
freezes converged columns — compacting them out of the batch so late stragglers
never pay for finished restarts.

The step rule is classical BFGS with a backtracking Armijo line search, kept
entirely per-column: each restart owns its inverse-Hessian approximation,
step length and convergence state, so the trajectories are independent — only
the expensive value-and-gradient evaluations are shared.  Columns whose line
search stalls are frozen at their current iterate (the batched analogue of
scipy's "precision loss" stop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.ansatz import QAOAAnsatz
from ..portfolio.budget import Budget

__all__ = ["MultiStartResult", "multistart_minimize", "default_refine_batch"]

_ARMIJO_C1 = 1e-4
_WOLFE_C2 = 0.9
_MAX_LINESEARCH_EVALS = 30
_MAX_EXPANSIONS = 6
_CURVATURE_FLOOR = 1e-12
#: Freeze a column after this many consecutive iterations whose accepted step
#: improved the loss by less than fp round-off (scipy's "precision loss" stop:
#: the iterate is as converged as the arithmetic allows even if the gradient
#: tolerance was never met, and further line searches just burn evaluations).
_MAX_NO_PROGRESS = 3
_PROGRESS_RTOL = 1e-13


def default_refine_batch(dim: int, p: int, *, budget_elems: int = 1 << 21) -> int:
    """Largest refinement batch whose layer store stays under ``budget_elems``.

    The batched adjoint pass stores ``p * 2 * dim * M`` complex128 forward
    intermediates, so the default chunk bounds that at ``budget_elems``
    (32 MiB at the default budget) and never exceeds 256 columns — the same
    philosophy as :func:`~repro.angles.grid.grid_search`'s chunking.
    """
    return max(1, min(256, budget_elems // max(1, 2 * dim * p)))


@dataclass
class MultiStartResult:
    """Outcome of one vectorized multi-start refinement.

    All arrays are indexed by the seed row: ``angles[j]`` is the refined
    angle vector of seed ``j``, ``values[j]`` the expectation value there (in
    the problem's natural sense), ``converged[j]`` whether the gradient
    tolerance was met, ``iterations[j]`` the quasi-Newton iterations spent and
    ``column_evaluations[j]`` how many batched value-and-gradient evaluations
    involved that column.  ``evaluations`` is the column total.  ``timed_out``
    reports whether an exhausted :class:`~repro.portfolio.budget.Budget`
    froze columns early (their values are the best iterates reached).
    """

    angles: np.ndarray
    values: np.ndarray
    converged: np.ndarray
    iterations: np.ndarray
    column_evaluations: np.ndarray
    timed_out: bool = False

    @property
    def evaluations(self) -> int:
        """Total value-and-gradient evaluations across all columns."""
        return int(self.column_evaluations.sum())


def multistart_minimize(
    ansatz: QAOAAnsatz,
    seeds: np.ndarray,
    *,
    maxiter: int = 200,
    gtol: float = 1e-6,
    batch_size: int | None = None,
    budget: Budget | None = None,
    checkpoint: Callable[[float, np.ndarray], None] | None = None,
) -> MultiStartResult:
    """Refine M seed angle vectors to their nearest local optima in lock-step.

    ``seeds`` is an ``(M, num_angles)`` matrix (one flat angle vector per
    row).  Seeds are processed in chunks of ``batch_size`` columns (default:
    :func:`default_refine_batch`, bounding the adjoint layer store to ~32 MiB)
    and each chunk runs the vectorized BFGS loop to completion.  The
    ``maxiter`` / ``gtol`` knobs match :func:`~repro.angles.bfgs.local_minimize`.

    ``budget`` (optional) is polled once per lock-step iteration: when it is
    exhausted, the still-active columns freeze at their current iterates and
    the result reports ``timed_out=True``.  Every chunk evaluates its seeds
    before the first poll, so even a zero-slack budget returns seed-scored
    values.  ``checkpoint`` (optional) is called as ``checkpoint(value,
    angles)`` — value in the problem's natural sense — every time the best
    iterate across the whole call improves; accepted BFGS steps only ever
    decrease the loss, so the reported sequence is monotone.

    Results are equivalent to running scipy BFGS per seed (same local optima
    up to line-search details) at the batched engine's per-evaluation cost.
    """
    seeds = np.asarray(seeds, dtype=np.float64)
    if seeds.ndim == 1:
        seeds = seeds[None, :]
    if seeds.ndim != 2 or seeds.shape[1] != ansatz.num_angles:
        raise ValueError(
            f"seeds have shape {seeds.shape}, expected (M, {ansatz.num_angles})"
        )
    if maxiter < 1:
        raise ValueError("maxiter must be positive")
    total = seeds.shape[0]
    if batch_size is None:
        batch_size = default_refine_batch(ansatz.schedule.dim, ansatz.p)
    if batch_size < 1:
        raise ValueError("batch_size must be positive")

    angles = np.empty_like(seeds)
    losses = np.empty(total, dtype=np.float64)
    converged = np.zeros(total, dtype=bool)
    iterations = np.zeros(total, dtype=np.int64)
    column_evaluations = np.zeros(total, dtype=np.int64)

    progress = None
    if checkpoint is not None:
        best_loss = [np.inf]  # cross-chunk incumbent, in loss (minimization) sense

        def progress(chunk_loss: np.ndarray, chunk_x: np.ndarray) -> None:
            j = int(np.argmin(chunk_loss))
            cur = float(chunk_loss[j])
            if cur < best_loss[0]:
                best_loss[0] = cur
                value = -cur if ansatz.maximize else cur
                checkpoint(value, np.array(chunk_x[j], dtype=np.float64))

    timed_out = False
    for start in range(0, total, batch_size):
        stop = min(start + batch_size, total)
        # After exhaustion, later chunks still evaluate their seeds (one
        # batched call each) so every output row is a scored iterate.
        timed_out |= _minimize_chunk(
            ansatz,
            seeds[start:stop],
            maxiter,
            gtol,
            angles[start:stop],
            losses[start:stop],
            converged[start:stop],
            iterations[start:stop],
            column_evaluations[start:stop],
            budget=budget,
            progress=progress,
        )

    values = -losses if ansatz.maximize else losses
    return MultiStartResult(
        angles=angles,
        values=values,
        converged=converged,
        iterations=iterations,
        column_evaluations=column_evaluations,
        timed_out=timed_out,
    )


def _identity_stack(m: int, na: int) -> np.ndarray:
    out = np.zeros((m, na, na), dtype=np.float64)
    out[:, np.arange(na), np.arange(na)] = 1.0
    return out


def _minimize_chunk(
    ansatz: QAOAAnsatz,
    seeds: np.ndarray,
    maxiter: int,
    gtol: float,
    out_x: np.ndarray,
    out_loss: np.ndarray,
    out_conv: np.ndarray,
    out_iter: np.ndarray,
    out_evals: np.ndarray,
    budget: Budget | None = None,
    progress: Callable[[np.ndarray, np.ndarray], None] | None = None,
) -> bool:
    """Run the lock-step BFGS loop for one chunk, writing results in place.

    Returns whether the ``budget`` expired mid-chunk (the seeds are always
    evaluated before the first poll, so results stay valid either way).
    """
    m, na = seeds.shape
    # Small (active, na)-shaped reductions run on the ansatz's array backend
    # alongside the batched kernels it dispatches.
    ein = ansatz.backend.einsum
    x = seeds.copy()
    loss, grad = ansatz.loss_and_gradient_batch(x)
    loss = loss.copy()
    grad = grad.copy()
    out_evals += 1

    # Results default to the (evaluated) seeds; frozen columns overwrite them.
    out_x[:] = x
    out_loss[:] = loss
    out_conv[:] = False
    out_iter[:] = 0
    if progress is not None:
        progress(loss, x)

    hess_inv = _identity_stack(m, na)
    cols = np.arange(m)  # original chunk column of each active slot
    fresh = np.ones(m, dtype=bool)  # pending first-update Hessian scaling
    no_progress = np.zeros(m, dtype=np.int64)  # consecutive round-off-only steps
    # Previous-iterate loss, seeded the way scipy does (old_fval + |grad|/2) so
    # the first trial step matches scipy BFGS's ~1/|grad| scaling instead of
    # jumping a full raw-gradient length into a different basin.
    prev_loss = loss + np.linalg.norm(grad, axis=1) / 2.0

    def freeze(finished: np.ndarray, conv_flags: np.ndarray) -> None:
        """Record finished slots and compact them out of the active arrays."""
        nonlocal x, loss, grad, hess_inv, cols, fresh, prev_loss, no_progress
        idx = cols[finished]
        out_x[idx] = x[finished]
        out_loss[idx] = loss[finished]
        out_conv[idx] = conv_flags[finished]
        keep = ~finished
        x, loss, grad = x[keep], loss[keep], grad[keep]
        hess_inv, cols, fresh = hess_inv[keep], cols[keep], fresh[keep]
        prev_loss = prev_loss[keep]
        no_progress = no_progress[keep]

    already = np.abs(grad).max(axis=1) <= gtol
    if already.any():
        freeze(already, already)

    for _ in range(maxiter):
        if x.shape[0] == 0:
            return False
        if budget is not None and budget.exhausted():
            # Deadline/cancellation: freeze the survivors at their current
            # (already evaluated) iterates and report the early stop.
            freeze(np.ones(x.shape[0], dtype=bool), np.zeros(x.shape[0], dtype=bool))
            return True
        active = x.shape[0]
        out_iter[cols] += 1

        direction = -ein("mij,mj->mi", hess_inv, grad)
        slope = ein("mi,mi->m", direction, grad)
        ascent = slope >= 0.0
        if ascent.any():
            # Curvature information went bad; restart those columns steepest-descent.
            hess_inv[ascent] = np.eye(na)
            fresh[ascent] = True
            direction[ascent] = -grad[ascent]
            slope[ascent] = -ein("mi,mi->m", grad[ascent], grad[ascent])

        # Per-column weak-Wolfe line search, lock-step: every round evaluates
        # the batched kernel once on the compacted sub-batch of still-searching
        # columns.  A trial failing the Armijo decrease backtracks (halves
        # alpha); an Armijo point whose slope is still steeper than the Wolfe
        # curvature bound is kept as a fallback candidate and the step is
        # doubled (bounded), which is how scipy escapes shallow basins and
        # keeps the BFGS curvature ``s.y`` positive.  The initial trial step
        # extrapolates the previous iteration's decrease along the new slope
        # (scipy's heuristic, capped at 1).
        with np.errstate(divide="ignore", invalid="ignore"):
            alpha = 1.01 * 2.0 * (loss - prev_loss) / slope
        alpha = np.where(np.isfinite(alpha) & (alpha > 0.0), np.minimum(alpha, 1.0), 1.0)
        x_new, loss_new, grad_new = x.copy(), loss.copy(), grad.copy()
        pending = np.arange(active)
        have_cand = np.zeros(active, dtype=bool)
        cand_x = np.empty_like(x)
        cand_f = np.empty(active)
        cand_g = np.empty_like(grad)
        expansions = np.zeros(active, dtype=np.int64)
        for _ls in range(_MAX_LINESEARCH_EVALS):
            trial = x[pending] + alpha[pending, None] * direction[pending]
            f_t, g_t = ansatz.loss_and_gradient_batch(trial)
            out_evals[cols[pending]] += 1
            armijo = np.isfinite(f_t) & (
                f_t <= loss[pending] + _ARMIJO_C1 * alpha[pending] * slope[pending]
            )
            dphi = ein("mi,mi->m", g_t, direction[pending])
            curv_ok = dphi >= _WOLFE_C2 * slope[pending]
            can_expand = expansions[pending] < _MAX_EXPANSIONS

            take = armijo & (curv_ok | ~can_expand)
            expand = armijo & ~curv_ok & can_expand
            # Armijo failed after a good point was bracketed: we overshot, so
            # fall back to that candidate instead of zooming.
            fall_back = ~armijo & have_cand[pending]

            t_sel = np.flatnonzero(take)
            if t_sel.size:
                idx_t = pending[t_sel]
                use_cand = have_cand[idx_t] & (cand_f[idx_t] <= f_t[t_sel])
                direct = idx_t[~use_cand]
                d_sel = t_sel[~use_cand]
                x_new[direct] = trial[d_sel]
                loss_new[direct] = f_t[d_sel]
                grad_new[direct] = g_t[d_sel]
                from_cand = idx_t[use_cand]
                x_new[from_cand] = cand_x[from_cand]
                loss_new[from_cand] = cand_f[from_cand]
                grad_new[from_cand] = cand_g[from_cand]
            f_sel = np.flatnonzero(fall_back)
            if f_sel.size:
                idx_f = pending[f_sel]
                x_new[idx_f] = cand_x[idx_f]
                loss_new[idx_f] = cand_f[idx_f]
                grad_new[idx_f] = cand_g[idx_f]
            e_sel = np.flatnonzero(expand)
            if e_sel.size:
                idx_e = pending[e_sel]
                better = ~have_cand[idx_e] | (f_t[e_sel] < cand_f[idx_e])
                upd = idx_e[better]
                cand_x[upd] = trial[e_sel[better]]
                cand_f[upd] = f_t[e_sel[better]]
                cand_g[upd] = g_t[e_sel[better]]
                have_cand[idx_e] = True
                alpha[idx_e] *= 2.0
                expansions[idx_e] += 1
            shrink = ~(take | expand | fall_back)
            alpha[pending[shrink]] *= 0.5
            pending = pending[expand | shrink]
            if pending.size == 0:
                break
        stalled = np.zeros(active, dtype=bool)
        if pending.size:
            # Evaluation budget exhausted: settle for any bracketed candidate,
            # freeze the rest at their current iterate.
            leftover_cand = have_cand[pending]
            idx_c = pending[leftover_cand]
            x_new[idx_c] = cand_x[idx_c]
            loss_new[idx_c] = cand_f[idx_c]
            grad_new[idx_c] = cand_g[idx_c]
            stalled[pending[~leftover_cand]] = True

        # BFGS inverse-Hessian update for the columns that moved.
        step = x_new - x
        gdiff = grad_new - grad
        curvature = ein("mi,mi->m", step, gdiff)
        upd = np.flatnonzero(~stalled & (curvature > _CURVATURE_FLOOR))
        if upd.size:
            scale_idx = upd[fresh[upd]]
            if scale_idx.size:
                # First productive step: scale H0 toward the local curvature
                # (Nocedal & Wright eq. 6.20) before the rank-two update.
                ydoty = ein("mi,mi->m", gdiff[scale_idx], gdiff[scale_idx])
                hess_inv[scale_idx] *= (curvature[scale_idx] / ydoty)[:, None, None]
                fresh[scale_idx] = False
            s_u, y_u = step[upd], gdiff[upd]
            rho = 1.0 / curvature[upd]
            hy = ein("mij,mj->mi", hess_inv[upd], y_u)
            yhy = ein("mi,mi->m", y_u, hy)
            cross = s_u[:, :, None] * hy[:, None, :]
            updated = hess_inv[upd] - rho[:, None, None] * (
                cross + cross.transpose(0, 2, 1)
            )
            updated += (rho * rho * yhy + rho)[:, None, None] * (
                s_u[:, :, None] * s_u[:, None, :]
            )
            hess_inv[upd] = updated

        # Track columns whose accepted step no longer moves the loss beyond
        # round-off; a few such iterations in a row mean the column is done
        # to machine precision even though the gradient tolerance never hit.
        tiny = ~stalled & (loss - loss_new <= _PROGRESS_RTOL * (1.0 + np.abs(loss_new)))
        no_progress = np.where(tiny, no_progress + 1, 0)

        prev_loss = loss
        x, loss, grad = x_new, loss_new, grad_new
        if progress is not None:
            progress(loss, x)
        small_grad = np.abs(grad).max(axis=1) <= gtol
        finished = stalled | small_grad | (no_progress >= _MAX_NO_PROGRESS)
        if finished.any():
            freeze(finished, small_grad)

    # maxiter exhausted: record the remaining columns as unconverged.
    if x.shape[0]:
        remaining = np.ones(x.shape[0], dtype=bool)
        freeze(remaining, np.zeros(x.shape[0], dtype=bool))
    return False
