"""Random local-minima exploration (the Lotshaw et al. baseline).

The comparison strategy of the paper's Figure 3: draw a random starting point
uniformly in ``[0, 2 pi)^{2p}``, run BFGS to the nearest local optimum, repeat
``iters`` times (100 in the reference study) and keep the best result.  This
is also what the paper's Listing 3 implements as ``find_angles_rand`` to show
how user-defined strategies plug in.

Two batched fast paths keep the sweep on BLAS-3 kernels:

* with the default ``gradient="adjoint"`` every refinement runs through the
  vectorized multi-start engine (:mod:`repro.angles.multistart`), advancing
  all restarts in lock-step on the batched value-and-gradient kernel instead
  of looping scipy BFGS per seed (pass ``vectorized=False`` to opt out);
* when ``refine_top`` prunes the restart pool, the seeds are batch-scored
  first — in bounded chunks, like ``grid_search`` — and only the most
  promising ones are refined.  With the default ``refine_top=None`` every
  seed is refined anyway, so the scoring pass is skipped entirely.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.ansatz import QAOAAnsatz
from ..core.workspace import default_eval_batch
from ..portfolio.budget import Budget
from .bfgs import GradientMode, local_minimize
from .multistart import multistart_minimize
from .result import AngleResult

__all__ = [
    "find_angles_random",
    "random_restart_seeds",
    "restart_results_from_report",
    "select_best_restart",
    "summarize_restarts",
]


def random_restart_seeds(
    ansatz: QAOAAnsatz, iters: int, rng: np.random.Generator | int | None
) -> np.ndarray:
    """The ``(iters, num_angles)`` seed matrix one random-restart run draws.

    Extracted so batching layers (the solver service's request coalescer) can
    generate each request's seeds exactly as :func:`find_angles_random` would
    and refine many requests' seeds as the columns of one multi-start batch.
    """
    if iters < 1:
        raise ValueError("at least one restart is required")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    return 2.0 * np.pi * rng.random((iters, ansatz.num_angles))


def restart_results_from_report(
    ansatz: QAOAAnsatz, report, *, start: int = 0, count: int | None = None
) -> list[AngleResult]:
    """Per-restart :class:`AngleResult`\\ s for a slice of a multi-start report.

    ``report`` is a :class:`~repro.angles.multistart.MultiStartResult`; columns
    ``start .. start+count`` are converted exactly the way
    :func:`find_angles_random`'s vectorized path labels its refined restarts.
    """
    if count is None:
        count = report.values.shape[0] - start
    results = []
    for pos in range(start, start + count):
        results.append(
            AngleResult(
                angles=report.angles[pos],
                value=float(report.values[pos]),
                p=ansatz.p,
                evaluations=int(report.column_evaluations[pos]),
                strategy="bfgs-adjoint-batched",
                history=[
                    {
                        "converged": bool(report.converged[pos]),
                        "iterations": int(report.iterations[pos]),
                    }
                ],
            )
        )
    return results


def select_best_restart(ansatz: QAOAAnsatz, results: list[AngleResult]) -> AngleResult:
    """First-best-wins selection with the fp-noise tie guard.

    Symmetry-equivalent optima agree only to round-off, and which copy
    computes a few ulps higher depends on the refinement backend — near-ties
    resolve to the earliest restart so the winner (and anything downstream,
    like median-angle studies) is backend-stable.
    """
    if not results:
        raise ValueError("at least one restart result is required")
    best = results[0]
    for result in results[1:]:
        tol = 1e-10 * (1.0 + abs(best.value))
        if ansatz.maximize:
            better = result.value > best.value + tol
        else:
            better = result.value < best.value - tol
        if better:
            best = result
    return best


def summarize_restarts(
    ansatz: QAOAAnsatz,
    all_results: list[AngleResult],
    evaluations: int,
    *,
    seed_values: np.ndarray | None = None,
    refine: set[int] | None = None,
) -> AngleResult:
    """The ``"random-restart"`` summary result over a full set of restarts."""
    if refine is None:
        refine = set(range(len(all_results)))
    best = select_best_restart(ansatz, all_results)
    return AngleResult(
        angles=best.angles,
        value=best.value,
        p=ansatz.p,
        evaluations=evaluations,
        strategy="random-restart",
        history=[
            {
                "restart": i,
                "value": r.value,
                "seed_value": None if seed_values is None else float(seed_values[i]),
                "refined": i in refine,
            }
            for i, r in enumerate(all_results)
        ],
    )


def _score_seeds(
    ansatz: QAOAAnsatz, seeds: np.ndarray, batch_size: int | None
) -> np.ndarray:
    """Batch-score all seeds in bounded chunks (peak scratch ~3*dim*chunk)."""
    if batch_size is None:
        batch_size = default_eval_batch(ansatz.schedule.dim)
    if batch_size < 1:
        raise ValueError("score_batch_size must be positive")
    total = seeds.shape[0]
    values = np.empty(total, dtype=np.float64)
    for start in range(0, total, batch_size):
        stop = min(start + batch_size, total)
        values[start:stop] = ansatz.expectation_batch(seeds[start:stop])
    return values


def find_angles_random(
    ansatz: QAOAAnsatz,
    *,
    iters: int = 100,
    gradient: GradientMode = "adjoint",
    maxiter: int = 200,
    rng: np.random.Generator | int | None = None,
    return_all: bool = False,
    refine_top: int | None = None,
    vectorized: bool | None = None,
    score_batch_size: int | None = None,
    budget: Budget | None = None,
    on_incumbent: Callable[[float, np.ndarray], None] | None = None,
) -> AngleResult | tuple[AngleResult, list[AngleResult]]:
    """Best of ``iters`` independent random-start BFGS local searches.

    ``refine_top`` (default: all of them) bounds how many of the best-scoring
    seeds get a BFGS refinement; only then are the seeds batch-scored (in
    chunks of ``score_batch_size``, default bounded at 256 columns, capping
    each of the workspace's three scratch buffers at ~64 MB).
    ``vectorized`` selects the lock-step multi-start refiner
    (default: on for the ``"adjoint"`` gradient mode, unavailable for
    ``"finite"``/``"numeric"``, which keep the per-seed scipy loop).  With
    ``return_all=True`` the per-restart results are also returned, which the
    median-angles strategy and Figure 3 consume; unrefined seeds appear as
    their batch-scored values, and each history entry's ``seed_value`` is
    ``None`` when the scoring pass was skipped.

    ``budget``/``on_incumbent`` make the sweep anytime: the budget is threaded
    into the refiner (vectorized multi-start polls per lock-step iteration,
    the scipy loop per restart and per objective call) and an exhausted budget
    returns the best-so-far summary with ``timed_out=True``; seeds are always
    scored/evaluated at least once before the first poll.
    ``on_incumbent(value, angles)`` fires on every improvement of the
    across-restarts best.
    """
    if iters < 1:
        raise ValueError("at least one restart is required")
    if refine_top is not None and not 1 <= refine_top <= iters:
        raise ValueError(f"refine_top must be in [1, {iters}], got {refine_top}")
    if vectorized is None:
        vectorized = gradient == "adjoint"
    elif vectorized and gradient != "adjoint":
        raise ValueError(
            f"vectorized refinement requires gradient='adjoint', got {gradient!r}"
        )

    seeds = random_restart_seeds(ansatz, iters, rng)
    evaluations = 0
    prune = refine_top is not None and refine_top < iters
    if prune:
        seed_values = _score_seeds(ansatz, seeds, score_batch_size)
        evaluations += iters
        order = np.argsort(seed_values)
        if ansatz.maximize:
            order = order[::-1]
        refine = set(int(i) for i in order[:refine_top])
    else:
        # Every seed gets refined, so scoring would be pure overhead.
        seed_values = None
        refine = set(range(iters))

    timed_out = False
    refined: dict[int, AngleResult] = {}
    if vectorized:
        refine_order = sorted(refine)
        report = multistart_minimize(
            ansatz, seeds[refine_order], maxiter=maxiter, budget=budget, checkpoint=on_incumbent
        )
        evaluations += report.evaluations
        timed_out = report.timed_out
        per_column = restart_results_from_report(ansatz, report)
        for pos, i in enumerate(refine_order):
            refined[i] = per_column[pos]
    else:
        best_so_far = [None]  # across-restarts best value, for incumbent gating

        def publish_if_best(value: float, angles: np.ndarray) -> None:
            if on_incumbent is None:
                return
            prev = best_so_far[0]
            if prev is None or ((value > prev) if ansatz.maximize else (value < prev)):
                best_so_far[0] = value
                on_incumbent(value, angles)

        for i in sorted(refine):
            refined[i] = local_minimize(
                ansatz,
                seeds[i],
                gradient=gradient,
                maxiter=maxiter,
                budget=budget,
                on_incumbent=publish_if_best if on_incumbent is not None else None,
            )
            evaluations += refined[i].evaluations
            value = refined[i].value
            prev = best_so_far[0]
            if prev is None or ((value > prev) if ansatz.maximize else (value < prev)):
                best_so_far[0] = value
            if refined[i].timed_out or (budget is not None and budget.exhausted()):
                timed_out = True
                break
        skipped = [i for i in sorted(refine) if i not in refined]
        if skipped:
            # Restarts the deadline cut off fall back to their seed scores so
            # every history row still carries a valid evaluated value.
            skipped_scores = _score_seeds(ansatz, seeds[skipped], score_batch_size)
            evaluations += len(skipped)
            for pos, i in enumerate(skipped):
                refined[i] = AngleResult(
                    angles=seeds[i].copy(),
                    value=float(skipped_scores[pos]),
                    p=ansatz.p,
                    evaluations=1,
                    strategy="random-seed",
                )
            refine = refine - set(skipped)

    all_results: list[AngleResult] = []
    for i in range(iters):
        if i in refined:
            result = refined[i]
        else:
            # Unrefined seeds only exist on the pruned path, where every seed
            # was batch-scored — that one expectation evaluation is the cost
            # this result carries.
            result = AngleResult(
                angles=seeds[i].copy(),
                value=float(seed_values[i]),
                p=ansatz.p,
                evaluations=1,
                strategy="random-seed",
            )
        all_results.append(result)

    summary = summarize_restarts(
        ansatz, all_results, evaluations, seed_values=seed_values, refine=refine
    )
    summary.timed_out = timed_out
    if return_all:
        return summary, all_results
    return summary
