"""Random local-minima exploration (the Lotshaw et al. baseline).

The comparison strategy of the paper's Figure 3: draw a random starting point
uniformly in ``[0, 2 pi)^{2p}``, run BFGS to the nearest local optimum, repeat
``iters`` times (100 in the reference study) and keep the best result.  This
is also what the paper's Listing 3 implements as ``find_angles_rand`` to show
how user-defined strategies plug in.
"""

from __future__ import annotations

import numpy as np

from ..core.ansatz import QAOAAnsatz
from .bfgs import GradientMode, local_minimize
from .result import AngleResult

__all__ = ["find_angles_random"]


def find_angles_random(
    ansatz: QAOAAnsatz,
    *,
    iters: int = 100,
    gradient: GradientMode = "adjoint",
    maxiter: int = 200,
    rng: np.random.Generator | int | None = None,
    return_all: bool = False,
) -> AngleResult | tuple[AngleResult, list[AngleResult]]:
    """Best of ``iters`` independent random-start BFGS local searches.

    With ``return_all=True`` the per-restart results are also returned, which
    the median-angles strategy and Figure 3 consume.
    """
    if iters < 1:
        raise ValueError("at least one restart is required")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    best: AngleResult | None = None
    all_results: list[AngleResult] = []
    evaluations = 0
    for _ in range(iters):
        x0 = 2.0 * np.pi * rng.random(ansatz.num_angles)
        result = local_minimize(ansatz, x0, gradient=gradient, maxiter=maxiter)
        evaluations += result.evaluations
        all_results.append(result)
        if best is None:
            best = result
        else:
            better = result.value > best.value if ansatz.maximize else result.value < best.value
            if better:
                best = result

    assert best is not None
    summary = AngleResult(
        angles=best.angles,
        value=best.value,
        p=ansatz.p,
        evaluations=evaluations,
        strategy="random-restart",
        history=[{"restart": i, "value": r.value} for i, r in enumerate(all_results)],
    )
    if return_all:
        return summary, all_results
    return summary
