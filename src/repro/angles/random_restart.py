"""Random local-minima exploration (the Lotshaw et al. baseline).

The comparison strategy of the paper's Figure 3: draw a random starting point
uniformly in ``[0, 2 pi)^{2p}``, run BFGS to the nearest local optimum, repeat
``iters`` times (100 in the reference study) and keep the best result.  This
is also what the paper's Listing 3 implements as ``find_angles_rand`` to show
how user-defined strategies plug in.

All restart seeds are drawn up front and scored in one batched evaluation
(:meth:`~repro.core.ansatz.QAOAAnsatz.expectation_batch`) before any local
refinement starts.  By default every seed is still refined, exactly like the
reference strategy; ``refine_top`` optionally restricts BFGS to the
best-scoring seeds, which keeps most of the quality of a full sweep at a
fraction of the gradient-descent cost.
"""

from __future__ import annotations

import numpy as np

from ..core.ansatz import QAOAAnsatz
from .bfgs import GradientMode, local_minimize
from .result import AngleResult

__all__ = ["find_angles_random"]


def find_angles_random(
    ansatz: QAOAAnsatz,
    *,
    iters: int = 100,
    gradient: GradientMode = "adjoint",
    maxiter: int = 200,
    rng: np.random.Generator | int | None = None,
    return_all: bool = False,
    refine_top: int | None = None,
) -> AngleResult | tuple[AngleResult, list[AngleResult]]:
    """Best of ``iters`` independent random-start BFGS local searches.

    The ``iters`` seeds are batch-scored first; ``refine_top`` (default: all
    of them) then bounds how many of the best-scoring seeds get a BFGS
    refinement.  With ``return_all=True`` the per-restart results are also
    returned, which the median-angles strategy and Figure 3 consume;
    unrefined seeds appear as their batch-scored values.
    """
    if iters < 1:
        raise ValueError("at least one restart is required")
    if refine_top is None:
        refine_top = iters
    if not 1 <= refine_top <= iters:
        raise ValueError(f"refine_top must be in [1, {iters}], got {refine_top}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    seeds = 2.0 * np.pi * rng.random((iters, ansatz.num_angles))
    seed_values = ansatz.expectation_batch(seeds)
    evaluations = iters
    if refine_top < iters:
        order = np.argsort(seed_values)
        if ansatz.maximize:
            order = order[::-1]
        refine = set(int(i) for i in order[:refine_top])
    else:
        refine = set(range(iters))

    best: AngleResult | None = None
    all_results: list[AngleResult] = []
    for i in range(iters):
        if i in refine:
            result = local_minimize(ansatz, seeds[i], gradient=gradient, maxiter=maxiter)
            evaluations += result.evaluations
        else:
            result = AngleResult(
                angles=seeds[i].copy(),
                value=float(seed_values[i]),
                p=ansatz.p,
                evaluations=0,
                strategy="random-seed",
            )
        all_results.append(result)
        if best is None:
            best = result
        else:
            better = result.value > best.value if ansatz.maximize else result.value < best.value
            if better:
                best = result

    assert best is not None
    summary = AngleResult(
        angles=best.angles,
        value=best.value,
        p=ansatz.p,
        evaluations=evaluations,
        strategy="random-restart",
        history=[
            {
                "restart": i,
                "value": r.value,
                "seed_value": float(seed_values[i]),
                "refined": i in refine,
            }
            for i, r in enumerate(all_results)
        ],
    )
    if return_all:
        return summary, all_results
    return summary
