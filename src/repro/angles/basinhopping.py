"""Basinhopping over QAOA angles.

The paper's default angle-finding inner loop is the basinhopping algorithm of
Wales & Doye (1997): alternate local minimization (BFGS) with random
perturbations of the current best point, accepting or rejecting each hop with
a Metropolis criterion.  Two implementations are provided:

* :func:`basinhop` — an in-repo implementation with explicit control over the
  step size, temperature and acceptance bookkeeping (and a seeded RNG so
  benchmark rows are reproducible);
* :func:`basinhop_scipy` — a thin wrapper over ``scipy.optimize.basinhopping``
  for cross-checking.

Both return an :class:`~repro.angles.result.AngleResult` in the problem's
natural (maximize/minimize) sense.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import optimize

from ..core.ansatz import QAOAAnsatz
from ..portfolio.budget import Budget
from .bfgs import GradientMode, local_minimize
from .result import AngleResult

__all__ = ["basinhop", "basinhop_scipy"]


def basinhop(
    ansatz: QAOAAnsatz,
    x0: np.ndarray,
    *,
    n_hops: int = 10,
    step_size: float = 0.4,
    temperature: float = 1.0,
    gradient: GradientMode = "adjoint",
    maxiter: int = 200,
    rng: np.random.Generator | int | None = None,
    adaptive_step: bool = True,
    target_acceptance: float = 0.5,
    budget: Budget | None = None,
    on_incumbent: Callable[[float, np.ndarray], None] | None = None,
) -> AngleResult:
    """Basinhopping starting from ``x0``.

    Parameters
    ----------
    n_hops:
        Number of perturb-and-minimize hops after the initial local search.
    step_size:
        Standard scale of the uniform perturbation applied before each hop.
    temperature:
        Metropolis temperature for accepting uphill hops (in units of the
        objective value).
    adaptive_step, target_acceptance:
        When adaptive stepping is on, the step size is nudged up or down every
        few hops to steer the acceptance rate toward ``target_acceptance``,
        matching scipy's behaviour.
    budget, on_incumbent:
        Optional anytime plumbing: the budget is threaded into every local
        search and polled between hops (an exhausted budget returns the best
        hop so far with ``timed_out=True``); ``on_incumbent(value, angles)``
        fires whenever the across-hops best improves.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    x0 = np.asarray(x0, dtype=np.float64).ravel()

    best = local_minimize(
        ansatz, x0, gradient=gradient, maxiter=maxiter, budget=budget, on_incumbent=on_incumbent
    )
    current = best
    evaluations = best.evaluations
    timed_out = best.timed_out
    history = [{"hop": 0, "value": best.value, "accepted": True, "step_size": step_size}]

    def publish_if_best(value: float, angles: np.ndarray) -> None:
        # Mid-hop improvements only count when they beat the across-hops best.
        if on_incumbent is None:
            return
        if (value > best.value) if ansatz.maximize else (value < best.value):
            on_incumbent(value, angles)

    accepted_count = 0
    for hop in range(1, n_hops + 1):
        if timed_out or (budget is not None and budget.exhausted()):
            timed_out = True
            break
        perturbed = current.angles + rng.uniform(-step_size, step_size, size=current.angles.size)
        candidate = local_minimize(
            ansatz,
            perturbed,
            gradient=gradient,
            maxiter=maxiter,
            budget=budget,
            on_incumbent=publish_if_best if on_incumbent is not None else None,
        )
        evaluations += candidate.evaluations
        timed_out = timed_out or candidate.timed_out

        # Metropolis acceptance on the *loss* (lower is better internally).
        current_loss = -current.value if ansatz.maximize else current.value
        candidate_loss = -candidate.value if ansatz.maximize else candidate.value
        delta = candidate_loss - current_loss
        if delta <= 0 or (temperature > 0 and rng.random() < np.exp(-delta / temperature)):
            current = candidate
            accepted = True
            accepted_count += 1
        else:
            accepted = False

        better = candidate.value > best.value if ansatz.maximize else candidate.value < best.value
        if better:
            best = candidate

        history.append(
            {"hop": hop, "value": candidate.value, "accepted": accepted, "step_size": step_size}
        )

        if adaptive_step and hop % 5 == 0:
            rate = accepted_count / hop
            if rate > target_acceptance:
                step_size *= 1.1
            else:
                step_size *= 0.9

    return AngleResult(
        angles=best.angles,
        value=best.value,
        p=ansatz.p,
        evaluations=evaluations,
        strategy="basinhopping",
        history=history,
        timed_out=timed_out,
    )


def basinhop_scipy(
    ansatz: QAOAAnsatz,
    x0: np.ndarray,
    *,
    n_hops: int = 10,
    step_size: float = 0.4,
    temperature: float = 1.0,
    seed: int | None = None,
    maxiter: int = 200,
) -> AngleResult:
    """``scipy.optimize.basinhopping`` with the adjoint gradient feeding BFGS."""
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    evaluations = 0

    def fun(x):
        nonlocal evaluations
        evaluations += 1
        return ansatz.loss_and_gradient(x)

    minimizer_kwargs = {"method": "BFGS", "jac": True, "options": {"maxiter": maxiter}}
    res = optimize.basinhopping(
        fun,
        x0,
        niter=n_hops,
        stepsize=step_size,
        T=temperature,
        minimizer_kwargs=minimizer_kwargs,
        seed=seed,
    )
    value = -float(res.fun) if ansatz.maximize else float(res.fun)
    return AngleResult(
        angles=np.asarray(res.x, dtype=np.float64),
        value=value,
        p=ansatz.p,
        evaluations=evaluations,
        strategy="basinhopping-scipy",
    )
