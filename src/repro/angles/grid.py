"""Exhaustive grid search over QAOA angles.

The simplest of the "other common angle-finding methods" mentioned in
Sec. 2.3.  Useful as a ground truth at ``p = 1`` (where a fine 2-D grid is
cheap) and as a coarse seeding stage at ``p = 2``; the cost grows as
``resolution^(2p)`` so it is not a practical strategy beyond that — which is
exactly why the iterative/extrapolation scheme exists.

The grid is evaluated in chunked batches through
:meth:`~repro.core.ansatz.QAOAAnsatz.expectation_batch`: each chunk of angle
sets evolves as the columns of one ``(dim, M)`` matrix, so the sweep pays
BLAS-3 batched kernels plus one Python-level iteration per chunk instead of
per grid point.
"""

from __future__ import annotations

from itertools import islice, product
from typing import Callable

import numpy as np

from ..core.ansatz import QAOAAnsatz
from ..core.workspace import default_eval_batch
from ..portfolio.budget import Budget
from .result import AngleResult

__all__ = ["grid_search", "grid_axis"]


def grid_axis(resolution: int, *, low: float = 0.0, high: float = 2.0 * np.pi) -> np.ndarray:
    """``resolution`` evenly spaced angle values in ``[low, high)``."""
    if resolution < 1:
        raise ValueError("resolution must be positive")
    return np.linspace(low, high, resolution, endpoint=False)


def grid_search(
    ansatz: QAOAAnsatz,
    resolution: int = 12,
    *,
    beta_range: tuple[float, float] = (0.0, np.pi),
    gamma_range: tuple[float, float] = (0.0, 2.0 * np.pi),
    max_points: int = 2_000_000,
    batch_size: int | None = None,
    budget: Budget | None = None,
    on_incumbent: Callable[[float, np.ndarray], None] | None = None,
) -> AngleResult:
    """Evaluate ``<C>`` on a regular grid and return the best grid point.

    Betas and gammas get separate ranges because the transverse-field mixer is
    ``pi``-periodic in beta while typical integer-valued cost functions are
    ``2 pi``-periodic in gamma.  ``max_points`` guards against accidentally
    launching an astronomically large sweep at high ``p``; ``batch_size``
    controls how many grid points are simulated simultaneously (it trades
    scratch memory — ``3 * dim * batch_size`` complex values — against
    per-chunk overhead).  The default scales the batch down with the space
    dimension, capping each workspace buffer at ~64 MB so large-``n`` sweeps
    never exceed the scalar loop's memory footprint by much.

    Ties resolve to the first grid point in ``itertools.product`` order, the
    same point the scalar one-at-a-time loop returned.

    ``budget`` (optional) is polled between chunks: an exhausted budget stops
    the sweep after the current chunk (the first chunk always evaluates, so a
    zero-slack budget still scores grid points) and the partial-sweep best is
    returned with ``timed_out=True``.  ``on_incumbent`` (optional) is called
    as ``on_incumbent(value, angles)`` whenever a chunk improves the best.
    """
    if batch_size is None:
        batch_size = default_eval_batch(ansatz.schedule.dim)
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    num_angles = ansatz.num_angles
    total_points = resolution**num_angles
    if total_points > max_points:
        raise ValueError(
            f"grid of {total_points} points exceeds max_points={max_points}; "
            "lower the resolution or use a different strategy"
        )
    num_betas = num_angles - ansatz.p
    beta_axis = grid_axis(resolution, low=beta_range[0], high=beta_range[1])
    gamma_axis = grid_axis(resolution, low=gamma_range[0], high=gamma_range[1])

    best_value = -np.inf if ansatz.maximize else np.inf
    best_angles: np.ndarray | None = None
    evaluations = 0
    timed_out = False
    axes = [beta_axis] * num_betas + [gamma_axis] * ansatz.p
    points = product(*axes)
    while True:
        chunk = list(islice(points, batch_size))
        if not chunk:
            break
        angle_matrix = np.array(chunk, dtype=np.float64)
        values = ansatz.expectation_batch(angle_matrix)
        evaluations += len(chunk)
        # argmax/argmin return the first occurrence, preserving the scalar
        # loop's first-best-wins tie-breaking within and across chunks.
        idx = int(np.argmax(values)) if ansatz.maximize else int(np.argmin(values))
        value = float(values[idx])
        better = value > best_value if ansatz.maximize else value < best_value
        if better:
            best_value = value
            best_angles = angle_matrix[idx]
            if on_incumbent is not None:
                on_incumbent(best_value, best_angles.copy())
        if budget is not None and budget.exhausted():
            timed_out = True
            break

    assert best_angles is not None
    return AngleResult(
        angles=best_angles,
        value=float(best_value),
        p=ansatz.p,
        evaluations=evaluations,
        strategy="grid",
        timed_out=timed_out,
    )
