"""Exhaustive grid search over QAOA angles.

The simplest of the "other common angle-finding methods" mentioned in
Sec. 2.3.  Useful as a ground truth at ``p = 1`` (where a fine 2-D grid is
cheap) and as a coarse seeding stage at ``p = 2``; the cost grows as
``resolution^(2p)`` so it is not a practical strategy beyond that — which is
exactly why the iterative/extrapolation scheme exists.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from ..core.ansatz import QAOAAnsatz
from .result import AngleResult

__all__ = ["grid_search", "grid_axis"]


def grid_axis(resolution: int, *, low: float = 0.0, high: float = 2.0 * np.pi) -> np.ndarray:
    """``resolution`` evenly spaced angle values in ``[low, high)``."""
    if resolution < 1:
        raise ValueError("resolution must be positive")
    return np.linspace(low, high, resolution, endpoint=False)


def grid_search(
    ansatz: QAOAAnsatz,
    resolution: int = 12,
    *,
    beta_range: tuple[float, float] = (0.0, np.pi),
    gamma_range: tuple[float, float] = (0.0, 2.0 * np.pi),
    max_points: int = 2_000_000,
) -> AngleResult:
    """Evaluate ``<C>`` on a regular grid and return the best grid point.

    Betas and gammas get separate ranges because the transverse-field mixer is
    ``pi``-periodic in beta while typical integer-valued cost functions are
    ``2 pi``-periodic in gamma.  ``max_points`` guards against accidentally
    launching an astronomically large sweep at high ``p``.
    """
    num_angles = ansatz.num_angles
    total_points = resolution**num_angles
    if total_points > max_points:
        raise ValueError(
            f"grid of {total_points} points exceeds max_points={max_points}; "
            "lower the resolution or use a different strategy"
        )
    num_betas = num_angles - ansatz.p
    beta_axis = grid_axis(resolution, low=beta_range[0], high=beta_range[1])
    gamma_axis = grid_axis(resolution, low=gamma_range[0], high=gamma_range[1])

    best_value = -np.inf if ansatz.maximize else np.inf
    best_angles: np.ndarray | None = None
    evaluations = 0
    axes = [beta_axis] * num_betas + [gamma_axis] * ansatz.p
    for combo in product(*axes):
        angles = np.asarray(combo, dtype=np.float64)
        value = ansatz.expectation(angles)
        evaluations += 1
        better = value > best_value if ansatz.maximize else value < best_value
        if better:
            best_value = value
            best_angles = angles

    assert best_angles is not None
    return AngleResult(
        angles=best_angles,
        value=float(best_value),
        p=ansatz.p,
        evaluations=evaluations,
        strategy="grid",
    )
