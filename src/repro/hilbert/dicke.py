"""Dicke (fixed Hamming weight) subspaces.

Constrained problems such as Densest-k-Subgraph and Max-k-Vertex-Cover have a
feasible set consisting of all ``n``-qubit states with exactly ``k`` ones.
The equal superposition of those states is the Dicke state ``|D^n_k>``, which
is the canonical QAOA initial state for Clique/Ring/Grover mixers on
constrained problems (Sec. 2.1 of the paper).

This module enumerates the subspace (via Gosper's hack), provides
combinatorial ranking/unranking so that subspace indices can be mapped to and
from full-space integer labels in ``O(n)`` time without enumeration, and
builds Dicke statevectors in both the subspace and the full ``2^n``
representation.
"""

from __future__ import annotations

from math import comb
from typing import Iterator

import numpy as np

from .bitops import gosper_iter, ints_to_bit_matrix

__all__ = [
    "dicke_dim",
    "dicke_labels",
    "dicke_states",
    "dicke_state_matrix",
    "dicke_statevector",
    "dicke_statevector_full",
    "rank_state",
    "unrank_state",
    "subspace_index_map",
]


def _check_nk(n: int, k: int) -> None:
    if n < 0:
        raise ValueError("number of qubits must be non-negative")
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got k={k}, n={n}")


def dicke_dim(n: int, k: int) -> int:
    """Dimension ``C(n, k)`` of the Hamming-weight-``k`` subspace."""
    _check_nk(n, k)
    return comb(n, k)


def dicke_labels(n: int, k: int) -> np.ndarray:
    """Integer labels of all weight-``k`` states of ``n`` qubits, ascending.

    The returned order defines the canonical subspace index used throughout
    the package: subspace index ``j`` refers to ``dicke_labels(n, k)[j]``.
    """
    _check_nk(n, k)
    return np.fromiter(gosper_iter(n, k), dtype=np.int64, count=comb(n, k))


def dicke_states(n: int, k: int) -> Iterator[np.ndarray]:
    """Iterate over weight-``k`` basis states as 0/1 arrays (qubit 0 first).

    Mirrors ``dicke_states(n, k)`` from Listing 2 of the paper.
    """
    _check_nk(n, k)
    for label in gosper_iter(n, k):
        yield np.array([(label >> i) & 1 for i in range(n)], dtype=np.int8)


def dicke_state_matrix(n: int, k: int) -> np.ndarray:
    """All weight-``k`` states as a ``(C(n,k), n)`` 0/1 matrix."""
    return ints_to_bit_matrix(dicke_labels(n, k), n)


def dicke_statevector(n: int, k: int, dtype=np.complex128) -> np.ndarray:
    """Dicke state ``|D^n_k>`` expressed in the subspace basis (length ``C(n,k)``)."""
    dim = dicke_dim(n, k)
    return np.full(dim, 1.0 / np.sqrt(dim), dtype=dtype)


def dicke_statevector_full(n: int, k: int, dtype=np.complex128) -> np.ndarray:
    """Dicke state ``|D^n_k>`` embedded in the full ``2^n`` Hilbert space."""
    _check_nk(n, k)
    full = np.zeros(1 << n, dtype=dtype)
    labels = dicke_labels(n, k)
    full[labels] = 1.0 / np.sqrt(len(labels))
    return full


def rank_state(label: int, n: int, k: int) -> int:
    """Subspace index of the weight-``k`` state ``label`` (combinatorial ranking).

    Runs in ``O(n)`` using the combinatorial number system: among weight-``k``
    words listed in ascending numeric order, the rank counts, bit by bit from
    the most significant position, how many words are skipped when a bit is
    set.
    """
    _check_nk(n, k)
    if label < 0 or label >> n:
        raise ValueError(f"label {label} does not fit in {n} bits")
    if int(label).bit_count() != k:
        raise ValueError(f"label {label} does not have Hamming weight {k}")
    rank = 0
    remaining = k
    for bit in range(n - 1, -1, -1):
        if remaining == 0:
            break
        if (label >> bit) & 1:
            # All words with a 0 at this bit and `remaining` ones among the
            # lower `bit` positions come before this word.
            rank += comb(bit, remaining)
            remaining -= 1
    return rank


def unrank_state(index: int, n: int, k: int) -> int:
    """Inverse of :func:`rank_state`: the ``index``-th weight-``k`` state label."""
    _check_nk(n, k)
    dim = comb(n, k)
    if not 0 <= index < dim:
        raise ValueError(f"index {index} out of range for C({n},{k})={dim}")
    label = 0
    remaining = k
    rank = index
    for bit in range(n - 1, -1, -1):
        if remaining == 0:
            break
        below = comb(bit, remaining)
        if rank >= below:
            label |= 1 << bit
            rank -= below
            remaining -= 1
    return label


def subspace_index_map(n: int, k: int) -> dict[int, int]:
    """Dictionary mapping full-space labels to subspace indices."""
    return {int(label): j for j, label in enumerate(dicke_labels(n, k))}
