"""Bit-level utilities for enumerating and manipulating computational basis states.

QAOA statevector simulation indexes the Hilbert space by integers whose binary
expansion is the computational basis state.  This module provides the
bit-twiddling primitives the rest of the package is built on:

* vectorized popcounts and parities over ``numpy`` integer arrays,
* Gosper's hack for iterating over all ``n``-bit words with a fixed number of
  set bits (used for Hamming-weight-constrained, i.e. Dicke-subspace,
  problems, as described in Sec. 2.4 of the paper),
* conversions between integer labels and explicit 0/1 bit arrays.

Bit order convention
--------------------
Bit ``i`` of the integer label corresponds to qubit ``i``; qubit 0 is the
least-significant bit.  An explicit bit array ``x`` therefore satisfies
``label = sum(x[i] << i)``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "popcount",
    "parity",
    "bit_get",
    "bits_to_int",
    "int_to_bits",
    "ints_to_bit_matrix",
    "bit_matrix_to_ints",
    "gosper_next",
    "gosper_iter",
    "first_weight_k",
    "last_weight_k",
]

# 16-bit lookup table for vectorized popcount on arbitrary integer arrays.
_POPCOUNT16 = np.array([bin(i).count("1") for i in range(1 << 16)], dtype=np.uint8)


def popcount(values: np.ndarray | int) -> np.ndarray | int:
    """Number of set bits of each element of ``values``.

    Accepts Python ints or numpy integer arrays (any integer dtype up to 64
    bits) and returns the same shape.  Scalar input returns a Python int.
    """
    if isinstance(values, (int, np.integer)):
        return int(values).bit_count()
    arr = np.asarray(values)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"popcount requires an integer array, got {arr.dtype}")
    v = arr.astype(np.uint64, copy=False)
    total = np.zeros(v.shape, dtype=np.int64)
    for shift in (0, 16, 32, 48):
        total += _POPCOUNT16[((v >> np.uint64(shift)) & np.uint64(0xFFFF)).astype(np.int64)]
    return total


def parity(values: np.ndarray | int) -> np.ndarray | int:
    """Parity (popcount mod 2) of each element of ``values``."""
    p = popcount(values)
    if isinstance(p, (int, np.integer)):
        return int(p) & 1
    return (p & 1).astype(np.int8)


def bit_get(values: np.ndarray | int, bit: int) -> np.ndarray | int:
    """Value (0/1) of bit ``bit`` of each element of ``values``."""
    if isinstance(values, (int, np.integer)):
        return (int(values) >> bit) & 1
    arr = np.asarray(values).astype(np.uint64, copy=False)
    return ((arr >> np.uint64(bit)) & np.uint64(1)).astype(np.int8)


def bits_to_int(bits) -> int:
    """Convert an iterable of 0/1 values (qubit 0 first) to its integer label."""
    label = 0
    for i, b in enumerate(bits):
        b = int(b)
        if b not in (0, 1):
            raise ValueError(f"bit values must be 0 or 1, got {b!r} at position {i}")
        label |= b << i
    return label


def int_to_bits(label: int, n: int) -> np.ndarray:
    """Convert an integer label to an explicit length-``n`` 0/1 array (qubit 0 first)."""
    if label < 0:
        raise ValueError("state labels must be non-negative")
    if n < 0:
        raise ValueError("number of qubits must be non-negative")
    if label >> n:
        raise ValueError(f"label {label} does not fit in {n} bits")
    return np.array([(label >> i) & 1 for i in range(n)], dtype=np.int8)


def ints_to_bit_matrix(labels: np.ndarray, n: int) -> np.ndarray:
    """Convert an array of integer labels to a ``(len(labels), n)`` 0/1 matrix."""
    arr = np.asarray(labels, dtype=np.uint64)
    shifts = np.arange(n, dtype=np.uint64)
    return ((arr[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.int8)


def bit_matrix_to_ints(bits: np.ndarray) -> np.ndarray:
    """Convert a ``(m, n)`` 0/1 matrix to integer labels (inverse of ints_to_bit_matrix)."""
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError("expected a 2-D bit matrix")
    n = bits.shape[1]
    weights = (np.uint64(1) << np.arange(n, dtype=np.uint64))
    return (bits.astype(np.uint64) * weights[None, :]).sum(axis=1)


def gosper_next(v: int) -> int:
    """Next integer with the same popcount as ``v`` (Gosper's hack).

    The classic bit trick used by the paper to enumerate Hamming-weight-k
    states without touching infeasible states.  ``v`` must be positive.
    """
    if v <= 0:
        raise ValueError("Gosper's hack requires a positive integer")
    c = v & -v
    r = v + c
    return (((r ^ v) >> 2) // c) | r


def first_weight_k(n: int, k: int) -> int:
    """Smallest ``n``-bit integer with ``k`` set bits."""
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got k={k}, n={n}")
    return (1 << k) - 1


def last_weight_k(n: int, k: int) -> int:
    """Largest ``n``-bit integer with ``k`` set bits."""
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got k={k}, n={n}")
    return ((1 << k) - 1) << (n - k)


def gosper_iter(n: int, k: int) -> Iterator[int]:
    """Iterate over all ``n``-bit integers with exactly ``k`` set bits, ascending.

    Yields ``C(n, k)`` integers.  ``k = 0`` yields the single value 0.
    """
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got k={k}, n={n}")
    if k == 0:
        yield 0
        return
    v = first_weight_k(n, k)
    limit = 1 << n
    while v < limit:
        yield v
        if v == last_weight_k(n, k):
            return
        v = gosper_next(v)
