"""Feasible-space abstraction.

A QAOA in this package is always simulated over a *feasible space*: an ordered
collection of computational basis states over which the cost function is
evaluated and within which the mixer acts.  Unconstrained problems use the
full hypercube; Hamming-weight-constrained problems use a Dicke subspace; any
other constraint can be expressed by listing the feasible labels explicitly.

The class exposes exactly what the simulator's pre-computation step needs:

* ``labels`` — full-space integer labels in canonical order,
* ``bits`` — the same states as a ``(dim, n)`` 0/1 matrix,
* ``evaluate(cost)`` — the cost function evaluated across all feasible states,
* ``initial_state()`` — the uniform superposition over the space (the default
  QAOA starting state, per Sec. 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .bitops import ints_to_bit_matrix
from .dicke import dicke_labels
from .states import state_labels

__all__ = ["FeasibleSpace", "FullSpace", "DickeSpace", "CustomSpace"]


@dataclass(frozen=True)
class FeasibleSpace:
    """An ordered set of feasible basis states of an ``n``-qubit register.

    Parameters
    ----------
    n:
        Number of qubits.
    labels:
        Full-space integer labels of the feasible states, in canonical order.
    name:
        Human-readable identifier used in caches and reprs.
    hamming_weight:
        If all feasible states share a Hamming weight, that weight; else None.
    """

    n: int
    labels: np.ndarray
    name: str = "custom"
    hamming_weight: int | None = None
    _bits_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels, dtype=np.int64)
        if labels.ndim != 1:
            raise ValueError("labels must be a 1-D array")
        if labels.size == 0:
            raise ValueError("a feasible space must contain at least one state")
        if labels.min() < 0 or (self.n < 63 and labels.max() >= (1 << self.n)):
            raise ValueError("labels out of range for the given number of qubits")
        # Canonical order is ascending: index_of's binary search relies on it,
        # so a directly-constructed space with unsorted labels used to return
        # wrong indices silently.  Sorting here would instead silently permute
        # the basis out from under any caller-supplied per-state arrays, so
        # unsorted input is rejected loudly (CustomSpace sorts for you).
        if len(np.unique(labels)) != len(labels):
            raise ValueError("feasible-state labels must be unique")
        if labels.size > 1 and np.any(labels[1:] < labels[:-1]):
            raise ValueError(
                "feasible-state labels must be in ascending order (the canonical "
                "basis order); use CustomSpace(...) to sort arbitrary label lists"
            )
        object.__setattr__(self, "labels", labels)

    # -- basic geometry -------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of feasible states."""
        return int(self.labels.size)

    @property
    def is_full(self) -> bool:
        """Whether this space is the complete ``2^n`` hypercube."""
        return self.dim == (1 << self.n)

    @property
    def bits(self) -> np.ndarray:
        """Feasible states as a ``(dim, n)`` 0/1 matrix (cached)."""
        if "bits" not in self._bits_cache:
            self._bits_cache["bits"] = ints_to_bit_matrix(self.labels, self.n)
        return self._bits_cache["bits"]

    # -- pre-computation hooks -------------------------------------------
    def evaluate(self, cost: Callable[[np.ndarray], float]) -> np.ndarray:
        """Evaluate ``cost`` on every feasible state; returns a float array.

        ``cost`` receives a length-``n`` 0/1 array (qubit 0 first) and must
        return a scalar, matching the cost-function convention of the paper's
        Listing 1.
        """
        bits = self.bits
        return np.array([float(cost(bits[i])) for i in range(self.dim)], dtype=np.float64)

    def evaluate_vectorized(self, cost_vec: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Evaluate a vectorized cost ``cost_vec`` on the full bit matrix at once."""
        vals = np.asarray(cost_vec(self.bits), dtype=np.float64)
        if vals.shape != (self.dim,):
            raise ValueError(f"vectorized cost returned shape {vals.shape}, expected ({self.dim},)")
        return vals

    def initial_state(self, dtype=np.complex128) -> np.ndarray:
        """Uniform superposition over the feasible states (subspace representation)."""
        return np.full(self.dim, 1.0 / np.sqrt(self.dim), dtype=dtype)

    # -- embeddings -------------------------------------------------------
    def embed(self, psi_sub: np.ndarray) -> np.ndarray:
        """Embed a subspace statevector into the full ``2^n`` Hilbert space."""
        psi_sub = np.asarray(psi_sub)
        if psi_sub.shape != (self.dim,):
            raise ValueError(f"expected a length-{self.dim} subspace vector")
        full = np.zeros(1 << self.n, dtype=np.result_type(psi_sub.dtype, np.complex128))
        full[self.labels] = psi_sub
        return full

    def project(self, psi_full: np.ndarray) -> np.ndarray:
        """Restrict a full-space statevector to the feasible subspace."""
        psi_full = np.asarray(psi_full)
        if psi_full.shape != (1 << self.n,):
            raise ValueError(f"expected a length-{1 << self.n} full-space vector")
        return psi_full[self.labels].copy()

    def index_of(self, label: int) -> int:
        """Subspace index of a full-space label (raises if infeasible)."""
        idx = np.searchsorted(self.labels, label)
        if idx >= self.dim or self.labels[idx] != label:
            raise KeyError(f"state {label} is not in the feasible space")
        return int(idx)

    def __len__(self) -> int:
        return self.dim

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, dim={self.dim}, name={self.name!r})"


def FullSpace(n: int) -> FeasibleSpace:
    """The unconstrained feasible space: all ``2^n`` basis states."""
    return FeasibleSpace(n=n, labels=state_labels(n), name="full")


def DickeSpace(n: int, k: int) -> FeasibleSpace:
    """The Hamming-weight-``k`` feasible space (Dicke subspace)."""
    return FeasibleSpace(
        n=n,
        labels=dicke_labels(n, k),
        name=f"dicke_k{k}",
        hamming_weight=k,
    )


def CustomSpace(n: int, labels: Sequence[int], name: str = "custom") -> FeasibleSpace:
    """A feasible space given by an explicit list of state labels.

    The labels are sorted into canonical ascending order.
    """
    labels = np.asarray(sorted(int(x) for x in labels), dtype=np.int64)
    weights = {int(x).bit_count() for x in labels}
    hw = weights.pop() if len(weights) == 1 else None
    return FeasibleSpace(n=n, labels=labels, name=name, hamming_weight=hw)
