"""Enumeration of computational basis states.

These helpers mirror the ``states(n)`` iterator of the original Julia package:
cost functions are plain Python callables taking a 0/1 bit array, and the
pre-computation step evaluates them across all feasible states.  For
unconstrained problems the feasible set is the full ``2^n`` hypercube.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .bitops import ints_to_bit_matrix

__all__ = [
    "num_states",
    "states",
    "state_labels",
    "state_matrix",
    "uniform_superposition",
    "basis_state",
    "hamming_weights",
]

#: Hard cap on the number of qubits for dense enumeration; protects against
#: accidental attempts to materialize 2^n arrays for huge n (the compressed
#: Grover path in :mod:`repro.grover` is the intended route for those).
MAX_DENSE_QUBITS = 30


def _check_n(n: int) -> None:
    if n < 0:
        raise ValueError("number of qubits must be non-negative")
    if n > MAX_DENSE_QUBITS:
        raise ValueError(
            f"n={n} exceeds the dense-enumeration limit of {MAX_DENSE_QUBITS} qubits; "
            "use the compressed Grover-mixer path for larger systems"
        )


def num_states(n: int) -> int:
    """Dimension ``2^n`` of the full Hilbert space."""
    if n < 0:
        raise ValueError("number of qubits must be non-negative")
    return 1 << n


def states(n: int) -> Iterator[np.ndarray]:
    """Iterate over all ``2^n`` basis states as 0/1 arrays (qubit 0 first).

    Mirrors ``states(n)`` from Listing 1 of the paper.
    """
    _check_n(n)
    for label in range(1 << n):
        yield np.array([(label >> i) & 1 for i in range(n)], dtype=np.int8)


def state_labels(n: int) -> np.ndarray:
    """Integer labels ``0 .. 2^n - 1`` of all basis states."""
    _check_n(n)
    return np.arange(1 << n, dtype=np.int64)


def state_matrix(n: int) -> np.ndarray:
    """All basis states as a ``(2^n, n)`` 0/1 matrix (row ``i`` is state ``i``)."""
    _check_n(n)
    return ints_to_bit_matrix(state_labels(n), n)


def hamming_weights(n: int) -> np.ndarray:
    """Hamming weight of every basis state, as a length-``2^n`` array."""
    _check_n(n)
    return state_matrix(n).sum(axis=1).astype(np.int64)


def uniform_superposition(n: int, dtype=np.complex128) -> np.ndarray:
    """The uniform superposition ``|+>^{⊗n}`` as a statevector of length ``2^n``."""
    _check_n(n)
    dim = 1 << n
    return np.full(dim, 1.0 / np.sqrt(dim), dtype=dtype)


def basis_state(n: int, label: int, dtype=np.complex128) -> np.ndarray:
    """The computational basis state ``|label>`` as a statevector."""
    _check_n(n)
    dim = 1 << n
    if not 0 <= label < dim:
        raise ValueError(f"label {label} out of range for {n} qubits")
    psi = np.zeros(dim, dtype=dtype)
    psi[label] = 1.0
    return psi
