"""Max k-Vertex-Cover cost function.

Given a graph and a subset ``S`` of exactly ``k`` vertices (the ones of the
bit string), the Max-k-Vertex-Cover objective counts edges covered by ``S``,
i.e. edges with at least one endpoint in ``S``:

    C(x) = sum_{(u,v) in E}  1 - (1 - x_u)(1 - x_v) .

Like Densest-k-Subgraph this is a Hamming-weight-constrained problem: the
cardinality constraint is handled by the feasible space and mixer, not by
penalty terms (Sec. 4 of the paper contrasts this with circuit simulators).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .graphs import edge_array

__all__ = [
    "vertex_cover",
    "vertex_cover_values",
    "vertex_cover_optimum",
    "uncovered_edges",
]


def vertex_cover(graph: nx.Graph, x: np.ndarray) -> float:
    """Number of edges covered (touched) by the vertex subset selected by ``x``."""
    x = np.asarray(x)
    if x.shape != (graph.number_of_nodes(),):
        raise ValueError(f"state has {x.shape} entries, expected ({graph.number_of_nodes()},)")
    edges = edge_array(graph)
    if edges.size == 0:
        return 0.0
    covered = (x[edges[:, 0]] == 1) | (x[edges[:, 1]] == 1)
    return float(np.count_nonzero(covered))


def vertex_cover_values(graph: nx.Graph, bits: np.ndarray) -> np.ndarray:
    """Vectorized Max-k-Vertex-Cover objective over a ``(m, n)`` bit matrix."""
    bits = np.asarray(bits)
    if bits.ndim != 2 or bits.shape[1] != graph.number_of_nodes():
        raise ValueError(
            f"bit matrix has shape {bits.shape}, expected (*, {graph.number_of_nodes()})"
        )
    edges = edge_array(graph)
    if edges.size == 0:
        return np.zeros(bits.shape[0], dtype=np.float64)
    covered = (bits[:, edges[:, 0]] == 1) | (bits[:, edges[:, 1]] == 1)
    return covered.sum(axis=1).astype(np.float64)


def uncovered_edges(graph: nx.Graph, x: np.ndarray) -> list[tuple[int, int]]:
    """Edges not covered by ``x`` (empty iff ``x`` is a vertex cover)."""
    x = np.asarray(x)
    edges = edge_array(graph)
    return [
        (int(u), int(v)) for u, v in edges if x[u] == 0 and x[v] == 0
    ]


def vertex_cover_optimum(graph: nx.Graph, k: int) -> float:
    """Exact Max-k-Vertex-Cover optimum over all weight-``k`` subsets (brute force)."""
    from ..hilbert.dicke import dicke_state_matrix

    n = graph.number_of_nodes()
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got k={k}, n={n}")
    bits = dicke_state_matrix(n, k)
    vals = vertex_cover_values(graph, bits)
    return float(vals.max()) if vals.size else 0.0
