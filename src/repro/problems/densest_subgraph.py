"""Densest k-Subgraph cost function.

Given a graph and a subset ``S`` of exactly ``k`` vertices (encoded by the
ones of the bit string), the Densest-k-Subgraph objective counts the edges
with both endpoints inside ``S``:

    C(x) = sum_{(u,v) in E}  x_u * x_v .

The Hamming-weight constraint (``|S| = k``) is enforced by evaluating the cost
over the Dicke feasible space and using a weight-preserving mixer (Clique,
Ring or Grover), exactly as described in Sec. 2.1 of the paper.  The cost
function itself is well defined on any bit string; feasibility is a property
of the space it is evaluated over.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .graphs import edge_array

__all__ = [
    "densest_subgraph",
    "densest_subgraph_values",
    "densest_subgraph_optimum",
]


def densest_subgraph(graph: nx.Graph, x: np.ndarray) -> float:
    """Number of edges internal to the vertex subset selected by ``x``."""
    x = np.asarray(x)
    if x.shape != (graph.number_of_nodes(),):
        raise ValueError(f"state has {x.shape} entries, expected ({graph.number_of_nodes()},)")
    edges = edge_array(graph)
    if edges.size == 0:
        return 0.0
    inside = (x[edges[:, 0]] == 1) & (x[edges[:, 1]] == 1)
    return float(np.count_nonzero(inside))


def densest_subgraph_values(graph: nx.Graph, bits: np.ndarray) -> np.ndarray:
    """Vectorized Densest-k-Subgraph objective over a ``(m, n)`` bit matrix."""
    bits = np.asarray(bits)
    if bits.ndim != 2 or bits.shape[1] != graph.number_of_nodes():
        raise ValueError(
            f"bit matrix has shape {bits.shape}, expected (*, {graph.number_of_nodes()})"
        )
    edges = edge_array(graph)
    if edges.size == 0:
        return np.zeros(bits.shape[0], dtype=np.float64)
    inside = (bits[:, edges[:, 0]] == 1) & (bits[:, edges[:, 1]] == 1)
    return inside.sum(axis=1).astype(np.float64)


def densest_subgraph_optimum(graph: nx.Graph, k: int) -> float:
    """Exact Densest-k-Subgraph optimum over all weight-``k`` subsets (brute force)."""
    from ..hilbert.dicke import dicke_state_matrix

    n = graph.number_of_nodes()
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got k={k}, n={n}")
    bits = dicke_state_matrix(n, k)
    vals = densest_subgraph_values(graph, bits)
    return float(vals.max()) if vals.size else 0.0
