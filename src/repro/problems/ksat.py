"""Max-k-SAT cost functions and random instance generation.

A k-SAT instance over ``n`` boolean variables is a conjunction of clauses,
each a disjunction of ``k`` literals.  The Max-k-SAT objective of an
assignment ``x`` counts satisfied clauses:

    C(x) = #{ clauses c : at least one literal of c is true under x } .

The paper's Figure 2 uses a random 3-SAT instance at clause density 6
(``m = 6 n`` clauses) with the Grover mixer.

Clause representation
---------------------
A clause is a tuple of signed, 1-based variable indices in the DIMACS
convention: literal ``+v`` means variable ``v-1`` must be 1, ``-v`` means it
must be 0.  1-based indices are used so that negation of variable 0 is
representable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SatInstance",
    "random_ksat",
    "ksat",
    "ksat_values",
    "count_satisfied",
    "ksat_optimum",
]


@dataclass(frozen=True)
class SatInstance:
    """A k-SAT instance: number of variables plus a list of clauses.

    Attributes
    ----------
    n:
        Number of boolean variables (qubits).
    clauses:
        Tuple of clauses; each clause is a tuple of non-zero signed 1-based
        variable indices (DIMACS style).
    """

    n: int
    clauses: tuple[tuple[int, ...], ...]
    _arrays: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("a SAT instance needs at least one variable")
        clauses = tuple(tuple(int(l) for l in clause) for clause in self.clauses)
        for clause in clauses:
            if len(clause) == 0:
                raise ValueError("empty clauses are not allowed")
            for lit in clause:
                if lit == 0:
                    raise ValueError("literal 0 is not allowed (DIMACS convention)")
                if abs(lit) > self.n:
                    raise ValueError(f"literal {lit} references a variable beyond n={self.n}")
        object.__setattr__(self, "clauses", clauses)

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self.clauses)

    @property
    def k(self) -> int:
        """Clause width if uniform, else the maximum clause width."""
        if not self.clauses:
            return 0
        return max(len(c) for c in self.clauses)

    @property
    def clause_density(self) -> float:
        """Ratio of clauses to variables (the paper's Figure 2 uses density 6)."""
        return self.num_clauses / self.n

    def _literal_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Padded (variables, wanted-values) arrays for vectorized evaluation.

        Returns ``vars_idx`` and ``wanted`` of shape ``(num_clauses, k_max)``;
        padding entries repeat the clause's first literal (harmless for an OR).
        """
        if "literal_arrays" not in self._arrays:
            kmax = self.k
            vars_idx = np.zeros((self.num_clauses, kmax), dtype=np.int64)
            wanted = np.zeros((self.num_clauses, kmax), dtype=np.int8)
            for ci, clause in enumerate(self.clauses):
                for j in range(kmax):
                    lit = clause[j] if j < len(clause) else clause[0]
                    vars_idx[ci, j] = abs(lit) - 1
                    wanted[ci, j] = 1 if lit > 0 else 0
            self._arrays["literal_arrays"] = (vars_idx, wanted)
        return self._arrays["literal_arrays"]


def random_ksat(
    n: int,
    k: int = 3,
    clause_density: float = 6.0,
    seed: int | None = None,
    allow_duplicate_clauses: bool = True,
) -> SatInstance:
    """Generate a random k-SAT instance with ``round(clause_density * n)`` clauses.

    Each clause selects ``k`` distinct variables uniformly at random and negates
    each independently with probability 1/2, the standard random k-SAT model.
    """
    if k < 1 or k > n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if clause_density <= 0:
        raise ValueError("clause density must be positive")
    rng = np.random.default_rng(seed)
    m = max(1, int(round(clause_density * n)))
    clauses: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    attempts = 0
    while len(clauses) < m:
        attempts += 1
        if attempts > 100 * m and not allow_duplicate_clauses:
            raise RuntimeError("could not generate enough distinct clauses")
        variables = rng.choice(n, size=k, replace=False)
        signs = rng.integers(0, 2, size=k)
        clause = tuple(int((v + 1) * (1 if s else -1)) for v, s in zip(variables, signs))
        clause = tuple(sorted(clause, key=abs))
        if not allow_duplicate_clauses and clause in seen:
            continue
        seen.add(clause)
        clauses.append(clause)
    return SatInstance(n=n, clauses=tuple(clauses))


def count_satisfied(instance: SatInstance, x: np.ndarray) -> int:
    """Number of clauses of ``instance`` satisfied by the assignment ``x``."""
    x = np.asarray(x)
    if x.shape != (instance.n,):
        raise ValueError(f"assignment has shape {x.shape}, expected ({instance.n},)")
    satisfied = 0
    for clause in instance.clauses:
        for lit in clause:
            value = x[abs(lit) - 1]
            if (lit > 0 and value == 1) or (lit < 0 and value == 0):
                satisfied += 1
                break
    return satisfied


def ksat(instance: SatInstance, x: np.ndarray) -> float:
    """Max-k-SAT objective: number of satisfied clauses (scalar API)."""
    return float(count_satisfied(instance, x))


def ksat_values(instance: SatInstance, bits: np.ndarray) -> np.ndarray:
    """Vectorized Max-k-SAT objective over a ``(m, n)`` bit matrix."""
    bits = np.asarray(bits)
    if bits.ndim != 2 or bits.shape[1] != instance.n:
        raise ValueError(f"bit matrix has shape {bits.shape}, expected (*, {instance.n})")
    vars_idx, wanted = instance._literal_arrays()
    # satisfied[state, clause] = any literal matches its wanted value
    lit_vals = bits[:, vars_idx]  # (states, clauses, k)
    matches = lit_vals == wanted[None, :, :]
    return matches.any(axis=2).sum(axis=1).astype(np.float64)


def ksat_optimum(instance: SatInstance) -> float:
    """Exact Max-k-SAT optimum by brute force (intended for n <~ 20)."""
    n = instance.n
    best = 0.0
    chunk = 1 << min(n, 18)
    shifts = np.arange(n, dtype=np.uint64)
    for start in range(0, 1 << n, chunk):
        block = np.arange(start, min(start + chunk, 1 << n), dtype=np.uint64)
        bits = ((block[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.int8)
        vals = ksat_values(instance, bits)
        best = max(best, float(vals.max()))
    return best
