"""MaxCut cost function.

Given a graph ``G = (V, E)`` and a binary string ``x`` (one bit per vertex),
the MaxCut objective counts the edges whose endpoints receive different bits:

    C(x) = sum_{(u,v) in E}  x_u XOR x_v .

This is the primary benchmark problem of the paper (Figures 2-5).  Both a
scalar per-state evaluator (the public API shape from Listing 1) and a
vectorized evaluator over a bit matrix (used by the pre-computation step) are
provided.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .graphs import edge_array

__all__ = ["maxcut", "maxcut_values", "maxcut_optimum", "cut_edges"]


def maxcut(graph: nx.Graph, x: np.ndarray) -> float:
    """Number of edges cut by the bipartition encoded in the 0/1 array ``x``."""
    x = np.asarray(x)
    if x.shape != (graph.number_of_nodes(),):
        raise ValueError(f"state has {x.shape} entries, expected ({graph.number_of_nodes()},)")
    edges = edge_array(graph)
    if edges.size == 0:
        return 0.0
    return float(np.count_nonzero(x[edges[:, 0]] != x[edges[:, 1]]))


def maxcut_values(graph: nx.Graph, bits: np.ndarray) -> np.ndarray:
    """Vectorized MaxCut objective over a ``(m, n)`` bit matrix."""
    bits = np.asarray(bits)
    if bits.ndim != 2 or bits.shape[1] != graph.number_of_nodes():
        raise ValueError(
            f"bit matrix has shape {bits.shape}, expected (*, {graph.number_of_nodes()})"
        )
    edges = edge_array(graph)
    if edges.size == 0:
        return np.zeros(bits.shape[0], dtype=np.float64)
    cut = bits[:, edges[:, 0]] != bits[:, edges[:, 1]]
    return cut.sum(axis=1).astype(np.float64)


def cut_edges(graph: nx.Graph, x: np.ndarray) -> list[tuple[int, int]]:
    """The list of edges cut by ``x`` (useful for inspecting solutions)."""
    x = np.asarray(x)
    edges = edge_array(graph)
    return [(int(u), int(v)) for u, v in edges if x[u] != x[v]]


def maxcut_optimum(graph: nx.Graph) -> float:
    """Exact MaxCut value by brute force (exponential; intended for n <~ 20)."""
    n = graph.number_of_nodes()
    edges = edge_array(graph)
    if edges.size == 0:
        return 0.0
    labels = np.arange(1 << n, dtype=np.uint64)
    best = 0
    # Evaluate in chunks to bound memory for larger n.
    chunk = 1 << min(n, 20)
    for start in range(0, 1 << n, chunk):
        block = labels[start : start + chunk]
        shifts = np.arange(n, dtype=np.uint64)[None, :]
        bits = ((block[:, None] >> shifts) & np.uint64(1)).astype(np.int8)
        vals = (bits[:, edges[:, 0]] != bits[:, edges[:, 1]]).sum(axis=1)
        best = max(best, int(vals.max()))
    return float(best)
