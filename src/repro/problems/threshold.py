"""Threshold phase separators.

A threshold phase separator (Golden et al., "Threshold-Based Quantum
Optimization", QCE'21 — reference [18] of the paper) replaces the objective
value with an indicator of whether it clears a threshold ``t``:

    C_t(x) = 1  if C(x) >= t  (or > t),   else 0 .

Combined with the Grover mixer this reproduces Grover's search as a QAOA
(Sec. 2.4, property 2), and it is one of the "non-traditional QAOA
approaches" JuliQAOA is designed to support out of the box.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "threshold_values",
    "threshold_cost",
    "ThresholdSchedule",
]


def threshold_values(obj_vals: np.ndarray, threshold: float, strict: bool = False) -> np.ndarray:
    """Indicator objective: 1 where ``obj_vals`` clears ``threshold``, else 0.

    Parameters
    ----------
    obj_vals:
        Pre-computed objective values over the feasible space.
    threshold:
        The cutoff ``t``.
    strict:
        If True use ``> t``; otherwise ``>= t`` (the default).
    """
    vals = np.asarray(obj_vals, dtype=np.float64)
    if strict:
        return (vals > threshold).astype(np.float64)
    return (vals >= threshold).astype(np.float64)


def threshold_cost(
    cost: Callable[[np.ndarray], float], threshold: float, strict: bool = False
) -> Callable[[np.ndarray], float]:
    """Wrap a scalar cost function into its thresholded indicator version."""

    def wrapped(x: np.ndarray) -> float:
        value = cost(x)
        if strict:
            return 1.0 if value > threshold else 0.0
        return 1.0 if value >= threshold else 0.0

    wrapped.__name__ = f"threshold_{getattr(cost, '__name__', 'cost')}"
    return wrapped


class ThresholdSchedule:
    """Iteratively raised thresholds for threshold-QAOA style optimization.

    Starting from the minimum objective value, the schedule proposes
    successively larger thresholds chosen from the distinct objective values,
    which is how threshold-based QAOA homes in on the optimum.
    """

    def __init__(self, obj_vals: np.ndarray):
        vals = np.asarray(obj_vals, dtype=np.float64)
        if vals.size == 0:
            raise ValueError("objective values must be non-empty")
        self.distinct = np.unique(vals)
        self._position = 0

    @property
    def current(self) -> float:
        """The current threshold."""
        return float(self.distinct[self._position])

    @property
    def exhausted(self) -> bool:
        """True when the threshold has reached the maximum objective value."""
        return self._position >= len(self.distinct) - 1

    def advance(self) -> float:
        """Move to the next distinct objective value and return it."""
        if not self.exhausted:
            self._position += 1
        return self.current

    def reset(self) -> None:
        """Return to the smallest threshold."""
        self._position = 0

    def __iter__(self):
        for value in self.distinct:
            yield float(value)
