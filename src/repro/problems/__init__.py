"""Cost functions ("phase separators") and workload generators."""

from .densest_subgraph import (
    densest_subgraph,
    densest_subgraph_optimum,
    densest_subgraph_values,
)
from .extra import (
    ising_energy,
    ising_energy_values,
    max_independent_set,
    max_independent_set_values,
    number_partition,
    number_partition_values,
    qubo_value,
    qubo_values,
)
from .graphs import (
    adjacency_matrix,
    complete_graph,
    edge_array,
    erdos_renyi,
    graph_from_edges,
    random_regular,
    ring_graph,
    validate_graph,
)
from .ksat import (
    SatInstance,
    count_satisfied,
    ksat,
    ksat_optimum,
    ksat_values,
    random_ksat,
)
from .maxcut import cut_edges, maxcut, maxcut_optimum, maxcut_values
from .registry import PROBLEM_NAMES, ProblemInstance, make_problem
from .threshold import ThresholdSchedule, threshold_cost, threshold_values
from .vertex_cover import (
    uncovered_edges,
    vertex_cover,
    vertex_cover_optimum,
    vertex_cover_values,
)
from .weighted import (
    edge_weights,
    random_weighted_graph,
    weighted_maxcut,
    weighted_maxcut_optimum,
    weighted_maxcut_values,
)

__all__ = [
    "densest_subgraph",
    "densest_subgraph_optimum",
    "densest_subgraph_values",
    "ising_energy",
    "ising_energy_values",
    "max_independent_set",
    "max_independent_set_values",
    "number_partition",
    "number_partition_values",
    "qubo_value",
    "qubo_values",
    "adjacency_matrix",
    "complete_graph",
    "edge_array",
    "erdos_renyi",
    "graph_from_edges",
    "random_regular",
    "ring_graph",
    "validate_graph",
    "SatInstance",
    "count_satisfied",
    "ksat",
    "ksat_optimum",
    "ksat_values",
    "random_ksat",
    "cut_edges",
    "maxcut",
    "maxcut_optimum",
    "maxcut_values",
    "PROBLEM_NAMES",
    "ProblemInstance",
    "make_problem",
    "ThresholdSchedule",
    "threshold_cost",
    "threshold_values",
    "uncovered_edges",
    "vertex_cover",
    "vertex_cover_optimum",
    "vertex_cover_values",
    "edge_weights",
    "random_weighted_graph",
    "weighted_maxcut",
    "weighted_maxcut_optimum",
    "weighted_maxcut_values",
]
