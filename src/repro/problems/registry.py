"""Uniform problem descriptions and a name-based registry.

The simulator itself only ever consumes a vector of pre-computed objective
values over a feasible space (the paper's central design decision).  For the
benchmark harness and examples it is convenient to bundle together a cost
function, its vectorized form, the feasible space it is meant to be evaluated
on and its brute-force optimum.  :class:`ProblemInstance` provides that
bundle, and :func:`make_problem` builds the standard instances used in the
paper's figures from a name plus a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import networkx as nx
import numpy as np

from ..hilbert.subspace import DickeSpace, FeasibleSpace, FullSpace
from .densest_subgraph import densest_subgraph as _densest_subgraph
from .densest_subgraph import densest_subgraph_values as _densest_subgraph_values
from .extra import ising_energy as _ising_energy
from .extra import ising_energy_values as _ising_energy_values
from .extra import max_independent_set as _max_independent_set
from .extra import max_independent_set_values as _max_independent_set_values
from .extra import number_partition as _number_partition
from .extra import number_partition_values as _number_partition_values
from .extra import qubo_value as _qubo_value
from .extra import qubo_values as _qubo_values
from .graphs import erdos_renyi
from .ksat import ksat as _ksat
from .ksat import ksat_values as _ksat_values
from .ksat import random_ksat as _random_ksat
from .maxcut import maxcut as _maxcut
from .maxcut import maxcut_values as _maxcut_values
from .vertex_cover import vertex_cover as _vertex_cover
from .vertex_cover import vertex_cover_values as _vertex_cover_values

__all__ = ["ProblemInstance", "make_problem", "PROBLEM_NAMES"]

PROBLEM_NAMES = (
    "maxcut",
    "ksat",
    "densest_subgraph",
    "vertex_cover",
    "max_independent_set",
    "number_partition",
    "ising",
    "qubo",
)


@dataclass
class ProblemInstance:
    """A concrete optimization problem instance ready for QAOA simulation.

    Attributes
    ----------
    name:
        Problem family name (e.g. ``"maxcut"``).
    space:
        The feasible space the objective is evaluated over.
    cost:
        Scalar cost function ``cost(x) -> float`` over 0/1 arrays.
    cost_vectorized:
        Vectorized cost over a ``(m, n)`` bit matrix.
    maximize:
        Whether the objective is to be maximized (all paper problems are).
    metadata:
        Free-form description of the instance (graph, clauses, seed, ...).
    """

    name: str
    space: FeasibleSpace
    cost: Callable[[np.ndarray], float]
    cost_vectorized: Callable[[np.ndarray], np.ndarray]
    maximize: bool = True
    metadata: dict = field(default_factory=dict)
    _cache: dict = field(default_factory=dict, repr=False)

    @property
    def n(self) -> int:
        """Number of qubits."""
        return self.space.n

    def objective_values(self) -> np.ndarray:
        """Objective values across the feasible space (cached)."""
        if "obj_vals" not in self._cache:
            self._cache["obj_vals"] = self.space.evaluate_vectorized(self.cost_vectorized)
        return self._cache["obj_vals"]

    def optimum(self) -> float:
        """Best objective value over the feasible space."""
        vals = self.objective_values()
        return float(vals.max() if self.maximize else vals.min())

    def optimal_states(self) -> np.ndarray:
        """Full-space labels of the optimal feasible states."""
        vals = self.objective_values()
        target = vals.max() if self.maximize else vals.min()
        return self.space.labels[np.isclose(vals, target)]

    def approximation_ratio(self, expectation: float) -> float:
        """``expectation / optimum`` (for maximization problems with a positive optimum)."""
        opt = self.optimum()
        if opt == 0:
            raise ZeroDivisionError("optimum is zero; approximation ratio undefined")
        return float(expectation) / opt


def make_problem(
    name: str,
    n: int,
    seed: int = 0,
    *,
    k: int | None = None,
    edge_probability: float = 0.5,
    clause_density: float = 6.0,
    sat_k: int = 3,
    penalty: float = 2.0,
) -> ProblemInstance:
    """Construct a registered benchmark problem instance by name.

    Covers the paper's four figure families (``"maxcut"``, ``"ksat"``,
    ``"densest_subgraph"``, ``"vertex_cover"``) plus the extra objectives of
    :mod:`repro.problems.extra` (``"max_independent_set"``,
    ``"number_partition"``, ``"ising"``, ``"qubo"``), whose random instances
    are regenerated deterministically from ``seed``.  Name lookup is
    case-insensitive.

    Parameters
    ----------
    name:
        One of :data:`PROBLEM_NAMES` (case-insensitive).
    n:
        Number of qubits (variables / vertices).
    seed:
        Seed for the random instance.
    k:
        Hamming-weight constraint for the constrained problems (defaults to n // 2,
        matching the paper's k = 6 at n = 12).
    edge_probability:
        Erdos–Renyi edge probability (paper uses 0.5).
    clause_density, sat_k:
        Random SAT parameters (paper uses density 6, 3-SAT).
    penalty:
        Edge-violation penalty of the unconstrained Max-Independent-Set
        formulation.
    """
    name = str(name).lower()
    if name not in PROBLEM_NAMES:
        raise ValueError(f"unknown problem {name!r}; choose from {sorted(PROBLEM_NAMES)}")

    if name == "maxcut":
        graph = erdos_renyi(n, edge_probability, seed=seed)
        return ProblemInstance(
            name="maxcut",
            space=FullSpace(n),
            cost=lambda x, g=graph: _maxcut(g, x),
            cost_vectorized=lambda bits, g=graph: _maxcut_values(g, bits),
            metadata={"graph": graph, "seed": seed, "edge_probability": edge_probability},
        )

    if name == "ksat":
        instance = _random_ksat(n, k=sat_k, clause_density=clause_density, seed=seed)
        return ProblemInstance(
            name="ksat",
            space=FullSpace(n),
            cost=lambda x, inst=instance: _ksat(inst, x),
            cost_vectorized=lambda bits, inst=instance: _ksat_values(inst, bits),
            metadata={
                "instance": instance,
                "seed": seed,
                "clause_density": clause_density,
                "k": sat_k,
            },
        )

    if name == "max_independent_set":
        graph = erdos_renyi(n, edge_probability, seed=seed)
        return ProblemInstance(
            name="max_independent_set",
            space=FullSpace(n),
            cost=lambda x, g=graph, w=penalty: _max_independent_set(g, x, penalty=w),
            cost_vectorized=lambda bits, g=graph, w=penalty: _max_independent_set_values(
                g, bits, penalty=w
            ),
            metadata={
                "graph": graph,
                "seed": seed,
                "penalty": penalty,
                "edge_probability": edge_probability,
            },
        )

    if name == "number_partition":
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.1, 1.0, size=n)
        return ProblemInstance(
            name="number_partition",
            space=FullSpace(n),
            cost=lambda x, w=weights: _number_partition(w, x),
            cost_vectorized=lambda bits, w=weights: _number_partition_values(w, bits),
            metadata={"weights": weights, "seed": seed},
        )

    if name == "ising":
        rng = np.random.default_rng(seed)
        h = rng.uniform(-1.0, 1.0, size=n)
        J = np.triu(rng.uniform(-1.0, 1.0, size=(n, n)), k=1)
        return ProblemInstance(
            name="ising",
            space=FullSpace(n),
            cost=lambda x, hh=h, jj=J: _ising_energy(hh, jj, x),
            cost_vectorized=lambda bits, hh=h, jj=J: _ising_energy_values(hh, jj, bits),
            maximize=False,  # the classical convention: minimize the energy
            metadata={"h": h, "J": J, "seed": seed},
        )

    if name == "qubo":
        rng = np.random.default_rng(seed)
        Q = rng.uniform(-1.0, 1.0, size=(n, n))
        Q = (Q + Q.T) / 2.0
        return ProblemInstance(
            name="qubo",
            space=FullSpace(n),
            cost=lambda x, q=Q: _qubo_value(q, x),
            cost_vectorized=lambda bits, q=Q: _qubo_values(q, bits),
            metadata={"Q": Q, "seed": seed},
        )

    if k is None:
        k = n // 2

    if name == "densest_subgraph":
        graph = erdos_renyi(n, edge_probability, seed=seed)
        return ProblemInstance(
            name="densest_subgraph",
            space=DickeSpace(n, k),
            cost=lambda x, g=graph: _densest_subgraph(g, x),
            cost_vectorized=lambda bits, g=graph: _densest_subgraph_values(g, bits),
            metadata={"graph": graph, "seed": seed, "k": k, "edge_probability": edge_probability},
        )

    # vertex_cover
    graph = erdos_renyi(n, edge_probability, seed=seed)
    return ProblemInstance(
        name="vertex_cover",
        space=DickeSpace(n, k),
        cost=lambda x, g=graph: _vertex_cover(g, x),
        cost_vectorized=lambda bits, g=graph: _vertex_cover_values(g, bits),
        metadata={"graph": graph, "seed": seed, "k": k, "edge_probability": edge_probability},
    )
