"""Uniform problem descriptions and a name-based registry.

The simulator itself only ever consumes a vector of pre-computed objective
values over a feasible space (the paper's central design decision).  For the
benchmark harness and examples it is convenient to bundle together a cost
function, its vectorized form, the feasible space it is meant to be evaluated
on and its brute-force optimum.  :class:`ProblemInstance` provides that
bundle, and :func:`make_problem` builds the standard instances used in the
paper's figures from a name plus a seed.

Large-n execution paths (sharded statevectors, the compressed Grover
simulator) cannot afford to materialize the feasible space's ``2^n`` label
array just to know what the cost function is.  :func:`make_problem_structure`
therefore exposes the *space-free* half of the construction — the cost
callables, the optimization sense and the (n, k) geometry — as a
:class:`ProblemStructure`; :func:`make_problem` is now a thin wrapper that
attaches the eager space on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import comb
from typing import Callable

import networkx as nx  # noqa: F401  (re-exported context for metadata graphs)
import numpy as np

from ..hilbert.subspace import DickeSpace, FeasibleSpace, FullSpace
from .densest_subgraph import densest_subgraph as _densest_subgraph
from .densest_subgraph import densest_subgraph_values as _densest_subgraph_values
from .extra import ising_energy as _ising_energy
from .extra import ising_energy_values as _ising_energy_values
from .extra import max_independent_set as _max_independent_set
from .extra import max_independent_set_values as _max_independent_set_values
from .extra import number_partition as _number_partition
from .extra import number_partition_values as _number_partition_values
from .extra import qubo_value as _qubo_value
from .extra import qubo_values as _qubo_values
from .graphs import erdos_renyi
from .ksat import ksat as _ksat
from .ksat import ksat_values as _ksat_values
from .ksat import random_ksat as _random_ksat
from .maxcut import maxcut as _maxcut
from .maxcut import maxcut_values as _maxcut_values
from .vertex_cover import vertex_cover as _vertex_cover
from .vertex_cover import vertex_cover_values as _vertex_cover_values

__all__ = [
    "ProblemInstance",
    "ProblemStructure",
    "make_problem",
    "make_problem_structure",
    "PROBLEM_NAMES",
]

PROBLEM_NAMES = (
    "maxcut",
    "ksat",
    "densest_subgraph",
    "vertex_cover",
    "max_independent_set",
    "number_partition",
    "ising",
    "qubo",
    "hamming",
)


@dataclass
class ProblemStructure:
    """The space-free description of a problem instance.

    Everything :func:`make_problem` derives deterministically from
    ``(name, n, seed, params)`` *except* the materialized feasible space:
    the cost callables, the optimization sense and the geometry.  This is
    what the sharded and compressed execution paths consume — they can ask
    for ``dim`` without ever allocating a ``2^n`` label array.

    Attributes
    ----------
    name:
        Problem family name (e.g. ``"maxcut"``).
    n:
        Number of qubits.
    k:
        Hamming-weight constraint for Dicke-space problems, ``None`` for
        full-space problems.
    cost / cost_vectorized / maximize / metadata:
        As on :class:`ProblemInstance`.
    value_of_weight:
        Optional analytic hook ``w -> C(x)`` for objectives that depend on a
        bitstring only through its Hamming weight.  When present the full
        value spectrum (distinct values + binomial degeneracies) is known in
        closed form for *any* n — the key that unlocks compressed Grover
        simulation far beyond enumerable dimensions.
    """

    name: str
    n: int
    k: int | None
    cost: Callable[[np.ndarray], float]
    cost_vectorized: Callable[[np.ndarray], np.ndarray]
    maximize: bool = True
    metadata: dict = field(default_factory=dict)
    value_of_weight: Callable[[int], float] | None = None

    @property
    def dim(self) -> int:
        """Feasible-space dimension — computed, never materialized."""
        if self.k is None:
            return 1 << self.n
        return comb(self.n, self.k)

    def build_space(self) -> FeasibleSpace:
        """Materialize the feasible space (the eager ``make_problem`` half)."""
        if self.k is None:
            return FullSpace(self.n)
        return DickeSpace(self.n, self.k)


@dataclass
class ProblemInstance:
    """A concrete optimization problem instance ready for QAOA simulation.

    Attributes
    ----------
    name:
        Problem family name (e.g. ``"maxcut"``).
    space:
        The feasible space the objective is evaluated over.
    cost:
        Scalar cost function ``cost(x) -> float`` over 0/1 arrays.
    cost_vectorized:
        Vectorized cost over a ``(m, n)`` bit matrix.
    maximize:
        Whether the objective is to be maximized (all paper problems are).
    metadata:
        Free-form description of the instance (graph, clauses, seed, ...).
    """

    name: str
    space: FeasibleSpace
    cost: Callable[[np.ndarray], float]
    cost_vectorized: Callable[[np.ndarray], np.ndarray]
    maximize: bool = True
    metadata: dict = field(default_factory=dict)
    _cache: dict = field(default_factory=dict, repr=False)

    @property
    def n(self) -> int:
        """Number of qubits."""
        return self.space.n

    def objective_values(self) -> np.ndarray:
        """Objective values across the feasible space (cached)."""
        if "obj_vals" not in self._cache:
            self._cache["obj_vals"] = self.space.evaluate_vectorized(self.cost_vectorized)
        return self._cache["obj_vals"]

    def optimum(self) -> float:
        """Best objective value over the feasible space."""
        vals = self.objective_values()
        return float(vals.max() if self.maximize else vals.min())

    def optimal_states(self) -> np.ndarray:
        """Full-space labels of the optimal feasible states."""
        vals = self.objective_values()
        target = vals.max() if self.maximize else vals.min()
        return self.space.labels[np.isclose(vals, target)]

    def approximation_ratio(self, expectation: float) -> float:
        """``expectation / optimum`` (for maximization problems with a positive optimum)."""
        opt = self.optimum()
        if opt == 0:
            raise ZeroDivisionError("optimum is zero; approximation ratio undefined")
        return float(expectation) / opt


def make_problem_structure(
    name: str,
    n: int,
    seed: int = 0,
    *,
    k: int | None = None,
    edge_probability: float = 0.5,
    clause_density: float = 6.0,
    sat_k: int = 3,
    penalty: float = 2.0,
) -> ProblemStructure:
    """Construct the space-free :class:`ProblemStructure` of a registered family.

    Deterministic in ``(name, n, seed, params)`` exactly like
    :func:`make_problem` (which wraps this), but never touches a ``2^n``
    array — safe to call at any n the large-scale execution paths support.
    """
    name = str(name).lower()
    if name not in PROBLEM_NAMES:
        raise ValueError(f"unknown problem {name!r}; choose from {sorted(PROBLEM_NAMES)}")

    if name == "maxcut":
        graph = erdos_renyi(n, edge_probability, seed=seed)
        return ProblemStructure(
            name="maxcut",
            n=n,
            k=None,
            cost=lambda x, g=graph: _maxcut(g, x),
            cost_vectorized=lambda bits, g=graph: _maxcut_values(g, bits),
            metadata={"graph": graph, "seed": seed, "edge_probability": edge_probability},
        )

    if name == "ksat":
        instance = _random_ksat(n, k=sat_k, clause_density=clause_density, seed=seed)
        return ProblemStructure(
            name="ksat",
            n=n,
            k=None,
            cost=lambda x, inst=instance: _ksat(inst, x),
            cost_vectorized=lambda bits, inst=instance: _ksat_values(inst, bits),
            metadata={
                "instance": instance,
                "seed": seed,
                "clause_density": clause_density,
                "k": sat_k,
            },
        )

    if name == "max_independent_set":
        graph = erdos_renyi(n, edge_probability, seed=seed)
        return ProblemStructure(
            name="max_independent_set",
            n=n,
            k=None,
            cost=lambda x, g=graph, w=penalty: _max_independent_set(g, x, penalty=w),
            cost_vectorized=lambda bits, g=graph, w=penalty: _max_independent_set_values(
                g, bits, penalty=w
            ),
            metadata={
                "graph": graph,
                "seed": seed,
                "penalty": penalty,
                "edge_probability": edge_probability,
            },
        )

    if name == "number_partition":
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.1, 1.0, size=n)
        return ProblemStructure(
            name="number_partition",
            n=n,
            k=None,
            cost=lambda x, w=weights: _number_partition(w, x),
            cost_vectorized=lambda bits, w=weights: _number_partition_values(w, bits),
            metadata={"weights": weights, "seed": seed},
        )

    if name == "ising":
        rng = np.random.default_rng(seed)
        h = rng.uniform(-1.0, 1.0, size=n)
        J = np.triu(rng.uniform(-1.0, 1.0, size=(n, n)), k=1)
        return ProblemStructure(
            name="ising",
            n=n,
            k=None,
            cost=lambda x, hh=h, jj=J: _ising_energy(hh, jj, x),
            cost_vectorized=lambda bits, hh=h, jj=J: _ising_energy_values(hh, jj, bits),
            maximize=False,  # the classical convention: minimize the energy
            metadata={"h": h, "J": J, "seed": seed},
        )

    if name == "qubo":
        rng = np.random.default_rng(seed)
        Q = rng.uniform(-1.0, 1.0, size=(n, n))
        Q = (Q + Q.T) / 2.0
        return ProblemStructure(
            name="qubo",
            n=n,
            k=None,
            cost=lambda x, q=Q: _qubo_value(q, x),
            cost_vectorized=lambda bits, q=Q: _qubo_values(q, bits),
            metadata={"Q": Q, "seed": seed},
        )

    if name == "hamming":
        # C(x) = w(x) * (n - w(x)): the balanced-weight objective.  It depends
        # on a bitstring only through its Hamming weight, so the full value
        # spectrum is analytic (binomial degeneracies) at any n — the
        # reference workload for compressed Grover simulation.
        return ProblemStructure(
            name="hamming",
            n=n,
            k=None,
            cost=lambda x, nn=n: float(int(np.sum(x)) * (nn - int(np.sum(x)))),
            cost_vectorized=lambda bits, nn=n: (
                bits.sum(axis=1) * (nn - bits.sum(axis=1))
            ).astype(np.float64),
            metadata={"seed": seed},
            value_of_weight=lambda w, nn=n: float(w * (nn - w)),
        )

    if k is None:
        k = n // 2

    if name == "densest_subgraph":
        graph = erdos_renyi(n, edge_probability, seed=seed)
        return ProblemStructure(
            name="densest_subgraph",
            n=n,
            k=k,
            cost=lambda x, g=graph: _densest_subgraph(g, x),
            cost_vectorized=lambda bits, g=graph: _densest_subgraph_values(g, bits),
            metadata={"graph": graph, "seed": seed, "k": k, "edge_probability": edge_probability},
        )

    # vertex_cover
    graph = erdos_renyi(n, edge_probability, seed=seed)
    return ProblemStructure(
        name="vertex_cover",
        n=n,
        k=k,
        cost=lambda x, g=graph: _vertex_cover(g, x),
        cost_vectorized=lambda bits, g=graph: _vertex_cover_values(g, bits),
        metadata={"graph": graph, "seed": seed, "k": k, "edge_probability": edge_probability},
    )


def make_problem(
    name: str,
    n: int,
    seed: int = 0,
    *,
    k: int | None = None,
    edge_probability: float = 0.5,
    clause_density: float = 6.0,
    sat_k: int = 3,
    penalty: float = 2.0,
) -> ProblemInstance:
    """Construct a registered benchmark problem instance by name.

    Covers the paper's four figure families (``"maxcut"``, ``"ksat"``,
    ``"densest_subgraph"``, ``"vertex_cover"``) plus the extra objectives of
    :mod:`repro.problems.extra` (``"max_independent_set"``,
    ``"number_partition"``, ``"ising"``, ``"qubo"``) and the analytic
    ``"hamming"`` balanced-weight objective, whose random instances are
    regenerated deterministically from ``seed``.  Name lookup is
    case-insensitive.

    Parameters
    ----------
    name:
        One of :data:`PROBLEM_NAMES` (case-insensitive).
    n:
        Number of qubits (variables / vertices).
    seed:
        Seed for the random instance.
    k:
        Hamming-weight constraint for the constrained problems (defaults to n // 2,
        matching the paper's k = 6 at n = 12).
    edge_probability:
        Erdos–Renyi edge probability (paper uses 0.5).
    clause_density, sat_k:
        Random SAT parameters (paper uses density 6, 3-SAT).
    penalty:
        Edge-violation penalty of the unconstrained Max-Independent-Set
        formulation.
    """
    structure = make_problem_structure(
        name,
        n,
        seed,
        k=k,
        edge_probability=edge_probability,
        clause_density=clause_density,
        sat_k=sat_k,
        penalty=penalty,
    )
    return ProblemInstance(
        name=structure.name,
        space=structure.build_space(),
        cost=structure.cost,
        cost_vectorized=structure.cost_vectorized,
        maximize=structure.maximize,
        metadata=structure.metadata,
    )
