"""Additional cost functions beyond the four benchmarked in the paper.

The paper stresses (Sec. 4) that only a list of objective values is needed, so
"researchers can explore arbitrarily complicated or synthetic optimization
functions".  These extra objectives exercise that flexibility and are used in
tests and examples:

* Max Independent Set (penalized, unconstrained formulation),
* number partitioning,
* generic Ising / QUBO objectives,
* arbitrary user-supplied callables wrapped uniformly.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from .graphs import edge_array

__all__ = [
    "max_independent_set",
    "max_independent_set_values",
    "number_partition",
    "number_partition_values",
    "ising_energy",
    "ising_energy_values",
    "qubo_value",
    "qubo_values",
]


# ---------------------------------------------------------------------------
# Max Independent Set (penalized unconstrained formulation)
# ---------------------------------------------------------------------------

def max_independent_set(graph: nx.Graph, x: np.ndarray, penalty: float = 2.0) -> float:
    """Penalized Max-Independent-Set objective ``|S| - penalty * (#violated edges)``.

    ``S`` is the set of vertices with bit 1; an edge is violated when both its
    endpoints are selected.  With ``penalty > 1`` the optima of this
    unconstrained objective coincide with maximum independent sets.
    """
    x = np.asarray(x)
    if x.shape != (graph.number_of_nodes(),):
        raise ValueError(f"state has {x.shape} entries, expected ({graph.number_of_nodes()},)")
    edges = edge_array(graph)
    size = float(np.count_nonzero(x == 1))
    if edges.size == 0:
        return size
    violations = float(np.count_nonzero((x[edges[:, 0]] == 1) & (x[edges[:, 1]] == 1)))
    return size - penalty * violations


def max_independent_set_values(
    graph: nx.Graph, bits: np.ndarray, penalty: float = 2.0
) -> np.ndarray:
    """Vectorized penalized Max-Independent-Set objective."""
    bits = np.asarray(bits)
    edges = edge_array(graph)
    size = (bits == 1).sum(axis=1).astype(np.float64)
    if edges.size == 0:
        return size
    violations = ((bits[:, edges[:, 0]] == 1) & (bits[:, edges[:, 1]] == 1)).sum(axis=1)
    return size - penalty * violations.astype(np.float64)


# ---------------------------------------------------------------------------
# Number partitioning
# ---------------------------------------------------------------------------

def number_partition(weights: Sequence[float], x: np.ndarray) -> float:
    """Negated squared imbalance of the partition encoded by ``x``.

    Items with bit 1 go to one side, bit 0 to the other; the objective is
    ``-(sum_i s_i w_i)^2`` with ``s_i = 2 x_i - 1``, so perfect partitions have
    objective 0 and everything else is negative (a maximization problem).
    """
    w = np.asarray(weights, dtype=np.float64)
    x = np.asarray(x)
    if x.shape != w.shape:
        raise ValueError(f"state has shape {x.shape}, expected {w.shape}")
    signs = 2.0 * x - 1.0
    imbalance = float(np.dot(signs, w))
    return -(imbalance**2)


def number_partition_values(weights: Sequence[float], bits: np.ndarray) -> np.ndarray:
    """Vectorized number-partitioning objective."""
    w = np.asarray(weights, dtype=np.float64)
    bits = np.asarray(bits)
    if bits.ndim != 2 or bits.shape[1] != w.shape[0]:
        raise ValueError(f"bit matrix has shape {bits.shape}, expected (*, {w.shape[0]})")
    signs = 2.0 * bits - 1.0
    imbalance = signs @ w
    return -(imbalance**2)


# ---------------------------------------------------------------------------
# Ising / QUBO
# ---------------------------------------------------------------------------

def ising_energy(h: np.ndarray, J: np.ndarray, x: np.ndarray) -> float:
    """Classical Ising energy ``sum_i h_i s_i + sum_{i<j} J_ij s_i s_j`` with ``s = 2x - 1``."""
    h = np.asarray(h, dtype=np.float64)
    J = np.asarray(J, dtype=np.float64)
    x = np.asarray(x)
    n = h.shape[0]
    if J.shape != (n, n):
        raise ValueError(f"J has shape {J.shape}, expected ({n},{n})")
    if x.shape != (n,):
        raise ValueError(f"state has shape {x.shape}, expected ({n},)")
    s = 2.0 * x - 1.0
    upper = np.triu(J, k=1)
    return float(h @ s + s @ upper @ s)


def ising_energy_values(h: np.ndarray, J: np.ndarray, bits: np.ndarray) -> np.ndarray:
    """Vectorized Ising energy over a ``(m, n)`` bit matrix."""
    h = np.asarray(h, dtype=np.float64)
    J = np.asarray(J, dtype=np.float64)
    bits = np.asarray(bits)
    n = h.shape[0]
    if bits.ndim != 2 or bits.shape[1] != n:
        raise ValueError(f"bit matrix has shape {bits.shape}, expected (*, {n})")
    s = 2.0 * bits - 1.0
    upper = np.triu(J, k=1)
    return s @ h + np.einsum("si,ij,sj->s", s, upper, s)


def qubo_value(Q: np.ndarray, x: np.ndarray) -> float:
    """QUBO objective ``x^T Q x`` for a 0/1 vector ``x``."""
    Q = np.asarray(Q, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    n = Q.shape[0]
    if Q.shape != (n, n):
        raise ValueError("Q must be square")
    if x.shape != (n,):
        raise ValueError(f"state has shape {x.shape}, expected ({n},)")
    return float(x @ Q @ x)


def qubo_values(Q: np.ndarray, bits: np.ndarray) -> np.ndarray:
    """Vectorized QUBO objective over a ``(m, n)`` bit matrix."""
    Q = np.asarray(Q, dtype=np.float64)
    bits = np.asarray(bits, dtype=np.float64)
    if bits.ndim != 2 or bits.shape[1] != Q.shape[0]:
        raise ValueError(f"bit matrix has shape {bits.shape}, expected (*, {Q.shape[0]})")
    return np.einsum("si,ij,sj->s", bits, Q, bits)
