"""Weighted-graph objectives.

The paper's experiments use unweighted G(n, 0.5) graphs, but nothing in the
simulator depends on integer objective values — the pre-computation step just
needs a vector of floats.  Weighted MaxCut exercises exactly that flexibility
(and is the form used by warm-start and parameter-concentration studies), so
it is provided alongside a seeded weighted-graph generator.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .graphs import edge_array, validate_graph

__all__ = [
    "random_weighted_graph",
    "edge_weights",
    "weighted_maxcut",
    "weighted_maxcut_values",
    "weighted_maxcut_optimum",
]


def random_weighted_graph(
    n: int,
    p: float,
    seed: int | None = None,
    *,
    low: float = 0.0,
    high: float = 1.0,
) -> nx.Graph:
    """Erdos–Renyi graph whose edges carry uniform random weights in ``[low, high)``."""
    if high <= low:
        raise ValueError("weight range must satisfy high > low")
    rng = np.random.default_rng(seed)
    graph = nx.gnp_random_graph(n, p, seed=seed)
    validate_graph(graph)
    for u, v in graph.edges():
        graph[u][v]["weight"] = float(rng.uniform(low, high))
    return graph


def edge_weights(graph: nx.Graph) -> np.ndarray:
    """Edge weights aligned with :func:`repro.problems.graphs.edge_array` order.

    Missing weights default to 1.0, so unweighted graphs behave exactly as
    with the plain MaxCut objective.
    """
    edges = edge_array(graph)
    weights = np.ones(len(edges), dtype=np.float64)
    for idx, (u, v) in enumerate(edges):
        weights[idx] = float(graph[int(u)][int(v)].get("weight", 1.0))
    return weights


def weighted_maxcut(graph: nx.Graph, x: np.ndarray) -> float:
    """Total weight of the edges cut by the bipartition encoded in ``x``."""
    x = np.asarray(x)
    if x.shape != (graph.number_of_nodes(),):
        raise ValueError(f"state has {x.shape} entries, expected ({graph.number_of_nodes()},)")
    edges = edge_array(graph)
    if edges.size == 0:
        return 0.0
    cut = x[edges[:, 0]] != x[edges[:, 1]]
    return float(np.dot(cut.astype(np.float64), edge_weights(graph)))


def weighted_maxcut_values(graph: nx.Graph, bits: np.ndarray) -> np.ndarray:
    """Vectorized weighted-MaxCut objective over a ``(m, n)`` bit matrix."""
    bits = np.asarray(bits)
    if bits.ndim != 2 or bits.shape[1] != graph.number_of_nodes():
        raise ValueError(
            f"bit matrix has shape {bits.shape}, expected (*, {graph.number_of_nodes()})"
        )
    edges = edge_array(graph)
    if edges.size == 0:
        return np.zeros(bits.shape[0], dtype=np.float64)
    cut = (bits[:, edges[:, 0]] != bits[:, edges[:, 1]]).astype(np.float64)
    return cut @ edge_weights(graph)


def weighted_maxcut_optimum(graph: nx.Graph) -> float:
    """Exact weighted-MaxCut optimum by brute force (intended for n <~ 20)."""
    from ..hilbert.bitops import ints_to_bit_matrix

    n = graph.number_of_nodes()
    best = 0.0
    chunk = 1 << min(n, 18)
    for start in range(0, 1 << n, chunk):
        block = np.arange(start, min(start + chunk, 1 << n), dtype=np.int64)
        vals = weighted_maxcut_values(graph, ints_to_bit_matrix(block, n))
        best = max(best, float(vals.max()))
    return best
