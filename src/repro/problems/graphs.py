"""Seeded random-graph workload generators.

The paper's experiments use Erdos–Renyi ``G(n, 0.5)`` graphs (Figs. 2–5) and
mention 3-regular graphs as the standard MaxCut benchmark family.  All
generators here take an explicit seed so that every benchmark row is
reproducible, and return plain ``networkx.Graph`` objects with nodes labelled
``0 .. n-1``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx
import numpy as np

__all__ = [
    "erdos_renyi",
    "random_regular",
    "complete_graph",
    "ring_graph",
    "edge_array",
    "graph_from_edges",
    "adjacency_matrix",
    "validate_graph",
]


def validate_graph(graph: nx.Graph) -> nx.Graph:
    """Check that a graph has integer nodes ``0..n-1`` and no self-loops."""
    n = graph.number_of_nodes()
    nodes = set(graph.nodes())
    if nodes != set(range(n)):
        raise ValueError("graph nodes must be exactly 0..n-1")
    if any(u == v for u, v in graph.edges()):
        raise ValueError("graph must not contain self-loops")
    return graph


def erdos_renyi(n: int, p: float, seed: int | None = None) -> nx.Graph:
    """Erdos–Renyi ``G(n, p)`` graph with nodes ``0..n-1``.

    Matches the ``erdos_renyi(n, 0.5)`` workloads of the paper's Figures 2-5.
    """
    if n < 1:
        raise ValueError("graph must have at least one node")
    if not 0.0 <= p <= 1.0:
        raise ValueError("edge probability must be in [0, 1]")
    g = nx.gnp_random_graph(n, p, seed=seed)
    return validate_graph(g)


def random_regular(n: int, d: int, seed: int | None = None) -> nx.Graph:
    """Random ``d``-regular graph (the MaxCut family used by circuit-simulator studies)."""
    if n * d % 2 != 0:
        raise ValueError("n * d must be even for a d-regular graph to exist")
    g = nx.random_regular_graph(d, n, seed=seed)
    return validate_graph(nx.Graph(g))


def complete_graph(n: int) -> nx.Graph:
    """Complete graph on ``n`` nodes."""
    return validate_graph(nx.complete_graph(n))


def ring_graph(n: int) -> nx.Graph:
    """Cycle graph on ``n`` nodes (used for the Ring mixer's interaction pattern)."""
    return validate_graph(nx.cycle_graph(n))


def graph_from_edges(n: int, edges: Iterable[tuple[int, int]]) -> nx.Graph:
    """Build a graph on nodes ``0..n-1`` from an explicit edge list."""
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for u, v in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u},{v}) out of range for n={n}")
        if u == v:
            raise ValueError("self-loops are not allowed")
        g.add_edge(u, v)
    return g


def edge_array(graph: nx.Graph) -> np.ndarray:
    """Edges of a graph as an ``(m, 2)`` integer array (sorted, deterministic order)."""
    validate_graph(graph)
    edges = sorted((min(u, v), max(u, v)) for u, v in graph.edges())
    if not edges:
        return np.zeros((0, 2), dtype=np.int64)
    return np.array(edges, dtype=np.int64)


def adjacency_matrix(graph: nx.Graph) -> np.ndarray:
    """Dense symmetric 0/1 adjacency matrix of a graph."""
    validate_graph(graph)
    n = graph.number_of_nodes()
    adj = np.zeros((n, n), dtype=np.float64)
    for u, v in graph.edges():
        adj[u, v] = 1.0
        adj[v, u] = 1.0
    return adj
