"""Anytime portfolio subsystem: budgets, shared incumbents, strategy racing.

The budget primitives (:class:`Budget`, :class:`IncumbentBoard`) are imported
eagerly — the :mod:`repro.angles` kernels depend on them, so they must stay
import-cycle-free.  The racing layer re-enters the strategy registry (which
imports the angles package), so it is re-exported lazily: the first attribute
access imports :mod:`repro.portfolio.racing`, long after the package graph
has settled.
"""

from .budget import Budget, IncumbentBoard

__all__ = [
    "Budget",
    "IncumbentBoard",
    "DEFAULT_RACERS",
    "PortfolioResult",
    "race_portfolio",
    "racer_rng",
    "racer_seed_key",
]

_RACING_EXPORTS = {
    "DEFAULT_RACERS",
    "PortfolioResult",
    "race_portfolio",
    "racer_rng",
    "racer_seed_key",
}


def __getattr__(name: str):
    if name in _RACING_EXPORTS:
        from . import racing

        return getattr(racing, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
