"""Deadline-aware strategy racing with a shared incumbent.

:func:`race_portfolio` runs several registered angle strategies concurrently
inside one process (one thread per racer, each evaluating its own
:meth:`~repro.core.ansatz.QAOAAnsatz.sibling` so the cost table and mixer
schedule are shared but the mutable scratch is not) against one wall-clock
deadline.  Racers publish every improvement to a shared
:class:`~repro.portfolio.budget.IncumbentBoard`; a monitor cancels racers
that provably — incumbent already at the known optimum — or, optionally, by a
generous linear extrapolation of their own improvement rate, cannot beat the
incumbent with their remaining budget.  The race ends when every racer
converges, the incumbent hits the optimum, or the deadline passes; the result
is the best incumbent plus the full anytime curve.

Determinism: each racer draws from a seed derived only from ``(base seed,
racer index)`` (:func:`racer_rng`), so a racer inside the portfolio is
bit-identical to the same strategy run standalone with that derived seed, and
the winner is picked by value (with the repo's standard fp-noise tolerance,
ties to the lowest racer index) — never by publish timing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..angles.result import AngleResult
from ..core.ansatz import QAOAAnsatz
from .budget import Budget, IncumbentBoard

__all__ = [
    "DEFAULT_RACERS",
    "PortfolioResult",
    "race_portfolio",
    "racer_rng",
    "racer_seed_key",
]

#: The default racer lineup: the vectorized lock-step refiner (usually the
#: fastest to a good incumbent), the scipy random-restart baseline, and
#: basinhopping (the paper's default inner loop, slower but a strong closer).
DEFAULT_RACERS: tuple[dict, ...] = (
    {"name": "multistart", "params": {"iters": 8}},
    {"name": "random", "params": {"iters": 6, "vectorized": False}},
    {"name": "basinhop", "params": {"n_hops": 4}},
)

#: First-best-wins tolerance for the winner pick (matches
#: :func:`repro.angles.random_restart.select_best_restart`).
_WINNER_RTOL = 1e-10


def racer_seed_key(seed: int | None, index: int) -> np.random.SeedSequence:
    """The seed material racer ``index`` derives its RNG from."""
    return np.random.SeedSequence((0 if seed is None else int(seed), int(index)))


def racer_rng(seed: int | None, index: int) -> np.random.Generator:
    """The exact RNG racer ``index`` of a race seeded with ``seed`` uses.

    Exposed so benchmarks and tests can run a contender *standalone* with the
    same stream and compare its result bit-for-bit against the racer's.
    """
    return np.random.default_rng(racer_seed_key(seed, index))


@dataclass
class PortfolioResult:
    """Everything one race produced.

    ``result`` is the winning :class:`~repro.angles.result.AngleResult`
    (strategy name ``"portfolio"``); ``trail`` the board's monotone anytime
    curve; ``racers`` one report dict per racer (name, final value,
    evaluations, wall time, timed_out/cancelled flags); ``winner`` the index
    of the racer whose result won.
    """

    result: AngleResult
    trail: list[dict] = field(default_factory=list)
    racers: list[dict] = field(default_factory=list)
    winner: int = -1


def _better(value: float, incumbent: float, maximize: bool) -> bool:
    tol = _WINNER_RTOL * (1.0 + abs(incumbent))
    return (value > incumbent + tol) if maximize else (value < incumbent - tol)


def race_portfolio(
    ansatz: QAOAAnsatz,
    *,
    racers: Sequence[dict] | None = None,
    deadline_s: float | None = None,
    rng: np.random.Generator | int | None = None,
    budget: Budget | None = None,
    cancel_laggards: bool = True,
    min_observation_s: float = 0.05,
    poll_interval_s: float | None = None,
) -> PortfolioResult:
    """Race ``racers`` against ``deadline_s`` seconds, sharing one incumbent.

    Parameters
    ----------
    racers:
        Racer specs, each ``{"name": <registry name>, "params": {...}}``
        (default :data:`DEFAULT_RACERS`).  A racer may not itself be the
        portfolio.
    deadline_s:
        Wall-clock deadline for the whole race (``None``: run every racer to
        natural convergence — the race is then just a parallel sweep).
    rng:
        Base seed.  Only the integer seed matters (a ``Generator`` is not
        consumed — racer streams must be derivable standalone); each racer
        ``i`` uses :func:`racer_rng` ``(seed, i)``.
    budget:
        Optional enclosing budget (e.g. ``repro solve --timeout``); the race
        deadline nests inside it.
    cancel_laggards:
        Also cancel racers whose *extrapolated* improvement (their average
        rate so far, projected over their remaining budget — a generous
        linear bound) cannot reach the incumbent.  The provable cancellation
        (incumbent already at the known optimum) is always on.
    min_observation_s:
        Never rate-cancel a racer before it has run this long.
    poll_interval_s:
        Monitor polling period (default: ``deadline_s / 50`` clamped to
        [1 ms, 50 ms]).
    """
    # Lazy: the registry imports the angles package, which imports
    # repro.portfolio.budget — importing it here keeps module import acyclic.
    from ..api.strategies import STRATEGIES, run_strategy

    racer_specs = [dict(r) for r in (DEFAULT_RACERS if racers is None else racers)]
    if not racer_specs:
        raise ValueError("at least one racer is required")
    for spec in racer_specs:
        if "name" not in spec:
            raise ValueError(f"racer spec {spec!r} has no 'name'")
        if STRATEGIES.canonical(spec["name"]) == "portfolio":
            raise ValueError("the portfolio cannot race itself")
    if not hasattr(ansatz, "sibling"):
        raise ValueError(
            "portfolio racing needs per-thread ansatz siblings (dense engine); "
            f"{type(ansatz).__name__} does not support sibling()"
        )

    if isinstance(rng, np.random.Generator):
        # A generator cannot be re-derived standalone; draw one base seed
        # from it so the race stays reproducible given the same generator
        # state.
        base_seed = int(rng.integers(2**31 - 1))
    else:
        base_seed = None if rng is None else int(rng)

    maximize = ansatz.maximize
    board = IncumbentBoard(maximize=maximize, optimum=float(ansatz.cost.optimum))
    race_budget = Budget(deadline_s, parent=budget)

    n = len(racer_specs)
    children = [race_budget.child() for _ in range(n)]
    finals: list[AngleResult | None] = [None] * n
    errors: list[BaseException | None] = [None] * n
    progress: list[dict] = [
        {"first": None, "best": None, "started": None, "done": False} for _ in range(n)
    ]

    def run_racer(i: int) -> None:
        spec = racer_specs[i]
        name = spec["name"]
        params = dict(spec.get("params", {}))
        state = progress[i]
        state["started"] = race_budget.elapsed()

        def publish(value: float, angles: np.ndarray) -> None:
            if state["first"] is None:
                state["first"] = float(value)
                state["best"] = float(value)
            elif _better(value, state["best"], maximize):
                state["best"] = float(value)
            board.publish(value, angles, source=f"{i}:{name}")

        try:
            result = run_strategy(
                name,
                ansatz.sibling(),
                rng=racer_rng(base_seed, i),
                budget=children[i],
                on_incumbent=publish,
                **params,
            )
            finals[i] = result
            publish(result.value, result.angles)
        except BaseException as exc:  # noqa: BLE001 - reported per racer
            errors[i] = exc
        finally:
            state["done"] = True

    threads = [
        threading.Thread(target=run_racer, args=(i,), name=f"racer-{i}", daemon=True)
        for i in range(n)
    ]
    for t in threads:
        t.start()

    if poll_interval_s is None:
        poll_interval_s = 0.05 if deadline_s is None else min(0.05, max(1e-3, deadline_s / 50.0))

    cancelled = [False] * n
    while any(t.is_alive() for t in threads):
        if race_budget.exhausted():
            break
        if board.done():
            # Provable: the incumbent already matches the known optimum, no
            # remaining budget can beat it.
            for child in children:
                child.cancel()
            break
        if cancel_laggards:
            incumbent = board.value()
            now = race_budget.elapsed()
            for i in range(n):
                state = progress[i]
                if cancelled[i] or state["done"] or state["best"] is None or incumbent is None:
                    continue
                elapsed_i = now - (state["started"] or 0.0)
                if elapsed_i < min_observation_s:
                    continue
                if not _better(incumbent, state["best"], maximize):
                    continue  # the racer holds (a tie of) the incumbent
                # Generous linear bound: project the racer's average
                # improvement rate over its remaining time.
                rate = abs(state["best"] - state["first"]) / max(elapsed_i, 1e-9)
                reachable = rate * children[i].remaining()
                if reachable < abs(incumbent - state["best"]):
                    children[i].cancel()
                    cancelled[i] = True
        next_alive = [t for t in threads if t.is_alive()]
        if next_alive:
            next_alive[0].join(timeout=poll_interval_s)

    # Grace period: the kernels poll per iteration/evaluation, so racers exit
    # promptly once the deadline passes; a stuck thread is abandoned (daemon)
    # rather than blowing the caller's T + 10% return envelope.
    grace = 0.5 if deadline_s is None else max(0.02, 0.08 * deadline_s)
    join_deadline = race_budget.elapsed() + grace
    for t in threads:
        left = join_deadline - race_budget.elapsed()
        if left <= 0:
            break
        t.join(timeout=left)

    for exc in errors:
        if exc is not None:
            raise exc

    # Deterministic winner: first-best-wins over racer finals in index order
    # (publish timing never decides), with the board as a safety net for a
    # racer thread that was abandoned mid-publish.
    winner = -1
    best_value: float | None = None
    for i, result in enumerate(finals):
        if result is None:
            continue
        if best_value is None or _better(result.value, best_value, maximize):
            winner = i
            best_value = result.value
    snapshot = board.best() if any(f is None for f in finals) else None
    if snapshot is not None and (best_value is None or _better(snapshot[0], best_value, maximize)):
        board_value, board_angles, board_source = snapshot
        winner = int(board_source.split(":", 1)[0]) if ":" in board_source else -1
        winning_angles = np.asarray(board_angles, dtype=np.float64)
        best_value = float(board_value)
    elif winner >= 0:
        winning_angles = np.asarray(finals[winner].angles, dtype=np.float64)
    else:
        raise RuntimeError("no racer produced a result (zero evaluations before deadline?)")

    # The race timed out only if its wall-clock budget truncated the search
    # (racer child budgets chain to it, so a racer cut off by the deadline
    # implies this).  Laggard cancellation and the found-the-known-optimum
    # early exit are successes — the per-racer reports keep the detail.
    timed_out = race_budget.exhausted()
    reports = []
    for i, spec in enumerate(racer_specs):
        result = finals[i]
        reports.append(
            {
                "racer": i,
                "name": spec["name"],
                "params": dict(spec.get("params", {})),
                "value": None if result is None else float(result.value),
                "evaluations": 0 if result is None else int(result.evaluations),
                "timed_out": bool(result.timed_out) if result is not None else True,
                "cancelled": bool(cancelled[i]),
                "finished": result is not None,
            }
        )

    summary = AngleResult(
        angles=winning_angles,
        value=float(best_value),
        p=ansatz.p,
        evaluations=sum(r["evaluations"] for r in reports),
        strategy="portfolio",
        history=[{"winner": winner, "racers": reports, "deadline_s": deadline_s}],
        timed_out=timed_out,
    )
    return PortfolioResult(result=summary, trail=board.trail(), racers=reports, winner=winner)
