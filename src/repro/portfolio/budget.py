"""Deadline, cancellation and shared-incumbent plumbing for anytime solves.

Two small primitives make every angle strategy *anytime*:

* :class:`Budget` — a cooperative deadline/cancellation token threaded through
  the strategy kernels (the vectorized multi-start loop, scipy BFGS wrappers,
  grid chunks, basinhopping hops).  Strategies poll :meth:`Budget.exhausted`
  at their natural checkpoint granularity and return their best-so-far
  :class:`~repro.angles.result.AngleResult` instead of raising, so a deadline
  is a *quality* knob, not an error path.
* :class:`IncumbentBoard` — the portfolio's shared incumbent: racers publish
  improvements as they find them, reads are plain attribute loads (a single
  tuple swap under the GIL, so readers never block on a lock), and the board
  keeps a monotone ``(elapsed, value, source)`` trail — exactly the anytime
  quality curve the benchmark plots.

Neither primitive imports anything above the standard library, so the
low-level :mod:`repro.angles` kernels can depend on them without cycles.
"""

from __future__ import annotations

import math
import threading
import time

__all__ = ["Budget", "IncumbentBoard"]


class Budget:
    """A cooperative wall-clock budget with cancellation.

    Parameters
    ----------
    deadline_s:
        Seconds of wall clock this work may spend, measured from construction
        (``None``: unbounded — the token then only carries cancellation).
        A zero-second budget is legal: strategies guarantee at least one
        evaluation before their first poll, so a zero-slack deadline still
        returns a seed-scored result.
    parent:
        Optional enclosing budget.  A child is exhausted when *either* its own
        deadline/cancellation fires or the parent's does; cancelling a child
        never cancels the parent.  The portfolio hands each racer a child of
        the race-wide budget so one racer can be cancelled individually.
    """

    def __init__(self, deadline_s: float | None = None, *, parent: "Budget | None" = None):
        if deadline_s is not None:
            deadline_s = float(deadline_s)
            if not math.isfinite(deadline_s) or deadline_s < 0.0:
                raise ValueError(f"deadline_s must be finite and >= 0, got {deadline_s}")
        self.deadline_s = deadline_s
        self.parent = parent
        self.started = time.perf_counter()
        self._cancelled = threading.Event()

    # -- clock ---------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since this budget started."""
        return time.perf_counter() - self.started

    def remaining(self) -> float:
        """Seconds left before the deadline (``inf`` when unbounded).

        Never negative, and bounded by the parent's remaining time.
        """
        own = math.inf if self.deadline_s is None else self.deadline_s - self.elapsed()
        if self.parent is not None:
            own = min(own, self.parent.remaining())
        return max(0.0, own)

    def expired(self) -> bool:
        """Whether the deadline (own or inherited) has passed."""
        if self.deadline_s is not None and self.elapsed() >= self.deadline_s:
            return True
        return self.parent is not None and self.parent.expired()

    # -- cancellation --------------------------------------------------
    def cancel(self) -> None:
        """Cooperatively stop the work this budget governs."""
        self._cancelled.set()

    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called here or on an ancestor."""
        if self._cancelled.is_set():
            return True
        return self.parent is not None and self.parent.cancelled()

    def exhausted(self) -> bool:
        """The one poll strategies make: deadline passed *or* cancelled."""
        return self.cancelled() or self.expired()

    def child(self) -> "Budget":
        """A linked sub-budget (own cancellation, inherited deadline)."""
        return Budget(parent=self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled() else ("expired" if self.expired() else "live")
        limit = "unbounded" if self.deadline_s is None else f"{self.deadline_s:.3f}s"
        return f"Budget({limit}, elapsed={self.elapsed():.3f}s, {state})"


class IncumbentBoard:
    """The racers' shared incumbent: monotone best-so-far plus its trail.

    ``publish`` keeps the strictly better of (current incumbent, candidate)
    — "better" in the board's ``maximize`` sense beyond a relative tolerance,
    so floating-point echoes of the same optimum never churn the trail — and
    appends one ``{"t", "value", "source"}`` event per genuine improvement.
    The current incumbent is stored as one immutable tuple, so readers
    (:meth:`value`, :meth:`best`) are a single attribute load and never
    contend with publishers; publishers serialize on a micro-lock only to
    keep the trail ordered.

    When the problem's true ``optimum`` is known (dense solves precompute the
    full spectrum), :meth:`done` reports the one *provable* stopping
    condition: the incumbent already matches the optimum within tolerance,
    so no racer's remaining budget can improve on it.
    """

    def __init__(
        self,
        *,
        maximize: bool = True,
        optimum: float | None = None,
        rtol: float = 1e-10,
    ):
        self.maximize = bool(maximize)
        self.optimum = None if optimum is None else float(optimum)
        self.rtol = float(rtol)
        self.started = time.perf_counter()
        self._best: tuple[float, object, str, float] | None = None  # (value, angles, source, t)
        self._trail: list[dict] = []
        self._lock = threading.Lock()

    # -- reads (lock-free) ---------------------------------------------
    def best(self) -> tuple[float, object, str] | None:
        """``(value, angles, source)`` of the incumbent, or ``None``."""
        snapshot = self._best
        if snapshot is None:
            return None
        return snapshot[0], snapshot[1], snapshot[2]

    def value(self) -> float | None:
        """The incumbent value, or ``None`` before the first publish."""
        snapshot = self._best
        return None if snapshot is None else snapshot[0]

    def done(self) -> bool:
        """Provably finished: the incumbent matches the known optimum."""
        if self.optimum is None:
            return False
        snapshot = self._best
        if snapshot is None:
            return False
        return not self._better(self.optimum, snapshot[0])

    def _better(self, candidate: float, incumbent: float) -> bool:
        tol = self.rtol * (1.0 + abs(incumbent))
        if self.maximize:
            return candidate > incumbent + tol
        return candidate < incumbent - tol

    # -- writes --------------------------------------------------------
    def publish(self, value: float, angles, source: str = "") -> bool:
        """Offer a candidate incumbent; returns whether it took the board."""
        value = float(value)
        with self._lock:
            if self._best is not None and not self._better(value, self._best[0]):
                return False
            t = time.perf_counter() - self.started
            self._best = (value, angles, source, t)
            self._trail.append({"t": t, "value": value, "source": source})
            return True

    def trail(self) -> list[dict]:
        """A copy of the monotone improvement trail (the anytime curve)."""
        with self._lock:
            return [dict(event) for event in self._trail]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snapshot = self._best
        if snapshot is None:
            return "IncumbentBoard(empty)"
        return (
            f"IncumbentBoard(value={snapshot[0]:.6g}, source={snapshot[2]!r}, "
            f"improvements={len(self._trail)})"
        )
