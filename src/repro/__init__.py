"""repro — a pure-Python reproduction of JuliQAOA (SC-W 2023).

A statevector simulator purpose-built for the Quantum Alternating Operator
Ansatz: pre-computed objective values and pre-diagonalized mixers, fast
unconstrained and Dicke-subspace (constrained) simulation, Grover-mixer
compression, analytic gradients and a robust angle-finding outer loop, plus
circuit-simulator baselines used by the paper's performance comparisons.

Quickstart — the declarative facade::

    from repro import solve

    result = solve(problem="maxcut", n=8, mixer="x", strategy="random", p=3)
    print(result.value, result.approximation_ratio)

Under the hood (mirrors the paper's Listing 1)::

    import numpy as np
    from repro import maxcut, maxcut_values, erdos_renyi, state_matrix
    from repro import mixer_x, simulate, get_exp_value

    n = 6
    graph = erdos_renyi(n, 0.5, seed=1)
    obj_vals = maxcut_values(graph, state_matrix(n))
    mixer = mixer_x([1], n)          # transverse-field mixer, sum_i X_i
    p = 3
    angles = np.random.default_rng(0).random(2 * p)
    res = simulate(angles, mixer, obj_vals)
    exp_value = get_exp_value(res)
"""

from .backend import (
    BACKEND_NAMES,
    ArrayBackend,
    BackendUnavailableError,
    active_backend,
    backend_info,
    get_backend,
    set_active_backend,
    use_backend,
)
from .api import (
    MIXER_NAMES,
    MIXERS,
    STRATEGIES,
    STRATEGY_NAMES,
    AngleStrategy,
    MixerSpec,
    ProblemSpec,
    QAOASolver,
    SolveResult,
    SolveSpec,
    StrategySpec,
    make_mixer,
    solve,
)
from .core import (
    BatchedWorkspace,
    EvaluationCounter,
    PrecomputedCost,
    QAOAAnsatz,
    QAOAResult,
    Workspace,
    expectation_value,
    expectation_value_batch,
    get_exp_value,
    precompute_cost,
    qaoa_finite_difference_gradient,
    qaoa_gradient,
    qaoa_value_and_gradient,
    qaoa_value_and_gradient_batch,
    random_angles,
    simulate,
    simulate_batch,
)
from .hilbert import (
    DickeSpace,
    FeasibleSpace,
    FullSpace,
    dicke_states,
    state_matrix,
    states,
)
from .mixers import (
    CliqueMixer,
    GroverMixer,
    MixerSchedule,
    MultiAngleXMixer,
    RingMixer,
    XMixer,
    grover_mixer,
    grover_mixer_dicke,
    mixer_clique,
    mixer_ring,
    mixer_x,
    transverse_field_mixer,
)
from .problems import (
    PROBLEM_NAMES,
    ProblemInstance,
    densest_subgraph,
    densest_subgraph_values,
    erdos_renyi,
    ksat,
    ksat_values,
    make_problem,
    maxcut,
    maxcut_values,
    random_ksat,
    vertex_cover,
    vertex_cover_values,
)
from .portfolio import Budget, IncumbentBoard, PortfolioResult, race_portfolio
from .service import SolverService, default_service

__version__ = "1.4.0"

# Resolve REPRO_BACKEND eagerly so a bad value warns at import time (and an
# uninstalled backend falls back to numpy) instead of surfacing mid-solve.
active_backend()

__all__ = [
    "BACKEND_NAMES",
    "ArrayBackend",
    "BackendUnavailableError",
    "active_backend",
    "backend_info",
    "get_backend",
    "set_active_backend",
    "use_backend",
    "MIXER_NAMES",
    "MIXERS",
    "STRATEGIES",
    "STRATEGY_NAMES",
    "AngleStrategy",
    "MixerSpec",
    "ProblemSpec",
    "QAOASolver",
    "SolveResult",
    "SolveSpec",
    "StrategySpec",
    "make_mixer",
    "solve",
    "BatchedWorkspace",
    "EvaluationCounter",
    "PrecomputedCost",
    "QAOAAnsatz",
    "QAOAResult",
    "Workspace",
    "expectation_value",
    "expectation_value_batch",
    "get_exp_value",
    "precompute_cost",
    "qaoa_finite_difference_gradient",
    "qaoa_gradient",
    "qaoa_value_and_gradient",
    "qaoa_value_and_gradient_batch",
    "random_angles",
    "simulate",
    "simulate_batch",
    "DickeSpace",
    "FeasibleSpace",
    "FullSpace",
    "dicke_states",
    "state_matrix",
    "states",
    "CliqueMixer",
    "GroverMixer",
    "MixerSchedule",
    "MultiAngleXMixer",
    "RingMixer",
    "XMixer",
    "grover_mixer",
    "grover_mixer_dicke",
    "mixer_clique",
    "mixer_ring",
    "mixer_x",
    "transverse_field_mixer",
    "PROBLEM_NAMES",
    "ProblemInstance",
    "densest_subgraph",
    "densest_subgraph_values",
    "erdos_renyi",
    "ksat",
    "ksat_values",
    "make_problem",
    "maxcut",
    "maxcut_values",
    "random_ksat",
    "vertex_cover",
    "vertex_cover_values",
    "Budget",
    "IncumbentBoard",
    "PortfolioResult",
    "race_portfolio",
    "SolverService",
    "default_service",
    "__version__",
]
