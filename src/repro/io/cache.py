"""Disk caches for pre-computed spectral data.

Computing the eigendecomposition of a Clique or Ring mixer is the most
expensive part of setting up a constrained QAOA (the paper notes it was the
limiting factor on a 48 GB GPU at n = 18).  The decomposition only depends on
``(n, k, interaction pattern)``, so it is computed once and stored; Listing 2
of the paper exposes this as a ``file=...`` keyword.  This module implements
that cache as compressed ``.npz`` files with a small integrity header.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

__all__ = [
    "save_eigendecomposition",
    "load_eigendecomposition",
    "cached_eigendecomposition",
    "default_cache_dir",
]

_FORMAT_VERSION = 1


def default_cache_dir() -> Path:
    """Directory used for cached mixers when no explicit path is given.

    Controlled by the ``REPRO_CACHE_DIR`` environment variable; defaults to
    ``~/.cache/repro_qaoa``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro_qaoa"


def save_eigendecomposition(
    path: str | Path,
    eigenvalues: np.ndarray,
    eigenvectors: np.ndarray,
    *,
    key: str = "",
) -> Path:
    """Save an eigendecomposition to ``path`` (``.npz``), creating parent dirs."""
    path = Path(path)
    eigenvalues = np.asarray(eigenvalues)
    eigenvectors = np.asarray(eigenvectors)
    if eigenvectors.ndim != 2 or eigenvectors.shape[0] != eigenvectors.shape[1]:
        raise ValueError("eigenvectors must be a square matrix")
    if eigenvalues.shape != (eigenvectors.shape[0],):
        raise ValueError("eigenvalues length must match eigenvector dimension")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        key=np.bytes_(key.encode("utf-8")),
        eigenvalues=eigenvalues,
        eigenvectors=eigenvectors,
    )
    return path


def load_eigendecomposition(
    path: str | Path, *, expected_key: str | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Load an eigendecomposition saved by :func:`save_eigendecomposition`.

    If ``expected_key`` is given and does not match the stored key, a
    ``ValueError`` is raised — this guards against accidentally loading the
    decomposition of a different mixer.
    """
    path = Path(path)
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported cache format version {version}")
        stored_key = bytes(data["key"]).decode("utf-8")
        if expected_key is not None and stored_key and stored_key != expected_key:
            raise ValueError(
                f"cache file {path} stores mixer {stored_key!r}, expected {expected_key!r}"
            )
        eigenvalues = np.array(data["eigenvalues"])
        eigenvectors = np.array(data["eigenvectors"])
    return eigenvalues, eigenvectors


def cached_eigendecomposition(
    path: str | Path | None,
    key: str,
    compute,
) -> tuple[np.ndarray, np.ndarray]:
    """Load the decomposition from ``path`` if present, else compute and store it.

    ``compute`` is a zero-argument callable returning ``(eigenvalues,
    eigenvectors)``.  When ``path`` is ``None`` the decomposition is simply
    computed without touching the filesystem (matching the paper's behaviour
    when no ``file=`` argument is passed).
    """
    if path is None:
        return compute()
    path = Path(path)
    if path.exists():
        return load_eigendecomposition(path, expected_key=key)
    eigenvalues, eigenvectors = compute()
    save_eigendecomposition(path, eigenvalues, eigenvectors, key=key)
    return eigenvalues, eigenvectors
