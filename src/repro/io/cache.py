"""Disk caches for pre-computed spectral data and finished solve results.

Computing the eigendecomposition of a Clique or Ring mixer is the most
expensive part of setting up a constrained QAOA (the paper notes it was the
limiting factor on a 48 GB GPU at n = 18).  The decomposition only depends on
``(n, k, interaction pattern)``, so it is computed once and stored; Listing 2
of the paper exposes this as a ``file=...`` keyword.  This module implements
that cache as compressed ``.npz`` files with a small integrity header.

Writes are crash- and concurrency-safe: every file lands via ``mkstemp`` +
atomic rename, and fills of one cache path are serialized by a
:class:`~repro.io.locking.FileLock`, so two processes racing to populate the
same path can no longer interleave a torn ``.npz`` — one computes, the other
loads.

:class:`ResultCache` extends the same idea to *finished solves*: a
:class:`~repro.api.spec.SolveSpec` is canonical JSON, so its hash keys the
result row of the exact solve it describes.  The solver service answers
repeated queries from this cache without touching the simulator at all.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from .locking import FileLock

__all__ = [
    "save_eigendecomposition",
    "load_eigendecomposition",
    "cached_eigendecomposition",
    "default_cache_dir",
    "ResultCache",
    "result_cache_from_env",
]

_FORMAT_VERSION = 1

#: Seconds a cache fill may hold the per-path lock before waiters give up —
#: generous, because the guarded section may include the eigendecomposition
#: itself (minutes at large n), not just the file write.
_FILL_LOCK_TIMEOUT = 600.0


def default_cache_dir() -> Path:
    """Directory used for cached mixers when no explicit path is given.

    Controlled by the ``REPRO_CACHE_DIR`` environment variable; defaults to
    ``~/.cache/repro_qaoa``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro_qaoa"


def _atomic_write_bytes(path: Path, write) -> None:
    """Write a file via ``mkstemp`` in the target directory + atomic rename.

    ``write`` receives the open binary file object.  Readers either see the
    complete old file or the complete new one — never a partial write — and a
    crash mid-write leaves only an orphaned ``*.tmp`` file, not a torn cache.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_eigendecomposition(
    path: str | Path,
    eigenvalues: np.ndarray,
    eigenvectors: np.ndarray,
    *,
    key: str = "",
) -> Path:
    """Save an eigendecomposition to ``path`` (``.npz``), creating parent dirs.

    The write is atomic (temp file + rename), so a concurrent
    :func:`load_eigendecomposition` of the same path can never observe a
    half-written archive.
    """
    path = Path(path)
    eigenvalues = np.asarray(eigenvalues)
    eigenvectors = np.asarray(eigenvectors)
    if eigenvectors.ndim != 2 or eigenvectors.shape[0] != eigenvectors.shape[1]:
        raise ValueError("eigenvectors must be a square matrix")
    if eigenvalues.shape != (eigenvectors.shape[0],):
        raise ValueError("eigenvalues length must match eigenvector dimension")
    _atomic_write_bytes(
        path,
        lambda handle: np.savez_compressed(
            handle,
            format_version=np.int64(_FORMAT_VERSION),
            key=np.bytes_(key.encode("utf-8")),
            eigenvalues=eigenvalues,
            eigenvectors=eigenvectors,
        ),
    )
    return path


def load_eigendecomposition(
    path: str | Path, *, expected_key: str | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Load an eigendecomposition saved by :func:`save_eigendecomposition`.

    If ``expected_key`` is given and does not match the stored key, a
    ``ValueError`` is raised — this guards against accidentally loading the
    decomposition of a different mixer.
    """
    path = Path(path)
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported cache format version {version}")
        stored_key = bytes(data["key"]).decode("utf-8")
        if expected_key is not None and stored_key and stored_key != expected_key:
            raise ValueError(
                f"cache file {path} stores mixer {stored_key!r}, expected {expected_key!r}"
            )
        eigenvalues = np.array(data["eigenvalues"])
        eigenvectors = np.array(data["eigenvectors"])
    return eigenvalues, eigenvectors


def cached_eigendecomposition(
    path: str | Path | None,
    key: str,
    compute,
) -> tuple[np.ndarray, np.ndarray]:
    """Load the decomposition from ``path`` if present, else compute and store it.

    ``compute`` is a zero-argument callable returning ``(eigenvalues,
    eigenvectors)``.  When ``path`` is ``None`` the decomposition is simply
    computed without touching the filesystem (matching the paper's behaviour
    when no ``file=`` argument is passed).

    Concurrent fills of the same path are serialized by a per-path
    :class:`FileLock`: the first process computes and atomically publishes
    the file while the others block, re-check, and load the finished result —
    the expensive decomposition runs once, not once per process.
    """
    if path is None:
        return compute()
    path = Path(path)
    if path.exists():
        return load_eigendecomposition(path, expected_key=key)
    path.parent.mkdir(parents=True, exist_ok=True)
    lock = FileLock(path.with_name(path.name + ".lock"), timeout=_FILL_LOCK_TIMEOUT)
    with lock:
        # Another process may have published the file while we waited.
        if path.exists():
            return load_eigendecomposition(path, expected_key=key)
        eigenvalues, eigenvectors = compute()
        save_eigendecomposition(path, eigenvalues, eigenvectors, key=key)
    return eigenvalues, eigenvectors


# ---------------------------------------------------------------------------
# Spec-keyed result cache
# ---------------------------------------------------------------------------

_RESULT_CACHE_VERSION = 1


class ResultCache:
    """Disk cache of finished solve rows, keyed by the solve spec's JSON hash.

    A :class:`~repro.api.spec.SolveSpec` fully determines its solve (the
    strategy's RNG seed is part of the spec), and ``spec.to_json()`` is
    canonical (sorted keys), so ``sha256(spec.to_json())`` is a free, exact
    cache key.  Each entry is one small JSON file holding the spec (for
    auditability) and the flat result row :meth:`SolveResult.to_row` produced.

    Writes go through ``mkstemp`` + atomic rename under a directory-wide
    :class:`FileLock`, so any number of worker processes can share one cache
    directory: concurrent stores never tear a file, and a reader sees either
    a complete entry or none.  Reads are lock-free.
    """

    def __init__(self, directory: str | Path, *, lock_timeout: float = 60.0):
        self.directory = Path(directory)
        self.lock_timeout = float(lock_timeout)

    # -- keys ----------------------------------------------------------
    @staticmethod
    def key_for(spec) -> str:
        """Hex digest identifying one exact solve (``sha256`` of canonical JSON)."""
        return hashlib.sha256(spec.to_json().encode("utf-8")).hexdigest()

    def path_for(self, spec) -> Path:
        """Where the entry for ``spec`` lives (whether or not it exists yet)."""
        return self.directory / f"{self.key_for(spec)}.json"

    # -- read/write ----------------------------------------------------
    def get(self, spec) -> dict | None:
        """The cached result row for ``spec``, or ``None`` on a miss.

        Unreadable entries (foreign versions, corrupt JSON from pre-atomic
        writers) are treated as misses, never errors: the caller just
        recomputes and overwrites them.
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("version") != _RESULT_CACHE_VERSION:
            return None
        row = payload.get("row")
        return dict(row) if isinstance(row, dict) else None

    def put(self, spec, row: dict) -> Path:
        """Atomically store ``row`` as the result of ``spec``; returns the path.

        A fresh :class:`FileLock` is taken per call (lock objects are not
        shareable across threads), serializing writers on the directory.
        """
        path = self.path_for(spec)
        payload = {
            "version": _RESULT_CACHE_VERSION,
            "spec": spec.to_dict(),
            "row": dict(row),
        }
        text = json.dumps(payload, sort_keys=True)
        self.directory.mkdir(parents=True, exist_ok=True)
        lock = FileLock(self.directory / ".results.lock", timeout=self.lock_timeout)
        with lock:
            _atomic_write_bytes(path, lambda handle: handle.write(text.encode("utf-8")))
        return path

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache({str(self.directory)!r})"


def result_cache_from_env() -> ResultCache | None:
    """The :class:`ResultCache` selected by ``REPRO_RESULT_CACHE``, if any.

    * unset, empty, or ``"0"`` — caching disabled (returns ``None``);
    * ``"1"`` — cache under ``default_cache_dir()/results`` (which itself
      honours ``REPRO_CACHE_DIR``);
    * anything else — treated as the cache directory path.
    """
    env = os.environ.get("REPRO_RESULT_CACHE", "")
    if env in ("", "0"):
        return None
    if env == "1":
        return ResultCache(default_cache_dir() / "results")
    return ResultCache(env)
