"""Cross-process advisory file locking for shared run stores.

A :class:`FileLock` serializes critical sections across *processes* (and, as a
side effect of using one OS lock per acquisition, across threads holding
distinct lock objects).  It is the coordination primitive behind concurrent
same-store writers in :mod:`repro.experiments.store`: every manifest
reload-merge-save and every shared-file append happens while the store's lock
is held, so two shard runners can no longer lose each other's completions or
tear each other's JSONL lines.

Three backends, picked automatically:

``fcntl`` (POSIX)
    ``flock(LOCK_EX)`` on a dedicated lock file.  The kernel releases the lock
    when the owning process dies, so no stale-lock handling is ever needed.
    Cross-*machine* exclusion additionally requires a shared filesystem that
    propagates ``flock`` between hosts (NFSv4 does; NFSv3 ``nolock`` and some
    FUSE/SMB mounts treat it as host-local).

``msvcrt`` (Windows)
    ``msvcrt.locking(LK_NBLCK)`` on the first byte of the lock file; likewise
    released by the OS on process exit.

``mkfile`` (last resort)
    Plain ``O_CREAT | O_EXCL`` lock-file creation for exotic platforms with
    neither module.  Because nothing releases the file if the owner dies, the
    lock file records the owner's PID and the acquirer breaks locks that are
    *stale*: owned by a dead process (same host) or untouched for longer than
    ``stale_timeout`` seconds (mtime check, covering unreadable metadata and
    cross-host owners).

All backends share the same blocking-with-timeout ``acquire``/``release``
surface and are reentrant per :class:`FileLock` object, so a helper that takes
an optional lock can be called both inside and outside an existing ``with
lock:`` block.
"""

from __future__ import annotations

import errno
import os
import socket
import threading
import time
import warnings
from pathlib import Path

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - exercised only on Windows
    fcntl = None  # type: ignore[assignment]
try:  # Windows
    import msvcrt
except ImportError:
    msvcrt = None  # type: ignore[assignment]

__all__ = ["FileLock", "LockTimeout", "locking_backend"]

#: Default seconds to wait for a contended lock before giving up.
DEFAULT_TIMEOUT = 60.0
#: Default polling interval while waiting on a contended lock.
DEFAULT_POLL_INTERVAL = 0.01
#: Default age (seconds since last mtime) after which a ``mkfile`` lock whose
#: owner cannot be probed is considered abandoned.
DEFAULT_STALE_TIMEOUT = 600.0


class LockTimeout(TimeoutError):
    """Raised when a lock could not be acquired within the allowed time."""


def locking_backend() -> str:
    """The backend :class:`FileLock` uses on this platform."""
    if fcntl is not None:
        return "fcntl"
    if msvcrt is not None:
        return "msvcrt"
    return "mkfile"


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a PID on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists but isn't ours
        return True
    except OSError:  # pragma: no cover - platforms without signals
        return True
    return True


class FileLock:
    """Cross-process advisory lock on ``path`` with a context-manager API.

    The lock file itself is never deleted by the ``fcntl``/``msvcrt`` backends
    (unlinking a locked file is a classic race); it only holds metadata about
    the most recent owner for debugging.  Acquisition is reentrant per object:
    nested ``with lock:`` blocks on the same :class:`FileLock` are counted, and
    the OS lock is released when the outermost block exits.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        stale_timeout: float = DEFAULT_STALE_TIMEOUT,
        backend: str | None = None,
    ):
        self.path = Path(path)
        self.timeout = float(timeout)
        self.poll_interval = max(1e-4, float(poll_interval))
        self.stale_timeout = float(stale_timeout)
        self.backend = backend or locking_backend()
        if self.backend not in ("fcntl", "msvcrt", "mkfile"):
            raise ValueError(f"unknown locking backend {self.backend!r}")
        self._fd: int | None = None
        self._depth = 0
        self._owner_thread: int | None = None

    # ------------------------------------------------------------------
    @property
    def is_held(self) -> bool:
        """Whether this object currently holds the lock."""
        return self._depth > 0

    def acquire(self, timeout: float | None = None) -> "FileLock":
        """Block until the lock is held (reentrant), or raise :class:`LockTimeout`."""
        if self._depth > 0:
            if self._owner_thread != threading.get_ident():
                # Re-entering from another thread would let both threads into
                # the critical section (the depth counter owns the OS lock,
                # not the thread).  Fail loudly instead of silently racing.
                raise RuntimeError(
                    f"{self.path} is held by another thread of this process; "
                    "FileLock objects are not shareable across threads — "
                    "create one lock object per thread"
                )
            self._depth += 1
            return self
        timeout = self.timeout if timeout is None else float(timeout)
        deadline = time.monotonic() + timeout
        self.path.parent.mkdir(parents=True, exist_ok=True)
        while True:
            if self._try_acquire():
                self._depth = 1
                self._owner_thread = threading.get_ident()
                return self
            if self.backend == "mkfile":
                self._break_if_stale()
            if time.monotonic() >= deadline:
                raise LockTimeout(
                    f"could not acquire {self.path} within {timeout:.1f}s "
                    f"(backend={self.backend}; held by: {self._describe_owner()})"
                )
            time.sleep(self.poll_interval)

    def release(self) -> None:
        """Release one level of acquisition; the OS lock drops at depth zero."""
        if self._depth == 0:
            raise RuntimeError(f"release of unheld lock {self.path}")
        self._depth -= 1
        if self._depth > 0:
            return
        fd, self._fd = self._fd, None
        self._owner_thread = None
        try:
            if self.backend == "fcntl":
                fcntl.flock(fd, fcntl.LOCK_UN)
            elif self.backend == "msvcrt":  # pragma: no cover - Windows only
                os.lseek(fd, 0, os.SEEK_SET)
                msvcrt.locking(fd, msvcrt.LK_UNLCK, 1)
            else:
                # The mkfile backend owns the file exclusively: removing it
                # *is* the release — but only if the path still holds *our*
                # file.  If we stalled past stale_timeout, a waiter may have
                # broken our lock and re-created it; unlinking then would
                # delete the new owner's live lock.
                try:
                    mine = os.fstat(fd)
                    current = os.stat(self.path)
                    if (current.st_dev, current.st_ino) == (mine.st_dev, mine.st_ino):
                        self.path.unlink(missing_ok=True)
                except OSError:
                    pass  # already broken/replaced; nothing of ours to remove
        finally:
            if fd is not None:
                os.close(fd)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    # ------------------------------------------------------------------
    # Backend-specific acquisition
    # ------------------------------------------------------------------
    def _try_acquire(self) -> bool:
        if self.backend == "fcntl":
            return self._try_acquire_fcntl()
        if self.backend == "msvcrt":  # pragma: no cover - Windows only
            return self._try_acquire_msvcrt()
        return self._try_acquire_mkfile()

    def _try_acquire_fcntl(self) -> bool:
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        self._write_owner_metadata(fd)
        return True

    def _try_acquire_msvcrt(self) -> bool:  # pragma: no cover - Windows only
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            os.lseek(fd, 0, os.SEEK_SET)
            msvcrt.locking(fd, msvcrt.LK_NBLCK, 1)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        self._write_owner_metadata(fd)
        return True

    def _try_acquire_mkfile(self) -> bool:
        try:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644)
        except OSError as exc:
            if exc.errno in (errno.EEXIST, errno.EACCES):
                return False
            raise
        self._fd = fd
        self._write_owner_metadata(fd)
        return True

    def _write_owner_metadata(self, fd: int) -> None:
        payload = (
            f"pid={os.getpid()} host={socket.gethostname()} "
            f"acquired={time.strftime('%Y-%m-%dT%H:%M:%S%z')}\n"
        )
        try:
            os.ftruncate(fd, 0)
            os.lseek(fd, 0, os.SEEK_SET)
            os.write(fd, payload.encode("utf-8"))
        except OSError:  # metadata is advisory; never fail an acquired lock
            pass

    # ------------------------------------------------------------------
    # Stale-lock handling (mkfile backend only)
    # ------------------------------------------------------------------
    def _owner_info(self) -> tuple[int | None, str | None]:
        """The ``(pid, host)`` recorded in the lock file, best effort."""
        try:
            text = self.path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            return None, None
        pid: int | None = None
        host: str | None = None
        for token in text.split():
            if token.startswith("pid="):
                try:
                    pid = int(token[4:])
                except ValueError:
                    pid = None
            elif token.startswith("host="):
                host = token[5:]
        return pid, host

    def _describe_owner(self) -> str:
        pid, host = self._owner_info()
        if pid is None:
            return "unknown owner"
        return f"pid {pid}" + (f" on {host}" if host else "")

    #: How long a break-mutex file may exist before it is considered abandoned
    #: (it only ever lives for the microseconds of a stale-lock removal).
    _BREAK_MUTEX_TIMEOUT = 30.0

    def _break_if_stale(self) -> None:
        """Remove an abandoned ``mkfile`` lock (dead owner PID, or mtime too old).

        The removal itself is guarded: several waiters can judge the same lock
        stale, and without coordination the slower one's ``unlink`` could land
        *after* a faster one already broke the lock and a new owner re-created
        it — deleting a live lock.  So the breaker first takes a short-lived
        ``O_EXCL`` break mutex, then re-verifies (inode + mtime) that the file
        it is about to unlink is still the exact one it judged stale.
        """
        try:
            judged = self.path.stat()
        except OSError:
            return  # already gone; the next _try_acquire will race for it
        pid, host = self._owner_info()
        # The PID probe is only meaningful against this host's process table:
        # on a shared network filesystem the owner may live on another machine
        # whose PIDs mean nothing here.  A same-host owner that probes alive is
        # never stale — however old the file's mtime, it may legitimately be
        # deep in a long critical section.  The mtime test covers only owners
        # that cannot be probed (foreign host, unreadable metadata).
        same_host = host is not None and host == socket.gethostname()
        probeable = same_host and pid is not None
        alive = probeable and _pid_alive(pid)
        dead_owner = probeable and not alive
        too_old = not alive and (time.time() - judged.st_mtime) > self.stale_timeout
        if not (dead_owner or too_old):
            return
        breaker = self.path.with_name(self.path.name + ".break")
        try:
            fd = os.open(breaker, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except OSError:
            # Another waiter is breaking right now — unless the breaker itself
            # died mid-break, in which case clear its abandoned mutex so the
            # lock path cannot wedge forever.
            try:
                if (time.time() - breaker.stat().st_mtime) > self._BREAK_MUTEX_TIMEOUT:
                    breaker.unlink(missing_ok=True)
            except OSError:
                pass
            return
        try:
            try:
                current = self.path.stat()
            except OSError:
                return  # broken by the previous mutex holder
            if (current.st_ino, current.st_mtime_ns) != (judged.st_ino, judged.st_mtime_ns):
                return  # replaced by a live owner since we judged it stale
            if dead_owner:
                reason = f"owner pid {pid} is dead"
            else:
                reason = f"untouched for >{self.stale_timeout:.0f}s"
            warnings.warn(
                f"breaking stale lock {self.path} ({reason})",
                RuntimeWarning,
                stacklevel=3,
            )
            self.path.unlink(missing_ok=True)
        finally:
            os.close(fd)
            breaker.unlink(missing_ok=True)
