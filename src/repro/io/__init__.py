"""Persistence: mixer eigendecomposition caches, angle checkpoints, results, locks."""

from .cache import (
    ResultCache,
    cached_eigendecomposition,
    default_cache_dir,
    load_eigendecomposition,
    result_cache_from_env,
    save_eigendecomposition,
)
from .locking import FileLock, LockTimeout, locking_backend
from .results import (
    append_jsonl,
    load_rows,
    read_jsonl,
    save_rows,
    write_json_atomic,
)

__all__ = [
    "ResultCache",
    "cached_eigendecomposition",
    "default_cache_dir",
    "load_eigendecomposition",
    "result_cache_from_env",
    "save_eigendecomposition",
    "FileLock",
    "LockTimeout",
    "locking_backend",
    "append_jsonl",
    "load_rows",
    "read_jsonl",
    "save_rows",
    "write_json_atomic",
]
