"""Persistence: mixer eigendecomposition caches, angle checkpoints, results."""

from .cache import (
    cached_eigendecomposition,
    default_cache_dir,
    load_eigendecomposition,
    save_eigendecomposition,
)

__all__ = [
    "cached_eigendecomposition",
    "default_cache_dir",
    "load_eigendecomposition",
    "save_eigendecomposition",
]
