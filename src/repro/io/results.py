"""Serialization of simulation results and benchmark tables."""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import nullcontext
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.simulator import QAOAResult
from .locking import FileLock

__all__ = [
    "result_to_dict",
    "save_result",
    "load_result_dict",
    "save_rows",
    "load_rows",
    "append_jsonl",
    "read_jsonl",
    "write_json_atomic",
]


def result_to_dict(result: QAOAResult, *, include_statevector: bool = False) -> dict:
    """JSON-serializable summary of a :class:`~repro.core.simulator.QAOAResult`."""
    payload = {
        "expectation": result.expectation(),
        "ground_state_probability": result.ground_state_probability(),
        "norm": result.norm(),
        "p": result.p,
        "angles": result.angles.tolist(),
        "optimum": result.cost.optimum,
        "dim": result.cost.dim,
    }
    if include_statevector:
        payload["statevector_real"] = np.real(result.statevector).tolist()
        payload["statevector_imag"] = np.imag(result.statevector).tolist()
    return payload


def save_result(path: str | Path, result: QAOAResult, *, include_statevector: bool = False) -> Path:
    """Write a result summary to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result, include_statevector=include_statevector), handle, indent=2)
    return path


def load_result_dict(path: str | Path) -> dict:
    """Load a result summary written by :func:`save_result`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def save_rows(path: str | Path, rows: Sequence[dict]) -> Path:
    """Write benchmark table rows (list of dicts) to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(list(rows), handle, indent=2, default=float)
    return path


def load_rows(path: str | Path) -> list[dict]:
    """Load benchmark table rows written by :func:`save_rows`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise ValueError("expected a list of rows")
    return data


def append_jsonl(
    path: str | Path, records: Sequence[dict], *, lock: FileLock | None = None
) -> Path:
    """Append one JSON object per line to ``path``, fsyncing before returning.

    This is the append-only persistence primitive behind the experiment run
    store: records survive a crash as soon as the call returns, and a partial
    final line (torn write) is tolerated by :func:`read_jsonl`.

    If the file ends in a torn line from a previous crashed append, that
    partial line is truncated away first — otherwise the new record would
    concatenate onto it and corrupt both.  When several *processes* may append
    to the same file, pass the shared ``lock``: the truncation check is a
    read-then-truncate on the whole file, so unlocked it can destroy another
    writer's in-flight (not yet newline-terminated) bytes.  ``FileLock`` is
    reentrant per object, so passing a lock the caller already holds is safe.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with lock if lock is not None else nullcontext():
        if path.exists():
            with open(path, "rb") as tail:
                size = tail.seek(0, os.SEEK_END)
                if size:
                    tail.seek(size - 1)
                    if tail.read(1) != b"\n":
                        # Rare torn tail: only now pay for a full read to find
                        # the last complete line (appends stay O(1) in size).
                        tail.seek(0)
                        os.truncate(path, tail.read().rfind(b"\n") + 1)
        with open(path, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, default=float) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
    return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Read records written by :func:`append_jsonl`.

    A torn final line (a crash mid-append leaves partial bytes without a
    trailing newline) is silently dropped; corruption anywhere else —
    including a damaged but newline-terminated final record — raises
    ``ValueError`` rather than silently losing data.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    lines = text.splitlines()
    ends_complete = text.endswith("\n")
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1 and not ends_complete:
                break  # torn final line from an interrupted append
            raise ValueError(f"corrupt JSONL record at {path}:{i + 1}") from None
    return records


def write_json_atomic(path: str | Path, payload: dict) -> Path:
    """Write a JSON document via a temp file + rename so readers never see a torn file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=float)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return path
