"""Serialization of simulation results and benchmark tables."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.simulator import QAOAResult

__all__ = ["result_to_dict", "save_result", "load_result_dict", "save_rows", "load_rows"]


def result_to_dict(result: QAOAResult, *, include_statevector: bool = False) -> dict:
    """JSON-serializable summary of a :class:`~repro.core.simulator.QAOAResult`."""
    payload = {
        "expectation": result.expectation(),
        "ground_state_probability": result.ground_state_probability(),
        "norm": result.norm(),
        "p": result.p,
        "angles": result.angles.tolist(),
        "optimum": result.cost.optimum,
        "dim": result.cost.dim,
    }
    if include_statevector:
        payload["statevector_real"] = np.real(result.statevector).tolist()
        payload["statevector_imag"] = np.imag(result.statevector).tolist()
    return payload


def save_result(path: str | Path, result: QAOAResult, *, include_statevector: bool = False) -> Path:
    """Write a result summary to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result, include_statevector=include_statevector), handle, indent=2)
    return path


def load_result_dict(path: str | Path) -> dict:
    """Load a result summary written by :func:`save_result`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def save_rows(path: str | Path, rows: Sequence[dict]) -> Path:
    """Write benchmark table rows (list of dicts) to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(list(rows), handle, indent=2, default=float)
    return path


def load_rows(path: str | Path) -> list[dict]:
    """Load benchmark table rows written by :func:`save_rows`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise ValueError("expected a list of rows")
    return data
