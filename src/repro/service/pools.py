"""Warm solver pools: built problem/mixer/ansatz kept alive per fingerprint.

Setting up one solve — regenerating the problem instance, pre-computing its
objective values over the feasible space, diagonalizing the mixer — dwarfs the
per-request work once the batched kernels are in play.  The pool keys that
setup by a ``(problem, mixer, p)`` fingerprint (the angle strategy and its
seed don't change any of it) and hands every request for the same fingerprint
the same live :class:`WarmEntry`.

Residency is bounded two ways: an entry-count LRU and a byte budget accounted
with the analytic estimates of :func:`repro.hpc.memory.warm_entry_bytes`
(objective values + workspaces + the dense eigendecomposition for
diagonalized mixer families).  Estimates are recomputed at eviction time
because an entry's :class:`~repro.core.workspace.BatchedWorkspace` grows with
the largest batch it has served.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict

from ..api.routing import select_execution_path
from ..api.solver import QAOASolver
from ..api.spec import SolveSpec
from ..backend import active_backend
from ..hpc.memory import warm_entry_bytes
from ..mixers.base import DiagonalizedMixer

__all__ = ["pool_fingerprint", "WarmEntry", "WarmPool"]


def pool_fingerprint(spec: SolveSpec) -> str:
    """Hash of the setup-determining part of a spec: problem, mixer, rounds.

    Two specs with equal fingerprints share problem instance, feasible space,
    mixer spectra and workspaces — everything the warm pool keeps alive.  The
    strategy and its seed only steer the angle search, so they are excluded.
    The active array backend is included: pooled workspaces capture the
    backend at construction, so entries built under different backends must
    not be shared.  The routed execution path (and its shard count) is
    included for the same reason — a ``REPRO_SHARDS`` change must not hit a
    dense entry.
    """
    plan = select_execution_path(spec)
    payload = {
        "problem": spec.problem.to_dict(),
        "mixer": spec.mixer.to_dict(),
        "p": spec.p,
        "backend": active_backend().name,
        "execution": plan.path,
        "shards": plan.shards,
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class WarmEntry:
    """One fingerprint's live components plus its execution lock.

    The entry's ansatz owns mutable workspaces (for sharded plans: live
    worker processes and shared-memory segments), so at most one request
    group may execute on it at a time — callers hold :attr:`lock` around
    strategy runs and simulations.  ``hits`` counts how many requests the
    entry served.
    """

    def __init__(self, fingerprint: str, spec: SolveSpec):
        self.fingerprint = fingerprint
        self.backend_name = active_backend().name
        solver = QAOASolver(spec)
        self.plan = solver.plan
        self.problem = solver.problem  # None for non-dense plans
        self.mixer = solver.mixer  # None for non-dense plans
        self.ansatz = solver.ansatz
        self.lock = threading.Lock()
        self.hits = 0

    def solver_for(self, spec: SolveSpec) -> QAOASolver:
        """A :class:`QAOASolver` for ``spec`` running on this entry's components."""
        return QAOASolver.from_components(
            spec, self.problem, self.mixer, self.ansatz, plan=self.plan
        )

    @property
    def estimated_bytes(self) -> int:
        """Current analytic residency estimate (grows with the batched workspace)."""
        if self.plan.path == "sharded":
            executor = self.ansatz.executor
            return warm_entry_bytes(
                executor.dim,
                p=self.ansatz.p,
                batch_capacity=executor.workspace.batch,
                kind="sharded",
                shards=executor.shards,
            )
        if self.plan.path == "compressed":
            distinct = self.ansatz.spectrum.num_distinct
            return warm_entry_bytes(
                distinct,
                p=self.ansatz.p,
                kind="compressed",
                distinct=distinct,
            )
        workspace = self.ansatz._batched_workspace
        dense = isinstance(self.mixer, DiagonalizedMixer)
        return warm_entry_bytes(
            self.ansatz.schedule.dim,
            p=self.ansatz.p,
            batch_capacity=0 if workspace is None else workspace.capacity,
            dense_eigenvectors=dense,
            complex_vectors=dense and not self.mixer._real_basis,
        )

    def close(self) -> None:
        """Release engine resources (sharded workers); dense/compressed: no-op."""
        closer = getattr(self.ansatz, "close", None)
        if closer is not None:
            closer()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WarmEntry({self.fingerprint[:12]}..., "
            f"dim={self.ansatz.schedule.dim}, path={self.plan.path})"
        )


class WarmPool:
    """Fingerprint-keyed LRU of :class:`WarmEntry` with a byte budget.

    ``max_entries`` bounds the entry count; ``max_bytes`` (optional) bounds
    the summed :attr:`WarmEntry.estimated_bytes`.  The most recently used
    entry is never evicted — a single fingerprint over budget still solves,
    it just can't keep neighbours warm.  Thread-safe; entry construction
    happens outside the pool lock so a slow eigendecomposition doesn't block
    hits on other fingerprints (two racing builders of one fingerprint keep
    the first insert).
    """

    def __init__(self, *, max_entries: int = 8, max_bytes: int | None = None):
        if max_entries < 1:
            raise ValueError("the pool must be allowed at least one entry")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive when given")
        self.max_entries = int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._entries: OrderedDict[str, WarmEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def entry_for(self, spec: SolveSpec) -> WarmEntry:
        """The live entry for ``spec``'s fingerprint, building it on first use."""
        fingerprint = pool_fingerprint(spec)
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
                entry.hits += 1
                return entry
        built = WarmEntry(fingerprint, spec)
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                # Lost the build race; the established entry wins so every
                # request keeps sharing one set of workspaces.
                self._entries.move_to_end(fingerprint)
                self.hits += 1
                entry.hits += 1
                return entry
            self.misses += 1
            built.hits += 1
            self._entries[fingerprint] = built
            self._evict_locked()
        return built

    def _evict_locked(self) -> None:
        while len(self._entries) > self.max_entries:
            _, evicted = self._entries.popitem(last=False)
            evicted.close()
            self.evictions += 1
        if self.max_bytes is None:
            return
        while len(self._entries) > 1 and self._total_bytes_locked() > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            evicted.close()
            self.evictions += 1

    def _total_bytes_locked(self) -> int:
        return sum(entry.estimated_bytes for entry in self._entries.values())

    def total_bytes(self) -> int:
        """Summed analytic residency estimate of every pooled entry."""
        with self._lock:
            return self._total_bytes_locked()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def clear(self) -> None:
        """Drop every entry, releasing engine resources (counters are kept)."""
        with self._lock:
            for entry in self._entries.values():
                entry.close()
            self._entries.clear()

    def stats(self) -> dict:
        """JSON-serializable pool counters (what ``/stats`` reports)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "total_bytes": self._total_bytes_locked(),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "backends": sorted(
                    {entry.backend_name for entry in self._entries.values()}
                ),
            }
