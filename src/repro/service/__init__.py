"""The long-lived solver service: warm pools, request coalescing, result cache.

One-shot :func:`repro.api.solve` pays the full setup cost — problem
regeneration, feasible-space construction, mixer eigendecomposition — on every
call, which the paper identifies as the dominant cost at scale (the limiting
factor on a 48 GB GPU at n = 18).  A :class:`SolverService` amortizes it:

* :class:`~repro.service.pools.WarmPool` keeps the built problem / mixer /
  ansatz (with its grown :class:`~repro.core.workspace.BatchedWorkspace` and
  precomputed mixer spectra) alive per ``(problem, mixer, p)`` fingerprint,
  under LRU + byte-budget eviction accounted by
  :func:`repro.hpc.memory.warm_entry_bytes`;
* :mod:`~repro.service.coalesce` merges concurrent requests that share a
  fingerprint into the columns of one batched multi-start GEMM;
* the spec-keyed :class:`~repro.io.cache.ResultCache` answers repeated
  queries without touching the simulator at all.

Front ends: the in-process :meth:`SolverService.solve_many` / async
:meth:`SolverService.submit` API (what the sweep runner routes through), and
the stdlib-only HTTP server behind ``repro serve``
(:mod:`~repro.service.server`).
"""

from .coalesce import CoalesceWindow, coalesce_key, coalescible, solve_group
from .core import SolverService, default_service, reset_default_service
from .pools import WarmEntry, WarmPool, pool_fingerprint

__all__ = [
    "SolverService",
    "default_service",
    "reset_default_service",
    "WarmEntry",
    "WarmPool",
    "pool_fingerprint",
    "CoalesceWindow",
    "coalesce_key",
    "coalescible",
    "solve_group",
]
