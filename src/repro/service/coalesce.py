"""Cross-request coalescing: many solves as columns of one batched GEMM.

Concurrent requests that share a warm-pool fingerprint *and* an angle
strategy differ only in their RNG seed.  For the random-restart strategy —
whose refinement already runs on the lock-step vectorized multi-start engine
— that means each request's seed matrix can be stacked into one big
``(sum(iters), num_angles)`` batch, refined by a single
:func:`~repro.angles.multistart.multistart_minimize` call, and sliced back
per request.  Per-column BFGS state is independent by construction, so each
request's values match its one-shot :func:`repro.api.solve` to floating-point
round-off (bit-identical when the group holds a single request).

Strategies the batcher can't merge (grid, basinhop, iterative, ...) still
ride the warm pool: they run sequentially on the pooled ansatz, skipping all
setup.  :class:`CoalesceWindow` is the async front half — it holds arriving
requests for a short window, groups them by :func:`coalesce_key`, and hands
each group to a blocking batch executor.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from typing import Callable, Sequence

import numpy as np

from ..angles.multistart import multistart_minimize
from ..angles.random_restart import (
    random_restart_seeds,
    restart_results_from_report,
    summarize_restarts,
)
from ..api.solver import SolveResult
from ..api.spec import SolveSpec
from ..api.strategies import STRATEGIES, _normalized
from ..portfolio.budget import Budget
from .pools import WarmEntry, pool_fingerprint

__all__ = ["coalesce_key", "coalescible", "solve_group", "CoalesceWindow"]

#: Strategy params the coalesced multi-start path understands.  Anything else
#: (``refine_top``, ``vectorized``, ``gradient``, ...) changes the refinement
#: itself, so those requests fall back to sequential execution.
_COALESCIBLE_PARAMS = frozenset({"iters", "maxiter"})

_RANDOM_DEFAULT_ITERS = 100
_RANDOM_DEFAULT_MAXITER = 200


def _canonical_strategy(spec: SolveSpec) -> str:
    name = spec.strategy.name
    return STRATEGIES.canonical(name) if name in STRATEGIES else name


def coalesce_key(spec: SolveSpec) -> str:
    """Hash identifying requests that may merge into one strategy batch.

    The pool fingerprint plus the exact strategy configuration — everything
    except the seed, which is precisely what distinguishes the columns of the
    merged batch.
    """
    payload = {
        "fingerprint": pool_fingerprint(spec),
        "strategy": {"name": _canonical_strategy(spec), "params": dict(spec.strategy.params)},
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def coalescible(spec: SolveSpec) -> bool:
    """Whether ``spec`` can join a merged multi-start batch.

    True for the random-restart strategy in its default vectorized-adjoint
    configuration (only ``iters``/``maxiter`` tuned) — the configuration whose
    per-column refinement is provably independent across batch columns.
    """
    if _canonical_strategy(spec) != "random":
        return False
    return set(spec.strategy.params) <= _COALESCIBLE_PARAMS


def solve_group(
    entry: WarmEntry, specs: Sequence[SolveSpec], *, budget: Budget | None = None
) -> list[SolveResult]:
    """Solve a group of same-:func:`coalesce_key` specs on one warm entry.

    The caller holds ``entry.lock``.  Multi-request coalescible groups run as
    one stacked multi-start refinement; everything else (single requests and
    non-coalescible strategies) runs sequentially through the normal
    :meth:`~repro.api.solver.QAOASolver.run` path — bit-identical to a
    one-shot :func:`repro.api.solve` of the same spec.  ``budget`` (optional)
    deadline-bounds the group: coalesced batches poll it per lock-step
    iteration, sequential members each receive it and return best-so-far
    ``timed_out`` results once it expires.
    """
    specs = list(specs)
    if len(specs) > 1 and all(coalescible(spec) for spec in specs):
        return _solve_coalesced(entry, specs, budget=budget)
    return [entry.solver_for(spec).run(budget=budget) for spec in specs]


def _solve_coalesced(
    entry: WarmEntry, specs: list[SolveSpec], *, budget: Budget | None = None
) -> list[SolveResult]:
    """Run every spec's random restarts as columns of one multi-start batch."""
    started = time.perf_counter()
    ansatz = entry.ansatz
    params = specs[0].strategy.params  # identical across the group by key
    iters = int(params.get("iters", _RANDOM_DEFAULT_ITERS))
    maxiter = int(params.get("maxiter", _RANDOM_DEFAULT_MAXITER))

    seeds = np.vstack(
        [
            random_restart_seeds(ansatz, iters, np.random.default_rng(spec.seed))
            for spec in specs
        ]
    )
    report = multistart_minimize(ansatz, seeds, maxiter=maxiter, budget=budget)

    results = []
    for index, spec in enumerate(specs):
        start = index * iters
        per_restart = restart_results_from_report(ansatz, report, start=start, count=iters)
        evaluations = int(report.column_evaluations[start : start + iters].sum())
        summary = summarize_restarts(ansatz, per_restart, evaluations)
        summary.timed_out = report.timed_out
        angle_result = _normalized(summary, "random", ansatz)
        solver = entry.solver_for(spec)
        results.append(solver.result_from_angles(angle_result, started=started))
    return results


class CoalesceWindow:
    """Async request batcher: hold, group by key, flush to a blocking solver.

    ``solve_batch`` is a blocking callable ``(list[SolveSpec], deadline_s) ->
    list[SolveResult]`` (typically :meth:`SolverService.solve_many`); it runs
    in the event loop's executor so the loop stays responsive.  The first
    request of a key starts a ``window_s`` timer; every same-key request
    arriving before it fires joins the batch, and a batch reaching
    ``max_batch`` flushes immediately.  Requests only merge with requests
    carrying the *same* deadline — a deadline applies to the whole batch, so
    mixing budgets would let one client's tight deadline truncate another's
    unhurried solve.  All bookkeeping happens on the event loop thread, so no
    locks are needed.
    """

    def __init__(
        self,
        solve_batch: Callable[..., list[SolveResult]],
        *,
        window_s: float = 0.01,
        max_batch: int = 64,
    ):
        if window_s < 0:
            raise ValueError("window_s must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self._solve_batch = solve_batch
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._pending: dict[str, list[tuple[SolveSpec, asyncio.Future]]] = {}
        self.flushes = 0

    async def submit(self, spec: SolveSpec, *, deadline_s: float | None = None) -> SolveResult:
        """Enqueue one request and await its result."""
        loop = asyncio.get_running_loop()
        key = f"{coalesce_key(spec)}|{deadline_s!r}"
        future: asyncio.Future = loop.create_future()
        batch = self._pending.setdefault(key, [])
        batch.append((spec, future))
        if len(batch) >= self.max_batch:
            del self._pending[key]
            loop.create_task(self._dispatch(batch, deadline_s))
        elif len(batch) == 1:
            loop.create_task(self._flush_after(key, deadline_s))
        return await future

    async def _flush_after(self, key: str, deadline_s: float | None) -> None:
        if self.window_s:
            await asyncio.sleep(self.window_s)
        batch = self._pending.pop(key, None)
        if batch:
            await self._dispatch(batch, deadline_s)

    async def _dispatch(
        self, batch: list[tuple[SolveSpec, asyncio.Future]], deadline_s: float | None
    ) -> None:
        loop = asyncio.get_running_loop()
        specs = [spec for spec, _ in batch]
        self.flushes += 1
        try:
            results = await loop.run_in_executor(None, self._solve_batch, specs, deadline_s)
        except Exception as exc:  # noqa: BLE001 - fan the failure out per request
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)
