"""The :class:`SolverService`: warm pool + coalescer + result cache, one front.

``solve_many`` is the synchronous workhorse (what the sweep runner and the
benchmark call): answer what the spec-keyed result cache already knows, group
the rest by :func:`~repro.service.coalesce.coalesce_key`, run each group on
its warm-pool entry — coalesced into one multi-start batch where possible —
and store the fresh rows back.  ``submit`` is the async front the HTTP server
uses; it funnels through a :class:`~repro.service.coalesce.CoalesceWindow`
so requests arriving within a few milliseconds of each other merge even
though they came from independent clients.

:func:`default_service` is the process-wide shared instance; worker processes
of a sweep each get their own (module state does not survive ``fork``/spawn
boundaries as shared state, but per-worker reuse is exactly what a
params-only grid needs).
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from statistics import median
from typing import Any, Iterable, Mapping

from ..api.solver import SolveResult
from ..api.spec import SolveSpec
from ..io.cache import ResultCache, result_cache_from_env
from ..portfolio.budget import Budget
from .coalesce import CoalesceWindow, coalesce_key, coalescible, solve_group
from .pools import WarmPool

__all__ = ["SolverService", "default_service", "reset_default_service"]

#: Sentinel: resolve the result cache from ``REPRO_RESULT_CACHE`` at init.
_FROM_ENV = object()


class SolverService:
    """A long-lived solver front end amortizing setup across requests.

    Parameters
    ----------
    pool:
        A ready :class:`WarmPool` (one is built from ``max_entries`` /
        ``max_bytes`` when omitted).
    result_cache:
        A :class:`~repro.io.cache.ResultCache`, ``None`` to disable, or the
        default — resolve from the ``REPRO_RESULT_CACHE`` environment
        variable via :func:`~repro.io.cache.result_cache_from_env`.
    window_s, max_batch:
        Coalescing window for the async :meth:`submit` path: how long the
        first request of a key waits for company, and the batch size that
        flushes immediately.
    """

    def __init__(
        self,
        *,
        pool: WarmPool | None = None,
        max_entries: int = 8,
        max_bytes: int | None = None,
        result_cache: ResultCache | None | Any = _FROM_ENV,
        window_s: float = 0.01,
        max_batch: int = 64,
    ):
        self.pool = pool if pool is not None else WarmPool(
            max_entries=max_entries, max_bytes=max_bytes
        )
        if result_cache is _FROM_ENV:
            result_cache = result_cache_from_env()
        self.result_cache = result_cache
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._windows: dict[int, CoalesceWindow] = {}
        self._stats_lock = threading.Lock()
        self.requests = 0
        self.cache_hits = 0
        self.cache_stores = 0
        self.coalesced_groups = 0
        self.coalesced_requests = 0
        self.solved = 0
        self.deadline_requests = 0
        self.deadlines_met = 0
        self.deadlines_missed = 0
        self._deadline_slack: deque[float] = deque(maxlen=256)

    # -- synchronous API ----------------------------------------------
    @staticmethod
    def _as_spec(spec: SolveSpec | Mapping[str, Any]) -> SolveSpec:
        return spec if isinstance(spec, SolveSpec) else SolveSpec.from_dict(spec)

    def solve(
        self, spec: SolveSpec | Mapping[str, Any], *, deadline_s: float | None = None
    ) -> SolveResult:
        """One solve through the cache + warm pool (no cross-request merging)."""
        return self.solve_many([spec], deadline_s)[0]

    def solve_many(
        self,
        specs: Iterable[SolveSpec | Mapping[str, Any]],
        deadline_s: float | None = None,
    ) -> list[SolveResult]:
        """Solve a batch of specs, coalescing same-key members into one GEMM.

        Results come back in input order.  Cache hits are answered without
        touching the pool or the simulator; everything else is grouped by
        :func:`coalesce_key`, executed per group on its warm entry, and
        written back to the result cache.

        ``deadline_s`` bounds the *whole batch* with one shared
        :class:`~repro.portfolio.budget.Budget`: each group polls it and
        returns best-so-far ``timed_out`` results once it expires.  Timed-out
        results are never written to the result cache (they reflect the
        deadline, not the spec).
        """
        specs = [self._as_spec(spec) for spec in specs]
        results: list[SolveResult | None] = [None] * len(specs)
        budget = None if deadline_s is None else Budget(deadline_s)
        started = time.perf_counter()

        pending: dict[str, list[int]] = {}
        hits = 0
        for index, spec in enumerate(specs):
            if self.result_cache is not None:
                row = self.result_cache.get(spec)
                if row is not None:
                    # A hit is answered *now*: report the (tiny) time it took
                    # to answer, not the solve time baked into the stored row.
                    results[index] = SolveResult.from_row(
                        spec, row, cached=True, wall_time_s=time.perf_counter() - started
                    )
                    hits += 1
                    continue
            pending.setdefault(coalesce_key(spec), []).append(index)
        with self._stats_lock:
            self.requests += len(specs)
            self.cache_hits += hits

        for indices in pending.values():
            group = [specs[i] for i in indices]
            entry = self.pool.entry_for(group[0])
            with entry.lock:
                group_results = solve_group(entry, group, budget=budget)
            stores = 0
            for index, result in zip(indices, group_results):
                results[index] = result
                if self.result_cache is not None and not result.timed_out:
                    self.result_cache.put(specs[index], result.to_row())
                    stores += 1
            merged = len(group) > 1 and all(coalescible(spec) for spec in group)
            with self._stats_lock:
                self.solved += len(group)
                self.cache_stores += stores
                if merged:
                    self.coalesced_groups += 1
                    self.coalesced_requests += len(group)

        if deadline_s is not None:
            elapsed = time.perf_counter() - started
            with self._stats_lock:
                for result in results:
                    self.deadline_requests += 1
                    if result is not None and result.timed_out:
                        self.deadlines_missed += 1
                    else:
                        self.deadlines_met += 1
                self._deadline_slack.append(deadline_s - elapsed)

        return results  # type: ignore[return-value]

    # -- async API -----------------------------------------------------
    def _window_for_running_loop(self) -> CoalesceWindow:
        # One window per event loop: futures and timers are loop-bound, so a
        # window must never mix requests from different loops.
        loop = asyncio.get_running_loop()
        window = self._windows.get(id(loop))
        if window is None:
            window = CoalesceWindow(
                self.solve_many, window_s=self.window_s, max_batch=self.max_batch
            )
            self._windows[id(loop)] = window
        return window

    async def submit(
        self, spec: SolveSpec | Mapping[str, Any], *, deadline_s: float | None = None
    ) -> SolveResult:
        """Async solve: briefly held for coalescing, then executed off-loop.

        Concurrent ``submit`` calls whose specs share a coalesce key within
        ``window_s`` — and carry the same ``deadline_s`` — are answered from
        one batched solve.
        """
        return await self._window_for_running_loop().submit(
            self._as_spec(spec), deadline_s=deadline_s
        )

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        """JSON-serializable counters (the ``/stats`` endpoint's payload)."""
        with self._stats_lock:
            slacks = list(self._deadline_slack)
            counters = {
                "requests": self.requests,
                "cache_hits": self.cache_hits,
                "cache_stores": self.cache_stores,
                "coalesced_groups": self.coalesced_groups,
                "coalesced_requests": self.coalesced_requests,
                "solved": self.solved,
                "deadline_requests": self.deadline_requests,
                "deadlines_met": self.deadlines_met,
                "deadlines_missed": self.deadlines_missed,
                "median_deadline_slack_s": median(slacks) if slacks else None,
            }
        return {
            **counters,
            "result_cache": None if self.result_cache is None else str(self.result_cache.directory),
            "pool": self.pool.stats(),
        }


_default_service: SolverService | None = None
_default_service_lock = threading.Lock()


def default_service() -> SolverService:
    """The process-wide shared :class:`SolverService` (created on first use)."""
    global _default_service
    with _default_service_lock:
        if _default_service is None:
            _default_service = SolverService()
        return _default_service


def reset_default_service() -> None:
    """Drop the shared service (tests, or to pick up changed env config)."""
    global _default_service
    with _default_service_lock:
        _default_service = None
