"""Stdlib-only asyncio HTTP front end for the solver service (``repro serve``).

A deliberately small HTTP/1.1 implementation on ``asyncio.start_server`` — no
framework, no threads beyond the service's own executor use.  Endpoints:

* ``GET /healthz`` — liveness: ``{"status": "ok"}``;
* ``GET /stats`` — the service's counters and pool occupancy;
* ``POST /solve`` — body is a :class:`~repro.api.spec.SolveSpec` JSON
  document, ``{"spec": {...}}``, or ``{"specs": [{...}, ...]}``.  Requests
  are forwarded through :meth:`SolverService.submit`, so concurrent clients
  (and the members of one ``specs`` list) coalesce into shared batches.  An
  optional top-level ``deadline_ms`` (a positive number) bounds the request:
  the solver returns its best-so-far answer with ``timed_out: true`` once
  the budget runs out, and only same-deadline requests batch together.

Responses carry the flat result row (:meth:`SolveResult.to_row`) plus a
``cached`` flag.  Malformed input is a 400 with a JSON error body; unknown
paths 404; wrong methods 405.
"""

from __future__ import annotations

import asyncio
import json

from ..api.spec import SolveSpec
from .core import SolverService, default_service

__all__ = ["handle_connection", "run_server", "serve"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _response(status: int, payload: dict) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


async def _read_request(reader: asyncio.StreamReader) -> tuple[str, str, bytes]:
    """Parse one request; returns ``(method, path, body)``."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError as exc:
        raise _HttpError(413, "headers too large") from exc
    except asyncio.IncompleteReadError as exc:
        raise _HttpError(400, "truncated request") from exc
    if len(head) > _MAX_HEADER_BYTES:
        raise _HttpError(413, "headers too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise _HttpError(400, f"malformed request line: {lines[0]!r}")
    method, path, _version = parts
    content_length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError as exc:
                raise _HttpError(400, "bad Content-Length") from exc
    if content_length > _MAX_BODY_BYTES:
        raise _HttpError(413, "body too large")
    body = b""
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError as exc:
            raise _HttpError(400, "truncated body") from exc
    return method, path.split("?", 1)[0], body


def _parse_deadline_ms(payload: dict) -> float | None:
    """Validate an optional top-level ``deadline_ms``; returns seconds."""
    if "deadline_ms" not in payload:
        return None
    raw = payload["deadline_ms"]
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise _HttpError(400, f"'deadline_ms' must be a number, got {raw!r}")
    if not raw > 0:
        raise _HttpError(400, f"'deadline_ms' must be positive, got {raw!r}")
    return float(raw) / 1000.0


def _parse_solve_body(body: bytes) -> tuple[list[SolveSpec], bool, float | None]:
    """The specs of a ``POST /solve`` body; ``(specs, many, deadline_s)``."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise _HttpError(400, "body must be a JSON object")

    deadline_s = _parse_deadline_ms(payload)
    if "specs" in payload:
        raw_specs = payload["specs"]
        if not isinstance(raw_specs, list) or not raw_specs:
            raise _HttpError(400, "'specs' must be a non-empty list")
        many = True
    elif "spec" in payload:
        raw_specs = [payload["spec"]]
        many = False
    else:
        raw_specs = [payload]
        many = False

    specs = []
    for raw in raw_specs:
        if isinstance(raw, dict) and raw is payload:
            raw = {k: v for k, v in raw.items() if k != "deadline_ms"}
        try:
            specs.append(SolveSpec.from_dict(raw))
        except (KeyError, TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad solve spec: {exc}") from exc
    return specs, many, deadline_s


def _result_payload(result) -> dict:
    return {**result.to_row(), "cached": bool(result.cached)}


async def _handle_request(service: SolverService, method: str, path: str, body: bytes) -> bytes:
    if path == "/healthz":
        if method != "GET":
            raise _HttpError(405, "use GET")
        return _response(200, {"status": "ok"})
    if path == "/stats":
        if method != "GET":
            raise _HttpError(405, "use GET")
        return _response(200, service.stats())
    if path == "/solve":
        if method != "POST":
            raise _HttpError(405, "use POST")
        specs, many, deadline_s = _parse_solve_body(body)
        try:
            # Submitting concurrently lets the members of one request body
            # coalesce with each other and with other clients' requests.
            results = await asyncio.gather(
                *(service.submit(spec, deadline_s=deadline_s) for spec in specs)
            )
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, str(exc)) from exc
        if many:
            return _response(200, {"results": [_result_payload(r) for r in results]})
        return _response(200, _result_payload(results[0]))
    raise _HttpError(404, f"unknown path {path!r}")


async def handle_connection(
    service: SolverService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one HTTP connection (one request; the server is Connection: close)."""
    try:
        try:
            method, path, body = await _read_request(reader)
            payload = await _handle_request(service, method, path, body)
        except _HttpError as exc:
            payload = _response(exc.status, {"error": exc.message})
        except Exception as exc:  # noqa: BLE001 - never kill the server loop
            payload = _response(500, {"error": f"internal error: {exc}"})
        writer.write(payload)
        await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_server(
    service: SolverService | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    ready: asyncio.Event | None = None,
    log=print,
) -> None:
    """Run the HTTP front end until cancelled.

    ``ready`` (optional) is set once the socket is listening — tests and the
    smoke job use it to know when to connect.
    """
    if service is None:
        service = default_service()

    async def _on_connection(reader, writer):
        await handle_connection(service, reader, writer)

    server = await asyncio.start_server(_on_connection, host, port)
    bound = ", ".join(str(sock.getsockname()) for sock in server.sockets)
    if log is not None:
        log(f"repro serve listening on {bound} (POST /solve, GET /healthz, GET /stats)")
    if ready is not None:
        ready.set()
    async with server:
        await server.serve_forever()


def serve(
    service: SolverService | None = None, *, host: str = "127.0.0.1", port: int = 8642
) -> None:
    """Blocking entry point (what ``repro serve`` calls)."""
    try:
        asyncio.run(run_server(service, host=host, port=port))
    except KeyboardInterrupt:
        pass
