"""Gate-by-gate statevector backend.

This is the generic simulation strategy the baseline packages use: hold the
full ``2^n`` statevector and apply each gate by contracting its (small) matrix
against the state tensor.  Unlike the direct simulator in :mod:`repro.core`
there is no QAOA-specific pre-computation — every gate of every layer is
applied individually, every time.

Bit convention: qubit 0 is the least-significant bit of the state index, so
when the statevector is reshaped to an ``n``-dimensional ``(2, ..., 2)``
tensor (C order), qubit ``q`` lives on axis ``n - 1 - q``.
"""

from __future__ import annotations

import numpy as np

from .circuit import Circuit
from .gates import Gate

__all__ = ["apply_gate", "StatevectorBackend"]


def apply_gate(
    state: np.ndarray,
    gate: Gate,
    n: int,
    *,
    diagonal_fast_path: bool = True,
    backend=None,
) -> np.ndarray:
    """Apply one gate to a length-``2^n`` statevector and return the new state.

    ``backend`` optionally supplies the
    :class:`~repro.backend.base.ArrayBackend` that executes the gate-tensor
    contraction (defaults to plain numpy).
    """
    state = np.asarray(state, dtype=np.complex128)
    if state.shape != (1 << n,):
        raise ValueError(f"state has shape {state.shape}, expected ({1 << n},)")

    if gate.num_qubits == 0:
        return state * gate.matrix[0, 0]

    if diagonal_fast_path and gate.is_diagonal():
        # Diagonal gates multiply each amplitude by a phase selected by the
        # gate-local bit pattern of the state index.
        diag = np.diag(gate.matrix)
        labels = np.arange(1 << n, dtype=np.uint64)
        local = np.zeros(1 << n, dtype=np.int64)
        for j, qubit in enumerate(gate.qubits):
            bit = (labels >> np.uint64(qubit)) & np.uint64(1)
            local |= (bit << np.uint64(j)).astype(np.int64)
        return state * diag[local]

    k = gate.num_qubits
    tensor = state.reshape((2,) * n)
    gate_tensor = gate.matrix.reshape((2,) * (2 * k))
    # Contract the gate's input indices with the state axes of its qubits.
    # Gate index ordering: qubits[0] is the least-significant bit of the gate
    # matrix index, so axis order (MSB first) is qubits[k-1], ..., qubits[0].
    in_axes = [n - 1 - q for q in reversed(gate.qubits)]
    contract = np.tensordot if backend is None else backend.tensordot
    moved = contract(gate_tensor, tensor, axes=(list(range(k, 2 * k)), in_axes))
    remaining = [axis for axis in range(n) if axis not in in_axes]
    current_order = in_axes + remaining
    result = np.transpose(moved, np.argsort(current_order))
    return np.ascontiguousarray(result).reshape(-1)


class StatevectorBackend:
    """Runs circuits gate by gate on a dense statevector.

    Parameters
    ----------
    diagonal_fast_path:
        Whether diagonal gates use the cheap phase-multiply path.  The
        "QAOAKit-like" baseline disables it to emulate a framework that treats
        every gate as a dense matrix.
    backend:
        Optional :class:`~repro.backend.base.ArrayBackend` for the gate
        contractions; defaults to the process-wide active backend at
        construction time.
    """

    name = "statevector"

    def __init__(self, diagonal_fast_path: bool = True, *, backend=None):
        self.diagonal_fast_path = bool(diagonal_fast_path)
        if backend is None:
            from ..backend import active_backend

            backend = active_backend()
        self.backend = backend
        #: number of individual gate applications performed (for benchmarks)
        self.gates_applied = 0

    def run(self, circuit: Circuit, initial_state: np.ndarray | None = None) -> np.ndarray:
        """Simulate ``circuit`` from ``initial_state`` (default ``|0...0>``)."""
        dim = 1 << circuit.n
        if initial_state is None:
            state = np.zeros(dim, dtype=np.complex128)
            state[0] = 1.0
        else:
            state = np.asarray(initial_state, dtype=np.complex128).copy()
            if state.shape != (dim,):
                raise ValueError(f"initial state has shape {state.shape}, expected ({dim},)")
        for gate in circuit:
            state = apply_gate(
                state,
                gate,
                circuit.n,
                diagonal_fast_path=self.diagonal_fast_path,
                backend=self.backend,
            )
            self.gates_applied += 1
        return state

    def expectation(self, circuit: Circuit, diagonal_observable: np.ndarray,
                    initial_state: np.ndarray | None = None) -> float:
        """Expectation of a diagonal observable after running the circuit."""
        state = self.run(circuit, initial_state)
        observable = np.asarray(diagonal_observable, dtype=np.float64)
        if observable.shape != state.shape:
            raise ValueError("observable and state dimensions differ")
        return float(np.real(np.vdot(state, observable * state)))
