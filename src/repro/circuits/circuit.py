"""Circuit container for the baseline circuit simulators."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .gates import Gate

__all__ = ["Circuit"]


class Circuit:
    """An ordered list of gates on ``n`` qubits.

    This deliberately mirrors the minimal surface a QAOA needs from a circuit
    framework: append gates, iterate them in order, count them and compose
    circuits.  There is no transpilation or optimization — the point of the
    baselines is to measure what a *generic* circuit pipeline costs.
    """

    def __init__(self, n: int, gates: Iterable[Gate] | None = None):
        if n < 1:
            raise ValueError("a circuit needs at least one qubit")
        self.n = int(n)
        self._gates: list[Gate] = []
        if gates is not None:
            for gate in gates:
                self.append(gate)

    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "Circuit":
        """Append a gate (validating qubit indices); returns self for chaining."""
        if not isinstance(gate, Gate):
            raise TypeError(f"expected a Gate, got {type(gate).__name__}")
        for qubit in gate.qubits:
            if not 0 <= qubit < self.n:
                raise ValueError(f"gate {gate.name} targets qubit {qubit} outside 0..{self.n - 1}")
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        """Append several gates."""
        for gate in gates:
            self.append(gate)
        return self

    def compose(self, other: "Circuit") -> "Circuit":
        """A new circuit running ``self`` then ``other``."""
        if other.n != self.n:
            raise ValueError("cannot compose circuits with different qubit counts")
        return Circuit(self.n, list(self._gates) + list(other._gates))

    # ------------------------------------------------------------------
    @property
    def gates(self) -> tuple[Gate, ...]:
        """The gates, in application order."""
        return tuple(self._gates)

    @property
    def num_gates(self) -> int:
        """Total number of gates."""
        return len(self._gates)

    def num_two_qubit_gates(self) -> int:
        """Number of gates acting on two or more qubits."""
        return sum(1 for g in self._gates if g.num_qubits >= 2)

    def gate_counts(self) -> dict[str, int]:
        """Histogram of gate names."""
        counts: dict[str, int] = {}
        for gate in self._gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth (longest chain of gates sharing qubits)."""
        busy_until = [0] * self.n
        depth = 0
        for gate in self._gates:
            if gate.num_qubits == 0:
                continue
            start = max(busy_until[q] for q in gate.qubits)
            finish = start + 1
            for q in gate.qubits:
                busy_until[q] = finish
            depth = max(depth, finish)
        return depth

    def inverse(self) -> "Circuit":
        """The adjoint circuit (gates reversed and conjugated)."""
        return Circuit(self.n, [g.dagger() for g in reversed(self._gates)])

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Circuit(n={self.n}, gates={self.num_gates}, depth={self.depth()})"
