"""QAOA circuit construction.

Builds the gate-level circuits the baseline simulators run: the uniform
superposition preparation, cost layers decomposed into RZ/RZZ rotations
(MaxCut and general Ising costs), transverse-field mixer layers of RX
rotations, and first-order-Trotterized XY (Clique/Ring) mixer layers.  A
``decompose`` pass further breaks RZZ and RX into {CNOT, RZ, H} to emulate a
framework that compiles to a restricted basis before simulating (more gates,
more overhead — the QAOAKit-like baseline).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..problems.graphs import edge_array
from .circuit import Circuit
from .gates import cnot, global_phase, hadamard, rx, rz, rzz, xy_rotation

__all__ = [
    "initial_layer",
    "maxcut_cost_layer",
    "ising_cost_layer",
    "x_mixer_layer",
    "xy_mixer_layer",
    "maxcut_qaoa_circuit",
    "trotter_xy_qaoa_circuit",
    "decompose_circuit",
]


def initial_layer(n: int) -> Circuit:
    """Hadamards on every qubit: prepares the uniform superposition from ``|0...0>``."""
    circuit = Circuit(n)
    for q in range(n):
        circuit.append(hadamard(q))
    return circuit


def maxcut_cost_layer(
    graph: nx.Graph, gamma: float, *, include_global_phase: bool = True
) -> Circuit:
    """Circuit implementing ``exp(-i gamma C)`` for the MaxCut objective.

    Using ``C = sum_e (1 - Z_u Z_v) / 2`` each edge contributes an
    ``RZZ(-gamma)`` rotation and a global phase ``e^{-i gamma / 2}``; the
    global phase does not change expectation values but is kept (optionally)
    so statevectors match the direct simulator exactly.
    """
    n = graph.number_of_nodes()
    circuit = Circuit(n)
    edges = edge_array(graph)
    for u, v in edges:
        circuit.append(rzz(int(u), int(v), -gamma))
    if include_global_phase and len(edges):
        circuit.append(global_phase(-gamma * len(edges) / 2.0))
    return circuit


def ising_cost_layer(h: np.ndarray, J: np.ndarray, gamma: float) -> Circuit:
    """Circuit for ``exp(-i gamma C)`` with the Ising objective of :mod:`repro.problems.extra`.

    The spin convention is ``s_i = 2 x_i - 1``, i.e. the spin operator is
    ``-Z_i``, giving ``C_op = -sum_i h_i Z_i + sum_{i<j} J_ij Z_i Z_j``.
    """
    h = np.asarray(h, dtype=np.float64)
    J = np.asarray(J, dtype=np.float64)
    n = h.shape[0]
    if J.shape != (n, n):
        raise ValueError(f"J has shape {J.shape}, expected ({n},{n})")
    circuit = Circuit(n)
    for i in range(n):
        if h[i] != 0.0:
            # exp(+i gamma h_i Z_i) = RZ(-2 gamma h_i)
            circuit.append(rz(i, -2.0 * gamma * h[i]))
    for i in range(n):
        for j in range(i + 1, n):
            if J[i, j] != 0.0:
                # exp(-i gamma J_ij Z_i Z_j) = RZZ(2 gamma J_ij)
                circuit.append(rzz(i, j, 2.0 * gamma * J[i, j]))
    return circuit


def x_mixer_layer(n: int, beta: float) -> Circuit:
    """Transverse-field mixer layer ``exp(-i beta sum_i X_i)`` as RX(2 beta) rotations."""
    circuit = Circuit(n)
    for q in range(n):
        circuit.append(rx(q, 2.0 * beta))
    return circuit


def xy_mixer_layer(n: int, beta: float, pairs: list[tuple[int, int]]) -> Circuit:
    """First-order Trotter step of an XY mixer: one ``exp(-i beta (XX+YY))`` per pair.

    This is the QOKit-style constrained-mixer implementation the paper
    contrasts with its exact subspace eigendecomposition: the product over
    pairs only equals ``exp(-i beta H_M)`` up to first order in ``beta``
    because the pair terms do not commute.
    """
    circuit = Circuit(n)
    for i, j in pairs:
        circuit.append(xy_rotation(int(i), int(j), beta))
    return circuit


def maxcut_qaoa_circuit(
    graph: nx.Graph,
    betas: np.ndarray,
    gammas: np.ndarray,
    *,
    include_global_phase: bool = True,
    include_initial_layer: bool = True,
) -> Circuit:
    """Full ``p``-round MaxCut QAOA circuit with the transverse-field mixer."""
    betas = np.asarray(betas, dtype=np.float64).ravel()
    gammas = np.asarray(gammas, dtype=np.float64).ravel()
    if betas.shape != gammas.shape:
        raise ValueError("betas and gammas must have the same length")
    n = graph.number_of_nodes()
    circuit = initial_layer(n) if include_initial_layer else Circuit(n)
    for beta, gamma in zip(betas, gammas):
        circuit = circuit.compose(
            maxcut_cost_layer(graph, gamma, include_global_phase=include_global_phase)
        )
        circuit = circuit.compose(x_mixer_layer(n, beta))
    return circuit


def trotter_xy_qaoa_circuit(
    graph: nx.Graph,
    betas: np.ndarray,
    gammas: np.ndarray,
    pairs: list[tuple[int, int]],
    cost_layer_builder,
    *,
    trotter_steps: int = 1,
) -> Circuit:
    """A constrained QAOA circuit with Trotterized XY mixer layers.

    ``cost_layer_builder(gamma)`` must return the cost-layer circuit; the XY
    mixer of each round is split into ``trotter_steps`` repetitions of the
    pair product with angle ``beta / trotter_steps``.
    """
    betas = np.asarray(betas, dtype=np.float64).ravel()
    gammas = np.asarray(gammas, dtype=np.float64).ravel()
    if betas.shape != gammas.shape:
        raise ValueError("betas and gammas must have the same length")
    if trotter_steps < 1:
        raise ValueError("trotter_steps must be at least 1")
    n = graph.number_of_nodes()
    circuit = Circuit(n)
    for beta, gamma in zip(betas, gammas):
        circuit = circuit.compose(cost_layer_builder(gamma))
        for _ in range(trotter_steps):
            circuit = circuit.compose(xy_mixer_layer(n, beta / trotter_steps, pairs))
    return circuit


def decompose_circuit(circuit: Circuit) -> Circuit:
    """Rewrite RZZ and RX gates into the {H, CNOT, RZ} basis.

    ``RZZ(theta) = CNOT · RZ(theta on target) · CNOT`` and
    ``RX(theta) = H · RZ(theta) · H``.  The result has ~3x the gate count of
    the input, which is what makes the decomposed (QAOAKit-like) baseline
    slower without changing the state it prepares.
    """
    out = Circuit(circuit.n)
    for gate in circuit:
        if gate.name == "RZZ":
            q0, q1 = gate.qubits
            # Recover theta from the diagonal: top-left entry is e^{-i theta/2}.
            theta = -2.0 * np.angle(gate.matrix[0, 0])
            out.append(cnot(q0, q1))
            out.append(rz(q1, theta))
            out.append(cnot(q0, q1))
        elif gate.name == "RX":
            (q,) = gate.qubits
            theta = 2.0 * np.arccos(np.clip(np.real(gate.matrix[0, 0]), -1.0, 1.0))
            # Sign of the rotation from the off-diagonal element.
            if np.imag(gate.matrix[0, 1]) > 0:
                theta = -theta
            out.append(hadamard(q))
            out.append(rz(q, theta))
            out.append(hadamard(q))
        else:
            out.append(gate)
    return out
