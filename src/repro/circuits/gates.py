"""Gate definitions for the circuit-simulator substrate.

The paper's performance comparison (Fig. 4) pits the direct linear-algebra
simulator against packages that *compose QAOA circuits and hand them to
general-purpose simulators* (QAOAKit → Qiskit, QAOA.jl → Yao.jl).  To
reproduce that comparison without those external packages, this subpackage
implements the circuit substrate itself: a small gate set sufficient for QAOA
circuits (state preparation, cost layers, mixer layers) plus generic one- and
two-qubit unitaries.

A :class:`Gate` is a name, the qubits it acts on and its dense matrix in the
convention that qubit order within the matrix matches the order of
``gate.qubits`` (least-significant listed first).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Gate",
    "identity",
    "hadamard",
    "pauli_x",
    "pauli_y",
    "pauli_z",
    "phase",
    "rx",
    "ry",
    "rz",
    "cnot",
    "cz",
    "swap",
    "rzz",
    "rxx",
    "xy_rotation",
    "global_phase",
    "diagonal_gate",
]

_SQRT2 = np.sqrt(2.0)


@dataclass(frozen=True)
class Gate:
    """A quantum gate: display name, target qubits and its unitary matrix."""

    name: str
    qubits: tuple[int, ...]
    matrix: np.ndarray

    def __post_init__(self) -> None:
        qubits = tuple(int(q) for q in self.qubits)
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"gate {self.name} has duplicate target qubits {qubits}")
        matrix = np.asarray(self.matrix, dtype=np.complex128)
        expected = 1 << len(qubits)
        if matrix.shape != (expected, expected):
            raise ValueError(
                f"gate {self.name} on {len(qubits)} qubit(s) needs a "
                f"{expected}x{expected} matrix, got {matrix.shape}"
            )
        object.__setattr__(self, "qubits", qubits)
        object.__setattr__(self, "matrix", matrix)

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return len(self.qubits)

    def is_diagonal(self, atol: float = 1e-12) -> bool:
        """Whether the gate matrix is diagonal (cheap to apply)."""
        off_diag = self.matrix - np.diag(np.diag(self.matrix))
        return bool(np.allclose(off_diag, 0.0, atol=atol))

    def dagger(self) -> "Gate":
        """The adjoint gate."""
        return Gate(name=f"{self.name}†", qubits=self.qubits, matrix=self.matrix.conj().T)


# ---------------------------------------------------------------------------
# single-qubit gates
# ---------------------------------------------------------------------------

def identity(qubit: int) -> Gate:
    """Identity gate (useful as a placeholder)."""
    return Gate("I", (qubit,), np.eye(2))


def hadamard(qubit: int) -> Gate:
    """Hadamard gate."""
    return Gate("H", (qubit,), np.array([[1, 1], [1, -1]], dtype=np.complex128) / _SQRT2)


def pauli_x(qubit: int) -> Gate:
    """Pauli-X gate."""
    return Gate("X", (qubit,), np.array([[0, 1], [1, 0]], dtype=np.complex128))


def pauli_y(qubit: int) -> Gate:
    """Pauli-Y gate."""
    return Gate("Y", (qubit,), np.array([[0, -1j], [1j, 0]], dtype=np.complex128))


def pauli_z(qubit: int) -> Gate:
    """Pauli-Z gate."""
    return Gate("Z", (qubit,), np.array([[1, 0], [0, -1]], dtype=np.complex128))


def phase(qubit: int, theta: float) -> Gate:
    """Phase gate ``diag(1, e^{i theta})``."""
    return Gate("PHASE", (qubit,), np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=np.complex128))


def rx(qubit: int, theta: float) -> Gate:
    """X rotation ``exp(-i theta X / 2)``."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return Gate("RX", (qubit,), np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128))


def ry(qubit: int, theta: float) -> Gate:
    """Y rotation ``exp(-i theta Y / 2)``."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return Gate("RY", (qubit,), np.array([[c, -s], [s, c]], dtype=np.complex128))


def rz(qubit: int, theta: float) -> Gate:
    """Z rotation ``exp(-i theta Z / 2)``."""
    return Gate(
        "RZ",
        (qubit,),
        np.array(
            [[np.exp(-1j * theta / 2.0), 0], [0, np.exp(1j * theta / 2.0)]],
            dtype=np.complex128,
        ),
    )


# ---------------------------------------------------------------------------
# two-qubit gates (matrix basis order: |q1 q0> with qubits=(q0, q1))
# ---------------------------------------------------------------------------

def cnot(control: int, target: int) -> Gate:
    """Controlled-NOT.  ``qubits = (control, target)``."""
    # Basis order |target control>? We fix qubits=(control, target) and order
    # basis as |q1 q0> = |target control>: states 0b00,0b01,0b10,0b11 index
    # (control + 2*target).  CNOT flips target when control=1.
    mat = np.zeros((4, 4), dtype=np.complex128)
    for control_bit in (0, 1):
        for target_bit in (0, 1):
            col = control_bit + 2 * target_bit
            new_target = target_bit ^ control_bit
            row = control_bit + 2 * new_target
            mat[row, col] = 1.0
    return Gate("CNOT", (control, target), mat)


def cz(q0: int, q1: int) -> Gate:
    """Controlled-Z (symmetric)."""
    return Gate("CZ", (q0, q1), np.diag([1.0, 1.0, 1.0, -1.0]).astype(np.complex128))


def swap(q0: int, q1: int) -> Gate:
    """SWAP gate."""
    mat = np.eye(4, dtype=np.complex128)[[0, 2, 1, 3]]
    return Gate("SWAP", (q0, q1), mat)


def rzz(q0: int, q1: int, theta: float) -> Gate:
    """ZZ rotation ``exp(-i theta Z⊗Z / 2)`` (diagonal)."""
    diag = np.exp(-1j * theta / 2.0 * np.array([1.0, -1.0, -1.0, 1.0]))
    return Gate("RZZ", (q0, q1), np.diag(diag))


def rxx(q0: int, q1: int, theta: float) -> Gate:
    """XX rotation ``exp(-i theta X⊗X / 2)``."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    mat = np.array(
        [
            [c, 0, 0, -1j * s],
            [0, c, -1j * s, 0],
            [0, -1j * s, c, 0],
            [-1j * s, 0, 0, c],
        ],
        dtype=np.complex128,
    )
    return Gate("RXX", (q0, q1), mat)


def xy_rotation(q0: int, q1: int, theta: float) -> Gate:
    """``exp(-i theta (X⊗X + Y⊗Y))`` — the two-qubit block of the Clique/Ring mixers.

    Acts as identity on |00> and |11> and as a rotation by ``2 theta`` in the
    {|01>, |10>} subspace (the XY term has eigenvalues ±2 there).
    """
    c, s = np.cos(2.0 * theta), np.sin(2.0 * theta)
    mat = np.array(
        [
            [1, 0, 0, 0],
            [0, c, -1j * s, 0],
            [0, -1j * s, c, 0],
            [0, 0, 0, 1],
        ],
        dtype=np.complex128,
    )
    return Gate("XY", (q0, q1), mat)


# ---------------------------------------------------------------------------
# special gates
# ---------------------------------------------------------------------------

def global_phase(phi: float) -> Gate:
    """Global phase ``e^{i phi}`` recorded as a zero-qubit gate."""
    return Gate("GPHASE", (), np.array([[np.exp(1j * phi)]], dtype=np.complex128))


def diagonal_gate(qubits: tuple[int, ...], diagonal: np.ndarray, name: str = "DIAG") -> Gate:
    """A diagonal gate given by its diagonal entries over the listed qubits."""
    diagonal = np.asarray(diagonal, dtype=np.complex128)
    expected = 1 << len(qubits)
    if diagonal.shape != (expected,):
        raise ValueError(f"diagonal must have length {expected}, got {diagonal.shape}")
    return Gate(name, tuple(qubits), np.diag(diagonal))
