"""Dense-unitary backend.

The most naive circuit-simulation strategy: every gate is promoted to a full
``2^n x 2^n`` unitary (via Kronecker products with identities) and multiplied
into the statevector — or, in :meth:`DenseBackend.unitary`, into an
accumulated circuit unitary.  Memory grows as ``4^n`` and time as ``4^n`` per
gate, which is why Fig. 4a's memory curves separate so dramatically from the
direct simulator.  Used as the worst-case baseline and for small-``n``
correctness cross-checks.
"""

from __future__ import annotations

import numpy as np

from .circuit import Circuit
from .gates import Gate

__all__ = ["gate_to_full_unitary", "DenseBackend"]


def gate_to_full_unitary(gate: Gate, n: int) -> np.ndarray:
    """Promote a gate to its full ``2^n x 2^n`` matrix (qubit 0 = least significant bit)."""
    dim = 1 << n
    if gate.num_qubits == 0:
        return gate.matrix[0, 0] * np.eye(dim, dtype=np.complex128)
    for qubit in gate.qubits:
        if not 0 <= qubit < n:
            raise ValueError(f"gate targets qubit {qubit} outside 0..{n - 1}")

    full = np.zeros((dim, dim), dtype=np.complex128)
    k = gate.num_qubits
    qubits = gate.qubits
    mask = 0
    for q in qubits:
        mask |= 1 << q
    # For every assignment of the untouched qubits, paste the gate matrix into
    # the rows/columns whose untouched bits match.
    for col in range(dim):
        col_local = 0
        for j, q in enumerate(qubits):
            col_local |= ((col >> q) & 1) << j
        base = col & ~mask
        for row_local in range(1 << k):
            row = base
            for j, q in enumerate(qubits):
                if (row_local >> j) & 1:
                    row |= 1 << q
            full[row, col] = gate.matrix[row_local, col_local]
    return full


class DenseBackend:
    """Runs circuits by forming full-dimension unitaries for every gate."""

    name = "dense"

    def __init__(self):
        #: number of dense gate matrices built (for benchmarks)
        self.gates_applied = 0

    def run(self, circuit: Circuit, initial_state: np.ndarray | None = None) -> np.ndarray:
        """Simulate ``circuit`` by dense matrix-vector products."""
        dim = 1 << circuit.n
        if initial_state is None:
            state = np.zeros(dim, dtype=np.complex128)
            state[0] = 1.0
        else:
            state = np.asarray(initial_state, dtype=np.complex128).copy()
            if state.shape != (dim,):
                raise ValueError(f"initial state has shape {state.shape}, expected ({dim},)")
        for gate in circuit:
            state = gate_to_full_unitary(gate, circuit.n) @ state
            self.gates_applied += 1
        return state

    def unitary(self, circuit: Circuit) -> np.ndarray:
        """The full circuit unitary (product of all gate unitaries)."""
        dim = 1 << circuit.n
        total = np.eye(dim, dtype=np.complex128)
        for gate in circuit:
            total = gate_to_full_unitary(gate, circuit.n) @ total
            self.gates_applied += 1
        return total

    def expectation(self, circuit: Circuit, diagonal_observable: np.ndarray,
                    initial_state: np.ndarray | None = None) -> float:
        """Expectation of a diagonal observable after running the circuit."""
        state = self.run(circuit, initial_state)
        observable = np.asarray(diagonal_observable, dtype=np.float64)
        return float(np.real(np.vdot(state, observable * state)))
