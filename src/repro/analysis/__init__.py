"""Metrics and post-processing: approximation ratios, fair sampling, convergence series."""

from .convergence import ConvergenceSeries, average_series, series_from_results
from .fair_sampling import (
    amplitude_spread_by_value,
    is_fair_sampling,
    value_class_probabilities,
)
from .metrics import (
    approximation_ratio,
    ensemble_mean,
    ensemble_summary,
    expectation_from_probabilities,
    normalized_approximation_ratio,
    success_probability,
)

__all__ = [
    "ConvergenceSeries",
    "average_series",
    "series_from_results",
    "amplitude_spread_by_value",
    "is_fair_sampling",
    "value_class_probabilities",
    "approximation_ratio",
    "ensemble_mean",
    "ensemble_summary",
    "expectation_from_probabilities",
    "normalized_approximation_ratio",
    "success_probability",
]
