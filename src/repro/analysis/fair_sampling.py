"""Fair-sampling checks for Grover-mixer QAOA.

Property 3 of Sec. 2.4: with the Grover mixer, all basis states sharing an
objective value have identical amplitudes at every point of the evolution.
These helpers verify that property on dense simulation output (it is what
justifies the compressed representation) and quantify violations for other
mixers.
"""

from __future__ import annotations

import numpy as np

from ..core.simulator import QAOAResult

__all__ = ["amplitude_spread_by_value", "is_fair_sampling", "value_class_probabilities"]


def amplitude_spread_by_value(statevector: np.ndarray, obj_vals: np.ndarray) -> dict[float, float]:
    """Maximum amplitude deviation within each objective-value class.

    Returns, for every distinct objective value, the largest absolute
    difference between any state amplitude in that class and the class mean.
    Zero everywhere means perfectly fair sampling.
    """
    statevector = np.asarray(statevector)
    obj_vals = np.asarray(obj_vals, dtype=np.float64)
    if statevector.shape != obj_vals.shape:
        raise ValueError("statevector and objective values must have the same shape")
    spread: dict[float, float] = {}
    for value in np.unique(obj_vals):
        mask = obj_vals == value
        amplitudes = statevector[mask]
        mean = amplitudes.mean()
        spread[float(value)] = float(np.abs(amplitudes - mean).max())
    return spread


def is_fair_sampling(result: QAOAResult, atol: float = 1e-10) -> bool:
    """Whether a dense simulation result samples fairly (per value class)."""
    spread = amplitude_spread_by_value(result.statevector, result.cost.values)
    return all(v <= atol for v in spread.values())


def value_class_probabilities(result: QAOAResult) -> dict[float, float]:
    """Total measurement probability of each objective-value class."""
    probs = result.probabilities()
    obj_vals = result.cost.values
    out: dict[float, float] = {}
    for value in np.unique(obj_vals):
        out[float(value)] = float(probs[obj_vals == value].sum())
    return out
