"""Convergence-versus-rounds summaries.

Figures 2 and 3 of the paper plot how solution quality improves as the number
of QAOA rounds ``p`` grows, for a single instance (Fig. 2) or averaged across
an ensemble (Fig. 3).  These helpers turn per-round angle-finding results into
those series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..angles.result import AngleResult
from .metrics import normalized_approximation_ratio

__all__ = ["ConvergenceSeries", "series_from_results", "average_series"]


@dataclass(frozen=True)
class ConvergenceSeries:
    """Solution quality as a function of the number of rounds.

    ``rounds[i]`` is a round count ``p`` and ``values[i]`` the corresponding
    quality metric (expectation, approximation ratio, ...).
    """

    rounds: tuple[int, ...]
    values: tuple[float, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.rounds) != len(self.values):
            raise ValueError("rounds and values must have the same length")
        if list(self.rounds) != sorted(self.rounds):
            raise ValueError("rounds must be sorted ascending")

    def final(self) -> float:
        """The value at the largest round count."""
        if not self.values:
            raise ValueError("empty series")
        return self.values[-1]

    def is_monotone(self, tol: float = 1e-9) -> bool:
        """Whether the series never decreases by more than ``tol``."""
        return all(b >= a - tol for a, b in zip(self.values, self.values[1:]))

    def as_rows(self) -> list[dict]:
        """Table rows (one per round) for printing/serialization."""
        return [
            {"label": self.label, "p": p, "value": v}
            for p, v in zip(self.rounds, self.values)
        ]


def series_from_results(
    results: Mapping[int, AngleResult],
    *,
    optimum: float | None = None,
    worst: float | None = None,
    label: str = "",
) -> ConvergenceSeries:
    """Build a series from ``find_angles``-style per-round results.

    If ``optimum`` (and optionally ``worst``) is given the values are
    converted to (normalized) approximation ratios; otherwise the raw
    expectation values are used.
    """
    rounds = tuple(sorted(results))
    values = []
    for p in rounds:
        value = results[p].value
        if optimum is not None:
            if worst is not None:
                value = normalized_approximation_ratio(value, optimum, worst)
            else:
                value = value / optimum
        values.append(float(value))
    return ConvergenceSeries(rounds=rounds, values=tuple(values), label=label)


def average_series(series: Sequence[ConvergenceSeries], label: str = "mean") -> ConvergenceSeries:
    """Point-wise mean of several series sharing the same round grid (Fig. 3 style)."""
    if not series:
        raise ValueError("at least one series is required")
    grids = {s.rounds for s in series}
    if len(grids) != 1:
        raise ValueError("all series must share the same round grid")
    rounds = series[0].rounds
    stacked = np.array([s.values for s in series], dtype=np.float64)
    return ConvergenceSeries(
        rounds=rounds, values=tuple(stacked.mean(axis=0).tolist()), label=label
    )
