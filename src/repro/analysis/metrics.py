"""Metrics extracted from QAOA simulations.

These are the quantities the paper's figures plot: approximation ratios
(Fig. 2, Fig. 3), optimal-state ("ground state") probabilities, and summary
statistics across instance ensembles.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.simulator import QAOAResult

__all__ = [
    "approximation_ratio",
    "normalized_approximation_ratio",
    "success_probability",
    "expectation_from_probabilities",
    "ensemble_mean",
    "ensemble_summary",
]


def approximation_ratio(expectation: float, optimum: float) -> float:
    """``expectation / optimum`` for a maximization problem with positive optimum."""
    if optimum == 0:
        raise ZeroDivisionError("optimum is zero; use normalized_approximation_ratio instead")
    return float(expectation) / float(optimum)


def normalized_approximation_ratio(expectation: float, optimum: float, worst: float) -> float:
    """``(expectation - worst) / (optimum - worst)`` — in [0, 1] regardless of sign conventions."""
    spread = float(optimum) - float(worst)
    if spread == 0:
        return 1.0
    return (float(expectation) - float(worst)) / spread


def success_probability(result: QAOAResult) -> float:
    """Probability of measuring an optimal state (alias of the result method)."""
    return result.ground_state_probability()


def expectation_from_probabilities(probabilities: np.ndarray, values: np.ndarray) -> float:
    """``sum_x p(x) C(x)`` — expectation from a probability vector."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if probabilities.shape != values.shape:
        raise ValueError("probabilities and values must have the same shape")
    if np.any(probabilities < -1e-12):
        raise ValueError("probabilities must be non-negative")
    return float(np.dot(probabilities, values))


def ensemble_mean(ratios: Sequence[float]) -> float:
    """Mean of a sequence of per-instance values (e.g. approximation ratios)."""
    ratios = np.asarray(list(ratios), dtype=np.float64)
    if ratios.size == 0:
        raise ValueError("at least one value is required")
    return float(ratios.mean())


def ensemble_summary(values: Sequence[float]) -> dict[str, float]:
    """Mean / std / min / max / median of an instance ensemble."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("at least one value is required")
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=0)),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "median": float(np.median(arr)),
        "count": int(arr.size),
    }
