"""High-level QAOA ansatz object.

:class:`QAOAAnsatz` bundles everything that defines one QAOA — the
pre-computed objective values, the mixer schedule, the initial state and the
optimization sense — behind the small callable surface the angle-finding
optimizers need: ``expectation(angles)``, ``gradient(angles)`` and
``simulate(angles)``.  A single pre-allocated workspace is reused across every
call, which is where the "functionally zero overhead" repeated evaluation of
the paper comes from.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..mixers.base import Mixer
from ..mixers.schedules import MixerSchedule
from .gradients import (
    EvaluationCounter,
    qaoa_finite_difference_gradient,
    qaoa_value_and_gradient,
    qaoa_value_and_gradient_batch,
)
from .precompute import PrecomputedCost
from .simulator import QAOAResult, expectation_value, expectation_value_batch, simulate
from .workspace import BatchedWorkspace, Workspace

__all__ = ["QAOAAnsatz"]


class QAOAAnsatz:
    """A fixed-(cost, mixer, p) QAOA exposing value / gradient / simulate calls.

    Parameters
    ----------
    obj_vals:
        Objective values over the feasible space (array or
        :class:`~repro.core.precompute.PrecomputedCost`).
    mixer:
        A mixer, list of per-round mixers, or :class:`MixerSchedule`.
    p:
        Number of rounds (required unless a schedule / mixer list fixes it).
    initial_state:
        Optional custom initial state (warm starts).
    maximize:
        Whether the underlying problem is a maximization (default True).
    backend:
        Optional :class:`~repro.backend.base.ArrayBackend` the ansatz's
        workspaces (and through them every kernel call) run on; defaults to
        the process-wide active backend at construction time.
    """

    def __init__(
        self,
        obj_vals: np.ndarray | PrecomputedCost,
        mixer: Mixer | Sequence[Mixer] | MixerSchedule,
        p: int | None = None,
        *,
        initial_state: np.ndarray | None = None,
        maximize: bool = True,
        backend=None,
    ):
        if isinstance(mixer, MixerSchedule):
            schedule = mixer
        elif isinstance(mixer, Mixer):
            if p is None:
                raise ValueError("p must be given when a single mixer is supplied")
            schedule = MixerSchedule(mixer, rounds=p)
        else:
            schedule = MixerSchedule(mixer, rounds=p)
        self.schedule = schedule

        if isinstance(obj_vals, PrecomputedCost):
            self.cost = obj_vals
        else:
            self.cost = PrecomputedCost(
                values=np.asarray(obj_vals, dtype=np.float64),
                space=schedule.space,
                maximize=maximize,
            )
        if self.cost.dim != schedule.dim:
            raise ValueError(
                f"objective values (dim {self.cost.dim}) do not match the mixer space "
                f"(dim {schedule.dim})"
            )

        if initial_state is not None:
            initial_state = np.asarray(initial_state, dtype=np.complex128)
            if initial_state.shape != (schedule.dim,):
                raise ValueError(
                    f"initial state has shape {initial_state.shape}, expected ({schedule.dim},)"
                )
            norm = np.linalg.norm(initial_state)
            if not np.isclose(norm, 1.0):
                if norm == 0:
                    raise ValueError("initial state must be non-zero")
                initial_state = initial_state / norm
        self.initial_state = initial_state
        self.maximize = bool(maximize)
        if backend is None:
            from ..backend import active_backend

            backend = active_backend()
        self.backend = backend
        self.workspace = Workspace(schedule.dim, backend=backend)
        # Lazily created on the first expectation_batch call; grown (never
        # shrunk) to the largest batch seen, then reused across every sweep.
        self._batched_workspace: BatchedWorkspace | None = None
        #: evaluation bookkeeping shared by value and gradient calls
        self.counter = EvaluationCounter()

    # ------------------------------------------------------------------
    @classmethod
    def from_problem(
        cls,
        problem,
        mixer: Mixer | Sequence[Mixer] | MixerSchedule,
        p: int | None = None,
        *,
        initial_state: np.ndarray | None = None,
        backend=None,
    ) -> "QAOAAnsatz":
        """Build an ansatz from a :class:`~repro.problems.registry.ProblemInstance`.

        The problem's objective values are pre-computed over its feasible
        space and its optimization sense is honoured — the bridge the
        spec-driven :func:`repro.api.solve` facade uses.  ``problem`` is any
        object with ``objective_values()``, ``space`` and ``maximize``.
        """
        cost = PrecomputedCost(
            values=np.asarray(problem.objective_values(), dtype=np.float64),
            space=problem.space,
            maximize=problem.maximize,
        )
        return cls(
            cost, mixer, p, initial_state=initial_state, maximize=problem.maximize,
            backend=backend,
        )

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of QAOA rounds."""
        return self.schedule.p

    @property
    def num_angles(self) -> int:
        """Length of the flat angle vector (betas then gammas)."""
        return self.schedule.total_betas + self.schedule.p

    @property
    def n(self) -> int:
        """Number of qubits."""
        return self.schedule.space.n

    def random_angles(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Uniformly random angles in ``[0, 2 pi)`` with the right length."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        return 2.0 * np.pi * rng.random(self.num_angles)

    # ------------------------------------------------------------------
    def expectation(self, angles: np.ndarray) -> float:
        """``<C>`` at the given angles."""
        self.counter.forward_passes += 1
        return expectation_value(
            angles,
            self.schedule,
            self.cost.values,
            initial_state=self.initial_state,
            workspace=self.workspace,
        )

    def _ensure_batched_workspace(self, batch: int) -> BatchedWorkspace:
        if self._batched_workspace is None:
            self._batched_workspace = BatchedWorkspace(
                self.schedule.dim, batch, backend=self.backend
            )
        else:
            self._batched_workspace.ensure(batch)
        return self._batched_workspace

    def expectation_batch(self, angles: np.ndarray) -> np.ndarray:
        """``<C>`` for every row of an ``(M, num_angles)`` angle matrix.

        The batched inner loop of sweep-style angle finding: all M angle sets
        evolve simultaneously as a ``(dim, M)`` state matrix through the
        shared, pre-allocated :class:`BatchedWorkspace`.  Returns a ``(M,)``
        float array; a single flat angle vector yields a length-1 array.
        """
        angles = np.asarray(angles, dtype=np.float64)
        if angles.ndim == 1:
            angles = angles[None, :]
        workspace = self._ensure_batched_workspace(angles.shape[0])
        self.counter.forward_passes += angles.shape[0]
        return expectation_value_batch(
            angles,
            self.schedule,
            self.cost,
            initial_state=self.initial_state,
            workspace=workspace,
        )

    def value_and_gradient(self, angles: np.ndarray) -> tuple[float, np.ndarray]:
        """Expectation value and exact adjoint-mode gradient."""
        return qaoa_value_and_gradient(
            angles,
            self.schedule,
            self.cost.values,
            initial_state=self.initial_state,
            workspace=self.workspace,
            counter=self.counter,
        )

    def value_and_gradient_batch(self, angles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expectation values and exact adjoint gradients for M angle sets at once.

        ``angles`` is an ``(M, num_angles)`` matrix of flat angle vectors (a
        single flat vector is treated as one row).  One batched forward pass
        plus one batched adjoint backward pass produce ``(M,)`` values and
        ``(M, num_angles)`` gradients through the shared
        :class:`BatchedWorkspace` — the kernel the vectorized multi-start
        refiner advances all its restarts with.
        """
        angles = np.asarray(angles, dtype=np.float64)
        if angles.ndim == 1:
            angles = angles[None, :]
        workspace = self._ensure_batched_workspace(angles.shape[0])
        return qaoa_value_and_gradient_batch(
            angles,
            self.schedule,
            self.cost,
            initial_state=self.initial_state,
            workspace=workspace,
            counter=self.counter,
        )

    def loss_and_gradient_batch(self, angles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched loss and gradient (signs consistent with :meth:`loss`)."""
        values, grads = self.value_and_gradient_batch(angles)
        if self.maximize:
            return -values, -grads
        return values, grads

    def gradient(self, angles: np.ndarray) -> np.ndarray:
        """Exact adjoint-mode gradient of ``<C>``."""
        return self.value_and_gradient(angles)[1]

    def finite_difference_gradient(self, angles: np.ndarray, eps: float = 1e-6) -> np.ndarray:
        """Finite-difference gradient (the slow baseline of Fig. 5)."""
        return qaoa_finite_difference_gradient(
            angles,
            self.schedule,
            self.cost.values,
            initial_state=self.initial_state,
            workspace=self.workspace,
            eps=eps,
            counter=self.counter,
        )

    def simulate(self, angles: np.ndarray) -> QAOAResult:
        """Full simulation returning a :class:`~repro.core.simulator.QAOAResult`."""
        return simulate(
            angles,
            self.schedule,
            self.cost,
            initial_state=self.initial_state,
            workspace=self.workspace,
            maximize=self.maximize,
        )

    # -- objective wrappers for minimizers ---------------------------------
    def loss(self, angles: np.ndarray) -> float:
        """Scalar to *minimize*: ``-<C>`` for maximization problems, ``<C>`` otherwise."""
        value = self.expectation(angles)
        return -value if self.maximize else value

    def loss_and_gradient(self, angles: np.ndarray) -> tuple[float, np.ndarray]:
        """Loss and its gradient (signs handled consistently with :meth:`loss`)."""
        value, grad = self.value_and_gradient(angles)
        if self.maximize:
            return -value, -grad
        return value, grad

    def with_rounds(self, p: int) -> "QAOAAnsatz":
        """A new ansatz identical to this one but with ``p`` rounds.

        Only valid when every round uses the same mixer (the common case for
        the iterative angle-finding scheme).
        """
        mixers = set(id(m) for m in self.schedule.layers)
        if len(mixers) != 1:
            raise ValueError("with_rounds requires a schedule with a single repeated mixer")
        return QAOAAnsatz(
            self.cost,
            self.schedule.layers[0],
            p,
            initial_state=self.initial_state,
            maximize=self.maximize,
            backend=self.backend,
        )

    def sibling(self) -> "QAOAAnsatz":
        """An equivalent ansatz with its *own* scratch workspaces.

        The cost table, mixer schedule and initial state are shared (they are
        immutable at evaluation time); the workspaces — the only mutable
        per-evaluation scratch — are fresh.  This is what makes concurrent
        evaluation safe: one ansatz instance is **not** thread-safe, but each
        thread evaluating its own sibling is (the portfolio racer setup).
        """
        return QAOAAnsatz(
            self.cost,
            self.schedule,
            initial_state=self.initial_state,
            maximize=self.maximize,
            backend=self.backend,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QAOAAnsatz(n={self.n}, dim={self.schedule.dim}, p={self.p}, "
            f"maximize={self.maximize})"
        )
