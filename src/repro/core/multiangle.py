"""Multi-angle QAOA helpers.

Multi-angle QAOA (Herrman et al. 2021, reference [21] of the paper) assigns an
independent mixer angle to every term of the mixer Hamiltonian in every round
(and, in full generality, an independent phase angle to every cost term; here
we follow the paper's package and vary the mixer angles).  The simulator
supports it through :class:`~repro.mixers.xmixer.MultiAngleXMixer` layers in a
:class:`~repro.mixers.schedules.MixerSchedule`; the helpers below build those
schedules and pack/unpack the nested angle arrays of the paper's Listing 3
into the flat layout the optimizers use.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..mixers.schedules import MixerSchedule
from ..mixers.xmixer import MultiAngleXMixer

__all__ = [
    "multi_angle_schedule",
    "pack_angles",
    "unpack_angles",
    "num_multi_angles",
]


def multi_angle_schedule(
    n: int, p: int, terms: Sequence[Sequence[int]] | None = None
) -> MixerSchedule:
    """A ``p``-round schedule in which every round is a multi-angle X mixer.

    ``terms`` defaults to the transverse-field terms ``[(0,), (1,), ..., (n-1,)]``,
    i.e. one independent angle per qubit per round.
    """
    if terms is None:
        terms = [(q,) for q in range(n)]
    mixer = MultiAngleXMixer(n, terms)
    return MixerSchedule([mixer] * p)


def num_multi_angles(schedule: MixerSchedule) -> int:
    """Total number of angles (betas plus gammas) a schedule consumes."""
    return schedule.total_betas + schedule.p


def pack_angles(betas_per_round: Sequence[Sequence[float]], gammas: Sequence[float]) -> np.ndarray:
    """Flatten nested per-round beta lists plus gammas into the simulator's layout."""
    flat_betas = [float(b) for round_betas in betas_per_round for b in np.atleast_1d(round_betas)]
    gammas = [float(g) for g in gammas]
    if len(betas_per_round) != len(gammas):
        raise ValueError(f"got {len(betas_per_round)} beta rounds but {len(gammas)} gammas")
    return np.array(flat_betas + gammas, dtype=np.float64)


def unpack_angles(
    angles: np.ndarray, schedule: MixerSchedule
) -> tuple[list[np.ndarray], np.ndarray]:
    """Inverse of :func:`pack_angles` for a given schedule."""
    angles = np.asarray(angles, dtype=np.float64).ravel()
    expected = num_multi_angles(schedule)
    if angles.size != expected:
        raise ValueError(f"expected {expected} angles, got {angles.size}")
    betas = schedule.split_betas(angles[: schedule.total_betas])
    gammas = angles[schedule.total_betas :]
    return betas, gammas
