"""The QAOA statevector engine: pre-computation, simulation, gradients."""

from .ansatz import QAOAAnsatz
from .gradients import (
    EvaluationCounter,
    finite_difference_gradient,
    qaoa_finite_difference_gradient,
    qaoa_gradient,
    qaoa_value_and_gradient,
    qaoa_value_and_gradient_batch,
)
from .multiangle import multi_angle_schedule, num_multi_angles, pack_angles, unpack_angles
from .precompute import PrecomputedCost, precompute_cost
from .simulator import (
    QAOAResult,
    evolve_state,
    evolve_state_batch,
    expectation_value,
    expectation_value_batch,
    get_exp_value,
    random_angles,
    simulate,
    simulate_batch,
    split_angles,
    split_angles_batch,
)
from .workspace import BatchedWorkspace, Workspace

__all__ = [
    "QAOAAnsatz",
    "EvaluationCounter",
    "finite_difference_gradient",
    "qaoa_finite_difference_gradient",
    "qaoa_gradient",
    "qaoa_value_and_gradient",
    "qaoa_value_and_gradient_batch",
    "multi_angle_schedule",
    "num_multi_angles",
    "pack_angles",
    "unpack_angles",
    "PrecomputedCost",
    "precompute_cost",
    "QAOAResult",
    "evolve_state",
    "evolve_state_batch",
    "expectation_value",
    "expectation_value_batch",
    "get_exp_value",
    "random_angles",
    "simulate",
    "simulate_batch",
    "split_angles",
    "split_angles_batch",
    "BatchedWorkspace",
    "Workspace",
]
