"""Pre-allocated simulation buffers.

The paper emphasizes (Sec. 2.2) that the statevector simulation pre-allocates
and re-uses memory so that repeated expectation-value evaluations inside the
angle-finding loop have "functionally zero overhead".  :class:`Workspace`
holds the complex buffers one simulation needs (the evolving state, a scratch
vector for basis changes, and the per-layer storage the adjoint gradient
wants) and hands them out without re-allocating across calls.

:class:`BatchedWorkspace` is the ``(dim, M)`` analogue used by the batched
evaluation engine: M statevectors evolve side by side as the columns of one
matrix, so mixer layers become BLAS-3 GEMMs instead of M separate GEMVs.  Its
buffers are backed by flat arrays and handed out as prefix-reshaped views, so
every view is C-contiguous regardless of the requested batch size; capacity
only ever grows.
"""

from __future__ import annotations

import numpy as np

from ..backend import active_backend

__all__ = ["Workspace", "BatchedWorkspace", "default_eval_batch"]


def default_eval_batch(dim: int, *, budget_elems: int = 1 << 22) -> int:
    """Largest evaluation batch whose ``(dim, M)`` workspace buffers each stay
    under ``budget_elems`` complex128 elements (~64 MB at the default budget),
    capped at 256 columns.

    The shared chunking policy of the batched sweep consumers (grid search,
    random-restart seed scoring): large-``n`` sweeps never exceed the scalar
    loop's memory footprint by much, while small spaces still amortize the
    per-chunk Python overhead over hundreds of columns.
    """
    return max(1, min(256, budget_elems // max(1, dim)))


class Workspace:
    """Reusable complex buffers for statevector simulation of a fixed dimension."""

    def __init__(self, dim: int, store_layers: int = 0, *, backend=None):
        if dim < 1:
            raise ValueError("workspace dimension must be positive")
        self.dim = int(dim)
        #: the array backend this workspace's simulations run on (captured at
        #: construction; a later process-wide switch doesn't retarget it)
        self.backend = backend if backend is not None else active_backend()
        self._batched: BatchedWorkspace | None = None
        #: the evolving statevector
        self.state = np.empty(self.dim, dtype=np.complex128)
        #: scratch buffer used by mixers and the adjoint pass
        self.scratch = np.empty(self.dim, dtype=np.complex128)
        #: second scratch buffer (adjoint state in gradient computation)
        self.adjoint = np.empty(self.dim, dtype=np.complex128)
        self._layer_store: np.ndarray | None = None
        if store_layers:
            self.ensure_layers(store_layers)
        #: number of simulator calls served by this workspace (for tests/benchmarks)
        self.calls_served = 0

    def ensure_layers(self, layers: int) -> np.ndarray:
        """Return a ``(layers, 2, dim)`` buffer for per-layer forward states.

        Slot ``[k, 0]`` stores the state after the phase separator of round
        ``k`` and slot ``[k, 1]`` the state after the mixer of round ``k``;
        both are needed by the analytic gradient.  The buffer is grown (never
        shrunk) as needed and reused across calls.
        """
        if layers < 0:
            raise ValueError("layer count must be non-negative")
        if self._layer_store is None or self._layer_store.shape[0] < layers:
            self._layer_store = np.empty((layers, 2, self.dim), dtype=np.complex128)
        return self._layer_store

    def load_state(self, psi: np.ndarray) -> np.ndarray:
        """Copy ``psi`` into the workspace's state buffer and return the buffer."""
        psi = np.asarray(psi)
        if psi.shape != (self.dim,):
            raise ValueError(f"state has shape {psi.shape}, expected ({self.dim},)")
        self.state[:] = psi
        self.calls_served += 1
        return self.state

    def compatible_with(self, dim: int) -> bool:
        """Whether this workspace can serve a simulation of dimension ``dim``."""
        return self.dim == int(dim)

    def batched(self) -> "BatchedWorkspace":
        """This workspace's cached single-column :class:`BatchedWorkspace`.

        The scalar simulator entry points are M=1 wrappers around the batched
        kernels; this companion gives them pre-allocated ``(dim, 1)`` buffers
        so the wrapping stays allocation-free across repeated calls.
        """
        if self._batched is None:
            self._batched = BatchedWorkspace(self.dim, 1, backend=self.backend)
        return self._batched

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stored = 0 if self._layer_store is None else self._layer_store.shape[0]
        return f"Workspace(dim={self.dim}, layer_slots={stored}, calls_served={self.calls_served})"


class BatchedWorkspace:
    """Reusable ``(dim, M)`` buffers for batched statevector simulation.

    Three matrix buffers are maintained: the evolving batch of states, a
    scratch matrix (eigenbasis coefficients / transform intermediates) and a
    phase matrix (per-column phase-separator and eigenphase factors).  All are
    backed by flat arrays of ``dim * capacity`` elements; a request for batch
    size ``M <= capacity`` returns the first ``dim * M`` elements reshaped to
    ``(dim, M)``, which is always C-contiguous — a requirement of the in-place
    Walsh–Hadamard butterflies and the interleaved real-GEMM fast path.
    Capacity grows on demand and never shrinks.
    """

    def __init__(self, dim: int, batch: int = 1, *, backend=None):
        if dim < 1:
            raise ValueError("workspace dimension must be positive")
        self.dim = int(dim)
        #: the array backend the batched kernels dispatch through (captured at
        #: construction; a later process-wide switch doesn't retarget it)
        self.backend = backend if backend is not None else active_backend()
        self._capacity = 0
        self._state: np.ndarray | None = None
        self._scratch: np.ndarray | None = None
        self._phase: np.ndarray | None = None
        # Gradient-only buffers, allocated lazily so pure-evaluation sweeps
        # never pay for them: the (layers, 2, dim, M) forward-layer store and
        # the auxiliary (dim, M) matrix the adjoint backward pass uses for
        # Hamiltonian products.
        self._layer_flat: np.ndarray | None = None
        self._aux_flat: np.ndarray | None = None
        #: number of batched simulator calls served (for tests/benchmarks)
        self.calls_served = 0
        self.ensure(batch)

    @property
    def capacity(self) -> int:
        """Largest batch size the current buffers can serve without growing."""
        return self._capacity

    def ensure(self, batch: int) -> "BatchedWorkspace":
        """Grow the buffers to hold at least ``batch`` columns (never shrink).

        Growing reallocates, which invalidates previously handed-out views;
        callers must re-request views after ``ensure``.  The simulation loop
        calls this once up front, so views stay stable within one evolution.
        """
        if batch < 1:
            raise ValueError("batch size must be positive")
        if batch > self._capacity:
            size = self.dim * batch
            self._state = np.empty(size, dtype=np.complex128)
            self._scratch = np.empty(size, dtype=np.complex128)
            self._phase = np.empty(size, dtype=np.complex128)
            self._capacity = batch
        return self

    def _view(self, buffer: np.ndarray, batch: int) -> np.ndarray:
        if batch < 1:
            raise ValueError("batch size must be positive")
        return buffer[: self.dim * batch].reshape(self.dim, batch)

    def state(self, batch: int) -> np.ndarray:
        """The ``(dim, batch)`` evolving-states buffer (contents unspecified)."""
        self.ensure(batch)
        return self._view(self._state, batch)

    def scratch(self, batch: int) -> np.ndarray:
        """A ``(dim, batch)`` scratch matrix for basis changes / transforms."""
        self.ensure(batch)
        return self._view(self._scratch, batch)

    def phase(self, batch: int) -> np.ndarray:
        """A ``(dim, batch)`` buffer for elementwise phase factors."""
        self.ensure(batch)
        return self._view(self._phase, batch)

    def aux(self, batch: int) -> np.ndarray:
        """An extra ``(dim, batch)`` scratch matrix (adjoint-pass Hamiltonian
        products), allocated on first use and grown like the core buffers."""
        if batch < 1:
            raise ValueError("batch size must be positive")
        size = self.dim * batch
        if self._aux_flat is None or self._aux_flat.size < size:
            self._aux_flat = np.empty(
                max(size, self.dim * self._capacity), dtype=np.complex128
            )
        return self._aux_flat[:size].reshape(self.dim, batch)

    def ensure_layers(self, layers: int, batch: int) -> np.ndarray:
        """Return a ``(layers, 2, dim, batch)`` buffer for per-layer forward states.

        The batched analogue of :meth:`Workspace.ensure_layers`: slot
        ``[k, 0]`` stores the batch after the phase separator of round ``k``
        and slot ``[k, 1]`` the batch after the mixer — both consumed by the
        batched adjoint gradient.  The backing allocation is flat and grown
        (never shrunk) on demand; the returned prefix view is C-contiguous,
        and its ``(dim, batch)`` slices satisfy the contiguity requirement of
        the batched mixer kernels.
        """
        if layers < 0:
            raise ValueError("layer count must be non-negative")
        if batch < 1:
            raise ValueError("batch size must be positive")
        size = layers * 2 * self.dim * batch
        if self._layer_flat is None or self._layer_flat.size < size:
            self._layer_flat = np.empty(size, dtype=np.complex128)
        return self._layer_flat[:size].reshape(layers, 2, self.dim, batch)

    def load_states(self, psi: np.ndarray, batch: int) -> np.ndarray:
        """Fill the state buffer with ``psi`` and return the ``(dim, batch)`` view.

        ``psi`` may be a single ``(dim,)`` statevector (broadcast to every
        column) or a ``(dim, batch)`` matrix of per-column initial states.
        """
        states = self.state(batch)
        psi = np.asarray(psi)
        if psi.ndim == 1:
            if psi.shape != (self.dim,):
                raise ValueError(f"state has shape {psi.shape}, expected ({self.dim},)")
            states[:] = psi[:, None]
        elif psi.shape == (self.dim, batch):
            states[:] = psi
        else:
            raise ValueError(
                f"states have shape {psi.shape}, expected ({self.dim},) or "
                f"({self.dim}, {batch})"
            )
        self.calls_served += 1
        return states

    def compatible_with(self, dim: int) -> bool:
        """Whether this workspace can serve a simulation of dimension ``dim``."""
        return self.dim == int(dim)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchedWorkspace(dim={self.dim}, capacity={self._capacity}, "
            f"calls_served={self.calls_served})"
        )
