"""Pre-allocated simulation buffers.

The paper emphasizes (Sec. 2.2) that the statevector simulation pre-allocates
and re-uses memory so that repeated expectation-value evaluations inside the
angle-finding loop have "functionally zero overhead".  :class:`Workspace`
holds the complex buffers one simulation needs (the evolving state, a scratch
vector for basis changes, and the per-layer storage the adjoint gradient
wants) and hands them out without re-allocating across calls.

:class:`BatchedWorkspace` is the ``(dim, M)`` analogue used by the batched
evaluation engine: M statevectors evolve side by side as the columns of one
matrix, so mixer layers become BLAS-3 GEMMs instead of M separate GEMVs.  Its
buffers are backed by flat arrays and handed out as prefix-reshaped views, so
every view is C-contiguous regardless of the requested batch size; capacity
only ever grows.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace", "BatchedWorkspace"]


class Workspace:
    """Reusable complex buffers for statevector simulation of a fixed dimension."""

    def __init__(self, dim: int, store_layers: int = 0):
        if dim < 1:
            raise ValueError("workspace dimension must be positive")
        self.dim = int(dim)
        #: the evolving statevector
        self.state = np.empty(self.dim, dtype=np.complex128)
        #: scratch buffer used by mixers and the adjoint pass
        self.scratch = np.empty(self.dim, dtype=np.complex128)
        #: second scratch buffer (adjoint state in gradient computation)
        self.adjoint = np.empty(self.dim, dtype=np.complex128)
        self._layer_store: np.ndarray | None = None
        if store_layers:
            self.ensure_layers(store_layers)
        #: number of simulator calls served by this workspace (for tests/benchmarks)
        self.calls_served = 0

    def ensure_layers(self, layers: int) -> np.ndarray:
        """Return a ``(layers, 2, dim)`` buffer for per-layer forward states.

        Slot ``[k, 0]`` stores the state after the phase separator of round
        ``k`` and slot ``[k, 1]`` the state after the mixer of round ``k``;
        both are needed by the analytic gradient.  The buffer is grown (never
        shrunk) as needed and reused across calls.
        """
        if layers < 0:
            raise ValueError("layer count must be non-negative")
        if self._layer_store is None or self._layer_store.shape[0] < layers:
            self._layer_store = np.empty((layers, 2, self.dim), dtype=np.complex128)
        return self._layer_store

    def load_state(self, psi: np.ndarray) -> np.ndarray:
        """Copy ``psi`` into the workspace's state buffer and return the buffer."""
        psi = np.asarray(psi)
        if psi.shape != (self.dim,):
            raise ValueError(f"state has shape {psi.shape}, expected ({self.dim},)")
        self.state[:] = psi
        self.calls_served += 1
        return self.state

    def compatible_with(self, dim: int) -> bool:
        """Whether this workspace can serve a simulation of dimension ``dim``."""
        return self.dim == int(dim)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stored = 0 if self._layer_store is None else self._layer_store.shape[0]
        return f"Workspace(dim={self.dim}, layer_slots={stored}, calls_served={self.calls_served})"


class BatchedWorkspace:
    """Reusable ``(dim, M)`` buffers for batched statevector simulation.

    Three matrix buffers are maintained: the evolving batch of states, a
    scratch matrix (eigenbasis coefficients / transform intermediates) and a
    phase matrix (per-column phase-separator and eigenphase factors).  All are
    backed by flat arrays of ``dim * capacity`` elements; a request for batch
    size ``M <= capacity`` returns the first ``dim * M`` elements reshaped to
    ``(dim, M)``, which is always C-contiguous — a requirement of the in-place
    Walsh–Hadamard butterflies and the interleaved real-GEMM fast path.
    Capacity grows on demand and never shrinks.
    """

    def __init__(self, dim: int, batch: int = 1):
        if dim < 1:
            raise ValueError("workspace dimension must be positive")
        self.dim = int(dim)
        self._capacity = 0
        self._state: np.ndarray | None = None
        self._scratch: np.ndarray | None = None
        self._phase: np.ndarray | None = None
        #: number of batched simulator calls served (for tests/benchmarks)
        self.calls_served = 0
        self.ensure(batch)

    @property
    def capacity(self) -> int:
        """Largest batch size the current buffers can serve without growing."""
        return self._capacity

    def ensure(self, batch: int) -> "BatchedWorkspace":
        """Grow the buffers to hold at least ``batch`` columns (never shrink).

        Growing reallocates, which invalidates previously handed-out views;
        callers must re-request views after ``ensure``.  The simulation loop
        calls this once up front, so views stay stable within one evolution.
        """
        if batch < 1:
            raise ValueError("batch size must be positive")
        if batch > self._capacity:
            size = self.dim * batch
            self._state = np.empty(size, dtype=np.complex128)
            self._scratch = np.empty(size, dtype=np.complex128)
            self._phase = np.empty(size, dtype=np.complex128)
            self._capacity = batch
        return self

    def _view(self, buffer: np.ndarray, batch: int) -> np.ndarray:
        if batch < 1:
            raise ValueError("batch size must be positive")
        return buffer[: self.dim * batch].reshape(self.dim, batch)

    def state(self, batch: int) -> np.ndarray:
        """The ``(dim, batch)`` evolving-states buffer (contents unspecified)."""
        self.ensure(batch)
        return self._view(self._state, batch)

    def scratch(self, batch: int) -> np.ndarray:
        """A ``(dim, batch)`` scratch matrix for basis changes / transforms."""
        self.ensure(batch)
        return self._view(self._scratch, batch)

    def phase(self, batch: int) -> np.ndarray:
        """A ``(dim, batch)`` buffer for elementwise phase factors."""
        self.ensure(batch)
        return self._view(self._phase, batch)

    def load_states(self, psi: np.ndarray, batch: int) -> np.ndarray:
        """Fill the state buffer with ``psi`` and return the ``(dim, batch)`` view.

        ``psi`` may be a single ``(dim,)`` statevector (broadcast to every
        column) or a ``(dim, batch)`` matrix of per-column initial states.
        """
        states = self.state(batch)
        psi = np.asarray(psi)
        if psi.ndim == 1:
            if psi.shape != (self.dim,):
                raise ValueError(f"state has shape {psi.shape}, expected ({self.dim},)")
            states[:] = psi[:, None]
        elif psi.shape == (self.dim, batch):
            states[:] = psi
        else:
            raise ValueError(
                f"states have shape {psi.shape}, expected ({self.dim},) or "
                f"({self.dim}, {batch})"
            )
        self.calls_served += 1
        return states

    def compatible_with(self, dim: int) -> bool:
        """Whether this workspace can serve a simulation of dimension ``dim``."""
        return self.dim == int(dim)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchedWorkspace(dim={self.dim}, capacity={self._capacity}, "
            f"calls_served={self.calls_served})"
        )
