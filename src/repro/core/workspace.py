"""Pre-allocated simulation buffers.

The paper emphasizes (Sec. 2.2) that the statevector simulation pre-allocates
and re-uses memory so that repeated expectation-value evaluations inside the
angle-finding loop have "functionally zero overhead".  :class:`Workspace`
holds the complex buffers one simulation needs (the evolving state, a scratch
vector for basis changes, and the per-layer storage the adjoint gradient
wants) and hands them out without re-allocating across calls.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Reusable complex buffers for statevector simulation of a fixed dimension."""

    def __init__(self, dim: int, store_layers: int = 0):
        if dim < 1:
            raise ValueError("workspace dimension must be positive")
        self.dim = int(dim)
        #: the evolving statevector
        self.state = np.empty(self.dim, dtype=np.complex128)
        #: scratch buffer used by mixers and the adjoint pass
        self.scratch = np.empty(self.dim, dtype=np.complex128)
        #: second scratch buffer (adjoint state in gradient computation)
        self.adjoint = np.empty(self.dim, dtype=np.complex128)
        self._layer_store: np.ndarray | None = None
        if store_layers:
            self.ensure_layers(store_layers)
        #: number of simulator calls served by this workspace (for tests/benchmarks)
        self.calls_served = 0

    def ensure_layers(self, layers: int) -> np.ndarray:
        """Return a ``(layers, 2, dim)`` buffer for per-layer forward states.

        Slot ``[k, 0]`` stores the state after the phase separator of round
        ``k`` and slot ``[k, 1]`` the state after the mixer of round ``k``;
        both are needed by the analytic gradient.  The buffer is grown (never
        shrunk) as needed and reused across calls.
        """
        if layers < 0:
            raise ValueError("layer count must be non-negative")
        if self._layer_store is None or self._layer_store.shape[0] < layers:
            self._layer_store = np.empty((layers, 2, self.dim), dtype=np.complex128)
        return self._layer_store

    def load_state(self, psi: np.ndarray) -> np.ndarray:
        """Copy ``psi`` into the workspace's state buffer and return the buffer."""
        psi = np.asarray(psi)
        if psi.shape != (self.dim,):
            raise ValueError(f"state has shape {psi.shape}, expected ({self.dim},)")
        self.state[:] = psi
        self.calls_served += 1
        return self.state

    def compatible_with(self, dim: int) -> bool:
        """Whether this workspace can serve a simulation of dimension ``dim``."""
        return self.dim == int(dim)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stored = 0 if self._layer_store is None else self._layer_store.shape[0]
        return f"Workspace(dim={self.dim}, layer_slots={stored}, calls_served={self.calls_served})"
