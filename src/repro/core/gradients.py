"""Gradients of the QAOA expectation value.

The paper's angle-finding loop relies on automatic differentiation (via
Enzyme.jl) to get exact gradients of ``<beta,gamma| C |beta,gamma>`` at the
cost of roughly one extra expectation-value evaluation, versus the ``O(p)``
evaluations a finite-difference scheme needs (Sec. 4 and Fig. 5).

For this fixed computation graph reverse-mode AD is exactly the adjoint
recursion, which we implement analytically:

with per-round states ``|chi_k> = e^{-i gamma_k C} |psi_{k-1}>`` (after the
phase separator) and ``|psi_k> = e^{-i beta_k H_M} |chi_k>`` (after the
mixer), and the adjoint state ``|phi_p> = C |psi_p>`` propagated backwards
through the inverse unitaries,

    dE/dbeta_k  = 2 Im <phi_k | H_M | psi_k> ,
    dE/dgamma_k = 2 Im <phi'_k | C | chi_k> ,   phi'_k = e^{+i beta_k H_M} |phi_k> ,
    |phi_{k-1}> = e^{+i gamma_k C} |phi'_k> .

The total work is one forward pass, one backward pass and one Hamiltonian
mat-vec per round — independent of ``p`` relative to the cost of an
expectation value, which is the property Figure 5 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..mixers.base import Mixer
from ..mixers.schedules import MixerSchedule
from .precompute import PrecomputedCost
from .simulator import (
    _CostPhaseFactors,
    evolve_state,
    evolve_state_batch,
    split_angles,
    split_angles_batch,
)
from .workspace import BatchedWorkspace, Workspace

__all__ = [
    "EvaluationCounter",
    "qaoa_gradient",
    "qaoa_value_and_gradient",
    "qaoa_value_and_gradient_batch",
    "finite_difference_gradient",
    "qaoa_finite_difference_gradient",
]


@dataclass
class EvaluationCounter:
    """Counts the state evolutions spent by a gradient scheme.

    ``forward_passes`` counts full ``p``-round state evolutions;
    ``hamiltonian_applications`` counts single ``H_M |psi>`` products (each a
    small fraction of a forward pass).  Benchmarks use these to report the
    O(p) separation between adjoint and finite-difference gradients without
    depending on wall-clock noise.
    """

    forward_passes: int = 0
    hamiltonian_applications: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.forward_passes = 0
        self.hamiltonian_applications = 0


def _prepare(mixer, obj_vals, p, angles):
    if isinstance(mixer, MixerSchedule):
        schedule = mixer
    elif isinstance(mixer, Mixer):
        if p is None:
            p = np.asarray(angles).size // 2
        schedule = MixerSchedule(mixer, rounds=p)
    else:
        schedule = MixerSchedule(mixer, rounds=p)
    values = obj_vals.values if isinstance(obj_vals, PrecomputedCost) else np.asarray(
        obj_vals, dtype=np.float64
    )
    if values.shape != (schedule.dim,):
        raise ValueError(f"objective values have shape {values.shape}, expected ({schedule.dim},)")
    return schedule, values


def qaoa_value_and_gradient(
    angles: np.ndarray,
    mixer: Mixer | Sequence[Mixer] | MixerSchedule,
    obj_vals: np.ndarray | PrecomputedCost,
    *,
    p: int | None = None,
    initial_state: np.ndarray | None = None,
    workspace: Workspace | None = None,
    counter: EvaluationCounter | None = None,
) -> tuple[float, np.ndarray]:
    """Expectation value and its exact gradient in one adjoint-mode pass.

    The gradient is returned in the same flat (betas, gammas) layout as the
    input angles.  Multi-angle layers are supported: each per-term beta gets
    its own derivative component.
    """
    angles = np.asarray(angles, dtype=np.float64).ravel()
    schedule, values = _prepare(mixer, obj_vals, p, angles)
    betas, gammas = split_angles(angles, schedule)
    dim = schedule.dim

    if workspace is None:
        workspace = Workspace(dim)
    layer_store = workspace.ensure_layers(schedule.p)

    if initial_state is None:
        initial_state = schedule.initial_state()

    # Forward pass, recording per-round intermediate states.
    psi = evolve_state(
        betas, gammas, schedule, values, initial_state,
        workspace=workspace, layer_store=layer_store,
    )
    if counter is not None:
        counter.forward_passes += 1
    energy = float(np.real(np.vdot(psi, values * psi)))

    # Backward (adjoint) pass.
    from ..mixers.xmixer import MultiAngleXMixer

    phi = values * psi  # C |psi_p>
    grad_betas: list[np.ndarray] = [None] * schedule.p  # type: ignore[list-item]
    grad_gammas = np.empty(schedule.p, dtype=np.float64)

    for k in range(schedule.p - 1, -1, -1):
        mixer_k = schedule[k]
        psi_k = layer_store[k, 1, :]
        chi_k = layer_store[k, 0, :]
        beta_k = betas[k]

        if isinstance(mixer_k, MultiAngleXMixer):
            grads = np.empty(mixer_k.num_angles, dtype=np.float64)
            for t in range(mixer_k.num_angles):
                h_psi = mixer_k.apply_hamiltonian_term(psi_k, t)
                grads[t] = 2.0 * float(np.imag(np.vdot(phi, h_psi)))
                if counter is not None:
                    counter.hamiltonian_applications += 1
            grad_betas[k] = grads
            phi = mixer_k.apply(phi, -np.asarray(beta_k))
        else:
            h_psi = mixer_k.apply_hamiltonian(psi_k)
            if counter is not None:
                counter.hamiltonian_applications += 1
            grad_betas[k] = np.array([2.0 * float(np.imag(np.vdot(phi, h_psi)))])
            phi = mixer_k.apply(phi, -float(beta_k[0]))

        # Gamma derivative uses the adjoint state *before* the mixer.
        grad_gammas[k] = 2.0 * float(np.imag(np.vdot(phi, values * chi_k)))
        if k:
            # Undo the phase separator to obtain phi_{k-1}; phi_{-1} is
            # never read, so the last round skips it.
            phi = phi * np.exp(1j * gammas[k] * values)

    gradient = np.concatenate([np.concatenate(grad_betas), grad_gammas])
    return energy, gradient


def qaoa_gradient(
    angles: np.ndarray,
    mixer: Mixer | Sequence[Mixer] | MixerSchedule,
    obj_vals: np.ndarray | PrecomputedCost,
    **kwargs,
) -> np.ndarray:
    """Exact gradient of the expectation value (see :func:`qaoa_value_and_gradient`)."""
    return qaoa_value_and_gradient(angles, mixer, obj_vals, **kwargs)[1]


def _batched_imag_vdot(a: np.ndarray, b: np.ndarray, backend=None) -> np.ndarray:
    """``Im(<a_j | b_j>)`` for every column ``j`` — no temporaries, no conj copy."""
    ein = np.einsum if backend is None else backend.einsum
    return ein("dm,dm->m", a.real, b.imag) - ein("dm,dm->m", a.imag, b.real)


def _batched_weighted_imag_vdot(
    weights: np.ndarray, a: np.ndarray, b: np.ndarray, backend=None
) -> np.ndarray:
    """``Im(<a_j | diag(weights) | b_j>)`` for every column ``j`` (real weights)."""
    ein = np.einsum if backend is None else backend.einsum
    return ein("d,dm,dm->m", weights, a.real, b.imag) - ein(
        "d,dm,dm->m", weights, a.imag, b.real
    )


def qaoa_value_and_gradient_batch(
    angles: np.ndarray,
    mixer: Mixer | Sequence[Mixer] | MixerSchedule,
    obj_vals: np.ndarray | PrecomputedCost,
    *,
    p: int | None = None,
    initial_state: np.ndarray | None = None,
    workspace: BatchedWorkspace | None = None,
    counter: EvaluationCounter | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Expectation values and exact adjoint gradients for M angle sets at once.

    The batched analogue of :func:`qaoa_value_and_gradient`: ``angles`` is an
    ``(M, num_angles)`` matrix whose rows are flat (betas, gammas) vectors.
    One ``(dim, M)`` forward pass records the per-round intermediate batches
    in the workspace's layer store, then one batched backward pass walks the
    adjoint recursion with the same BLAS-3 mixer kernels
    (:meth:`~repro.mixers.base.Mixer.apply_batch` with negated betas and
    :meth:`~repro.mixers.base.Mixer.apply_hamiltonian_batch`), so the
    per-angle-set cost matches the batched evaluation engine's rather than the
    scalar adjoint loop's.  Returns ``(values, gradients)`` with shapes
    ``(M,)`` and ``(M, num_angles)``; rows agree with the scalar path to
    ~1e-12.

    Memory: the layer store holds ``p * 2 * dim * M`` complex128 values —
    chunk large batches (as the vectorized multi-start refiner does) to bound
    peak scratch.
    """
    from ..mixers.xmixer import MultiAngleXMixer

    angles = np.asarray(angles, dtype=np.float64)
    if angles.ndim == 1:
        angles = angles[None, :]
    schedule, values = _prepare(mixer, obj_vals, p, angles[0])
    beta_rounds, gammas = split_angles_batch(angles, schedule)
    M = angles.shape[0]
    dim = schedule.dim

    if workspace is None:
        workspace = BatchedWorkspace(dim, M)
    workspace.ensure(M)
    layer_store = workspace.ensure_layers(schedule.p, M)

    if initial_state is None:
        initial_state = schedule.initial_state()
    if isinstance(obj_vals, PrecomputedCost):
        cost_levels = obj_vals.phase_levels()
    else:
        cost_levels = np.unique(values, return_inverse=True)

    # Forward pass, recording per-round intermediate batches.
    psi = evolve_state_batch(
        beta_rounds,
        gammas,
        schedule,
        values,
        initial_state,
        workspace=workspace,
        cost_levels=cost_levels,
        layer_store=layer_store,
    )
    if counter is not None:
        counter.forward_passes += M
    bk = workspace.backend
    probs = np.abs(psi)
    np.square(probs, out=probs)
    energies = bk.matmul(values, probs)

    # Backward (adjoint) pass: phi lives in the workspace state buffer (psi is
    # no longer needed once the energies and the layer store exist).
    phi = psi
    phi *= values[:, None]
    aux = workspace.aux(M)
    grad_betas: list[np.ndarray] = [None] * schedule.p  # type: ignore[list-item]
    grad_gammas = np.empty((schedule.p, M), dtype=np.float64)
    # Inverse separator phases (positive sign) share the forward pass's
    # distinct-level table heuristic.
    phase_factors = _CostPhaseFactors(values, cost_levels, M, sign=+1.0)

    for k in range(schedule.p - 1, -1, -1):
        mixer_k = schedule[k]
        psi_k = layer_store[k, 1]
        chi_k = layer_store[k, 0]
        beta_k = beta_rounds[k]

        if isinstance(mixer_k, MultiAngleXMixer):
            grad_betas[k] = mixer_k.term_gradients_batch(phi, psi_k, workspace=workspace)
            if counter is not None:
                counter.hamiltonian_applications += mixer_k.num_angles * M
            mixer_k.apply_batch(phi, -beta_k, out=phi, workspace=workspace)
        else:
            h_psi = mixer_k.apply_hamiltonian_batch(psi_k, out=aux, workspace=workspace)
            grad_betas[k] = (2.0 * _batched_imag_vdot(phi, h_psi, bk))[None, :]
            if counter is not None:
                counter.hamiltonian_applications += M
            mixer_k.apply_batch(phi, -beta_k[0], out=phi, workspace=workspace)

        # Gamma derivative uses the adjoint batch *before* the mixer.
        grad_gammas[k] = 2.0 * _batched_weighted_imag_vdot(values, phi, chi_k, bk)
        if k:
            # Undo the phase separator to obtain phi_{k-1} (per-column
            # phases); phi_{-1} is never read, so the last round skips it.
            phi *= phase_factors.fill(gammas[k], workspace.phase(M))

    gradient = np.empty((M, angles.shape[1]), dtype=np.float64)
    cursor = 0
    for block in grad_betas:
        gradient[:, cursor : cursor + block.shape[0]] = block.T
        cursor += block.shape[0]
    gradient[:, cursor:] = grad_gammas.T
    return energies, gradient


def finite_difference_gradient(
    func: Callable[[np.ndarray], float],
    x: np.ndarray,
    *,
    eps: float = 1e-6,
    scheme: str = "central",
) -> np.ndarray:
    """Generic finite-difference gradient of a scalar function.

    ``scheme`` is ``"central"`` (2 evaluations per coordinate, O(eps^2) error)
    or ``"forward"`` (1 extra evaluation per coordinate, O(eps) error).

    One shared perturbation buffer is nudged in place and restored per
    coordinate, so the sweep allocates a single copy of ``x`` regardless of
    dimension; ``func`` therefore must not retain a reference to (or mutate)
    the array it is called with.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.empty_like(x)
    perturbed = x.copy()
    if scheme == "central":
        for i in range(x.size):
            center = x[i]
            perturbed[i] = center + eps
            f_plus = func(perturbed)
            perturbed[i] = center - eps
            f_minus = func(perturbed)
            perturbed[i] = center
            grad[i] = (f_plus - f_minus) / (2.0 * eps)
    elif scheme == "forward":
        f0 = func(perturbed)
        for i in range(x.size):
            center = x[i]
            perturbed[i] = center + eps
            grad[i] = (func(perturbed) - f0) / eps
            perturbed[i] = center
    else:
        raise ValueError(f"unknown finite-difference scheme {scheme!r}")
    return grad


def qaoa_finite_difference_gradient(
    angles: np.ndarray,
    mixer: Mixer | Sequence[Mixer] | MixerSchedule,
    obj_vals: np.ndarray | PrecomputedCost,
    *,
    p: int | None = None,
    initial_state: np.ndarray | None = None,
    workspace: Workspace | None = None,
    eps: float = 1e-6,
    scheme: str = "central",
    counter: EvaluationCounter | None = None,
) -> np.ndarray:
    """Finite-difference gradient of the expectation value (the Fig. 5 baseline).

    Requires ``2 * len(angles)`` expectation evaluations with the central
    scheme (``len(angles) + 1`` with the forward scheme), i.e. ``O(p)`` full
    state evolutions versus the adjoint method's two.
    """
    from .simulator import expectation_value

    angles = np.asarray(angles, dtype=np.float64).ravel()
    schedule, values = _prepare(mixer, obj_vals, p, angles)
    if workspace is None:
        workspace = Workspace(schedule.dim)

    def func(a: np.ndarray) -> float:
        if counter is not None:
            counter.forward_passes += 1
        return expectation_value(
            a, schedule, values, initial_state=initial_state, workspace=workspace
        )

    return finite_difference_gradient(func, angles, eps=eps, scheme=scheme)
