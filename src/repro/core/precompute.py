"""Pre-computed cost data.

The first pillar of the paper's design (Sec. 2.1) is that the cost function is
evaluated exactly once over the feasible space and then treated as a plain
vector for the rest of the run.  :class:`PrecomputedCost` is that vector plus
the bookkeeping the rest of the package wants alongside it: which feasible
space it refers to, whether the problem is a maximization, and an optional
offset (the paper notes that objective values of mixed sign should be shifted
to a single sign before angle finding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..hilbert.subspace import FeasibleSpace, FullSpace

__all__ = ["PrecomputedCost", "precompute_cost"]


@dataclass
class PrecomputedCost:
    """Objective values evaluated across a feasible space.

    Attributes
    ----------
    values:
        Length-``dim`` float array of objective values, in the feasible
        space's canonical state order.
    space:
        The feasible space the values refer to (optional; when absent only
        operations that need no state labels are available).
    maximize:
        Whether larger objective values are better.
    offset:
        Constant added to the raw objective (used to make all values share a
        sign, as recommended in Sec. 3 of the paper).
    """

    values: np.ndarray
    space: FeasibleSpace | None = None
    maximize: bool = True
    offset: float = 0.0

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ValueError("objective values must be a non-empty 1-D array")
        if self.space is not None and self.space.dim != values.size:
            raise ValueError(
                f"objective values have length {values.size} but the space has "
                f"dimension {self.space.dim}"
            )
        self.values = values + float(self.offset)

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of feasible states."""
        return int(self.values.size)

    @property
    def optimum(self) -> float:
        """Best objective value over the feasible space (includes the offset)."""
        return float(self.values.max() if self.maximize else self.values.min())

    @property
    def worst(self) -> float:
        """Worst objective value over the feasible space."""
        return float(self.values.min() if self.maximize else self.values.max())

    def optimal_indices(self, rtol: float = 1e-12, atol: float = 1e-9) -> np.ndarray:
        """Subspace indices of the optimal states."""
        return np.flatnonzero(np.isclose(self.values, self.optimum, rtol=rtol, atol=atol))

    def optimal_labels(self) -> np.ndarray:
        """Full-space labels of the optimal states (requires a space)."""
        if self.space is None:
            raise ValueError("optimal_labels requires the feasible space to be attached")
        return self.space.labels[self.optimal_indices()]

    def degeneracies(self) -> tuple[np.ndarray, np.ndarray]:
        """Distinct objective values and their multiplicities.

        This is the compressed representation the Grover-mixer fast path uses
        (Sec. 2.4): the full value vector is replaced by ``(distinct values,
        counts)``.
        """
        distinct, counts = np.unique(self.values, return_counts=True)
        return distinct, counts

    def phase_levels(self) -> tuple[np.ndarray, np.ndarray]:
        """Distinct objective values and per-state inverse indices (cached).

        The batched evolution uses this to exponentiate separator phases over
        the (usually tiny) set of distinct cost levels and gather, instead of
        over the full ``(dim, M)`` matrix, on every round of every sweep
        chunk.  Computed once per cost object.
        """
        if not hasattr(self, "_phase_levels"):
            self._phase_levels = np.unique(self.values, return_inverse=True)
        return self._phase_levels

    def signed_for_minimization(self) -> np.ndarray:
        """Objective values with the sign flipped so that *minimizing* them solves the problem."""
        return -self.values if self.maximize else self.values

    def with_offset(self, offset: float) -> "PrecomputedCost":
        """A copy with an additional constant offset applied."""
        return PrecomputedCost(
            values=self.values.copy(),
            space=self.space,
            maximize=self.maximize,
            offset=offset,
        )


def precompute_cost(
    cost: Callable[[np.ndarray], float] | np.ndarray,
    space: FeasibleSpace | None = None,
    *,
    n: int | None = None,
    maximize: bool = True,
    vectorized: Callable[[np.ndarray], np.ndarray] | None = None,
    offset: float = 0.0,
) -> PrecomputedCost:
    """Evaluate (or wrap) objective values over a feasible space.

    Parameters
    ----------
    cost:
        Either a scalar callable ``cost(x) -> float`` over 0/1 arrays, or an
        already-evaluated array of objective values.
    space:
        Feasible space to evaluate over.  If omitted and ``n`` is given, the
        full ``2^n`` hypercube is used; if both are omitted, ``cost`` must be
        an array (and no state labels will be available downstream).
    vectorized:
        Optional vectorized evaluator over a bit matrix; preferred over the
        scalar path when supplied.
    """
    if isinstance(cost, np.ndarray) or (
        not callable(cost) and hasattr(cost, "__len__")
    ):
        values = np.asarray(cost, dtype=np.float64)
        return PrecomputedCost(values=values, space=space, maximize=maximize, offset=offset)

    if space is None:
        if n is None:
            raise ValueError("either a feasible space or n must be provided for a callable cost")
        space = FullSpace(n)

    if vectorized is not None:
        values = space.evaluate_vectorized(vectorized)
    else:
        values = space.evaluate(cost)
    return PrecomputedCost(values=values, space=space, maximize=maximize, offset=offset)
