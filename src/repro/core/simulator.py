"""Exact statevector simulation of the Quantum Alternating Operator Ansatz.

This module is the package's core: given pre-computed objective values over a
feasible space and a pre-diagonalized mixer (or per-round mixer schedule), it
evolves

    |beta, gamma> =
        e^{-i beta_p H_M} e^{-i gamma_p H_C} ... e^{-i beta_1 H_M} e^{-i gamma_1 H_C} |psi0>

and exposes the expectation value ``<beta,gamma| C |beta,gamma>``, per-state
amplitudes and the probability of measuring an optimal state, mirroring the
``simulate`` / ``get_exp_value`` API of the paper's Listing 1.

Each round is a diagonal phase multiply (the phase separator never needs a
matrix) followed by one mixer application; all buffers can be supplied through
a :class:`~repro.core.workspace.Workspace` so that repeated calls inside the
angle-finding loop allocate nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..backend import active_backend
from ..mixers.base import Mixer
from ..mixers.schedules import MixerSchedule
from .precompute import PrecomputedCost
from .workspace import BatchedWorkspace, Workspace

__all__ = [
    "QAOAResult",
    "split_angles",
    "split_angles_batch",
    "evolve_state",
    "evolve_state_batch",
    "simulate",
    "simulate_batch",
    "get_exp_value",
    "expectation_value",
    "expectation_value_batch",
    "random_angles",
]


# ---------------------------------------------------------------------------
# angles layout
# ---------------------------------------------------------------------------

def split_angles(
    angles: np.ndarray, schedule: MixerSchedule
) -> tuple[list[np.ndarray], np.ndarray]:
    """Split a flat angle vector into per-round betas and the gamma vector.

    The layout follows the paper's Listing 1: the first block holds the mixer
    angles (betas), the second block the phase-separator angles (gammas).  For
    plain mixers the beta block has length ``p``; multi-angle layers consume
    one beta per term.
    """
    angles = np.asarray(angles, dtype=np.float64).ravel()
    total = schedule.total_betas + schedule.p
    if angles.size != total:
        raise ValueError(
            f"expected {total} angles ({schedule.total_betas} betas + {schedule.p} gammas), "
            f"got {angles.size}"
        )
    betas = schedule.split_betas(angles[: schedule.total_betas])
    gammas = angles[schedule.total_betas :]
    return betas, gammas


def split_angles_batch(
    angles: np.ndarray, schedule: MixerSchedule
) -> tuple[list[np.ndarray], np.ndarray]:
    """Split an ``(M, num_angles)`` matrix of flat angle vectors column-wise.

    Each row of ``angles`` is one flat angle set in the layout of
    :func:`split_angles`.  Returns a per-round list of ``(count_k, M)`` beta
    matrices and the ``(p, M)`` gamma matrix — one column per angle set, which
    is the layout the batched evolution consumes.
    """
    angles = np.asarray(angles, dtype=np.float64)
    if angles.ndim == 1:
        angles = angles[None, :]
    total = schedule.total_betas + schedule.p
    if angles.ndim != 2 or angles.shape[1] != total:
        raise ValueError(
            f"expected an (M, {total}) angle matrix "
            f"({schedule.total_betas} betas + {schedule.p} gammas per row), "
            f"got shape {angles.shape}"
        )
    transposed = np.ascontiguousarray(angles.T)
    betas: list[np.ndarray] = []
    cursor = 0
    for count in schedule.beta_counts():
        betas.append(transposed[cursor : cursor + count])
        cursor += count
    gammas = transposed[cursor:]
    return betas, gammas


def random_angles(
    p: int, rng: np.random.Generator | int | None = None, *, num_betas: int | None = None
) -> np.ndarray:
    """Uniformly random angles in ``[0, 2 pi)`` in the flat (betas, gammas) layout."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    if num_betas is None:
        num_betas = p
    return 2.0 * np.pi * rng.random(num_betas + p)


# ---------------------------------------------------------------------------
# result object
# ---------------------------------------------------------------------------

@dataclass
class QAOAResult:
    """Output of one QAOA statevector simulation.

    Stores the final statevector together with the objective values it was
    evolved under, so that expectation values, per-state amplitudes and
    ground-state (optimal-state) probabilities can all be extracted without
    re-simulating — the behaviour of the special object returned by the
    paper's ``simulate()``.
    """

    statevector: np.ndarray
    cost: PrecomputedCost
    angles: np.ndarray
    _cache: dict = field(default_factory=dict, repr=False)

    # -- core quantities -------------------------------------------------
    def expectation(self) -> float:
        """``<psi| C |psi>`` — the quantity the angle-finding loop optimizes."""
        if "expectation" not in self._cache:
            probs = self.probabilities()
            self._cache["expectation"] = float(np.dot(probs, self.cost.values))
        return self._cache["expectation"]

    def probabilities(self) -> np.ndarray:
        """Measurement probabilities ``|psi_x|^2`` over the feasible space."""
        if "probabilities" not in self._cache:
            self._cache["probabilities"] = np.abs(self.statevector) ** 2
        return self._cache["probabilities"]

    def amplitudes(self) -> np.ndarray:
        """The complex amplitudes (a copy, so callers cannot corrupt the result)."""
        return self.statevector.copy()

    def amplitude_of(self, label: int) -> complex:
        """Amplitude of the feasible state with full-space label ``label``."""
        if self.cost.space is None:
            raise ValueError("amplitude_of requires the feasible space to be attached")
        return complex(self.statevector[self.cost.space.index_of(label)])

    def ground_state_probability(self) -> float:
        """Total probability of measuring an optimal (best objective) state."""
        if "gs_prob" not in self._cache:
            idx = self.cost.optimal_indices()
            self._cache["gs_prob"] = float(self.probabilities()[idx].sum())
        return self._cache["gs_prob"]

    def approximation_ratio(self) -> float:
        """Expectation divided by the optimum (meaningful for positive maximization objectives)."""
        opt = self.cost.optimum
        if opt == 0:
            raise ZeroDivisionError("optimum objective value is zero")
        return self.expectation() / opt

    def norm(self) -> float:
        """Norm of the statevector (should be 1 up to round-off)."""
        return float(np.linalg.norm(self.statevector))

    # -- sampling ----------------------------------------------------------
    def sample(self, shots: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Draw measurement outcomes; returns full-space labels when available,
        otherwise subspace indices."""
        if shots < 1:
            raise ValueError("shots must be positive")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        if "probs_normalized" not in self._cache:
            probs = self.probabilities()
            self._cache["probs_normalized"] = probs / probs.sum()
        probs = self._cache["probs_normalized"]
        indices = rng.choice(len(probs), size=shots, p=probs)
        if self.cost.space is not None:
            return self.cost.space.labels[indices]
        return indices

    @property
    def p(self) -> int:
        """Number of QAOA rounds the angles describe (best effort for multi-angle)."""
        return int(self._cache.get("p", len(self.angles) // 2))


# ---------------------------------------------------------------------------
# evolution
# ---------------------------------------------------------------------------

class _CostPhaseFactors:
    """Per-round separator phase factors ``exp(sign * i * gamma_j * cost)``.

    Objective values usually take few distinct levels (integer-valued costs),
    so each round's factors are an exp over ``(levels, M)`` plus a gather
    rather than an exp over the full ``(dim, M)`` matrix.  One instance is
    built per evolution (forward pass uses ``sign=-1``, the adjoint backward
    pass ``sign=+1``) so the forward and backward paths share one
    implementation of the table heuristic.
    """

    def __init__(
        self,
        cost_values: np.ndarray,
        cost_levels: tuple[np.ndarray, np.ndarray],
        batch: int,
        sign: float,
    ):
        self.levels, self.inverse = cost_levels
        self.sign_i = sign * 1j
        self.use_table = self.levels.size * 4 <= cost_values.size
        self.table = (
            np.empty((self.levels.size, batch), dtype=np.complex128)
            if self.use_table
            else None
        )
        self.signed_i_cost = None if self.use_table else cost_values * self.sign_i

    def fill(self, gamma_k: np.ndarray, phases: np.ndarray) -> np.ndarray:
        """Write this round's ``(dim, M)`` phase factors into ``phases``."""
        if self.use_table:
            np.multiply(self.levels[:, None], self.sign_i * gamma_k[None, :], out=self.table)
            np.exp(self.table, out=self.table)
            np.take(self.table, self.inverse, axis=0, out=phases)
        else:
            np.multiply(self.signed_i_cost[:, None], gamma_k[None, :], out=phases)
            np.exp(phases, out=phases)
        return phases


def _as_schedule(mixer: Mixer | Sequence[Mixer] | MixerSchedule, p: int) -> MixerSchedule:
    if isinstance(mixer, MixerSchedule):
        return mixer
    return MixerSchedule(mixer, rounds=p)


def _as_cost(obj_vals, space) -> PrecomputedCost:
    if isinstance(obj_vals, PrecomputedCost):
        return obj_vals
    return PrecomputedCost(values=np.asarray(obj_vals, dtype=np.float64), space=space)


def _dim_of(mixer: Mixer | Sequence[Mixer] | MixerSchedule) -> int:
    """Simulation dimension of a mixer / mixer list / schedule argument."""
    if isinstance(mixer, (MixerSchedule, Mixer)):
        return mixer.dim
    return next(iter(mixer)).dim


def _scalar_call_workspace(
    workspace: Workspace | BatchedWorkspace | None, dim: int
) -> BatchedWorkspace | None:
    """Adapt a scalar entry point's workspace argument for the batched engine.

    A :class:`Workspace` is checked against ``dim``, counted as served, and
    swapped for its cached single-column companion; a ``BatchedWorkspace``
    passes straight through (the batched engine re-validates it); ``None``
    stays ``None``.
    """
    if workspace is None or isinstance(workspace, BatchedWorkspace):
        return workspace
    if not workspace.compatible_with(dim):
        raise ValueError(
            f"workspace dimension {workspace.dim} does not match simulation dimension {dim}"
        )
    workspace.calls_served += 1
    return workspace.batched()


def evolve_state(
    betas: Sequence[np.ndarray] | np.ndarray,
    gammas: np.ndarray,
    schedule: MixerSchedule,
    cost_values: np.ndarray,
    initial_state: np.ndarray,
    *,
    workspace: Workspace | None = None,
    layer_store: np.ndarray | None = None,
) -> np.ndarray:
    """Apply ``p`` QAOA rounds to ``initial_state`` and return the final state.

    ``betas`` is a per-round list (each entry a scalar array, or a vector for
    multi-angle layers); ``gammas`` is the length-``p`` phase-separator angle
    vector.  If ``layer_store`` (shape ``(p, 2, dim)``) is given, the state
    after each phase separator and after each mixer is recorded — this is what
    the analytic gradient consumes.

    This is the M=1 column call of :func:`evolve_state_batch` (there is
    exactly one evolution code path per mixer family); the single-column
    buffers come from the workspace's cached
    :meth:`~repro.core.workspace.Workspace.batched` companion, so repeated
    calls still allocate nothing.  The returned ``(dim,)`` state is a view
    into that companion's state buffer — copy it to keep it across calls.
    """
    gammas = np.asarray(gammas, dtype=np.float64).ravel()
    if len(gammas) != schedule.p:
        raise ValueError(f"expected {schedule.p} gamma angles, got {len(gammas)}")
    if isinstance(betas, np.ndarray) and betas.ndim == 1 and len(betas) == schedule.p:
        betas = [np.atleast_1d(b) for b in betas]
    if len(betas) != schedule.p:
        raise ValueError(f"expected {schedule.p} beta entries, got {len(betas)}")

    dim = schedule.dim
    cost_values = np.asarray(cost_values, dtype=np.float64)
    if cost_values.shape != (dim,):
        raise ValueError(f"objective values have shape {cost_values.shape}, expected ({dim},)")

    batched = _scalar_call_workspace(workspace, dim)

    beta_cols = [
        np.atleast_1d(np.asarray(beta_k, dtype=np.float64)).reshape(-1, 1) for beta_k in betas
    ]
    store = (
        None
        if layer_store is None
        else layer_store[: schedule.p].reshape(schedule.p, 2, dim, 1)
    )
    psi = evolve_state_batch(
        beta_cols,
        gammas.reshape(-1, 1),
        schedule,
        cost_values,
        initial_state,
        workspace=batched,
        layer_store=store,
    )
    return psi[:, 0]


def evolve_state_batch(
    betas: Sequence[np.ndarray] | np.ndarray,
    gammas: np.ndarray,
    schedule: MixerSchedule,
    cost_values: np.ndarray,
    initial_state: np.ndarray,
    *,
    workspace: BatchedWorkspace | None = None,
    cost_levels: tuple[np.ndarray, np.ndarray] | None = None,
    layer_store: np.ndarray | None = None,
) -> np.ndarray:
    """Apply ``p`` QAOA rounds to M statevectors simultaneously.

    The batch is a ``(dim, M)`` complex matrix: column ``j`` evolves under the
    ``j``-th angle set.  Each round is one broadcasted elementwise phase
    multiply (the phase separator, per-column gammas) followed by one batched
    mixer application (BLAS-3 GEMMs / batched transforms, per-column betas).

    ``betas`` is a per-round list of ``(count_k, M)`` matrices (or a ``(p, M)``
    array for plain single-beta schedules) and ``gammas`` a ``(p, M)`` matrix.
    ``initial_state`` is a single ``(dim,)`` vector broadcast to every column
    or a ``(dim, M)`` matrix of per-column starts.  ``cost_levels`` optionally
    supplies the pre-computed ``(distinct values, inverse indices)`` pair of
    ``cost_values`` (see :meth:`PrecomputedCost.phase_levels`) so repeated
    sweep chunks skip the per-call ``np.unique``.  If ``layer_store`` (shape
    ``(p, 2, dim, M)``, see :meth:`BatchedWorkspace.ensure_layers`) is given,
    the batch after each phase separator and after each mixer is recorded —
    this is what the batched adjoint gradient consumes.  The returned
    ``(dim, M)`` array is a view into the workspace's state buffer — copy it
    to keep it across calls.
    """
    gammas = np.asarray(gammas, dtype=np.float64)
    if gammas.ndim != 2 or gammas.shape[0] != schedule.p:
        raise ValueError(f"gammas have shape {gammas.shape}, expected ({schedule.p}, M)")
    batch = gammas.shape[1]
    if isinstance(betas, np.ndarray) and betas.ndim == 2 and len(betas) == schedule.p:
        beta_rounds = [betas[k][None, :] for k in range(schedule.p)]
    else:
        beta_rounds = [np.atleast_2d(np.asarray(b, dtype=np.float64)) for b in betas]
    if len(beta_rounds) != schedule.p:
        raise ValueError(f"expected {schedule.p} beta entries, got {len(beta_rounds)}")
    for count, beta_k in zip(schedule.beta_counts(), beta_rounds):
        if beta_k.shape != (count, batch):
            raise ValueError(f"round betas have shape {beta_k.shape}, expected ({count}, {batch})")

    dim = schedule.dim
    cost_values = np.asarray(cost_values, dtype=np.float64)
    if cost_values.shape != (dim,):
        raise ValueError(f"objective values have shape {cost_values.shape}, expected ({dim},)")

    if workspace is None:
        workspace = BatchedWorkspace(dim, batch)
    elif not workspace.compatible_with(dim):
        raise ValueError(
            f"workspace dimension {workspace.dim} does not match simulation dimension {dim}"
        )
    workspace.ensure(batch)

    psi = workspace.load_states(np.asarray(initial_state, dtype=np.complex128), batch)
    phases = workspace.phase(batch)
    if cost_levels is None:
        cost_levels = np.unique(cost_values, return_inverse=True)
    phase_factors = _CostPhaseFactors(cost_values, cost_levels, batch, sign=-1.0)
    for round_index, (mixer, beta_k, gamma_k) in enumerate(zip(schedule, beta_rounds, gammas)):
        psi *= phase_factors.fill(gamma_k, phases)
        if layer_store is not None:
            layer_store[round_index, 0] = psi
        beta_arg = beta_k[0] if beta_k.shape[0] == 1 else beta_k
        mixer.apply_batch(psi, beta_arg, out=psi, workspace=workspace)
        if layer_store is not None:
            layer_store[round_index, 1] = psi
    return psi


def simulate(
    angles: np.ndarray,
    mixer: Mixer | Sequence[Mixer] | MixerSchedule,
    obj_vals: np.ndarray | PrecomputedCost,
    *,
    p: int | None = None,
    initial_state: np.ndarray | None = None,
    workspace: Workspace | None = None,
    maximize: bool = True,
) -> QAOAResult:
    """Simulate a ``p``-round QAOA and return a :class:`QAOAResult`.

    Parameters
    ----------
    angles:
        Flat angle vector: mixer angles (betas) first, then phase-separator
        angles (gammas), matching the paper's Listing 1.
    mixer:
        A single mixer (reused every round), a per-round list of mixers, or a
        pre-built :class:`~repro.mixers.schedules.MixerSchedule`.
    obj_vals:
        Objective values over the feasible space (array or
        :class:`~repro.core.precompute.PrecomputedCost`).
    p:
        Number of rounds.  May be omitted when it can be inferred: it is taken
        from a schedule/mixer list, else from ``len(angles) // 2``.
    initial_state:
        Optional initial statevector (defaults to the mixer's uniform
        superposition over the feasible space; pass e.g. a warm start here).
    workspace:
        Optional pre-allocated :class:`~repro.core.workspace.Workspace`.
    maximize:
        Recorded on the result's cost object (used for optimal-state queries).

    The M=1 row call of :func:`simulate_batch` — one simulation code path per
    mixer family, shared by the scalar and batched engines.
    """
    angles = np.asarray(angles, dtype=np.float64).ravel()
    if isinstance(mixer, Mixer) and p is None and angles.size % 2:
        raise ValueError("cannot infer p from an odd-length angle vector; pass p explicitly")
    batched = _scalar_call_workspace(workspace, _dim_of(mixer))
    results = simulate_batch(
        angles[None, :],
        mixer,
        obj_vals,
        p=p,
        initial_state=initial_state,
        workspace=batched,
        maximize=maximize,
    )
    return results[0]


def simulate_batch(
    angles: np.ndarray,
    mixer: Mixer | Sequence[Mixer] | MixerSchedule,
    obj_vals: np.ndarray | PrecomputedCost,
    *,
    p: int | None = None,
    initial_state: np.ndarray | None = None,
    workspace: BatchedWorkspace | None = None,
    maximize: bool = True,
) -> list[QAOAResult]:
    """Simulate M angle sets at once; returns one :class:`QAOAResult` per row.

    ``angles`` is an ``(M, num_angles)`` matrix whose rows are flat angle
    vectors in the layout of :func:`simulate`.  All M simulations share one
    evolution over a ``(dim, M)`` state matrix, so the per-angle-set cost is
    that of the batched BLAS-3 kernels rather than M scalar evolutions.
    """
    angles = np.asarray(angles, dtype=np.float64)
    if angles.ndim == 1:
        angles = angles[None, :]
    if isinstance(mixer, MixerSchedule):
        schedule = mixer
    elif isinstance(mixer, Mixer):
        if p is None:
            if angles.shape[1] % 2:
                raise ValueError(
                    "cannot infer p from an odd-length angle vector; pass p explicitly"
                )
            p = angles.shape[1] // 2
        schedule = MixerSchedule(mixer, rounds=p)
    else:
        schedule = MixerSchedule(mixer, rounds=p)

    if isinstance(obj_vals, PrecomputedCost):
        cost = obj_vals
        if cost.maximize != maximize:
            cost = PrecomputedCost(values=cost.values.copy(), space=cost.space, maximize=maximize)
    else:
        cost = PrecomputedCost(
            values=np.asarray(obj_vals, dtype=np.float64),
            space=schedule.space,
            maximize=maximize,
        )

    betas, gammas = split_angles_batch(angles, schedule)
    if initial_state is None:
        initial_state = schedule.initial_state()
    psi = evolve_state_batch(
        betas,
        gammas,
        schedule,
        cost.values,
        initial_state,
        workspace=workspace,
        cost_levels=cost.phase_levels(),
    )
    results = []
    for j in range(angles.shape[0]):
        result = QAOAResult(statevector=psi[:, j].copy(), cost=cost, angles=angles[j].copy())
        result._cache["p"] = schedule.p
        results.append(result)
    return results


def get_exp_value(result: QAOAResult) -> float:
    """Expectation value of a result (mirrors the paper's ``get_exp_value``)."""
    return result.expectation()


def expectation_value(
    angles: np.ndarray,
    mixer: Mixer | Sequence[Mixer] | MixerSchedule,
    obj_vals: np.ndarray | PrecomputedCost,
    *,
    p: int | None = None,
    initial_state: np.ndarray | None = None,
    workspace: Workspace | None = None,
) -> float:
    """Fast path returning only ``<C>`` (what the angle-finding inner loop calls).

    The M=1 row call of :func:`expectation_value_batch` — one evaluation code
    path per mixer family, shared by the scalar and batched engines.
    """
    angles = np.asarray(angles, dtype=np.float64).ravel()
    batched = _scalar_call_workspace(workspace, _dim_of(mixer))
    values = expectation_value_batch(
        angles[None, :],
        mixer,
        obj_vals,
        p=p,
        initial_state=initial_state,
        workspace=batched,
    )
    return float(values[0])


def expectation_value_batch(
    angles: np.ndarray,
    mixer: Mixer | Sequence[Mixer] | MixerSchedule,
    obj_vals: np.ndarray | PrecomputedCost,
    *,
    p: int | None = None,
    initial_state: np.ndarray | None = None,
    workspace: BatchedWorkspace | None = None,
) -> np.ndarray:
    """Batched fast path: ``<C>`` for every row of an ``(M, num_angles)`` matrix.

    This is what batched angle-finding loops (grid search, random-restart
    seeding) call: M angle sets are evolved as the columns of one ``(dim, M)``
    matrix and the M expectation values come back as a ``(M,)`` float array.
    Agrees with a loop over :func:`expectation_value` to ~1e-12.
    """
    angles = np.asarray(angles, dtype=np.float64)
    if angles.ndim == 1:
        angles = angles[None, :]
    if isinstance(mixer, MixerSchedule):
        schedule = mixer
    elif isinstance(mixer, Mixer):
        if p is None:
            p = angles.shape[1] // 2
        schedule = MixerSchedule(mixer, rounds=p)
    else:
        schedule = MixerSchedule(mixer, rounds=p)
    if isinstance(obj_vals, PrecomputedCost):
        values = obj_vals.values
        cost_levels = obj_vals.phase_levels()
    else:
        values = np.asarray(obj_vals, dtype=np.float64)
        cost_levels = None
    betas, gammas = split_angles_batch(angles, schedule)
    if initial_state is None:
        initial_state = schedule.initial_state()
    psi = evolve_state_batch(
        betas,
        gammas,
        schedule,
        values,
        initial_state,
        workspace=workspace,
        cost_levels=cost_levels,
    )
    probs = np.abs(psi)
    np.square(probs, out=probs)
    bk = workspace.backend if workspace is not None else active_backend()
    return bk.matmul(values, probs)
