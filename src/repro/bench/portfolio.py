"""Anytime portfolio benchmark: time-to-quality racing on the clique workload.

The portfolio's claim is an *anytime* one: racing several strategies against a
shared incumbent should (a) never do worse than the best single racer at any
deadline, and (b) reach a fixed quality bar much sooner than the worst racer
would alone.  This harness measures both on the service benchmark's
densest-subgraph workload — the C(11,5)=462-state Dicke subspace with the
diagonalized clique mixer, p=2 — plus a smaller C(8,4)=70-state instance for
the CI smoke profile:

* each contender first runs *standalone* with the exact RNG stream racer ``i``
  would get (:func:`~repro.portfolio.racing.racer_rng`), recording its anytime
  trail — the measurement the race results are compared against;
* the portfolio then races the same lineup at each swept deadline, recording
  the shared incumbent trail, per-racer finals, and the wall-clock return
  envelope.

Gates (recorded per instance in ``BENCH_portfolio.json``):

* **quality** — at every deadline the portfolio's value is at least every
  racer's value at that deadline (within ``1e-10`` relative tolerance);
* **determinism** — at deadlines where the race converges, every racer final
  matches its standalone run and the portfolio returns the best of them;
* **speedup** — the portfolio reaches ``QUALITY_FRACTION`` (95%) of the best
  final value at least ``SPEEDUP_GATE`` (2x) faster than the slowest
  contender does standalone;
* **envelope** — a timed-out race returns within ``deadline * 1.1`` plus a
  small absolute slack for scheduler jitter;
* **monotone** — every recorded trail improves strictly.

The contender lineup deliberately includes a slow closer (scipy-loop random
restarts with finite-difference gradients): it anchors the worst-case
time-to-quality the portfolio must beat, while still finding a strong final
value — exactly the racer a fixed single-strategy choice would regret.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Mapping, Sequence

import numpy as np

from ..api.solver import QAOASolver
from ..api.spec import SolveSpec
from ..api.strategies import run_strategy
from ..portfolio.racing import DEFAULT_RACERS, race_portfolio, racer_rng

__all__ = [
    "CONTENDERS",
    "QUALITY_FRACTION",
    "QUALITY_GATE_TOL",
    "SPEEDUP_GATE",
    "contender_point",
    "race_point",
    "sweep_instance",
    "sweep_points",
    "run_sweep",
    "portfolio_rows",
]

#: The benchmark lineup: the vectorized lock-step refiner (fast first
#: incumbent), the scipy random-restart baseline, and a deliberately slow
#: finite-difference closer that anchors the worst-case time-to-quality.
CONTENDERS: tuple[dict, ...] = (
    {"name": "multistart", "params": {"iters": 8}},
    {"name": "random", "params": {"iters": 6, "vectorized": False}},
    {"name": "random", "params": {"iters": 30, "vectorized": False, "gradient": "finite"}},
)

#: The quality bar of the time-to-quality measurement (95% of the best final).
QUALITY_FRACTION = 0.95

#: Relative tolerance of the per-deadline quality gate (fp noise only).
QUALITY_GATE_TOL = 1e-10

#: The portfolio must reach the quality bar this many times faster than the
#: slowest standalone contender.
SPEEDUP_GATE = 2.0

#: Return envelope of a timed-out race: ``deadline * (1 + fraction) + slack``.
#: The fraction is the contract (T + 10%); the absolute slack absorbs
#: scheduler jitter on loaded CI runners at sub-second deadlines.
ENVELOPE_FRACTION = 0.10
ENVELOPE_SLACK_S = 0.15


def _workload_spec(n: int, k: int, p: int = 2) -> SolveSpec:
    return SolveSpec.build(
        problem="densest_subgraph",
        n=n,
        problem_params={"k": k},
        mixer="clique",
        strategy="portfolio",
        p=p,
    )


def _build_ansatz(n: int, k: int, p: int = 2):
    return QAOASolver(_workload_spec(n, k, p)).ansatz


def quality_threshold(best: float, *, maximize: bool, fraction: float = QUALITY_FRACTION) -> float:
    """The value that counts as ``fraction`` of the way to ``best``."""
    slack = (1.0 - fraction) * abs(best)
    return best - slack if maximize else best + slack


def time_to_quality(
    trail: Sequence[Sequence[float]], threshold: float, *, maximize: bool
) -> float | None:
    """First trail timestamp at or past ``threshold`` (``None``: never reached)."""
    for t, value in trail:
        if value >= threshold if maximize else value <= threshold:
            return float(t)
    return None


def _monotone(values: Sequence[float], maximize: bool) -> bool:
    pairs = zip(values, values[1:])
    return all(b > a for a, b in pairs) if maximize else all(b < a for a, b in pairs)


def contender_point(ansatz, index: int, contender: Mapping, seed: int) -> dict:
    """Run one contender standalone with racer ``index``'s exact RNG stream."""
    trail: list[list[float]] = []
    start = time.perf_counter()

    def record(value: float, _angles: np.ndarray) -> None:
        trail.append([time.perf_counter() - start, float(value)])

    result = run_strategy(
        contender["name"],
        ansatz,
        rng=racer_rng(seed, index),
        on_incumbent=record,
        **dict(contender.get("params", {})),
    )
    return {
        "kind": "contender",
        "racer": index,
        "name": contender["name"],
        "params": dict(contender.get("params", {})),
        "value": float(result.value),
        "evaluations": int(result.evaluations),
        "seconds": time.perf_counter() - start,
        "trail": trail,
    }


def race_point(
    ansatz,
    racers: Sequence[Mapping],
    deadline_s: float,
    seed: int,
    *,
    cancel_laggards: bool = False,
) -> dict:
    """One portfolio race; laggard cancellation is off so racer finals stay
    bit-comparable to the standalone contender runs."""
    start = time.perf_counter()
    outcome = race_portfolio(
        ansatz,
        racers=[dict(r) for r in racers],
        deadline_s=deadline_s,
        rng=seed,
        cancel_laggards=cancel_laggards,
    )
    elapsed = time.perf_counter() - start
    return {
        "kind": "race",
        "deadline_s": float(deadline_s),
        "value": float(outcome.result.value),
        "timed_out": bool(outcome.result.timed_out),
        "winner": outcome.winner,
        "evaluations": int(outcome.result.evaluations),
        "seconds": elapsed,
        "racer_values": [r["value"] for r in outcome.racers],
        "trail": [[e["t"], e["value"]] for e in outcome.trail],
    }


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= QUALITY_GATE_TOL * (1.0 + abs(b))


def sweep_instance(point: Mapping, *, contenders: Sequence[Mapping] = CONTENDERS) -> dict:
    """Measure one instance: standalone contenders, then races at each deadline."""
    n, k = int(point["n"]), int(point["k"])
    seed = int(point.get("seed", 0))
    ansatz = _build_ansatz(n, k)
    maximize = ansatz.maximize
    pick = max if maximize else min

    contender_rows = [
        contender_point(ansatz, index, contender, seed)
        for index, contender in enumerate(contenders)
    ]
    best_final = pick(row["value"] for row in contender_rows)
    threshold = quality_threshold(best_final, maximize=maximize)
    for row in contender_rows:
        t = time_to_quality(row["trail"], threshold, maximize=maximize)
        row["time_to_quality_s"] = t
        # A contender that never crossed is at least as slow as its full run,
        # so its runtime is a valid lower bound for the worst-case comparison.
        row["time_to_quality_bound_s"] = t if t is not None else row["seconds"]
    worst_time = max(row["time_to_quality_bound_s"] for row in contender_rows)

    race_rows = [
        race_point(ansatz, contenders, deadline, seed) for deadline in point["deadlines"]
    ]
    for row in race_rows:
        finished = [v for v in row["racer_values"] if v is not None]
        bar = pick(finished) if finished else None
        row["quality_gate_passed"] = bar is None or (
            row["value"] >= bar - QUALITY_GATE_TOL * (1.0 + abs(bar))
            if maximize
            else row["value"] <= bar + QUALITY_GATE_TOL * (1.0 + abs(bar))
        )
        envelope = row["deadline_s"] * (1.0 + ENVELOPE_FRACTION) + ENVELOPE_SLACK_S
        row["within_envelope"] = row["seconds"] <= envelope
        row["within_10pct"] = row["seconds"] <= row["deadline_s"] * (1.0 + ENVELOPE_FRACTION)
        row["monotone_trail"] = _monotone([v for _, v in row["trail"]], maximize)
        if not row["timed_out"]:
            row["matches_standalone"] = all(
                value is not None and _close(value, contender_rows[i]["value"])
                for i, value in enumerate(row["racer_values"])
            ) and _close(row["value"], best_final)

    converged = [row for row in race_rows if not row["timed_out"]]
    portfolio_time = None
    if converged:
        portfolio_time = time_to_quality(converged[-1]["trail"], threshold, maximize=maximize)
    speedup = None if not portfolio_time else worst_time / portfolio_time

    gates = {
        "quality": all(row["quality_gate_passed"] for row in race_rows),
        "determinism": bool(converged)
        and all(row["matches_standalone"] for row in converged),
        "speedup": speedup is not None and speedup >= SPEEDUP_GATE,
        "envelope": all(row["within_envelope"] for row in race_rows),
        "monotone": all(row["monotone_trail"] for row in race_rows)
        and all(_monotone([v for _, v in row["trail"]], maximize) for row in contender_rows),
    }
    return {
        "n": n,
        "k": k,
        "dim": ansatz.workspace.dim,
        "seed": seed,
        "best_final": best_final,
        "quality_threshold": threshold,
        "worst_time_to_quality_s": worst_time,
        "portfolio_time_to_quality_s": portfolio_time,
        "speedup": speedup,
        "gates": gates,
        "all_gates_passed": all(gates.values()),
        "contenders": contender_rows,
        "races": race_rows,
    }


def sweep_points(scale: str) -> list[dict]:
    """The instance schedule of one sweep profile.

    Both profiles stay at dimensions where solve time dominates the ~0.1 s
    thread-startup overhead of a race — on toy instances every contender
    converges before the race can possibly pay for itself, and the speedup
    gate would measure nothing but scheduler noise.
    """
    if scale == "quick":
        return [{"n": 11, "k": 5, "deadlines": (2.0, 20.0)}]
    if scale == "full":
        return [
            {"n": 10, "k": 5, "deadlines": (2.0, 15.0)},
            {"n": 11, "k": 5, "deadlines": (2.0, 5.0, 20.0)},
        ]
    raise ValueError(f"unknown sweep scale {scale!r} (choose 'quick' or 'full')")


def run_sweep(scale: str, out_path: str) -> dict:
    """Run a sweep profile and write the benchmark document to ``out_path``."""
    records = []
    for point in sweep_points(scale):
        record = sweep_instance(point)
        records.append(record)
        print(
            json.dumps(
                {
                    key: record[key]
                    for key in (
                        "n", "k", "dim", "best_final", "worst_time_to_quality_s",
                        "portfolio_time_to_quality_s", "speedup", "gates",
                    )
                }
            ),
            flush=True,
        )
    document = {
        "benchmark": "portfolio_anytime",
        "scale": scale,
        "unit": "seconds (wall), expectation value (quality)",
        "numpy": np.__version__,
        "quality_fraction": QUALITY_FRACTION,
        "quality_gate_tol": QUALITY_GATE_TOL,
        "speedup_gate": SPEEDUP_GATE,
        "envelope": {"fraction": ENVELOPE_FRACTION, "slack_s": ENVELOPE_SLACK_S},
        "all_gates_passed": all(record["all_gates_passed"] for record in records),
        "records": records,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


# ---------------------------------------------------------------------------
# `repro run portfolio` executor (anytime curves through the run store)
# ---------------------------------------------------------------------------


def portfolio_rows(
    instance: Mapping,
    deadline_s: float,
    racers: Sequence[Mapping] | None = None,
    p: int = 2,
    seed: int = 0,
) -> list[dict]:
    """One race of the ``portfolio`` experiment: a summary row plus the trail.

    ``instance`` is ``{"problem": name, "n": ..., "mixer": ...}`` with optional
    ``"problem_params"``.  Event rows carry the anytime curve so a report can
    assert monotone improvement without re-running anything.
    """
    instance = dict(instance)
    spec = SolveSpec.build(
        problem=str(instance["problem"]),
        n=int(instance["n"]),
        problem_params=dict(instance.get("problem_params", {})),
        mixer=str(instance.get("mixer", "x")),
        strategy="portfolio",
        p=int(p),
        seed=int(seed),
    )
    ansatz = QAOASolver(spec).ansatz
    lineup = [dict(r) for r in (DEFAULT_RACERS if racers is None else racers)]
    start = time.perf_counter()
    outcome = race_portfolio(ansatz, racers=lineup, deadline_s=float(deadline_s), rng=int(seed))
    elapsed = time.perf_counter() - start

    base = {
        "problem": spec.problem.name,
        "n": spec.problem.n,
        "mixer": spec.mixer.name,
        "p": spec.p,
        "deadline_s": float(deadline_s),
    }
    values = [event["value"] for event in outcome.trail]
    rows = [
        {
            **base,
            "kind": "summary",
            "value": float(outcome.result.value),
            "winner": outcome.winner,
            "winner_name": lineup[outcome.winner]["name"] if outcome.winner >= 0 else None,
            "timed_out": bool(outcome.result.timed_out),
            "evaluations": int(outcome.result.evaluations),
            "wall_time_s": elapsed,
            "events": len(outcome.trail),
            "monotone": _monotone(values, ansatz.maximize),
        }
    ]
    rows.extend(
        {
            **base,
            "kind": "event",
            "t": event["t"],
            "value": event["value"],
            "source": event["source"],
        }
        for event in outcome.trail
    )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.portfolio",
        description="Anytime portfolio racing benchmark (time-to-quality gates).",
    )
    parser.add_argument("--scale", choices=["quick", "full"], default="quick")
    parser.add_argument("--out", default="BENCH_portfolio.json")
    args = parser.parse_args(argv)
    document = run_sweep(args.scale, args.out)
    print(f"wrote {args.out}: all_gates_passed={document['all_gates_passed']}")
    return 0 if document["all_gates_passed"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
