"""Large-scale execution benchmark: sharded and compressed solves past n=20.

The paper's scaling claim is two-fold: full-space statevector simulation is
memory-bound (Figure 4a), and Grover-mixer degeneracy compression removes the
dimension from the cost entirely (n ~ 100).  This harness measures both
production paths end to end:

* ``sharded`` points run a full-space solve split across shard worker
  processes and record every process's peak RSS (``VmHWM``), gating the
  per-process peak against ``0.75 x`` the single-process dense estimate of
  :func:`repro.hpc.memory.simulator_memory_estimate` — the number sharding
  must beat to be worth its exchange traffic;
* ``compressed`` points solve Hamming-weight problems at dimensions dense
  simulation cannot represent (n = 60, 100) and record wall time plus the
  compression ratio ``dim / distinct``;
* ``agreement`` points run the same spec through every engine at a feasible
  n and record the maximum cross-engine deviation (gate: ``<= 1e-10``).

Each point runs in a fresh subprocess so its ``VmHWM`` reflects only that
point (a parent process's high-water mark never resets).  Rows land in
``BENCH_largescale.json`` at the repo root; the CI smoke job runs the
``quick`` profile, the nightly sweep runs ``full``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

import numpy as np

from ..api.routing import ExecutionPlan, select_execution_path
from ..api.solver import QAOASolver
from ..api.spec import SolveSpec
from ..hpc.memory import peak_rss_bytes, simulator_memory_estimate

__all__ = [
    "RSS_GATE_FRACTION",
    "AGREEMENT_GATE",
    "sharded_point",
    "compressed_point",
    "agreement_point",
    "sweep_points",
    "run_sweep",
]

#: Per-process peak-RSS budget as a fraction of the dense single-process estimate.
RSS_GATE_FRACTION = 0.75

#: Below this dense estimate the interpreter baseline (~100 MB of Python +
#: numpy) dominates every process and the RSS gate measures nothing; such
#: points record their peaks but report the gate as not applicable.
RSS_GATE_MIN_ESTIMATE = 1 << 30

#: Maximum tolerated cross-engine deviation at identical angles.
AGREEMENT_GATE = 1e-10


def _sharded_spec(n: int) -> SolveSpec:
    # Hamming weight keeps setup O(1) per state so the measurement is the
    # engine, not the instance; grid resolution 2 bounds the angle search.
    return SolveSpec.build(
        problem="hamming",
        n=n,
        mixer="x",
        strategy="grid",
        strategy_params={"resolution": 2},
        p=1,
    )


def sharded_point(n: int, shards: int) -> dict:
    """One full-space sharded solve; returns the row with per-process peaks."""
    spec = _sharded_spec(n)
    plan = select_execution_path(spec, shards=shards)
    if plan.path != "sharded":
        raise RuntimeError(f"expected a sharded plan, routed {plan.describe()}")
    dense_estimate = simulator_memory_estimate(n)
    gate = int(RSS_GATE_FRACTION * dense_estimate)
    solver = QAOASolver(spec, plan=plan)
    try:
        start = time.perf_counter()
        result = solver.run()
        elapsed = time.perf_counter() - start
        rss = solver.ansatz.executor.rss()
    finally:
        solver.close()
    return {
        "kind": "sharded",
        "n": n,
        "dim": plan.dim,
        "shards": shards,
        "seconds": elapsed,
        "value": result.value,
        "optimum": result.optimum,
        "approximation_ratio": result.value / result.optimum,
        "worker_peak_rss": [w["peak"] for w in rss["workers"]],
        "coordinator_peak_rss": rss["coordinator"]["peak"],
        "max_peak_rss": rss["max_peak"],
        "total_peak_rss": rss["total_peak"],
        "dense_estimate_bytes": dense_estimate,
        "rss_gate_bytes": gate,
        "rss_gate_passed": (
            rss["max_peak"] < gate
            if dense_estimate >= RSS_GATE_MIN_ESTIMATE
            else None
        ),
    }


def compressed_point(n: int) -> dict:
    """One compressed-Grover solve at a dimension dense simulation can't hold."""
    spec = SolveSpec.build(
        problem="hamming", n=n, mixer="grover", strategy="random",
        strategy_params={"iters": 8}, p=2,
    )
    plan = select_execution_path(spec)
    if plan.path != "compressed":
        raise RuntimeError(f"expected a compressed plan, routed {plan.describe()}")
    start = time.perf_counter()
    solver = QAOASolver(spec, plan=plan)
    try:
        result = solver.run()
    finally:
        solver.close()
    elapsed = time.perf_counter() - start
    return {
        "kind": "compressed",
        "n": n,
        "dim": float(plan.dim),  # may exceed 2^53; JSON numbers stay honest as floats
        "distinct": plan.distinct,
        "compression_ratio": float(plan.dim) / plan.distinct,
        "seconds": elapsed,
        "value": result.value,
        "optimum": result.optimum,
        "approximation_ratio": result.value / result.optimum,
        "peak_rss": peak_rss_bytes(),
    }


def agreement_point(n: int, shards: int) -> dict:
    """Max cross-engine deviation of expectation batches at identical angles."""
    spec = SolveSpec.build(problem="hamming", n=n, mixer="grover", p=2)
    dim = 1 << n
    angles = 2 * np.pi * np.random.default_rng(2023).random((4, 4))
    solvers = {
        "dense": QAOASolver(spec, plan=ExecutionPlan("dense", "forced", dim)),
        "compressed": QAOASolver(spec, plan=ExecutionPlan("compressed", "forced", dim)),
        "sharded": QAOASolver(
            spec, plan=ExecutionPlan("sharded", "forced", dim, shards=shards)
        ),
    }
    try:
        values = {
            path: solver.ansatz.expectation_batch(angles)
            for path, solver in solvers.items()
        }
    finally:
        for solver in solvers.values():
            solver.close()
    deviations = {
        path: float(np.abs(values[path] - values["dense"]).max())
        for path in ("compressed", "sharded")
    }
    return {
        "kind": "agreement",
        "n": n,
        "dim": dim,
        "shards": shards,
        "deviation": deviations,
        "max_deviation": max(deviations.values()),
        "gate": AGREEMENT_GATE,
        "agreement_passed": max(deviations.values()) <= AGREEMENT_GATE,
    }


def sweep_points(scale: str) -> list[dict]:
    """The ``(kind, kwargs)`` schedule of one sweep profile."""
    if scale == "quick":
        return [
            {"kind": "agreement", "n": 10, "shards": 2},
            {"kind": "sharded", "n": 12, "shards": 2},
            {"kind": "compressed", "n": 16},
            {"kind": "compressed", "n": 60},
        ]
    if scale == "full":
        return [
            {"kind": "agreement", "n": 12, "shards": 4},
            {"kind": "sharded", "n": 20, "shards": 4},
            {"kind": "sharded", "n": 26, "shards": 4},
            {"kind": "compressed", "n": 60},
            {"kind": "compressed", "n": 100},
        ]
    raise ValueError(f"unknown sweep scale {scale!r} (choose 'quick' or 'full')")


def _run_point(point: dict) -> dict:
    kind = point["kind"]
    if kind == "sharded":
        return sharded_point(point["n"], point["shards"])
    if kind == "compressed":
        return compressed_point(point["n"])
    if kind == "agreement":
        return agreement_point(point["n"], point["shards"])
    raise ValueError(f"unknown point kind {kind!r}")


def _run_point_subprocess(point: dict) -> dict:
    """Run one point in a fresh interpreter so VmHWM belongs to it alone."""
    argv = [sys.executable, "-m", "repro.bench.largescale", "--point", point["kind"],
            "--n", str(point["n"])]
    if "shards" in point:
        argv += ["--shards", str(point["shards"])]
    env = dict(os.environ)
    env.pop("REPRO_SHARDS", None)  # shard counts come from the schedule
    proc = subprocess.run(argv, env=env, capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        raise RuntimeError(
            f"benchmark point {point} failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_sweep(scale: str, out_path: str, *, subprocesses: bool = True) -> dict:
    """Run a sweep profile and write the benchmark document to ``out_path``."""
    rows = []
    for point in sweep_points(scale):
        row = _run_point_subprocess(point) if subprocesses else _run_point(point)
        rows.append(row)
        print(json.dumps(row), flush=True)
    document = {
        "benchmark": "largescale_execution",
        "scale": scale,
        "unit": "bytes (RSS), seconds (wall)",
        "numpy": np.__version__,
        "rss_gate_fraction": RSS_GATE_FRACTION,
        "agreement_gate": AGREEMENT_GATE,
        # None means not applicable (dense estimate below the baseline floor).
        "all_gates_passed": all(
            r.get("rss_gate_passed") is not False
            and r.get("agreement_passed") is not False
            for r in rows
        ),
        "records": rows,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.largescale",
        description="Sharded / compressed execution benchmark.",
    )
    parser.add_argument("--point", choices=["sharded", "compressed", "agreement"],
                        help="run a single point in-process and print its row")
    parser.add_argument("--n", type=int, default=12)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--scale", choices=["quick", "full"], default="quick")
    parser.add_argument("--out", default="BENCH_largescale.json")
    parser.add_argument("--in-process", action="store_true",
                        help="run sweep points without per-point subprocesses")
    args = parser.parse_args(argv)
    if args.point:
        row = _run_point({"kind": args.point, "n": args.n, "shards": args.shards})
        print(json.dumps(row))
        return 0
    document = run_sweep(args.scale, args.out, subprocesses=not args.in_process)
    print(f"wrote {args.out}: all_gates_passed={document['all_gates_passed']}")
    return 0 if document["all_gates_passed"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
