"""Seeded workload generators for every figure of the paper.

All generators are deterministic in their ``seed`` argument so benchmark rows
can be regenerated exactly.  Sizes default to a scaled-down "quick" profile so
the whole harness runs in CI-friendly time; setting the environment variable
``REPRO_BENCH_SCALE=paper`` switches to the paper's parameters (n = 12/14,
p up to 10, 50-100 instances), which take considerably longer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import networkx as nx

from ..core.precompute import PrecomputedCost
from ..mixers.base import Mixer
from ..mixers.grover import grover_mixer
from ..mixers.xmixer import transverse_field_mixer
from ..mixers.xy import CliqueMixer, RingMixer
from ..problems.registry import ProblemInstance, make_problem

__all__ = [
    "bench_scale",
    "is_paper_scale",
    "Figure2Case",
    "FIGURE2_CASE_LABELS",
    "figure2_case",
    "figure2_cases",
    "figure3_instances",
    "figure4_graph",
    "figure4a_qubit_range",
    "figure4b_round_range",
    "figure5_instances",
    "FIG2_SEED",
    "FIG3_SEED",
    "FIG4_SEED",
    "FIG5_SEED",
]

FIG2_SEED = 20231112
FIG3_SEED = 20231113
FIG4_SEED = 20231114
FIG5_SEED = 20231115


def bench_scale() -> str:
    """The active benchmark profile: ``"quick"`` (default) or ``"paper"``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if scale not in ("quick", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be 'quick' or 'paper', got {scale!r}")
    return scale


def is_paper_scale() -> bool:
    """Whether the full paper-scale parameters are requested."""
    return bench_scale() == "paper"


# ---------------------------------------------------------------------------
# Figure 2 — four problem/mixer pairs at n = 12 (quick: n = 8)
# ---------------------------------------------------------------------------

@dataclass
class Figure2Case:
    """One problem/mixer pair of Figure 2."""

    label: str
    problem: ProblemInstance
    mixer: Mixer
    cost: PrecomputedCost

    @property
    def n(self) -> int:
        """Number of qubits."""
        return self.problem.n


#: Labels of the four Figure 2 cases, in sweep order (stable task identifiers).
FIGURE2_CASE_LABELS = (
    "maxcut+transverse_field",
    "3sat+grover",
    "densest_k_subgraph+clique",
    "k_vertex_cover+ring",
)


def figure2_case(case_index: int, n: int | None = None, seed: int = FIG2_SEED) -> Figure2Case:
    """Build a single Figure 2 case by index (cheap per-task construction).

    The experiment runner dispatches one task per case; building only the
    requested problem/mixer pair avoids redoing the other three
    pre-computations in every worker.
    """
    if n is None:
        n = 12 if is_paper_scale() else 8
    k = n // 2
    if case_index == 0:
        problem = make_problem("maxcut", n, seed=seed)
        mixer: Mixer = transverse_field_mixer(n)
    elif case_index == 1:
        problem = make_problem("ksat", n, seed=seed + 1, clause_density=6.0, sat_k=3)
        mixer = grover_mixer(n)
    elif case_index == 2:
        problem = make_problem("densest_subgraph", n, seed=seed + 2, k=k)
        mixer = CliqueMixer(n, k)
    elif case_index == 3:
        problem = make_problem("vertex_cover", n, seed=seed + 3, k=k)
        mixer = RingMixer(n, k)
    else:
        raise IndexError(f"case_index must be 0..3, got {case_index}")
    return Figure2Case(
        label=FIGURE2_CASE_LABELS[case_index],
        problem=problem,
        mixer=mixer,
        cost=PrecomputedCost(values=problem.objective_values(), space=problem.space),
    )


def figure2_cases(n: int | None = None, seed: int = FIG2_SEED) -> list[Figure2Case]:
    """The four (problem, mixer) pairs of Figure 2.

    MaxCut + transverse field, 3-SAT (clause density 6) + Grover,
    Densest-k-Subgraph + Clique, Max-k-Vertex-Cover + Ring, all on
    ``G(n, 0.5)`` with ``k = n/2`` for the constrained problems.
    """
    return [figure2_case(i, n=n, seed=seed) for i in range(len(FIGURE2_CASE_LABELS))]


# ---------------------------------------------------------------------------
# Figure 3 — an ensemble of MaxCut instances at n = 12 (quick: fewer, smaller)
# ---------------------------------------------------------------------------

def figure3_instances(
    num_instances: int | None = None, n: int | None = None, seed: int = FIG3_SEED
) -> list[ProblemInstance]:
    """Seeded MaxCut instances on ``G(n, 0.5)`` for the angle-strategy comparison."""
    if n is None:
        n = 12 if is_paper_scale() else 8
    if num_instances is None:
        num_instances = 50 if is_paper_scale() else 6
    return [make_problem("maxcut", n, seed=seed + i) for i in range(num_instances)]


# ---------------------------------------------------------------------------
# Figure 4 — scaling sweeps
# ---------------------------------------------------------------------------

def figure4_graph(n: int, seed: int = FIG4_SEED) -> nx.Graph:
    """The ``G(n, 0.5)`` MaxCut graph used in the Fig. 4 scaling sweeps."""
    return make_problem("maxcut", n, seed=seed).metadata["graph"]


def figure4a_qubit_range(include_dense: bool = False) -> list[int]:
    """Qubit counts swept in Fig. 4a (the dense baseline stops earlier)."""
    if is_paper_scale():
        qubits = list(range(4, 17, 2))
    else:
        qubits = [4, 6, 8, 10]
    if include_dense:
        qubits = [q for q in qubits if q <= 10]
    return qubits


def figure4b_round_range() -> tuple[int, list[int]]:
    """``(n, p values)`` swept in Fig. 4b."""
    if is_paper_scale():
        return 14, list(range(1, 11))
    return 10, [1, 2, 4, 6, 8]


# ---------------------------------------------------------------------------
# Figure 5 — gradient-method comparison instances
# ---------------------------------------------------------------------------

def figure5_instances(
    num_instances: int | None = None, n: int | None = None, seed: int = FIG5_SEED
) -> list[ProblemInstance]:
    """Seeded MaxCut instances for the AD-vs-finite-difference timing comparison."""
    if n is None:
        n = 14 if is_paper_scale() else 10
    if num_instances is None:
        num_instances = 20 if is_paper_scale() else 3
    return [make_problem("maxcut", n, seed=seed + i) for i in range(num_instances)]
