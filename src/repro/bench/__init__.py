"""Benchmark harness: workload generators, timing utilities and per-figure runners."""

from .figures import (
    format_rows,
    run_figure2,
    run_figure3,
    run_figure4a,
    run_figure4b,
    run_figure5,
    run_grover_compression,
)
from .timing import time_and_memory, time_call
from .workloads import (
    Figure2Case,
    bench_scale,
    figure2_cases,
    figure3_instances,
    figure4_graph,
    figure4a_qubit_range,
    figure4b_round_range,
    figure5_instances,
    is_paper_scale,
)

__all__ = [
    "format_rows",
    "run_figure2",
    "run_figure3",
    "run_figure4a",
    "run_figure4b",
    "run_figure5",
    "run_grover_compression",
    "time_and_memory",
    "time_call",
    "Figure2Case",
    "bench_scale",
    "figure2_cases",
    "figure3_instances",
    "figure4_graph",
    "figure4a_qubit_range",
    "figure4b_round_range",
    "figure5_instances",
    "is_paper_scale",
]
