"""Timing and memory measurement utilities for the benchmark harness."""

from __future__ import annotations

import time
from typing import Callable

from ..hpc.memory import measure_peak_allocation

__all__ = ["time_call", "time_and_memory"]


def time_call(func: Callable[[], object], *, repeats: int = 3, warmup: int = 1) -> dict:
    """Run ``func`` several times and report wall-clock statistics in seconds.

    ``warmup`` runs are executed first and discarded (cache/JIT effects); the
    returned dict has ``min``, ``mean``, ``max`` and the per-run ``times``.
    The minimum is the most robust single number on a shared machine and is
    what the figure harness reports.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    for _ in range(max(0, warmup)):
        func()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return {
        "min": min(times),
        "mean": sum(times) / len(times),
        "max": max(times),
        "times": times,
    }


def time_and_memory(func: Callable[[], object], *, repeats: int = 3, warmup: int = 1) -> dict:
    """Wall-clock statistics plus the peak Python-heap allocation of one run."""
    stats = time_call(func, repeats=repeats, warmup=warmup)
    _, peak = measure_peak_allocation(func)
    stats["peak_bytes"] = int(peak)
    return stats
