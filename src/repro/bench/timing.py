"""Timing and memory measurement utilities for the benchmark harness."""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable

from ..hpc.memory import measure_peak_allocation

__all__ = ["time_call", "time_and_memory", "merge_backend_records"]


def time_call(func: Callable[[], object], *, repeats: int = 3, warmup: int = 1) -> dict:
    """Run ``func`` several times and report wall-clock statistics in seconds.

    ``warmup`` runs are executed first and discarded (cache/JIT effects); the
    returned dict has ``min``, ``mean``, ``max`` and the per-run ``times``.
    The minimum is the most robust single number on a shared machine and is
    what the figure harness reports.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    for _ in range(max(0, warmup)):
        func()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return {
        "min": min(times),
        "mean": sum(times) / len(times),
        "max": max(times),
        "times": times,
    }


def time_and_memory(func: Callable[[], object], *, repeats: int = 3, warmup: int = 1) -> dict:
    """Wall-clock statistics plus the peak Python-heap allocation of one run."""
    stats = time_call(func, repeats=repeats, warmup=warmup)
    _, peak = measure_peak_allocation(func)
    stats["peak_bytes"] = int(peak)
    return stats


def merge_backend_records(
    path: Path, payload: dict, records: list[dict], backend: str
) -> dict:
    """Write a BENCH_*.json keeping other backends' rows (the per-backend column).

    Every record gains a ``"backend"`` field; rows previously recorded under a
    *different* backend are preserved, rows for ``backend`` are replaced — so
    one file accumulates a column per backend (numpy locally, torch/cupy from
    the CI backend matrix) without runs clobbering each other.  Returns the
    full payload that was written.
    """
    for record in records:
        record["backend"] = backend
    kept: list[dict] = []
    if path.exists():
        try:
            previous = json.loads(path.read_text())
            kept = [
                record
                for record in previous.get("records", [])
                # legacy rows without a backend field were numpy runs
                if record.get("backend", "numpy") != backend
            ]
        except (json.JSONDecodeError, OSError):
            kept = []
    payload = dict(payload)
    payload["records"] = kept + records
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
