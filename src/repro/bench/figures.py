"""Benchmark harness: one entry point per figure of the paper.

Every ``run_figure*`` function regenerates the data behind the corresponding
figure of the paper as a list of plain-dict rows (one per plotted point), so
the results can be printed as a table, serialized with
:func:`repro.io.results.save_rows`, or asserted against in the benchmark
suite.  Absolute numbers depend on the host; the *shapes* (who wins, how
quantities scale) are what the reproduction checks.

Sizes follow the active profile of :mod:`repro.bench.workloads`
(``REPRO_BENCH_SCALE=quick`` by default, ``=paper`` for the full-size runs).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..analysis.convergence import average_series, series_from_results
from ..analysis.metrics import normalized_approximation_ratio
from ..angles.bfgs import local_minimize
from ..angles.iterative import find_angles
from ..angles.median import evaluate_median_angles, median_angles
from ..angles.random_restart import find_angles_random
from ..baselines.circuit_qaoa import DecomposedCircuitQAOA, DenseUnitaryQAOA, GateCircuitQAOA
from ..baselines.direct import DirectQAOA
from ..core.ansatz import QAOAAnsatz
from ..grover.compress import compress_objective, hamming_weight_spectrum
from ..grover.simulate import simulate_grover_compressed
from ..hpc.memory import simulator_memory_estimate
from ..mixers.grover import grover_mixer
from ..mixers.xmixer import transverse_field_mixer
from .timing import time_and_memory, time_call
from .workloads import (
    FIGURE2_CASE_LABELS,
    figure2_case,
    figure3_instances,
    figure4_graph,
    figure4a_qubit_range,
    figure4b_round_range,
    figure5_instances,
    is_paper_scale,
)

__all__ = [
    "run_figure2",
    "run_figure3",
    "run_figure4a",
    "run_figure4b",
    "run_figure5",
    "run_grover_compression",
    "figure2_case_rows",
    "figure4a_points",
    "figure4a_point_rows",
    "figure4b_points",
    "figure4b_point_rows",
    "figure5_round_values",
    "figure5_round_rows",
    "grover_dense_rows",
    "grover_large_rows",
    "format_rows",
]

_BASELINE_CLASSES: dict[str, type] = {
    "direct": DirectQAOA,
    "circuit-gate": GateCircuitQAOA,
    "circuit-decomposed": DecomposedCircuitQAOA,
    "circuit-dense": DenseUnitaryQAOA,
}

_MEMORY_KIND = {
    "direct": "direct",
    "circuit-gate": "direct",  # gate-by-gate also holds O(2^n) state only
    "circuit-decomposed": "direct",
    "circuit-dense": "dense",
}


def format_rows(rows: Sequence[dict]) -> str:
    """Render rows as an aligned plain-text table (used by examples and benches)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(_fmt(r.get(c))) for r in rows)) for c in columns}
    lines = ["  ".join(str(c).ljust(widths[c]) for c in columns)]
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


# ---------------------------------------------------------------------------
# Figure 2 — quality vs p for four problem/mixer pairs
# ---------------------------------------------------------------------------

def figure2_case_rows(
    case_index: int,
    *,
    p_max: int | None = None,
    n: int | None = None,
    seed: int | None = None,
    n_hops: int = 3,
    rng_seed: int = 0,
) -> list[dict]:
    """Rows for one of the four Figure 2 cases (one independent unit of sweep work).

    ``case_index`` indexes :data:`~repro.bench.workloads.FIGURE2_CASE_LABELS`;
    the full figure is the concatenation of the four case row lists, which is
    exactly what :func:`run_figure2` (and the sharded experiment runner)
    produce.
    """
    if p_max is None:
        p_max = 10 if is_paper_scale() else 3
    if seed is None:
        case = figure2_case(case_index, n=n)
    else:
        case = figure2_case(case_index, n=n, seed=seed)
    results = find_angles(
        p_max,
        case.mixer,
        case.cost,
        n_hops=n_hops,
        n_starts_p1=2,
        rng=rng_seed,
    )
    rows: list[dict] = []
    for p in sorted(results):
        result = results[p]
        ratio = normalized_approximation_ratio(result.value, case.cost.optimum, case.cost.worst)
        rows.append(
            {
                "figure": "2",
                "case": case.label,
                "n": case.n,
                "p": p,
                "expectation": result.value,
                "optimum": case.cost.optimum,
                "approx_ratio": ratio,
            }
        )
    return rows


def run_figure2(
    p_max: int | None = None,
    n: int | None = None,
    *,
    seed: int | None = None,
    n_hops: int = 3,
    rng_seed: int = 0,
) -> list[dict]:
    """Approximation quality versus rounds for the four Figure 2 problem/mixer pairs.

    Each row is one (case, p) point with the expectation value, the feasible
    optimum and the normalized approximation ratio achieved by the iterative
    (extrapolated basinhopping) angle finder.
    """
    rows: list[dict] = []
    for case_index in range(len(FIGURE2_CASE_LABELS)):
        rows.extend(
            figure2_case_rows(
                case_index, p_max=p_max, n=n, seed=seed, n_hops=n_hops, rng_seed=rng_seed
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 3 — angle-finding strategy comparison on a MaxCut ensemble
# ---------------------------------------------------------------------------

def run_figure3(
    p_max: int | None = None,
    num_instances: int | None = None,
    n: int | None = None,
    *,
    random_iters: int | None = None,
    n_hops: int = 3,
    rng_seed: int = 0,
) -> list[dict]:
    """Mean approximation ratio vs p for three angle-finding strategies.

    Strategies (as in Fig. 3): iterative extrapolated basinhopping, random
    local-minima exploration (best of ``random_iters`` BFGS restarts per
    instance and round), and median angles (medians of the random-restart
    results across instances, evaluated per instance).  The random-restart
    refinement runs through the vectorized multi-start engine (all restarts
    advanced in lock-step on the batched adjoint kernel), which is where the
    bulk of this figure's wall-clock goes.
    """
    if p_max is None:
        p_max = 10 if is_paper_scale() else 3
    if random_iters is None:
        random_iters = 100 if is_paper_scale() else 8
    problems = figure3_instances(num_instances=num_instances, n=n)
    mixer = transverse_field_mixer(problems[0].n)

    iterative_series = []
    random_by_round: dict[int, list[float]] = {p: [] for p in range(1, p_max + 1)}
    median_by_round: dict[int, list[float]] = {p: [] for p in range(1, p_max + 1)}
    per_round_restart_results: dict[int, list] = {p: [] for p in range(1, p_max + 1)}
    ansatze_by_round: dict[int, list[QAOAAnsatz]] = {p: [] for p in range(1, p_max + 1)}

    for idx, problem in enumerate(problems):
        cost = problem.objective_values()
        optimum, worst = float(cost.max()), float(cost.min())

        results = find_angles(p_max, mixer, cost, n_hops=n_hops, n_starts_p1=2, rng=rng_seed + idx)
        iterative_series.append(
            series_from_results(results, optimum=optimum, worst=worst, label="iterative")
        )

        for p in range(1, p_max + 1):
            ansatz = QAOAAnsatz(cost, mixer, p)
            ansatze_by_round[p].append(ansatz)
            best = find_angles_random(
                ansatz, iters=random_iters, rng=rng_seed + 1000 + idx * 100 + p
            )
            per_round_restart_results[p].append(best)
            random_by_round[p].append(normalized_approximation_ratio(best.value, optimum, worst))

    # Median angles: medians of the per-instance random-restart winners.
    for p in range(1, p_max + 1):
        medians = median_angles(per_round_restart_results[p])
        for ansatz, problem in zip(ansatze_by_round[p], problems):
            cost = problem.objective_values()
            evaluated = evaluate_median_angles(ansatz, medians)
            median_by_round[p].append(
                normalized_approximation_ratio(
                    evaluated.value, float(cost.max()), float(cost.min())
                )
            )

    mean_iterative = average_series(iterative_series)
    rows: list[dict] = []
    for p in range(1, p_max + 1):
        rows.append(
            {
                "figure": "3",
                "strategy": "extrapolated_basinhopping",
                "p": p,
                "mean_approx_ratio": mean_iterative.values[p - 1],
                "instances": len(problems),
            }
        )
        rows.append(
            {
                "figure": "3",
                "strategy": "random_restart",
                "p": p,
                "mean_approx_ratio": float(np.mean(random_by_round[p])),
                "instances": len(problems),
            }
        )
        rows.append(
            {
                "figure": "3",
                "strategy": "median_angles",
                "p": p,
                "mean_approx_ratio": float(np.mean(median_by_round[p])),
                "instances": len(problems),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 4a — time & memory vs number of qubits (p = 1 MaxCut)
# ---------------------------------------------------------------------------

def figure4a_points(
    qubit_range: Sequence[int] | None = None,
    *,
    include_dense: bool | None = None,
) -> list[tuple[str, int]]:
    """The ``(simulator, n)`` grid points of Fig. 4a, in sweep order.

    The dense-unitary baseline is capped at ``n <= 10`` (it materializes a
    ``2^n x 2^n`` matrix), mirroring the skip logic of the original loop.
    """
    if include_dense is None:
        include_dense = True
    if qubit_range is None:
        qubit_range = figure4a_qubit_range()
    points: list[tuple[str, int]] = []
    for name in _BASELINE_CLASSES:
        for n in qubit_range:
            if name == "circuit-dense" and (not include_dense or n > 10):
                continue
            points.append((name, int(n)))
    return points


def figure4a_point_rows(
    simulator: str,
    n: int,
    *,
    p: int = 1,
    repeats: int = 3,
    seed: int | None = None,
) -> list[dict]:
    """Time/memory rows for a single Fig. 4a grid point (one simulator at one ``n``)."""
    cls = _BASELINE_CLASSES[simulator]
    angles = np.random.default_rng(4).random(2 * p)
    graph = figure4_graph(n) if seed is None else figure4_graph(n, seed=seed)
    sim = cls(graph, p)
    stats = time_and_memory(lambda: sim.expectation(angles), repeats=repeats)
    return [
        {
            "figure": "4a",
            "simulator": simulator,
            "n": n,
            "p": p,
            "time_s": stats["min"],
            "peak_bytes": stats["peak_bytes"],
            "estimated_bytes": simulator_memory_estimate(n, kind=_MEMORY_KIND[simulator]),
        }
    ]


def run_figure4a(
    qubit_range: Sequence[int] | None = None,
    *,
    p: int = 1,
    repeats: int = 3,
    include_dense: bool | None = None,
    seed: int | None = None,
) -> list[dict]:
    """Per-evaluation time and memory of each simulator as ``n`` grows."""
    rows: list[dict] = []
    for simulator, n in figure4a_points(qubit_range, include_dense=include_dense):
        rows.extend(figure4a_point_rows(simulator, n, p=p, repeats=repeats, seed=seed))
    return rows


# ---------------------------------------------------------------------------
# Figure 4b — time vs number of rounds (fixed n MaxCut)
# ---------------------------------------------------------------------------

def figure4b_points(
    n: int | None = None,
    round_values: Sequence[int] | None = None,
    *,
    include_dense: bool = False,
) -> tuple[int, list[tuple[str, int]]]:
    """Resolved ``n`` and the ``(simulator, p)`` grid points of Fig. 4b, in sweep order."""
    default_n, default_rounds = figure4b_round_range()
    if n is None:
        n = default_n
    if round_values is None:
        round_values = default_rounds
    points: list[tuple[str, int]] = []
    for name in _BASELINE_CLASSES:
        if name == "circuit-dense" and (not include_dense or n > 10):
            continue
        points.extend((name, int(p)) for p in round_values)
    return int(n), points


def figure4b_point_rows(
    simulator: str,
    p: int,
    *,
    n: int | None = None,
    repeats: int = 3,
    seed: int | None = None,
) -> list[dict]:
    """Timing row for a single Fig. 4b grid point (one simulator at one ``p``).

    Angles are drawn from a per-round seeded stream so every grid point is
    self-contained (no generator state threads through the sweep), which is
    what lets the experiment runner execute points in any order or shard.
    """
    if n is None:
        n, _ = figure4b_round_range()
    cls = _BASELINE_CLASSES[simulator]
    graph = figure4_graph(n) if seed is None else figure4_graph(n, seed=seed)
    angles = np.random.default_rng((5, p)).random(2 * p)
    sim = cls(graph, p)
    stats = time_call(lambda: sim.expectation(angles), repeats=repeats)
    return [
        {
            "figure": "4b",
            "simulator": simulator,
            "n": n,
            "p": p,
            "time_s": stats["min"],
        }
    ]


def run_figure4b(
    n: int | None = None,
    round_values: Sequence[int] | None = None,
    *,
    repeats: int = 3,
    include_dense: bool = False,
    seed: int | None = None,
) -> list[dict]:
    """Per-evaluation time of each simulator as the round count ``p`` grows."""
    n, points = figure4b_points(n, round_values, include_dense=include_dense)
    rows: list[dict] = []
    for simulator, p in points:
        rows.extend(figure4b_point_rows(simulator, p, n=n, repeats=repeats, seed=seed))
    return rows


# ---------------------------------------------------------------------------
# Figure 5 — BFGS local search with adjoint vs finite-difference gradients
# ---------------------------------------------------------------------------

def run_figure5(
    round_values: Sequence[int] | None = None,
    *,
    num_instances: int | None = None,
    n: int | None = None,
    maxiter: int = 30,
    rng_seed: int = 0,
) -> list[dict]:
    """Time to find the nearest local optimum with BFGS, per gradient method.

    For each ``p`` and each instance, one BFGS run is started from the same
    random point with (a) the adjoint/autodiff-equivalent gradient and (b)
    central finite differences.  Rows report mean wall-clock time and the mean
    number of full state evolutions ("forward passes"), whose ratio exhibits
    the O(p) separation discussed in Sec. 4.
    """
    if round_values is None:
        round_values = figure5_round_values()
    rows: list[dict] = []
    for p in round_values:
        rows.extend(
            figure5_round_rows(
                p, num_instances=num_instances, n=n, maxiter=maxiter, rng_seed=rng_seed
            )
        )
    return rows


def figure5_round_values() -> list[int]:
    """The round counts swept in Fig. 5 at the active scale."""
    return list(range(1, 11)) if is_paper_scale() else [1, 2, 4, 6]


def figure5_round_rows(
    p: int,
    *,
    num_instances: int | None = None,
    n: int | None = None,
    maxiter: int = 30,
    rng_seed: int = 0,
) -> list[dict]:
    """Both gradient-method rows for a single Fig. 5 round count ``p``.

    Start points are drawn from a per-round seeded stream (one draw per
    instance, shared by both gradient methods) so rounds are independent
    units of work.
    """
    problems = figure5_instances(num_instances=num_instances, n=n)
    mixer = transverse_field_mixer(problems[0].n)
    rng = np.random.default_rng((rng_seed, p))
    times: dict[str, list[float]] = {"adjoint": [], "finite": []}
    passes: dict[str, list[float]] = {"adjoint": [], "finite": []}
    for problem in problems:
        cost = problem.objective_values()
        x0 = 2.0 * np.pi * rng.random(2 * p)
        for method in ("adjoint", "finite"):
            ansatz = QAOAAnsatz(cost, mixer, p)
            ansatz.counter.reset()
            stats = time_call(
                lambda m=method, a=ansatz: local_minimize(a, x0, gradient=m, maxiter=maxiter),
                repeats=1,
                warmup=0,
            )
            times[method].append(stats["min"])
            passes[method].append(ansatz.counter.forward_passes)
    rows: list[dict] = []
    for method in ("adjoint", "finite"):
        rows.append(
            {
                "figure": "5",
                "method": "autodiff" if method == "adjoint" else "finite_difference",
                "n": problems[0].n,
                "p": p,
                "mean_time_s": float(np.mean(times[method])),
                "mean_forward_passes": float(np.mean(passes[method])),
                "instances": len(problems),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Sec. 2.4 — Grover-mixer compression
# ---------------------------------------------------------------------------

def run_grover_compression(
    dense_qubits: Sequence[int] = (8, 10, 12),
    large_qubits: Sequence[int] = (40, 100),
    *,
    p: int = 4,
    repeats: int = 3,
) -> list[dict]:
    """Dense vs compressed Grover-QAOA simulation, plus compressed-only large-n runs.

    For moderate ``n`` both representations are timed on the same MaxCut
    instance (and agree numerically); for large ``n`` only the compressed path
    is feasible, demonstrated on a Hamming-weight objective whose degeneracies
    are known analytically.
    """
    rows: list[dict] = []
    for n in dense_qubits:
        rows.extend(grover_dense_rows(n, p=p, repeats=repeats))
    for n in large_qubits:
        rows.extend(grover_large_rows(n, p=p, repeats=repeats))
    return rows


def grover_dense_rows(n: int, *, p: int = 4, repeats: int = 3) -> list[dict]:
    """Dense-vs-compressed timing rows for one moderate-``n`` Grover-QAOA instance."""
    from ..hilbert.states import state_matrix
    from ..problems.maxcut import maxcut_values

    angles = np.random.default_rng(6).random(2 * p)
    graph = figure4_graph(n)
    obj = maxcut_values(graph, state_matrix(n))
    spectrum = compress_objective(obj)
    mixer = grover_mixer(n)

    ansatz = QAOAAnsatz(obj, mixer, p)
    dense_stats = time_call(lambda: ansatz.expectation(angles), repeats=repeats)
    comp_stats = time_call(
        lambda: simulate_grover_compressed(angles, spectrum).expectation(), repeats=repeats
    )
    return [
        {
            "figure": "grover",
            "representation": "dense",
            "n": n,
            "p": p,
            "distinct_values": spectrum.num_distinct,
            "time_s": dense_stats["min"],
        },
        {
            "figure": "grover",
            "representation": "compressed",
            "n": n,
            "p": p,
            "distinct_values": spectrum.num_distinct,
            "time_s": comp_stats["min"],
        },
    ]


def grover_large_rows(n: int, *, p: int = 4, repeats: int = 3) -> list[dict]:
    """Compressed-only timing row for one large-``n`` Hamming-weight objective."""
    angles = np.random.default_rng(6).random(2 * p)
    spectrum = hamming_weight_spectrum(n, lambda w: float(min(w, n - w)))
    stats = time_call(
        lambda: simulate_grover_compressed(angles, spectrum).expectation(), repeats=repeats
    )
    return [
        {
            "figure": "grover",
            "representation": "compressed",
            "n": n,
            "p": p,
            "distinct_values": spectrum.num_distinct,
            "time_s": stats["min"],
        }
    ]
