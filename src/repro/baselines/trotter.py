"""Trotterized XY mixers (the QOKit-style constrained baseline).

QOKit (Lykov et al. 2023), discussed in Sec. 4 of the paper, implements the
Clique and Ring mixers as a *first-order Trotter approximation*: instead of
the exact ``exp(-i beta sum_{(i,j)} (X_i X_j + Y_i Y_j))`` it applies the
product of the individual pair rotations.  The pair terms do not commute, so
the product only agrees with the exact evolution to ``O(beta^2)`` and no
longer exactly preserves the optimizer's view of the mixer spectrum — but it
avoids the expensive eigendecomposition.

:class:`TrotterXYMixer` implements that product directly on the Dicke
subspace (each pair term is a Givens rotation between the two states related
by swapping the pair's bits), conforming to the :class:`~repro.mixers.base.Mixer`
interface so it can be dropped into ``simulate`` and compared head-to-head
with the exact :class:`~repro.mixers.xy.CliqueMixer` / ``RingMixer``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..hilbert.dicke import dicke_labels
from ..hilbert.subspace import DickeSpace
from ..mixers.base import Mixer
from ..mixers.xy import xy_subspace_matrix

__all__ = ["TrotterXYMixer", "trotter_clique_mixer", "trotter_ring_mixer"]


class TrotterXYMixer(Mixer):
    """First-order Trotterized XY mixer on the weight-``k`` subspace.

    Parameters
    ----------
    n, k:
        Qubits and Hamming weight of the feasible subspace.
    pairs:
        XY interaction pairs, applied in the given order each Trotter step.
    trotter_steps:
        Number of repetitions per layer; the angle of each pair rotation is
        ``beta / trotter_steps``.  More steps converge toward the exact mixer.
    """

    def __init__(
        self,
        n: int,
        k: int,
        pairs: Sequence[tuple[int, int]],
        *,
        trotter_steps: int = 1,
        name: str = "trotter-xy",
    ):
        super().__init__(DickeSpace(n, k))
        if trotter_steps < 1:
            raise ValueError("trotter_steps must be at least 1")
        self.k = k
        self.pairs = [(int(i), int(j)) for i, j in pairs]
        if not self.pairs:
            raise ValueError("at least one interaction pair is required")
        for i, j in self.pairs:
            if i == j or not (0 <= i < n and 0 <= j < n):
                raise ValueError(f"invalid pair ({i},{j}) for n={n}")
        self.trotter_steps = int(trotter_steps)
        self.pattern_name = name
        # Pre-compute, for every pair, the index pairs (a, b) it couples: the
        # subspace states whose labels differ by swapping bits i and j.
        labels = dicke_labels(n, k)
        index = {int(label): idx for idx, label in enumerate(labels)}
        self._couplings: list[tuple[np.ndarray, np.ndarray]] = []
        for i, j in self.pairs:
            lows, highs = [], []
            for a_idx, label in enumerate(labels):
                label = int(label)
                bi, bj = (label >> i) & 1, (label >> j) & 1
                if bi == 1 and bj == 0:
                    partner = index[label ^ ((1 << i) | (1 << j))]
                    lows.append(a_idx)
                    highs.append(partner)
            self._couplings.append(
                (np.asarray(lows, dtype=np.int64), np.asarray(highs, dtype=np.int64))
            )

    def apply(self, psi: np.ndarray, beta: float, out: np.ndarray | None = None) -> np.ndarray:
        psi = self._check_state(psi)
        if out is None:
            out = psi.astype(np.complex128, copy=True)
        elif out is not psi:
            out[:] = psi
        step_angle = float(beta) / self.trotter_steps
        cos = np.cos(2.0 * step_angle)
        sin = np.sin(2.0 * step_angle)
        for _ in range(self.trotter_steps):
            for lows, highs in self._couplings:
                if lows.size == 0:
                    continue
                a = out[lows]
                b = out[highs]
                # exp(-i theta (XX+YY)) restricted to the {|01>, |10>} pair is a
                # Givens-like rotation with mixing angle 2 theta.
                out[lows] = cos * a - 1j * sin * b
                out[highs] = cos * b - 1j * sin * a
        return out

    def apply_hamiltonian(self, psi: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``H_M |psi>`` for the *exact* XY Hamiltonian (gradients remain exact)."""
        psi = self._check_state(psi)
        result = np.zeros_like(psi, dtype=np.complex128)
        for lows, highs in self._couplings:
            if lows.size == 0:
                continue
            result[lows] += 2.0 * psi[highs]
            result[highs] += 2.0 * psi[lows]
        if out is None:
            return result
        out[:] = result
        return out

    def matrix(self) -> np.ndarray:
        """Dense matrix of the exact (un-Trotterized) XY Hamiltonian."""
        return xy_subspace_matrix(self.n, self.k, self.pairs)

    def trotter_error(self, beta: float) -> float:
        """Operator-norm distance between the Trotterized layer and the exact evolution."""
        from scipy.linalg import expm

        exact = expm(-1j * beta * self.matrix())
        dim = self.dim
        approx = np.empty((dim, dim), dtype=np.complex128)
        basis = np.zeros(dim, dtype=np.complex128)
        for j in range(dim):
            basis[:] = 0.0
            basis[j] = 1.0
            approx[:, j] = self.apply(basis, beta)
        return float(np.linalg.norm(exact - approx, ord=2))

    def cache_key(self) -> str:
        return f"{self.pattern_name}_n{self.n}_k{self.k}_steps{self.trotter_steps}"


def trotter_clique_mixer(n: int, k: int, *, trotter_steps: int = 1) -> TrotterXYMixer:
    """Trotterized complete-graph XY mixer (QOKit-style Clique mixer)."""
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return TrotterXYMixer(n, k, pairs, trotter_steps=trotter_steps, name="trotter-clique")


def trotter_ring_mixer(n: int, k: int, *, trotter_steps: int = 1) -> TrotterXYMixer:
    """Trotterized cyclic XY mixer (QOKit-style Ring mixer)."""
    if n < 2:
        raise ValueError("the ring mixer needs at least two qubits")
    pairs = [(i, (i + 1) % n) for i in range(n)]
    return TrotterXYMixer(n, k, pairs, trotter_steps=trotter_steps, name="trotter-ring")
