"""Circuit-based QAOA simulators (the Fig. 4 comparison baselines).

The paper benchmarks JuliQAOA against two circuit-composition packages:

* **QAOA.jl** — composes the QAOA circuit and hands it to Yao.jl, a capable
  gate-by-gate statevector simulator;
* **QAOAKit** — composes the circuit for Qiskit, which additionally compiles
  to a restricted basis and carries much higher per-gate overhead.

Neither is importable here (Julia / heavyweight dependency), so this module
implements the same *strategies* on the in-repo circuit substrate:

* :class:`GateCircuitQAOA` ("QAOA.jl-like") — rebuilds the gate list every
  evaluation and simulates it gate by gate with diagonal fast paths enabled;
* :class:`DecomposedCircuitQAOA` ("QAOAKit-like") — additionally decomposes
  every rotation into the {H, CNOT, RZ} basis and disables the diagonal fast
  path, tripling the gate count and treating every gate as a dense contraction;
* :class:`DenseUnitaryQAOA` — promotes every gate to a full ``2^n x 2^n``
  unitary (the memory-hungry worst case, used for the Fig. 4a memory curves).

All three expose the same ``expectation(angles)`` / ``statevector(angles)``
interface as the direct simulator so the benchmark harness can sweep them
uniformly.  Only MaxCut with the transverse-field mixer is supported — exactly
the restriction QAOAKit has.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.dense import DenseBackend
from ..circuits.qaoa_builder import decompose_circuit, maxcut_qaoa_circuit
from ..circuits.statevector import StatevectorBackend
from ..hilbert.states import state_matrix
from ..problems.maxcut import maxcut_values

__all__ = ["CircuitQAOABase", "GateCircuitQAOA", "DecomposedCircuitQAOA", "DenseUnitaryQAOA"]


class CircuitQAOABase:
    """Shared machinery for the circuit-based MaxCut QAOA baselines."""

    #: short name used in benchmark tables
    name = "circuit-base"

    def __init__(self, graph: nx.Graph, p: int):
        if p < 1:
            raise ValueError("p must be at least 1")
        self.graph = graph
        self.n = graph.number_of_nodes()
        self.p = int(p)
        # Circuit packages still need the observable; computing it is part of
        # every package's setup cost and is identical across baselines.
        self.obj_vals = maxcut_values(graph, state_matrix(self.n))
        #: number of full circuit simulations performed
        self.evaluations = 0

    # -- hooks ----------------------------------------------------------
    def build_circuit(self, betas: np.ndarray, gammas: np.ndarray) -> Circuit:
        """Compose the QAOA circuit for the given angles (no caching, by design)."""
        return maxcut_qaoa_circuit(self.graph, betas, gammas)

    def make_backend(self):
        """Create the backend used to run the circuit."""
        raise NotImplementedError

    # -- public API ------------------------------------------------------
    def split(self, angles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a flat angle vector into (betas, gammas)."""
        angles = np.asarray(angles, dtype=np.float64).ravel()
        if angles.size != 2 * self.p:
            raise ValueError(f"expected {2 * self.p} angles, got {angles.size}")
        return angles[: self.p], angles[self.p :]

    def statevector(self, angles: np.ndarray) -> np.ndarray:
        """Final statevector at the given angles."""
        betas, gammas = self.split(angles)
        circuit = self.build_circuit(betas, gammas)
        backend = self.make_backend()
        self.evaluations += 1
        return backend.run(circuit)

    def expectation(self, angles: np.ndarray) -> float:
        """``<C>`` at the given angles."""
        psi = self.statevector(angles)
        return float(np.real(np.vdot(psi, self.obj_vals * psi)))

    def gate_count(self) -> int:
        """Number of gates in one evaluation's circuit (at arbitrary angles)."""
        betas = np.full(self.p, 0.1)
        gammas = np.full(self.p, 0.2)
        return self.build_circuit(betas, gammas).num_gates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, p={self.p})"


class GateCircuitQAOA(CircuitQAOABase):
    """Gate-by-gate circuit simulation with fast diagonal paths ("QAOA.jl-like")."""

    name = "circuit-gate"

    def make_backend(self) -> StatevectorBackend:
        return StatevectorBackend(diagonal_fast_path=True)


class DecomposedCircuitQAOA(CircuitQAOABase):
    """Basis-decomposed, no-fast-path circuit simulation ("QAOAKit-like")."""

    name = "circuit-decomposed"

    def build_circuit(self, betas: np.ndarray, gammas: np.ndarray) -> Circuit:
        return decompose_circuit(super().build_circuit(betas, gammas))

    def make_backend(self) -> StatevectorBackend:
        return StatevectorBackend(diagonal_fast_path=False)


class DenseUnitaryQAOA(CircuitQAOABase):
    """Full dense-unitary circuit simulation (worst-case memory and time)."""

    name = "circuit-dense"

    def make_backend(self) -> DenseBackend:
        return DenseBackend()
