"""Alternative QAOA simulators used as comparison baselines (Fig. 4, Sec. 4)."""

from .circuit_qaoa import (
    CircuitQAOABase,
    DecomposedCircuitQAOA,
    DenseUnitaryQAOA,
    GateCircuitQAOA,
)
from .direct import DirectQAOA
from .trotter import TrotterXYMixer, trotter_clique_mixer, trotter_ring_mixer

__all__ = [
    "CircuitQAOABase",
    "DecomposedCircuitQAOA",
    "DenseUnitaryQAOA",
    "GateCircuitQAOA",
    "DirectQAOA",
    "TrotterXYMixer",
    "trotter_clique_mixer",
    "trotter_ring_mixer",
]
