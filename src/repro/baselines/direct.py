"""The direct simulator wrapped in the baseline interface.

So that the Fig. 4 benchmark harness can sweep "JuliQAOA vs the circuit
baselines" with one loop, this thin adapter exposes the package's own direct
simulator (pre-computed objective values, Walsh–Hadamard mixer application,
pre-allocated workspace) behind the same ``expectation(angles)`` /
``statevector(angles)`` interface as :mod:`repro.baselines.circuit_qaoa`.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..core.ansatz import QAOAAnsatz
from ..hilbert.states import state_matrix
from ..mixers.xmixer import transverse_field_mixer
from ..problems.maxcut import maxcut_values

__all__ = ["DirectQAOA"]


class DirectQAOA:
    """MaxCut + transverse-field QAOA on the direct (JuliQAOA-style) simulator."""

    name = "direct"

    def __init__(self, graph: nx.Graph, p: int):
        if p < 1:
            raise ValueError("p must be at least 1")
        self.graph = graph
        self.n = graph.number_of_nodes()
        self.p = int(p)
        self.obj_vals = maxcut_values(graph, state_matrix(self.n))
        self._ansatz = QAOAAnsatz(self.obj_vals, transverse_field_mixer(self.n), p)
        self.evaluations = 0

    def split(self, angles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a flat angle vector into (betas, gammas)."""
        angles = np.asarray(angles, dtype=np.float64).ravel()
        if angles.size != 2 * self.p:
            raise ValueError(f"expected {2 * self.p} angles, got {angles.size}")
        return angles[: self.p], angles[self.p :]

    def expectation(self, angles: np.ndarray) -> float:
        """``<C>`` at the given angles."""
        self.evaluations += 1
        return self._ansatz.expectation(angles)

    def statevector(self, angles: np.ndarray) -> np.ndarray:
        """Final statevector at the given angles."""
        self.evaluations += 1
        return self._ansatz.simulate(angles).statevector

    def gradient(self, angles: np.ndarray) -> np.ndarray:
        """Adjoint-mode gradient (not available on the circuit baselines)."""
        return self._ansatz.gradient(angles)

    def gate_count(self) -> int:
        """The direct simulator applies no gates; returns 0 by definition."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DirectQAOA(n={self.n}, p={self.p})"
