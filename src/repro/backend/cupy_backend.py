"""CuPy backend: cuBLAS kernels with cached device constants.

Mirrors the CUDA half of :class:`~repro.backend.torch_backend.TorchBackend`:
operator factors (first ``matmul`` operand) are LRU-cached on the device,
activations stream per call, results land back in the caller's host numpy
buffers.  Requires a CUDA device at construction time — :func:`repro.backend.
get_backend` surfaces a clear error otherwise, and ``REPRO_BACKEND=cupy`` on
a GPU-less machine warns and falls back to numpy.

:mod:`cupy` is imported lazily, in the constructor — importing this module
is safe on machines without cupy; constructing the backend is not.
"""

from __future__ import annotations

import importlib.util
from collections import OrderedDict

import numpy as np

from .base import ArrayBackend

__all__ = ["CupyBackend"]

_CONST_CACHE_ENTRIES = 64


class CupyBackend(ArrayBackend):
    name = "cupy"

    def __init__(self, device: int = 0):
        import cupy

        self._cupy = cupy
        if cupy.cuda.runtime.getDeviceCount() < 1:  # pragma: no cover - needs HW
            raise RuntimeError("cupy is installed but no CUDA device is visible")
        self._device_id = int(device)
        self._const_cache: OrderedDict[int, tuple[np.ndarray, object]] = OrderedDict()

    @classmethod
    def available(cls) -> bool:
        return importlib.util.find_spec("cupy") is not None

    @property
    def device(self) -> str:
        return f"cuda:{self._device_id}"

    @property
    def xp(self):
        return self._cupy

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def _wrap(self, x):
        if isinstance(x, self._cupy.ndarray):
            return x
        return self._cupy.asarray(np.ascontiguousarray(x))

    def _constant(self, x):
        if not isinstance(x, np.ndarray):
            return self._wrap(x)
        key = id(x)
        hit = self._const_cache.get(key)
        if hit is not None and hit[0] is x:
            self._const_cache.move_to_end(key)
            return hit[1]
        device_arr = self._wrap(x)
        self._const_cache[key] = (x, device_arr)
        while len(self._const_cache) > _CONST_CACHE_ENTRIES:
            self._const_cache.popitem(last=False)
        return device_arr

    def asarray(self, x, dtype=None):
        if dtype is not None:
            x = np.asarray(self.to_numpy(x), dtype=dtype)
        return self._wrap(x)

    def to_numpy(self, x) -> np.ndarray:
        if isinstance(x, self._cupy.ndarray):
            return self._cupy.asnumpy(x)
        return np.asarray(x)

    # ------------------------------------------------------------------
    # dense primitives
    # ------------------------------------------------------------------
    def matmul(self, a, b, out=None):
        result = self._cupy.matmul(self._constant(a), self._wrap(b))
        if out is None:
            return self.to_numpy(result)
        np.copyto(out, self._cupy.asnumpy(result))
        return out

    def einsum(self, subscripts, *operands):
        result = self._cupy.einsum(subscripts, *[self._wrap(op) for op in operands])
        return self.to_numpy(result)

    def tensordot(self, a, b, axes):
        result = self._cupy.tensordot(self._constant(a), self._wrap(b), axes=axes)
        return self.to_numpy(result)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def info(self) -> dict:  # pragma: no cover - needs HW
        cupy = self._cupy
        details = {"cupy": cupy.__version__}
        try:
            props = cupy.cuda.runtime.getDeviceProperties(self._device_id)
            details["cuda_device"] = props["name"].decode()
            details["const_cache_entries"] = len(self._const_cache)
        except cupy.cuda.runtime.CUDARuntimeError:
            pass
        return details
