"""The NumPy reference backend (the default).

Everything runs on the host BLAS; ``matmul`` writes straight into the
caller's pre-allocated buffers, so this backend is allocation-free on the
hot paths — it is exactly the code the batched kernels ran before the shim
existed, behind the :class:`~repro.backend.base.ArrayBackend` interface.
"""

from __future__ import annotations

import numpy as np

from .base import ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    name = "numpy"

    @classmethod
    def available(cls) -> bool:
        return True

    @property
    def xp(self):
        return np

    def asarray(self, x, dtype=None) -> np.ndarray:
        return np.asarray(x, dtype=dtype)

    def to_numpy(self, x) -> np.ndarray:
        return np.asarray(x)

    def matmul(self, a, b, out=None):
        return np.matmul(a, b, out=out)

    def einsum(self, subscripts, *operands):
        return np.einsum(subscripts, *operands)

    def tensordot(self, a, b, axes):
        return np.tensordot(a, b, axes=axes)

    def info(self) -> dict:
        details = {"numpy": np.__version__}
        try:  # numpy >= 1.26 exposes the build-time BLAS/LAPACK as dicts
            config = np.show_config(mode="dicts")
            blas = config.get("Build Dependencies", {}).get("blas", {})
            if blas:
                details["blas"] = f"{blas.get('name', '?')} {blas.get('version', '')}".strip()
        except (TypeError, AttributeError):  # pragma: no cover - old numpy
            pass
        return details
