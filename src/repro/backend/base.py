"""The :class:`ArrayBackend` protocol.

The paper's pre-computation and state evolution are "spread across many
threads or GPUs"; on our side every hot path was reduced to a handful of
dense-algebra primitives (PRs 1/3/6): complex/real GEMMs, ``einsum``
contractions and the GEMM-factored Walsh–Hadamard transform.  An
:class:`ArrayBackend` packages exactly those primitives so the same kernels
can execute on NumPy (default), PyTorch or CuPy without any algorithmic
change.

Storage policy
--------------
Host-resident ``numpy`` arrays are the interchange format: every primitive
accepts and returns numpy arrays (honouring ``out=`` buffers), so the
pre-allocated :class:`~repro.core.workspace.BatchedWorkspace` buffers, the
in-place butterflies and the interleaved re/im float views all keep working
unchanged on every backend.  CPU backends dispatch zero-copy (torch wraps the
same memory); CUDA backends keep the *constant* operator factors (Hadamard
factors, eigenbases, term diagonals) resident on the device and stream the
activations per call — the factors are ``O(dim^2)`` while activations are
``O(dim * M)``, so large problems amortize the transfer.  ``asarray`` /
``to_numpy`` convert explicitly for callers that want to hold native arrays.

Dtype policy
------------
Pinned: ``complex128`` statevectors, ``float64`` factors/diagonals/angles on
every backend.  The equivalence gates (numpy-vs-torch ``<= 1e-10``) only hold
in double precision, so backends never down-cast silently.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["ArrayBackend"]


class ArrayBackend(abc.ABC):
    """Dense-kernel primitives over host numpy storage (see module docstring).

    Concrete backends implement :meth:`matmul`, :meth:`einsum`,
    :meth:`tensordot` and the converters; the Walsh–Hadamard and
    interleaved-real-GEMM helpers are derived from :meth:`matmul` here so a
    backend is correct as soon as its GEMM is.
    """

    #: canonical registry name ("numpy", "torch", "cupy")
    name: str = "abstract"
    #: pinned statevector dtype (never down-cast)
    complex_dtype = np.complex128
    #: pinned factor/diagonal/angle dtype
    real_dtype = np.float64

    # ------------------------------------------------------------------
    # capability / identity
    # ------------------------------------------------------------------
    @classmethod
    @abc.abstractmethod
    def available(cls) -> bool:
        """Whether the backing library is importable (must never raise)."""

    @property
    def device(self) -> str:
        """Device the dense kernels execute on (``"cpu"``, ``"cuda:0"``, ...)."""
        return "cpu"

    @property
    @abc.abstractmethod
    def xp(self):
        """The backend's native array namespace (``numpy``, ``torch``, ``cupy``)."""

    # ------------------------------------------------------------------
    # converters / allocation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def asarray(self, x, dtype=None):
        """``x`` as a backend-native array (on the backend's device)."""

    @abc.abstractmethod
    def to_numpy(self, x) -> np.ndarray:
        """``x`` (native array or array-like) as a host numpy array."""

    def empty(self, shape, dtype=None) -> np.ndarray:
        """A host buffer in the pinned dtype (the workspace allocation hook)."""
        return np.empty(shape, dtype=self.complex_dtype if dtype is None else dtype)

    # ------------------------------------------------------------------
    # dense primitives (numpy in / numpy out)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def matmul(self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``a @ b`` with numpy broadcasting semantics, written into ``out``.

        ``a`` is treated as the (reusable) operator factor — CUDA backends may
        cache it device-side — and ``b``/``out`` as per-call activations.
        """

    @abc.abstractmethod
    def einsum(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        """``einsum`` over numpy operands (the batched inner-product reductions)."""

    @abc.abstractmethod
    def tensordot(self, a: np.ndarray, b: np.ndarray, axes) -> np.ndarray:
        """``tensordot`` over numpy operands (the gate-by-gate baseline)."""

    # ------------------------------------------------------------------
    # derived helpers (shared by every backend)
    # ------------------------------------------------------------------
    def real_gemm(self, factor: np.ndarray, src: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``factor @ src`` for a real ``factor`` and complex ``src``/``out``.

        Runs one real GEMM over the interleaved re/im float view — exact
        (the factor is real) and half the flops of a complex GEMM.  ``src``
        and ``out`` must be C-contiguous complex128 and must not alias.
        """
        self.matmul(
            factor,
            src.view(np.float64).reshape(src.shape[0], -1),
            out=out.view(np.float64).reshape(out.shape[0], -1),
        )
        return out

    def wht_gemm(
        self,
        src: np.ndarray,
        via: np.ndarray,
        dst: np.ndarray,
        h_hi: np.ndarray,
        h_lo: np.ndarray,
    ) -> np.ndarray:
        """*Unnormalized* batched Walsh–Hadamard transform via two real GEMMs.

        The FFT-free transform of the products-of-X mixers: ``H^{⊗n}`` is
        factored into two ``~sqrt(dim)``-sized ``±1`` Hadamard factors and
        both GEMMs run on the interleaved re/im float view.  ``src``/``via``/
        ``dst`` are C-contiguous complex128 ``(dim, M)`` matrices; ``via``
        must be distinct from both others (``src`` may alias ``dst``).  The
        caller folds the ``2^{-n/2}`` normalization into its phase factors.
        """
        dim_hi = h_hi.shape[0]
        dim_lo = h_lo.shape[0]
        width = 2 * src.shape[1]  # float columns of the interleaved view
        src_f = src.view(np.float64).reshape(dim_hi, dim_lo, width)
        via_f = via.view(np.float64).reshape(dim_hi, dim_lo, width)
        # low bits: one GEMM per high-bit block (a single batched call)
        self.matmul(h_lo, src_f, out=via_f)
        # high bits: one big GEMM over the flattened (low bits x batch) axis
        self.matmul(
            h_hi,
            via_f.reshape(dim_hi, dim_lo * width),
            out=dst.view(np.float64).reshape(dim_hi, dim_lo * width),
        )
        return dst

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def info(self) -> dict:
        """Backend-specific library/device details for ``repro backend-info``."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, device={self.device!r})"
