"""PyTorch backend: zero-copy on CPU, cached constants + streamed I/O on CUDA.

On CPU, ``torch.from_numpy`` wraps the caller's numpy buffers without
copying, so ``out=`` GEMMs write directly into the pre-allocated workspace
arrays — the shim genuinely exercises torch's kernels (and its intra-op
threading) while the rest of the engine keeps seeing numpy.  That is the
configuration the CI backend matrix tests on CPU wheels.

On CUDA, the *operator factors* passed as ``matmul``'s first operand
(Hadamard factors, eigenbases, term diagonals — constants per mixer) are
cached device-side in a small LRU keyed on the host array's identity, while
activations are transferred per call.  Factors are ``O(dim^2)`` against
``O(dim * M)`` activations, so large problems amortize the PCIe traffic; see
the README "Backends" section for when that trade wins.

:mod:`torch` is imported lazily, in the constructor — importing this module
is safe on machines without torch; constructing the backend is not.
"""

from __future__ import annotations

import importlib.util
import os
from collections import OrderedDict

import numpy as np

from .base import ArrayBackend

__all__ = ["TorchBackend"]

#: device-side constant factors kept per backend instance
_CONST_CACHE_ENTRIES = 64


class TorchBackend(ArrayBackend):
    name = "torch"

    def __init__(self, device: str | None = None):
        import torch

        self._torch = torch
        if device is None:
            device = os.environ.get("REPRO_DEVICE") or (
                "cuda" if torch.cuda.is_available() else "cpu"
            )
        self._device = torch.device(device)
        self._is_cpu = self._device.type == "cpu"
        # id -> (host array kept alive, device tensor); see _constant()
        self._const_cache: OrderedDict[int, tuple[np.ndarray, object]] = OrderedDict()

    @classmethod
    def available(cls) -> bool:
        return importlib.util.find_spec("torch") is not None

    @property
    def device(self) -> str:
        return str(self._device)

    @property
    def xp(self):
        return self._torch

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def _wrap(self, x):
        """``x`` as a tensor on the backend device, zero-copy where possible."""
        torch = self._torch
        if isinstance(x, torch.Tensor):
            return x
        x = np.asarray(x)
        if not x.flags.writeable:  # broadcast views etc. — copy, don't warn
            x = np.ascontiguousarray(x)
        if self._is_cpu:
            try:
                return torch.from_numpy(x)
            except (TypeError, ValueError):  # negative strides etc.
                return torch.as_tensor(np.ascontiguousarray(x))
        return torch.as_tensor(np.ascontiguousarray(x), device=self._device)

    def _constant(self, x):
        """Like :meth:`_wrap`, but LRU-cached device-side for CUDA devices.

        The cache key is the host array's identity; holding the array in the
        cache entry pins that identity, and the stored-array check guards
        against id reuse after the original was garbage collected.
        """
        if self._is_cpu or not isinstance(x, np.ndarray):
            return self._wrap(x)
        key = id(x)
        hit = self._const_cache.get(key)
        if hit is not None and hit[0] is x:
            self._const_cache.move_to_end(key)
            return hit[1]
        tensor = self._wrap(x)
        self._const_cache[key] = (x, tensor)
        while len(self._const_cache) > _CONST_CACHE_ENTRIES:
            self._const_cache.popitem(last=False)
        return tensor

    def asarray(self, x, dtype=None):
        if dtype is not None:
            x = np.asarray(self.to_numpy(x), dtype=dtype)
        return self._wrap(x)

    def to_numpy(self, x) -> np.ndarray:
        if isinstance(x, self._torch.Tensor):
            return x.detach().cpu().numpy()
        return np.asarray(x)

    # ------------------------------------------------------------------
    # dense primitives
    # ------------------------------------------------------------------
    def matmul(self, a, b, out=None):
        torch = self._torch
        ta = self._constant(a)
        tb = self._wrap(b)
        # torch.matmul requires matching dtypes; numpy promotes real x complex
        if ta.is_complex() and not tb.is_complex():
            tb = tb.to(ta.dtype)
        elif tb.is_complex() and not ta.is_complex():
            ta = ta.to(tb.dtype)
        if out is None:
            return self.to_numpy(torch.matmul(ta, tb))
        if self._is_cpu:
            tout = self._wrap(out)
            try:
                torch.matmul(ta, tb, out=tout)
            except RuntimeError:  # out= unsupported for this broadcast shape
                tout.copy_(torch.matmul(ta, tb))
        else:
            np.copyto(out, torch.matmul(ta, tb).cpu().numpy())
        return out

    def einsum(self, subscripts, *operands):
        result = self._torch.einsum(subscripts, *[self._wrap(op) for op in operands])
        return self.to_numpy(result)

    def tensordot(self, a, b, axes):
        result = self._torch.tensordot(self._constant(a), self._wrap(b), dims=axes)
        return self.to_numpy(result)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def info(self) -> dict:
        torch = self._torch
        details = {
            "torch": torch.__version__,
            "torch_threads": torch.get_num_threads(),
            "cuda_available": torch.cuda.is_available(),
        }
        if torch.version.cuda:
            details["cuda"] = torch.version.cuda
        if self._device.type == "cuda":  # pragma: no cover - needs a GPU
            details["cuda_device"] = torch.cuda.get_device_name(self._device)
            details["const_cache_entries"] = len(self._const_cache)
        return details
