"""Pluggable array backends for the dense kernels (NumPy / PyTorch / CuPy).

The active backend is resolved once, at ``import repro`` time, from the
``REPRO_BACKEND`` environment variable — the same convention as
``REPRO_WORKERS`` in :func:`repro.hpc.parallel.default_workers`:

* unset or ``numpy``   -> the NumPy reference backend (the default)
* ``torch`` / ``cupy`` -> the accelerated backend, if its library imports
* anything invalid, or a backend whose library is missing -> a
  :class:`RuntimeWarning` and a fallback to numpy.  Import-time resolution
  **never** raises, so ``import repro`` works on machines without torch/cupy.

:func:`get_backend` is the strict programmatic entry point: an unknown name
raises the registry-style sorted-choices ``ValueError``, an uninstalled one
raises :class:`BackendUnavailableError`.  Tests and benchmarks switch
backends explicitly with :func:`use_backend` / :func:`set_active_backend`;
long-lived components (workspaces, ansätze, warm-pool entries) capture the
backend active at their construction, so a later switch never mixes kernels
within one component.
"""

from __future__ import annotations

import os
import platform
import threading
import warnings
from contextlib import contextmanager

import numpy as np

from .base import ArrayBackend
from .cupy_backend import CupyBackend
from .numpy_backend import NumpyBackend
from .torch_backend import TorchBackend

__all__ = [
    "ArrayBackend",
    "BACKEND_NAMES",
    "BackendUnavailableError",
    "NumpyBackend",
    "active_backend",
    "backend_from_env",
    "backend_info",
    "get_backend",
    "set_active_backend",
    "use_backend",
]

_REGISTRY: dict[str, type[ArrayBackend]] = {
    "numpy": NumpyBackend,
    "torch": TorchBackend,
    "cupy": CupyBackend,
}

#: the valid ``REPRO_BACKEND`` values, sorted
BACKEND_NAMES: tuple[str, ...] = tuple(sorted(_REGISTRY))


class BackendUnavailableError(RuntimeError):
    """A known backend whose backing library is not installed/usable here."""


def get_backend(name: str, **kwargs) -> ArrayBackend:
    """Construct the backend called ``name`` (strict: raises on any problem).

    ``kwargs`` are forwarded to the backend constructor (e.g. ``device=`` for
    torch).  Unknown names raise the registry-convention sorted-choices
    ``ValueError``; known-but-uninstalled ones raise
    :class:`BackendUnavailableError`.
    """
    key = str(name).strip().lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown array backend {name!r}; choose from {sorted(_REGISTRY)}")
    cls = _REGISTRY[key]
    if not cls.available():
        raise BackendUnavailableError(
            f"array backend {key!r} is registered but its library is not "
            f"installed; install it or pick one of the available backends "
            f"{sorted(n for n, c in _REGISTRY.items() if c.available())}"
        )
    try:
        return cls(**kwargs)
    except Exception as exc:
        raise BackendUnavailableError(
            f"array backend {key!r} failed to initialize: {exc}"
        ) from exc


def backend_from_env() -> ArrayBackend:
    """Resolve ``REPRO_BACKEND`` tolerantly (the import-time path).

    Mirrors ``default_workers()``'s ``REPRO_WORKERS`` handling: a bad value
    warns and falls back to the default instead of raising, so an exported
    ``REPRO_BACKEND=torch`` on a torch-less machine degrades to numpy rather
    than breaking ``import repro``.
    """
    env = os.environ.get("REPRO_BACKEND")
    if env:
        try:
            return get_backend(env)
        except ValueError:
            warnings.warn(
                f"ignoring invalid REPRO_BACKEND value {env!r}; choose from "
                f"{sorted(_REGISTRY)}, falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
        except BackendUnavailableError as exc:
            warnings.warn(
                f"REPRO_BACKEND={env} is unavailable ({exc}); falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
    return NumpyBackend()


_active: ArrayBackend | None = None
_active_lock = threading.Lock()


def active_backend() -> ArrayBackend:
    """The process-wide active backend (resolved from the env on first use)."""
    global _active
    if _active is None:
        with _active_lock:
            if _active is None:
                _active = backend_from_env()
    return _active


def set_active_backend(backend: ArrayBackend | str | None) -> ArrayBackend | None:
    """Install ``backend`` (instance or name) as active; returns the previous one.

    ``None`` resets to lazy env resolution.  Components built before the
    switch keep the backend they captured at construction.
    """
    global _active
    if isinstance(backend, str):
        backend = get_backend(backend)
    elif backend is not None and not isinstance(backend, ArrayBackend):
        raise TypeError(f"expected an ArrayBackend, a backend name, or None, got {backend!r}")
    with _active_lock:
        previous = _active
        _active = backend
    return previous


@contextmanager
def use_backend(backend: ArrayBackend | str):
    """Context manager: run a block under ``backend``, then restore."""
    previous = set_active_backend(backend)
    try:
        yield active_backend()
    finally:
        set_active_backend(previous)


def backend_info() -> dict:
    """Diagnostics for the active backend (what ``repro backend-info`` prints)."""
    backend = active_backend()
    details = {
        "backend": backend.name,
        "device": backend.device,
        "complex_dtype": str(np.dtype(backend.complex_dtype)),
        "real_dtype": str(np.dtype(backend.real_dtype)),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "available": {name: cls.available() for name, cls in sorted(_REGISTRY.items())},
    }
    details.update(backend.info())
    return details
