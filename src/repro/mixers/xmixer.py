"""Pauli-X product mixers (transverse field and generalizations).

For unconstrained problems the paper's optimized path covers any mixer that is
a sum of products of Pauli-X operators,

    H_M = sum_t  c_t  prod_{i in t} X_i ,

which includes the original transverse-field mixer ``sum_i X_i`` and the
Grover mixer's multi-X expansions.  Using ``H Z H = X`` the evolution is

    exp(-i beta H_M) = H^{⊗n}  exp(-i beta f(Z_i))  H^{⊗n} ,

so a single diagonal vector ``d`` (the mixer eigenvalues in the Hadamard
basis) is pre-computed once, and each layer costs two fast Walsh–Hadamard
transforms (``O(n 2^n)``) plus an element-wise phase multiply (Sec. 2.1-2.2 of
the paper).

The diagonal entries follow from ``Z_{i1}...Z_{ik} |x> = (-1)^{popcount(x & mask)} |x>``:

    d[x] = sum_t  c_t  (-1)^{popcount(x & mask_t)} .
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from ..hilbert.bitops import popcount
from ..hilbert.subspace import FullSpace
from .base import Mixer

__all__ = [
    "walsh_hadamard_transform",
    "walsh_hadamard_gemm",
    "x_term_diagonal",
    "XMixer",
    "mixer_x",
    "transverse_field_mixer",
    "MultiAngleXMixer",
]


def walsh_hadamard_transform(psi: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Normalized Walsh–Hadamard transform ``H^{⊗n} |psi>`` in ``O(n 2^n)``.

    ``psi`` is either a single statevector of power-of-two length or a
    ``(dim, M)`` batch of column statevectors (the transform acts along axis
    0, touching all M columns in each butterfly pass).  If ``out`` is provided
    the result is written there (it may alias ``psi``); otherwise a new array
    is returned and ``psi`` is left untouched.
    """
    psi = np.asarray(psi)
    dim = psi.shape[0]
    if dim == 0 or dim & (dim - 1):
        raise ValueError(f"statevector length {dim} is not a power of two")
    n = dim.bit_length() - 1

    if out is None:
        out = psi.astype(np.complex128, copy=True)
    elif out is not psi:
        out[:] = psi
    if not out.flags.c_contiguous:
        # The in-place butterfly requires reshape views; round-trip through a
        # contiguous copy for exotic caller-supplied buffers.
        out[:] = walsh_hadamard_transform(np.ascontiguousarray(out))
        return out

    tail = out.shape[1:]
    h = 1
    while h < dim:
        view = out.reshape(-1, 2, h, *tail)
        upper = view[:, 0] + view[:, 1]
        lower = view[:, 0] - view[:, 1]
        view[:, 0] = upper
        view[:, 1] = lower
        h *= 2
    out *= 2.0 ** (-n / 2.0)
    return out


def _hadamard_factors(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Kronecker factors of the ``2^n`` Hadamard matrix, split at ``n // 2``.

    ``H^{⊗n} = (H^{⊗kh} ⊗ I) (I ⊗ H^{⊗kl})`` with ``kh = n // 2`` high bits
    and ``kl = n - kh`` low bits, so a batched transform is two dense real
    GEMMs with ``2^kh`` / ``2^kl``-sized (i.e. ~``sqrt(dim)``) factors instead
    of ``n`` bandwidth-bound butterfly passes over the whole batch.
    """
    from scipy.linalg import hadamard

    kh = n // 2
    kl = n - kh
    h_hi = np.ascontiguousarray(hadamard(1 << kh), dtype=np.float64)
    h_lo = np.ascontiguousarray(hadamard(1 << kl), dtype=np.float64)
    return h_hi, h_lo


def walsh_hadamard_gemm(
    src: np.ndarray,
    via: np.ndarray,
    dst: np.ndarray,
    h_hi: np.ndarray,
    h_lo: np.ndarray,
) -> np.ndarray:
    """*Unnormalized* batched WHT of ``(dim, M)`` ``src`` into ``dst`` via two GEMMs.

    Both GEMMs run on the interleaved re/im float view (the Hadamard factors
    are ``±1`` real), which BLAS executes at full rate — multithreaded and far
    above the bandwidth-bound butterfly for large batches.  ``via`` is the
    intermediate buffer: it must be distinct from both ``src`` and ``dst``
    (``src`` and ``dst`` may alias each other).  All three are C-contiguous
    complex128 ``(dim, M)`` arrays.  The caller folds the ``2^{-n/2}``
    normalization into its phase factors.  Returns ``dst``.
    """
    dim_hi = h_hi.shape[0]
    dim_lo = h_lo.shape[0]
    width = 2 * src.shape[1]  # float columns of the interleaved view
    src_f = src.view(np.float64).reshape(dim_hi, dim_lo, width)
    via_f = via.view(np.float64).reshape(dim_hi, dim_lo, width)
    # low bits: one GEMM per high-bit block (a single batched BLAS call)
    np.matmul(h_lo, src_f, out=via_f)
    # high bits: one big GEMM over the flattened (low bits x batch) axis
    np.matmul(
        h_hi,
        via_f.reshape(dim_hi, dim_lo * width),
        out=dst.view(np.float64).reshape(dim_hi, dim_lo * width),
    )
    return dst


def _wht_diagonal_product(
    mixer: "Mixer",
    diagonal: np.ndarray,
    Psi: np.ndarray,
    out: np.ndarray | None,
    workspace,
    hadamard_pair: tuple[np.ndarray, np.ndarray],
) -> np.ndarray:
    """Batched ``H^{⊗n} diag(d) H^{⊗n} Psi`` via two GEMM-based WHTs.

    The shared kernel behind every products-of-X ``apply_hamiltonian_batch``:
    both transform normalizations are folded into the diagonal, so the product
    costs four real GEMMs plus one elementwise pass for all M columns.
    """
    Psi, out, M = mixer._check_batch(Psi, out)
    if workspace is not None:
        scratch = workspace.scratch(M)
        bk = workspace.backend
    else:
        scratch = np.empty((mixer.dim, M), dtype=np.complex128)
        bk = mixer.backend
    h_hi, h_lo = hadamard_pair
    bk.wht_gemm(Psi, scratch, out, h_hi, h_lo)
    out *= (diagonal * (1.0 / mixer.dim))[:, None]
    bk.wht_gemm(out, scratch, out, h_hi, h_lo)
    return out


def x_term_diagonal(
    terms: Sequence[Sequence[int]], coefficients: Sequence[float], n: int
) -> np.ndarray:
    """Eigenvalues (in the Hadamard basis) of ``sum_t c_t prod_{i in t} X_i``.

    Returns a length-``2^n`` float array ``d`` with
    ``d[x] = sum_t c_t (-1)^{popcount(x & mask_t)}``.
    """
    labels = np.arange(1 << n, dtype=np.uint64)
    diag = np.zeros(1 << n, dtype=np.float64)
    for term, coeff in zip(terms, coefficients):
        mask = 0
        for qubit in term:
            if not 0 <= qubit < n:
                raise ValueError(f"qubit index {qubit} out of range for n={n}")
            if mask >> qubit & 1:
                raise ValueError(f"duplicate qubit {qubit} in mixer term {tuple(term)}")
            mask |= 1 << qubit
        signs = 1.0 - 2.0 * (popcount(labels & np.uint64(mask)) & 1)
        diag += coeff * signs
    return diag


class XMixer(Mixer):
    """Mixer built from a sum of products of Pauli-X operators (unconstrained).

    Parameters
    ----------
    n:
        Number of qubits; the mixer acts on the full ``2^n`` space.
    terms:
        Iterable of qubit-index tuples; each tuple ``t`` contributes
        ``prod_{i in t} X_i``.
    coefficients:
        Optional per-term coefficients (default all 1).
    """

    def __init__(
        self,
        n: int,
        terms: Iterable[Sequence[int]],
        coefficients: Sequence[float] | None = None,
    ):
        super().__init__(FullSpace(n))
        terms = [tuple(int(q) for q in term) for term in terms]
        if not terms:
            raise ValueError("an X mixer needs at least one term")
        if coefficients is None:
            coefficients = [1.0] * len(terms)
        coefficients = [float(c) for c in coefficients]
        if len(coefficients) != len(terms):
            raise ValueError("coefficients and terms must have the same length")
        self.terms = terms
        self.coefficients = coefficients
        # The pre-computed Hadamard-basis diagonal: the only per-mixer data the
        # simulation loop ever touches.
        self.diagonal = x_term_diagonal(terms, coefficients, n)
        # X-mixer spectra take few distinct values (the transverse field has
        # n + 1), so batched eigenphases are an exp over (levels, M) plus a
        # gather instead of an exp over the full (dim, M) matrix.
        self._diag_values, self._diag_inverse = np.unique(self.diagonal, return_inverse=True)
        self._hadamard_pair = _hadamard_factors(n)

    def apply_batch(
        self,
        Psi: np.ndarray,
        betas: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Batched layer: two GEMM-based WHTs around a per-column phase multiply.

        The Hadamard transform is factored into two ``~sqrt(dim)``-sized real
        GEMMs (:func:`walsh_hadamard_gemm`), the ``2^{-n/2}`` normalizations
        of both transforms are folded into the phase factors, and the phase
        factors themselves come from a distinct-eigenvalue table — so a layer
        costs four BLAS-3 calls plus two elementwise passes for all M angle
        sets.
        """
        Psi, out, M = self._check_batch(Psi, out)
        betas = self._batch_angles(betas, M)
        if workspace is not None:
            scratch = workspace.scratch(M)
            phases = workspace.phase(M)
            bk = workspace.backend
        else:
            scratch = np.empty((self.dim, M), dtype=np.complex128)
            phases = np.empty((self.dim, M), dtype=np.complex128)
            bk = self.backend
        # eigenphases x (1/dim): the latter absorbs both transform norms
        levels = self._diag_values
        scale = 1.0 / self.dim
        if levels.size * 4 <= self.dim:
            table = np.empty((levels.size, M), dtype=np.complex128)
            np.multiply(levels[:, None], -1j * betas[None, :], out=table)
            np.exp(table, out=table)
            table *= scale
            np.take(table, self._diag_inverse, axis=0, out=phases)
        else:
            np.multiply(self.diagonal[:, None], -1j * betas[None, :], out=phases)
            np.exp(phases, out=phases)
            phases *= scale
        h_hi, h_lo = self._hadamard_pair
        bk.wht_gemm(Psi, scratch, out, h_hi, h_lo)
        out *= phases
        bk.wht_gemm(out, scratch, out, h_hi, h_lo)
        return out

    def apply_hamiltonian_batch(
        self,
        Psi: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Batched ``H_M`` product (see :func:`_wht_diagonal_product`)."""
        return _wht_diagonal_product(
            self, self.diagonal, Psi, out, workspace, self._hadamard_pair
        )

    def matrix(self) -> np.ndarray:
        dim = self.dim
        # H^{⊗n} diag(d) H^{⊗n}, built column by column (test/inspection use only).
        mat = np.empty((dim, dim), dtype=np.complex128)
        basis = np.zeros(dim, dtype=np.complex128)
        for j in range(dim):
            basis[:] = 0.0
            basis[j] = 1.0
            column = walsh_hadamard_transform(basis)
            column *= self.diagonal
            mat[:, j] = walsh_hadamard_transform(column)
        return mat

    def cache_key(self) -> str:
        body = "_".join("".join(map(str, t)) for t in self.terms)
        digest = hash((tuple(self.terms), tuple(self.coefficients))) & 0xFFFFFFFF
        return f"XMixer_n{self.n}_{digest:x}_{body[:32]}"


def mixer_x(orders: Sequence[int], n: int, coefficients: Sequence[float] | None = None) -> XMixer:
    """Build an X mixer from interaction orders, mirroring the paper's ``mixer_X``.

    ``orders=[1]`` gives the transverse-field mixer ``sum_i X_i``;
    ``orders=[1, 2]`` additionally includes all two-body ``X_i X_j`` products,
    and so on.  ``coefficients`` optionally weights each order.
    """
    if not orders:
        raise ValueError("at least one interaction order is required")
    if coefficients is not None and len(coefficients) != len(orders):
        raise ValueError("coefficients must match the number of orders")
    terms: list[tuple[int, ...]] = []
    coeffs: list[float] = []
    for idx, order in enumerate(orders):
        if not 1 <= order <= n:
            raise ValueError(f"interaction order {order} out of range for n={n}")
        weight = 1.0 if coefficients is None else float(coefficients[idx])
        for combo in combinations(range(n), order):
            terms.append(combo)
            coeffs.append(weight)
    return XMixer(n, terms, coeffs)


def transverse_field_mixer(n: int) -> XMixer:
    """The standard transverse-field mixer ``sum_i X_i``."""
    return mixer_x([1], n)


class MultiAngleXMixer(Mixer):
    """Multi-angle variant: each X term gets its own angle (Herrman et al. 2021).

    All products of X operators commute, so a layer with per-term angles
    ``beta_t`` is exactly ``H^{⊗n} exp(-i sum_t beta_t d_t) H^{⊗n}`` where
    ``d_t`` is the Hadamard-basis diagonal of term ``t``.  ``apply`` therefore
    takes a vector of angles of length ``num_terms``.
    """

    def __init__(self, n: int, terms: Iterable[Sequence[int]]):
        super().__init__(FullSpace(n))
        terms = [tuple(int(q) for q in term) for term in terms]
        if not terms:
            raise ValueError("a multi-angle X mixer needs at least one term")
        self.terms = terms
        self.term_diagonals = np.stack([x_term_diagonal([t], [1.0], n) for t in terms], axis=0)
        self._summed_diagonal = self.term_diagonals.sum(axis=0)
        # (dim, num_terms) factor pre-scaled by -i, so the batched per-column
        # phase exponents are a single GEMM with the (num_terms, M) angles.
        self._term_diag_T_negj = np.ascontiguousarray(-1j * self.term_diagonals.T)
        self._hadamard_pair = _hadamard_factors(n)

    @property
    def num_angles(self) -> int:
        """Number of independent angles in one layer."""
        return len(self.terms)

    def apply(
        self,
        psi: np.ndarray,
        beta,
        out: np.ndarray | None = None,
        *,
        scratch: np.ndarray | None = None,
    ) -> np.ndarray:
        """One multi-angle layer; ``beta`` is a ``(num_angles,)`` vector.

        A scalar (or length-1) ``beta`` broadcasts across all terms.  The
        generic M=1 wrapper can't normalize a multi-angle vector, so this
        override reshapes it to a ``(num_angles, 1)`` batch and defers to
        :meth:`apply_batch` like every other scalar entry point.
        """
        del scratch  # superseded by the per-thread M=1 workspace
        betas = np.atleast_1d(np.asarray(beta, dtype=np.float64))
        if betas.shape == (1,) and self.num_angles > 1:
            betas = np.full(self.num_angles, betas[0])
        if betas.shape != (self.num_angles,):
            raise ValueError(
                f"expected {self.num_angles} angles for a multi-angle layer, got {betas.shape}"
            )
        return self._scalar_via_batch(
            lambda Psi, target, workspace: self.apply_batch(
                Psi, betas[:, None], out=target, workspace=workspace
            ),
            psi,
            out,
        )

    def apply_batch(
        self,
        Psi: np.ndarray,
        betas: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Batched multi-angle layer.

        ``betas`` is a ``(num_angles, M)`` matrix — one angle per term per
        column; a ``(M,)`` vector or scalar broadcasts across terms like the
        scalar :meth:`apply`.  The per-column phase exponents are one GEMM
        (``-i * D^T @ betas``), then the layer is two batched WHTs.
        """
        Psi, out, M = self._check_batch(Psi, out)
        betas = np.asarray(betas, dtype=np.float64)
        if betas.ndim == 0:
            betas = np.full((self.num_angles, M), float(betas))
        elif betas.ndim == 1:
            if betas.shape != (M,):
                raise ValueError(f"betas have shape {betas.shape}, expected ({M},)")
            # materialized (not a zero-stride broadcast view) so the phase
            # GEMM below stays dispatchable on every backend
            betas = np.ascontiguousarray(np.broadcast_to(betas, (self.num_angles, M)))
        if betas.shape != (self.num_angles, M):
            raise ValueError(f"betas have shape {betas.shape}, expected ({self.num_angles}, {M})")
        if workspace is not None:
            scratch = workspace.scratch(M)
            phases = workspace.phase(M)
            bk = workspace.backend
        else:
            scratch = np.empty((self.dim, M), dtype=np.complex128)
            phases = np.empty((self.dim, M), dtype=np.complex128)
            bk = self.backend
        bk.matmul(self._term_diag_T_negj, np.ascontiguousarray(betas), out=phases)
        np.exp(phases, out=phases)
        phases *= 1.0 / self.dim  # absorbs both transforms' 2^{-n/2} norms
        h_hi, h_lo = self._hadamard_pair
        bk.wht_gemm(Psi, scratch, out, h_hi, h_lo)
        out *= phases
        bk.wht_gemm(out, scratch, out, h_hi, h_lo)
        return out

    def apply_hamiltonian_batch(
        self,
        Psi: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Batched summed-Hamiltonian product (see :func:`_wht_diagonal_product`)."""
        return _wht_diagonal_product(
            self, self._summed_diagonal, Psi, out, workspace, self._hadamard_pair
        )

    def term_gradients_batch(
        self,
        Phi: np.ndarray,
        Psi: np.ndarray,
        *,
        workspace=None,
    ) -> np.ndarray:
        """``2 Im <phi_j | H_t | psi_j>`` for every term ``t`` and column ``j``.

        The per-term beta derivatives of one multi-angle layer for a whole
        batch, shape ``(num_angles, M)``.  Because every ``H_t`` is diagonal
        in the Hadamard basis, both batches are transformed once and all
        ``num_angles * M`` inner products collapse into a single real GEMM
        with the stacked term diagonals — instead of the scalar path's
        ``num_angles`` separate Hamiltonian products per column.  ``Phi`` and
        ``Psi`` must be C-contiguous complex ``(dim, M)`` matrices; neither is
        modified.
        """
        Phi = np.asarray(Phi)
        Psi = np.asarray(Psi)
        if Phi.shape != Psi.shape or Phi.ndim != 2 or Phi.shape[0] != self.dim:
            raise ValueError(
                f"batched statevectors have shapes {Phi.shape} / {Psi.shape}, "
                f"expected matching ({self.dim}, M) for {self!r}"
            )
        M = Phi.shape[1]
        if workspace is not None:
            via = workspace.scratch(M)
            wphi = workspace.phase(M)
            wpsi = workspace.aux(M)
            bk = workspace.backend
        else:
            via = np.empty((self.dim, M), dtype=np.complex128)
            wphi = np.empty((self.dim, M), dtype=np.complex128)
            wpsi = np.empty((self.dim, M), dtype=np.complex128)
            bk = self.backend
        h_hi, h_lo = self._hadamard_pair
        bk.wht_gemm(Phi, via, wphi, h_hi, h_lo)
        bk.wht_gemm(Psi, via, wpsi, h_hi, h_lo)
        # A = conj(W phi) * (W psi); both transforms are unnormalized, so A
        # carries an extra factor of dim that the final scale removes.
        np.conjugate(wphi, out=wphi)
        wphi *= wpsi
        # One real GEMM against the interleaved re/im view gives the real and
        # imaginary parts of every <W phi| d_t |W psi> side by side.
        products = bk.matmul(
            self.term_diagonals, wphi.view(np.float64).reshape(self.dim, 2 * M)
        )
        return (2.0 / self.dim) * products[:, 1::2]

    def apply_hamiltonian_term(self, psi: np.ndarray, term_index: int) -> np.ndarray:
        """``(prod_{i in t} X_i) |psi>`` for a single term (per-angle gradients)."""
        psi = self._check_state(psi)
        scratch = walsh_hadamard_transform(psi)
        scratch *= self.term_diagonals[term_index]
        return walsh_hadamard_transform(scratch)

    def matrix(self) -> np.ndarray:
        dim = self.dim
        mat = np.empty((dim, dim), dtype=np.complex128)
        basis = np.zeros(dim, dtype=np.complex128)
        diag = self.term_diagonals.sum(axis=0)
        for j in range(dim):
            basis[:] = 0.0
            basis[j] = 1.0
            column = walsh_hadamard_transform(basis)
            column *= diag
            mat[:, j] = walsh_hadamard_transform(column)
        return mat
