"""Mixer interface.

A mixer in this package is a Hermitian operator ``H_M`` acting on a feasible
space, exposed through exactly the operations the QAOA engine needs:

* ``apply(psi, beta)`` — the unitary evolution ``exp(-i beta H_M) |psi>``,
  implemented without ever forming the matrix exponential (the paper's core
  trick: diagonalize once, then only diagonal phases plus basis changes are
  needed per layer),
* ``apply_hamiltonian(psi)`` — the plain matrix-vector product ``H_M |psi>``,
  needed by the analytic (autodiff-equivalent) gradients,
* ``initial_state()`` — the canonical QAOA starting state for this mixer
  (uniform superposition over the feasible space, i.e. ``|+>^n`` or a Dicke
  state), which is the highest-energy eigenstate of the standard mixers,
* ``matrix()`` — a dense matrix representation for testing and for arbitrary
  downstream use.

All mixers are stateless with respect to the statevector: they may own
pre-computed spectral data (created once, possibly loaded from a disk cache)
but never mutate their inputs unless an explicit ``out`` buffer is provided.
"""

from __future__ import annotations

import abc

import numpy as np

from ..hilbert.subspace import FeasibleSpace

__all__ = ["Mixer", "DiagonalizedMixer"]


class Mixer(abc.ABC):
    """Abstract base class for QAOA mixer Hamiltonians."""

    #: The feasible space the mixer acts on.
    space: FeasibleSpace

    def __init__(self, space: FeasibleSpace):
        self.space = space

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of qubits."""
        return self.space.n

    @property
    def dim(self) -> int:
        """Dimension of the space the mixer acts on."""
        return self.space.dim

    # ------------------------------------------------------------------
    # required operations
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def apply(self, psi: np.ndarray, beta: float, out: np.ndarray | None = None) -> np.ndarray:
        """Return ``exp(-i beta H_M) |psi>``.

        ``psi`` is a complex statevector of length :attr:`dim` in the feasible
        space's canonical basis order.  If ``out`` is given it is used as the
        destination buffer (it may alias ``psi``); otherwise a new array is
        returned.  ``psi`` itself is never modified unless it aliases ``out``.
        """

    @abc.abstractmethod
    def apply_hamiltonian(self, psi: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Return ``H_M |psi>`` (used by analytic gradients)."""

    @abc.abstractmethod
    def matrix(self) -> np.ndarray:
        """Dense ``dim x dim`` matrix of ``H_M`` in the feasible-space basis."""

    # ------------------------------------------------------------------
    # defaults
    # ------------------------------------------------------------------
    def initial_state(self, dtype=np.complex128) -> np.ndarray:
        """Default QAOA initial state: uniform superposition over the space."""
        return self.space.initial_state(dtype=dtype)

    def apply_inverse(self, psi: np.ndarray, beta: float, out: np.ndarray | None = None) -> np.ndarray:
        """Return ``exp(+i beta H_M) |psi>`` (the inverse evolution)."""
        return self.apply(psi, -beta, out=out)

    def cache_key(self) -> str:
        """A string identifying the mixer's pre-computed data for disk caching."""
        return f"{type(self).__name__}_n{self.n}_{self.space.name}"

    def _check_state(self, psi: np.ndarray) -> np.ndarray:
        psi = np.asarray(psi)
        if psi.shape != (self.dim,):
            raise ValueError(
                f"statevector has shape {psi.shape}, expected ({self.dim},) for {self!r}"
            )
        return psi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, dim={self.dim})"


class DiagonalizedMixer(Mixer):
    """A mixer represented by an explicit eigendecomposition ``H_M = V D V^†``.

    This is the general-purpose path of the paper's pre-computation step: the
    decomposition is computed (or loaded from a cache) once, and every layer
    application is two dense matrix-vector products plus a diagonal phase:

        exp(-i beta H_M) |psi> = V exp(-i beta D) V^† |psi> .

    Subclasses (Clique, Ring, arbitrary Hermitian mixers) provide the
    eigenvectors ``V`` and eigenvalues ``D``.
    """

    def __init__(self, space: FeasibleSpace, eigenvalues: np.ndarray, eigenvectors: np.ndarray):
        super().__init__(space)
        eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
        eigenvectors = np.asarray(eigenvectors)
        if eigenvalues.shape != (space.dim,):
            raise ValueError(
                f"eigenvalues have shape {eigenvalues.shape}, expected ({space.dim},)"
            )
        if eigenvectors.shape != (space.dim, space.dim):
            raise ValueError(
                f"eigenvectors have shape {eigenvectors.shape}, expected "
                f"({space.dim}, {space.dim})"
            )
        self.eigenvalues = eigenvalues
        self.eigenvectors = eigenvectors
        # V^† is materialized once so each apply is two GEMVs, no conjugations.
        self._eigenvectors_dag = eigenvectors.conj().T.copy()

    def apply(self, psi: np.ndarray, beta: float, out: np.ndarray | None = None) -> np.ndarray:
        psi = self._check_state(psi)
        coeffs = self._eigenvectors_dag @ psi
        coeffs *= np.exp(-1j * beta * self.eigenvalues)
        result = self.eigenvectors @ coeffs
        if out is None:
            return result
        out[:] = result
        return out

    def apply_hamiltonian(self, psi: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        psi = self._check_state(psi)
        coeffs = self._eigenvectors_dag @ psi
        coeffs *= self.eigenvalues
        result = self.eigenvectors @ coeffs
        if out is None:
            return result
        out[:] = result
        return out

    def matrix(self) -> np.ndarray:
        return (self.eigenvectors * self.eigenvalues[None, :]) @ self._eigenvectors_dag

    def spectral_data(self) -> tuple[np.ndarray, np.ndarray]:
        """The cached ``(eigenvalues, eigenvectors)`` pair."""
        return self.eigenvalues, self.eigenvectors
